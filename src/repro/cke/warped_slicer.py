"""Warped-Slicer [46]: scalability-curve-driven TB partitioning.

Warped-Slicer profiles each kernel's performance as a function of its
resident TB count (the *scalability curve*, paper Figure 3a) and then
picks the feasible TB combination whose worst per-kernel performance
degradation is minimal (the *sweet spot*, Figure 3b).

Two profiling modes exist in the paper; both feed the same sweet-spot
search:

* **static** — profile each kernel in isolation (one simulator run per
  TB count; cached by the harness);
* **dynamic** — profile during concurrent execution by giving each SM
  a different TB count.  Our scaled machine has too few SMs to run all
  configurations simultaneously, so the harness time-multiplexes
  profiling runs, which is the same information at the same cost in
  simulated cycles (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.config import GPUConfig
from repro.cke.partition import TBPartition, feasible_partitions
from repro.workloads.kernel import KernelProfile


@dataclass(frozen=True)
class ScalabilityCurve:
    """IPC per TB count (index 0 ↔ 1 TB) for one kernel, plus the
    isolated default-occupancy IPC used for normalisation."""

    kernel: str
    ipc_by_tbs: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.ipc_by_tbs:
            raise ValueError("curve needs at least one point")
        if any(v < 0 for v in self.ipc_by_tbs):
            raise ValueError("IPC cannot be negative")

    @property
    def max_tbs(self) -> int:
        return len(self.ipc_by_tbs)

    @property
    def isolated_ipc(self) -> float:
        """IPC at default (maximum) occupancy — the paper's
        normalisation baseline."""
        return self.ipc_by_tbs[-1]

    def ipc(self, tbs: int) -> float:
        if not 1 <= tbs <= self.max_tbs:
            raise ValueError(f"tbs must be in [1, {self.max_tbs}]")
        return self.ipc_by_tbs[tbs - 1]

    def normalized(self, tbs: int) -> float:
        iso = self.isolated_ipc
        return self.ipc(tbs) / iso if iso else 0.0


def sweet_spot(profiles: Sequence[KernelProfile],
               curves: Sequence[ScalabilityCurve],
               config: GPUConfig) -> TBPartition:
    """The Warped-Slicer selection: over all feasible partitions,
    maximise the minimum normalised per-kernel IPC (equivalently,
    minimise the worst per-kernel degradation), breaking ties by the
    larger predicted weighted speedup."""
    if len(profiles) != len(curves):
        raise ValueError("one curve per kernel required")
    best: Optional[TBPartition] = None
    best_key: Tuple[float, float] = (-1.0, -1.0)
    for partition in feasible_partitions(profiles, config):
        norms = [curve.normalized(tbs)
                 for curve, tbs in zip(curves, partition)]
        key = (min(norms), sum(norms))
        if key > best_key:
            best_key = key
            best = partition
    if best is None:
        raise ValueError(
            "no feasible TB partition gives every kernel at least one TB")
    return best


def theoretical_weighted_speedup(curves: Sequence[ScalabilityCurve],
                                 partition: TBPartition) -> float:
    """The predicted (interference-free) weighted speedup at a
    partition — the paper's "theoretical" bar in Figure 4."""
    return sum(curve.normalized(tbs)
               for curve, tbs in zip(curves, partition))
