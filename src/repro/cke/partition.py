"""Thread-block partition types and static-resource feasibility.

A *TB partition* assigns each kernel a per-SM cap on resident thread
blocks.  A partition is feasible when the combined static footprint
(threads, warps, registers, shared memory, TB slots — the four
resources SMK's DRF considers plus the TB-slot limit) fits one SM.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.config import GPUConfig
from repro.workloads.kernel import KernelProfile


@dataclass(frozen=True)
class TBPartition:
    """Per-kernel TB caps applied identically on every shared SM."""

    tbs: Tuple[int, ...]

    def __post_init__(self) -> None:
        if any(t < 0 for t in self.tbs):
            raise ValueError("TB counts must be non-negative")

    def __iter__(self):
        return iter(self.tbs)

    def __len__(self) -> int:
        return len(self.tbs)


def _footprint(profile: KernelProfile, tbs: int, config: GPUConfig):
    warps = profile.warps_per_tb(config.warp_size)
    return (
        tbs,
        tbs * profile.threads_per_tb,
        tbs * warps,
        tbs * profile.threads_per_tb * profile.regs_per_thread,
        tbs * profile.smem_per_tb,
    )


def fits_together(profiles: Sequence[KernelProfile], tbs: Sequence[int],
                  config: GPUConfig) -> bool:
    """True when the combined static footprint fits one SM."""
    if len(profiles) != len(tbs):
        raise ValueError("one TB count per kernel required")
    totals = [0, 0, 0, 0, 0]
    for profile, count in zip(profiles, tbs):
        for i, used in enumerate(_footprint(profile, count, config)):
            totals[i] += used
    caps = (config.max_tbs_per_sm, config.max_threads_per_sm,
            config.max_warps_per_sm, config.registers_per_sm,
            config.smem_per_sm)
    return all(total <= cap for total, cap in zip(totals, caps))


def max_feasible(profiles: Sequence[KernelProfile], tbs: List[int],
                 kernel: int, config: GPUConfig) -> int:
    """Largest TB count for ``kernel`` given the others' counts."""
    probe = list(tbs)
    best = 0
    for count in range(1, config.max_tbs_per_sm + 1):
        probe[kernel] = count
        if not fits_together(profiles, probe, config):
            break
        best = count
    return best


def feasible_partitions(profiles: Sequence[KernelProfile],
                        config: GPUConfig,
                        min_tbs: int = 1) -> Iterator[TBPartition]:
    """Enumerate all feasible partitions with ≥ ``min_tbs`` TBs per
    kernel (every kernel must make progress, as in the paper)."""
    ceilings = [p.max_tbs_per_sm(config) for p in profiles]
    if any(c < min_tbs for c in ceilings):
        return
    ranges = [range(min_tbs, c + 1) for c in ceilings]
    for combo in itertools.product(*ranges):
        if fits_together(profiles, combo, config):
            yield TBPartition(tuple(combo))


def even_partition(profiles: Sequence[KernelProfile],
                   config: GPUConfig) -> TBPartition:
    """A simple proportional split: walk kernels round-robin, granting
    one TB at a time while the combined footprint fits."""
    counts = [0] * len(profiles)
    progress = True
    while progress:
        progress = False
        for i in range(len(profiles)):
            trial = list(counts)
            trial[i] += 1
            if trial[i] <= profiles[i].max_tbs_per_sm(config) \
                    and fits_together(profiles, trial, config):
                counts[i] += 1
                progress = True
    if any(c == 0 for c in counts):
        raise ValueError("even partition could not give every kernel a TB")
    return TBPartition(tuple(counts))
