"""SMK [45]: fine-grained intra-SM sharing via Dominant Resource
Fairness, plus periodic warp-instruction quotas.

* **SMK-P** (partitioning): thread blocks are granted one at a time to
  the kernel whose *dominant share* — the maximum, over the four
  static resources (registers, shared memory, threads, TB slots), of
  the fraction it currently occupies — is smallest.  This equalises
  static resource allocation across kernels with heterogeneous
  footprints.

* **SMK-W** (the "+W" in SMK-(P+W)): fair static allocation does not
  imply fair progress, so SMK also grants each kernel a quota of warp
  instructions per epoch, sized from isolated profiling so that each
  kernel progresses proportionally to its isolated rate.  A kernel
  that exhausts its quota stops issuing until all kernels have; the
  gate itself lives in :class:`repro.core.arbiter.SMKQuotaGate`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.config import GPUConfig
from repro.cke.partition import TBPartition, fits_together
from repro.workloads.kernel import KernelProfile


def _dominant_share(profile: KernelProfile, tbs: int, config: GPUConfig) -> float:
    warps = profile.warps_per_tb(config.warp_size)
    shares = (
        tbs / config.max_tbs_per_sm,
        tbs * profile.threads_per_tb / config.max_threads_per_sm,
        tbs * warps / config.max_warps_per_sm,
        tbs * profile.threads_per_tb * profile.regs_per_thread
        / config.registers_per_sm,
        (tbs * profile.smem_per_tb / config.smem_per_sm
         if config.smem_per_sm else 0.0),
    )
    return max(shares)


def drf_partition(profiles: Sequence[KernelProfile],
                  config: GPUConfig) -> TBPartition:
    """SMK-P: grant TBs one at a time to the kernel with the smallest
    dominant share, while the combined footprint fits."""
    counts: List[int] = [0] * len(profiles)
    ceilings = [p.max_tbs_per_sm(config) for p in profiles]
    while True:
        candidates = []
        for i, profile in enumerate(profiles):
            if counts[i] >= ceilings[i]:
                continue
            trial = list(counts)
            trial[i] += 1
            if fits_together(profiles, trial, config):
                candidates.append((_dominant_share(profile, counts[i], config), i))
        if not candidates:
            break
        _, winner = min(candidates)
        counts[winner] += 1
    if any(c == 0 for c in counts):
        raise ValueError("DRF could not give every kernel at least one TB")
    return TBPartition(tuple(counts))


def smk_quotas(isolated_ipcs: Sequence[float],
               epoch_insts: int = 2048) -> Tuple[int, ...]:
    """Warp-instruction quotas per epoch, proportional to each
    kernel's isolated IPC (offline profiling, as in SMK-(P+W))."""
    if epoch_insts < len(isolated_ipcs):
        raise ValueError("epoch too small for the kernel count")
    total = sum(isolated_ipcs)
    if total <= 0:
        raise ValueError("isolated IPCs must be positive")
    return tuple(max(1, round(epoch_insts * ipc / total))
                 for ipc in isolated_ipcs)
