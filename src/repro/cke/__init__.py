"""Concurrent-kernel-execution policies: how thread blocks from
multiple kernels are partitioned across and within SMs.

* :mod:`repro.cke.partition` — feasibility rules and TB-partition data
  types shared by all policies.
* :mod:`repro.cke.warped_slicer` — Warped-Slicer [46]: scalability
  curves and sweet-spot selection.
* :mod:`repro.cke.smk` — SMK [45]: Dominant-Resource-Fairness static
  partition (SMK-P) and the warp-instruction quota (the "+W" part).
* :mod:`repro.cke.spatial` — spatial multitasking [2]: disjoint SM
  sets per kernel.
* :mod:`repro.cke.leftover` — the naive left-over policy (Hyper-Q
  style): first kernel takes what it wants, the second gets the rest.
"""

from repro.cke.partition import (
    TBPartition,
    even_partition,
    feasible_partitions,
    fits_together,
    max_feasible,
)
from repro.cke.warped_slicer import (
    ScalabilityCurve,
    sweet_spot,
    theoretical_weighted_speedup,
)
from repro.cke.dynamic_ws import DynamicWarpedSlicer, DynamicWSResult
from repro.cke.smk import drf_partition, smk_quotas
from repro.cke.spatial import spatial_masks
from repro.cke.leftover import leftover_partition

__all__ = [
    "TBPartition",
    "even_partition",
    "feasible_partitions",
    "fits_together",
    "max_feasible",
    "ScalabilityCurve",
    "sweet_spot",
    "theoretical_weighted_speedup",
    "DynamicWarpedSlicer",
    "DynamicWSResult",
    "drf_partition",
    "smk_quotas",
    "spatial_masks",
    "leftover_partition",
]
