"""Dynamic Warped-Slicer: online scalability profiling (paper §2.5).

The static Warped-Slicer profiles each kernel alone; the *dynamic*
variant obtains the scalability curves **during concurrent execution**
by dedicating each SM to one kernel at a specific TB count ("1 TB on
one SM, 2 TBs on a second SM and so on") and stepping through
configurations.  Because the kernels run simultaneously on different
SMs, the measured curves already include the cross-SM interference in
the L2 and memory — the property the paper credits the dynamic
approach with.

This module drives one :class:`~repro.sim.engine.GPU` instance through

1. a **profiling stage**: round ``r`` runs kernel ``k`` at ``r+1`` TBs
   on SM ``k``; per-phase IPC samples (after a settle fraction) become
   the curve points;
2. the **sweet-spot reconfiguration**: the standard Warped-Slicer
   selection over the measured curves;
3. the **measurement stage**: all kernels share every SM at the chosen
   partition; metrics are computed over this window only.

The scaled machine has as many SMs as kernels for 2-kernel mixes; for
larger mixes than SMs the paper time-shares SMs — we reject that case
explicitly rather than model it (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import GPUConfig
from repro.cke.partition import TBPartition
from repro.cke.warped_slicer import ScalabilityCurve, sweet_spot
from repro.core.arbiter import SchemeConfig
from repro.sim.engine import GPU, make_launches
from repro.sim.stats import RunResult
from repro.workloads.kernel import KernelProfile


@dataclass
class DynamicWSResult:
    """Everything the online procedure produced."""

    curves: List[ScalabilityCurve]
    partition: TBPartition
    profiling_cycles: int
    measure_cycles: int
    #: per-kernel instructions issued during the measurement window.
    window_insts: Dict[int, int]
    result: RunResult

    def window_ipc(self, slot: int) -> float:
        return self.window_insts[slot] / self.measure_cycles


class DynamicWarpedSlicer:
    """Online profiling + reconfiguration controller."""

    def __init__(self, profiles: Sequence[KernelProfile], config: GPUConfig,
                 stack: Optional[SchemeConfig] = None,
                 phase_cycles: int = 1200, settle_frac: float = 0.4,
                 seed: int = 0):
        if len(profiles) > config.num_sms:
            raise ValueError(
                "dynamic profiling dedicates one SM per kernel; "
                f"{len(profiles)} kernels need >= {len(profiles)} SMs")
        if not 0.0 <= settle_frac < 1.0:
            raise ValueError("settle_frac must be in [0, 1)")
        if phase_cycles < 10:
            raise ValueError("phase_cycles too small to measure anything")
        self.profiles = list(profiles)
        self.config = config
        self.stack = stack or SchemeConfig()
        self.phase_cycles = phase_cycles
        self.settle_frac = settle_frac
        self.seed = seed
        self._max_tbs = [p.max_tbs_per_sm(config) for p in self.profiles]

    # ------------------------------------------------------------------
    def _build_gpu(self) -> GPU:
        # Start with every kernel disabled everywhere; phases enable.
        zeros = [[0] * self.config.num_sms for _ in self.profiles]
        launches = make_launches(self.profiles, zeros, self.config,
                                 seed=self.seed)
        return GPU(self.config, launches, self.stack)

    def _profile(self, gpu: GPU) -> Tuple[List[ScalabilityCurve], int]:
        num_kernels = len(self.profiles)
        rounds = max(self._max_tbs)
        points: List[List[float]] = [[] for _ in range(num_kernels)]
        cycles_used = 0
        for rnd in range(rounds):
            # Configure: kernel k runs alone on SM k at (rnd+1) TBs.
            for slot in range(num_kernels):
                tbs = min(rnd + 1, self._max_tbs[slot])
                for sm_id in range(self.config.num_sms):
                    gpu.set_tb_limit(sm_id, slot,
                                     tbs if sm_id == slot else 0)
            settle = int(self.phase_cycles * self.settle_frac)
            if settle:
                gpu.run(settle)
                cycles_used += settle
            before = gpu.snapshot_insts()
            window = self.phase_cycles - settle
            gpu.run(window)
            cycles_used += window
            after = gpu.snapshot_insts()
            for slot in range(num_kernels):
                if rnd < self._max_tbs[slot]:
                    ipc = (after[slot] - before[slot]) / window
                    points[slot].append(ipc)
        curves = [
            ScalabilityCurve(profile.name, tuple(samples))
            for profile, samples in zip(self.profiles, points)
        ]
        return curves, cycles_used

    # ------------------------------------------------------------------
    def execute(self, measure_cycles: int,
                reconfigure_settle: int = 1000) -> DynamicWSResult:
        """Run profiling, reconfigure to the sweet spot, and measure."""
        if measure_cycles < 1:
            raise ValueError("measure_cycles must be positive")
        gpu = self._build_gpu()
        curves, profiling_cycles = self._profile(gpu)
        partition = sweet_spot(self.profiles, curves, self.config)

        # Reconfigure: every SM hosts every kernel at the sweet spot.
        for sm_id in range(self.config.num_sms):
            for slot, tbs in enumerate(partition):
                gpu.set_tb_limit(sm_id, slot, tbs)
        if reconfigure_settle:
            gpu.run(reconfigure_settle)

        before = gpu.snapshot_insts()
        result = gpu.run(measure_cycles)
        after = gpu.snapshot_insts()
        window = {slot: after[slot] - before[slot] for slot in before}
        return DynamicWSResult(
            curves=curves,
            partition=partition,
            profiling_cycles=profiling_cycles,
            measure_cycles=measure_cycles,
            window_insts=window,
            result=result,
        )
