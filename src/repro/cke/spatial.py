"""Spatial multitasking [2]: partition SMs, not SM internals.

Each kernel receives a disjoint subset of SMs and runs at full
occupancy there.  This provides isolation and fairness but leaves
intra-SM resources (compute units of an SM running a memory-intensive
kernel, and vice versa) underutilised — the gap intra-SM sharing
targets (paper §1).
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.config import GPUConfig
from repro.workloads.kernel import KernelProfile


def spatial_masks(num_kernels: int, config: GPUConfig) -> List[Set[int]]:
    """Split the SMs into ``num_kernels`` contiguous groups, as evenly
    as possible (every kernel gets at least one SM)."""
    if num_kernels < 1:
        raise ValueError("need at least one kernel")
    if config.num_sms < num_kernels:
        raise ValueError(
            f"{config.num_sms} SMs cannot host {num_kernels} kernels spatially")
    base = config.num_sms // num_kernels
    extra = config.num_sms % num_kernels
    masks: List[Set[int]] = []
    next_sm = 0
    for i in range(num_kernels):
        size = base + (1 if i < extra else 0)
        masks.append(set(range(next_sm, next_sm + size)))
        next_sm += size
    return masks


def spatial_tb_limits(profiles: Sequence[KernelProfile],
                      config: GPUConfig) -> List[int]:
    """Each kernel runs at its full isolated occupancy on its SMs."""
    return [p.max_tbs_per_sm(config) for p in profiles]
