"""The left-over CKE policy (queue-based multiprogramming / Hyper-Q).

Resources are assigned to the first kernel as much as possible; only
the remainder hosts the second (and later) kernels.  The paper's §1
motivates intra-SM sharing by the left-over policy's poor utilisation
and lack of fairness — reproduced here as a baseline.
"""

from __future__ import annotations

from typing import Sequence

from repro.config import GPUConfig
from repro.cke.partition import TBPartition, fits_together
from repro.workloads.kernel import KernelProfile


def leftover_partition(profiles: Sequence[KernelProfile],
                       config: GPUConfig) -> TBPartition:
    """Greedy in kernel order: kernel 0 takes its maximum, kernel 1
    fills what is left, and so on.  Later kernels may receive zero
    TBs — that is the point of the baseline."""
    counts = [0] * len(profiles)
    for i, profile in enumerate(profiles):
        ceiling = profile.max_tbs_per_sm(config)
        while counts[i] < ceiling:
            trial = list(counts)
            trial[i] += 1
            if not fits_together(profiles, trial, config):
                break
            counts[i] += 1
    return TBPartition(tuple(counts))
