"""UCP-style L1D way partitioning (paper §3.1 — the negative result).

The paper evaluates Utility-based Cache Partitioning (Qureshi & Patt,
MICRO'06) applied to the per-SM L1D between co-running kernels, and
shows it does *not* reduce memory pipeline stalls: a kernel squeezed
into fewer ways takes more reservation failures (a cache slot must be
allocated for every outstanding miss), and those stalls block the
in-order LSU for everyone.

Implementation follows UCP: each kernel has a shadow tag array (ATD)
with true-LRU stack-distance hit counters; every ``interval`` cycles a
lookahead-greedy algorithm reassigns ways by marginal utility and the
main tag store's victim selection enforces the allocation
(:attr:`repro.mem.cache.SetAssocCache.partition`).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.config import CacheConfig
from repro.mem.cache import SetAssocCache


class ShadowTagArray:
    """Auxiliary tag directory for one kernel: true LRU, counting hits
    by stack position (way 0 = MRU)."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.num_sets = config.num_sets
        self.assoc = config.assoc
        # Each set is an MRU-ordered list of tags.
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.way_hits = [0] * self.assoc
        self.misses = 0
        self._geometry = SetAssocCache(config)

    def access(self, line_addr: int) -> None:
        idx = self._geometry.set_index(line_addr)
        stack = self._sets[idx]
        try:
            pos = stack.index(line_addr)
        except ValueError:
            self.misses += 1
            stack.insert(0, line_addr)
            if len(stack) > self.assoc:
                stack.pop()
            return
        self.way_hits[pos] += 1
        del stack[pos]
        stack.insert(0, line_addr)

    def utility(self, ways: int) -> int:
        """Hits this kernel would capture with ``ways`` ways."""
        return sum(self.way_hits[:ways])

    def decay(self, factor: int = 2) -> None:
        self.way_hits = [h // factor for h in self.way_hits]
        self.misses //= factor


def lookahead_partition(utilities: Sequence[Sequence[int]], total_ways: int,
                        min_ways: int = 1) -> List[int]:
    """UCP's lookahead allocation (Qureshi & Patt, Algorithm 2).

    ``utilities[k][w-1]`` is the hit count kernel ``k`` achieves with
    ``w`` ways.  Every kernel gets at least ``min_ways`` (a kernel must
    be able to allocate lines for outstanding misses).  Remaining ways
    go, step by step, to the kernel with the highest *maximum marginal
    utility per way* over any number of additional ways — the
    "lookahead" that handles utility curves with plateaus (hits
    concentrated at deep stack positions).
    """
    num_kernels = len(utilities)
    if num_kernels * min_ways > total_ways:
        raise ValueError("not enough ways for the minimum allocation")
    alloc = [min_ways] * num_kernels
    remaining = total_ways - num_kernels * min_ways

    def utility(k: int, w: int) -> int:
        if w <= 0:
            return 0
        curve = utilities[k]
        return curve[min(w, len(curve)) - 1]

    def best_step(k: int, budget: int):
        """(max marginal utility per way, ways to take) for kernel k."""
        here = utility(k, alloc[k])
        best_mu, best_ways = -1.0, 0
        for extra in range(1, budget + 1):
            gain = utility(k, alloc[k] + extra) - here
            mu = gain / extra
            if mu > best_mu:
                best_mu, best_ways = mu, extra
        return best_mu, best_ways

    while remaining > 0:
        # Ties go to the kernel holding fewer ways so equal-utility
        # kernels split the cache evenly.
        choices = [(best_step(k, remaining), -alloc[k], k)
                   for k in range(num_kernels)]
        (mu, ways), _, winner = max(choices)
        if ways <= 0 or mu <= 0:
            # No kernel benefits: hand out the rest evenly.
            winner = min(range(num_kernels), key=lambda k: alloc[k])
            ways = 1
        alloc[winner] += ways
        remaining -= ways
    return alloc


class UCPController:
    """Per-SM UCP: shadow tags per kernel + periodic repartitioning."""

    def __init__(self, num_kernels: int, l1_tags: SetAssocCache,
                 interval: int = 5000):
        if num_kernels < 2:
            raise ValueError("partitioning needs at least two kernels")
        self.num_kernels = num_kernels
        self.l1_tags = l1_tags
        self.interval = interval
        self.shadow = [ShadowTagArray(l1_tags.config) for _ in range(num_kernels)]
        self._next_repartition = interval
        self.partitions_applied = 0

    def observe(self, kernel: int, line_addr: int) -> None:
        """Feed every L1D read access into the kernel's ATD."""
        self.shadow[kernel].access(line_addr)

    def tick(self, cycle: int) -> None:
        if cycle < self._next_repartition:
            return
        self._next_repartition = cycle + self.interval
        utilities = [
            [atd.utility(w + 1) for w in range(atd.assoc)] for atd in self.shadow
        ]
        alloc = lookahead_partition(utilities, self.l1_tags.assoc)
        self.l1_tags.partition = {k: ways for k, ways in enumerate(alloc)}
        self.partitions_applied += 1
        for atd in self.shadow:
            atd.decay()

    def current_partition(self) -> Dict[int, int]:
        return dict(self.l1_tags.partition or {})
