"""The paper's primary contribution: balanced memory-request issuing
(BMI: RBMI/QBMI, §3.2), memory instruction limiting (MIL: SMIL/DMIL
with the MILG generator, §3.3), and the UCP L1D cache-partitioning
comparison point (§3.1)."""

from repro.core.bmi import (
    MemIssuePolicy,
    QuotaBMI,
    ReqPerMinstEstimator,
    RoundRobinBMI,
    UnmanagedIssue,
    compute_quotas,
)
from repro.core.mil import MILG, DynamicLimiter, MemInstLimiter, NoLimit, StaticLimiter
from repro.core.cache_partition import ShadowTagArray, UCPController, lookahead_partition
from repro.core.arbiter import SchemeBundle, SchemeConfig, SMKQuotaGate

__all__ = [
    "MemIssuePolicy",
    "UnmanagedIssue",
    "RoundRobinBMI",
    "QuotaBMI",
    "ReqPerMinstEstimator",
    "compute_quotas",
    "MILG",
    "MemInstLimiter",
    "NoLimit",
    "StaticLimiter",
    "DynamicLimiter",
    "ShadowTagArray",
    "UCPController",
    "lookahead_partition",
    "SchemeBundle",
    "SchemeConfig",
    "SMKQuotaGate",
]
