"""MIL — Memory Instruction Limiting (paper §3.3).

Limiting the number of in-flight memory instructions a kernel may have
reduces the pressure on cache-miss-related resources (line slots,
MSHRs, miss-queue entries), which (a) removes the memory pipeline
stalls that block *other* kernels sharing the SM, and (b) improves the
limited kernel's own L1D locality.

* :class:`StaticLimiter` (SMIL) applies fixed per-kernel caps — the
  offline sweep of Figure 9.
* :class:`DynamicLimiter` (DMIL) adapts the cap at runtime using one
  :class:`MILG` per kernel per SM (Figure 10): every
  ``window`` (=1024 in the paper) memory requests,

      limit = max(peak_inflight - (rsfails >> log2(window)), 1)

  i.e. shrink the cap by the observed reservation failures *per
  request*.  The insight is to converge on a near-stall-free memory
  pipeline (at most ~1 reservation failure per request) while always
  permitting at least one in-flight memory instruction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: ceiling for the adaptive limit — the 7-bit in-flight counter
#: (at most 128 instructions can access the L1D concurrently, §4.4).
MAX_LIMIT = 128


class MILG:
    """Memory-Instruction-Limiting-number Generator (Figure 10).

    Hardware-wise this is a peak in-flight counter, a reservation-
    failure counter, a request counter, and a right shifter; see
    :func:`hardware_cost`.
    """

    def __init__(self, window: int = 1024, recovery: bool = True):
        if window < 2 or window & (window - 1):
            raise ValueError("window must be a power of two >= 2")
        self.window = window
        self.shift = window.bit_length() - 1
        #: probe the limit back up after stall-free windows (see
        #: _recompute); False gives the paper's literal one-way rule.
        self.recovery = recovery
        self._peak_inflight = 0
        self._rsfails = 0
        self._requests = 0
        #: None means unlimited (before the first window completes).
        self.limit: Optional[int] = None
        self.windows_completed = 0
        #: observability collector + (sm, kernel) key, wired by
        #: ``Observability.attach`` (None = zero-cost sentinel check).
        self._obs = None
        self._obs_key = None
        #: window-boundary hook (wired by the SM to the engine's event
        #: wheel): fired whenever a 1024-request window completes and
        #: the limit is recomputed, so the cycle leap re-evaluates
        #: issue eligibility at the next cycle.  None = no listener.
        self.on_window = None

    def observe_inflight(self, inflight: int) -> None:
        if inflight > self._peak_inflight:
            self._peak_inflight = inflight

    def note_rsfail(self) -> None:
        self._rsfails += 1

    def note_request(self, current_inflight: int) -> None:
        self._requests += 1
        if self._requests >= self.window:
            self._recompute(current_inflight)

    def _recompute(self, current_inflight: int) -> None:
        # Capture the pre-update state for the adaptation event log
        # before the window counters are reset below.
        old_limit = self.limit
        window_rsfails = self._rsfails
        fails_per_request = self._rsfails >> self.shift
        if fails_per_request >= 1:
            self.limit = max(self._peak_inflight - fails_per_request, 1)
        elif self.recovery and self.limit is not None:
            # The pipeline ran (near) stall-free this window: probe one
            # step back up.  Without this the cap can only ratchet
            # down — peak in-flight is itself bounded by the cap — and
            # a kernel throttled to 1 could never recover after a
            # co-runner phase change (the adaptivity §3.3.2 claims).
            self.limit = min(self.limit + 1, MAX_LIMIT)
        self.windows_completed += 1
        self._peak_inflight = current_inflight
        self._rsfails = 0
        self._requests = 0
        if self._obs is not None:
            self._obs.mil_update(self._obs_key, old_limit, self.limit,
                                 window_rsfails, self.windows_completed)
        if self.on_window is not None:
            self.on_window()

    @staticmethod
    def hardware_cost() -> Dict[str, int]:
        """§4.4 per-MILG storage: 7-bit in-flight counter (≤128
        concurrent L1D accesses), 12-bit reservation-failure counter,
        10-bit request counter; the 10-bit right shifter is wires."""
        return {
            "inflight_counter_bits": 7,
            "rsfail_counter_bits": 12,
            "request_counter_bits": 10,
            "shifter_bits": 0,  # wiring only
        }


class MemInstLimiter:
    """Interface consumed by the SM's issue logic."""

    def can_issue(self, kernel: int, inflight: int) -> bool:
        raise NotImplementedError

    def note_request(self, kernel: int, current_inflight: int) -> None:
        """A memory request was issued to the L1D by ``kernel``."""

    def note_rsfail(self, kernel: int) -> None:
        """A reservation failure was charged while serving ``kernel``."""

    def observe_inflight(self, kernel: int, inflight: int) -> None:
        """Sample the kernel's current in-flight memory instructions."""

    def limits(self) -> List[Optional[int]]:
        """Current per-kernel caps (None = unlimited)."""
        raise NotImplementedError


class NoLimit(MemInstLimiter):
    """Baseline: unlimited in-flight memory instructions."""

    def __init__(self, num_kernels: int):
        self.num_kernels = num_kernels

    def can_issue(self, kernel: int, inflight: int) -> bool:
        return True

    def limits(self) -> List[Optional[int]]:
        return [None] * self.num_kernels


class StaticLimiter(MemInstLimiter):
    """SMIL: fixed per-kernel caps (``None`` entries are unlimited)."""

    def __init__(self, limits: Sequence[Optional[int]]):
        for lim in limits:
            if lim is not None and lim < 1:
                raise ValueError("limits must be >= 1 or None")
        self._limits = list(limits)

    def can_issue(self, kernel: int, inflight: int) -> bool:
        limit = self._limits[kernel]
        return limit is None or inflight < limit

    def limits(self) -> List[Optional[int]]:
        return list(self._limits)


class DynamicLimiter(MemInstLimiter):
    """DMIL: one MILG per kernel (local DMIL — per SM, §3.3.2)."""

    def __init__(self, num_kernels: int, window: int = 1024,
                 recovery: bool = True):
        self.milgs = [MILG(window, recovery) for _ in range(num_kernels)]

    def can_issue(self, kernel: int, inflight: int) -> bool:
        limit = self.milgs[kernel].limit
        return limit is None or inflight < limit

    def note_request(self, kernel: int, current_inflight: int) -> None:
        self.milgs[kernel].note_request(current_inflight)

    def note_rsfail(self, kernel: int) -> None:
        self.milgs[kernel].note_rsfail()

    def observe_inflight(self, kernel: int, inflight: int) -> None:
        self.milgs[kernel].observe_inflight(inflight)

    def limits(self) -> List[Optional[int]]:
        return [m.limit for m in self.milgs]


class GlobalLimiterView(MemInstLimiter):
    """One SM's view of a *global* DMIL (§3.3.2).

    Global DMIL deploys a single MILG set fed by one monitor SM and
    broadcasts the generated limits to every SM — cheaper hardware,
    but it requires all SMs to run the same kernel mix.  Non-monitor
    SMs consult the shared limits but do not feed the counters.
    """

    def __init__(self, shared: DynamicLimiter, is_monitor: bool):
        self.shared = shared
        self.is_monitor = is_monitor

    def can_issue(self, kernel: int, inflight: int) -> bool:
        return self.shared.can_issue(kernel, inflight)

    def note_request(self, kernel: int, current_inflight: int) -> None:
        if self.is_monitor:
            self.shared.note_request(kernel, current_inflight)

    def note_rsfail(self, kernel: int) -> None:
        if self.is_monitor:
            self.shared.note_rsfail(kernel)

    def observe_inflight(self, kernel: int, inflight: int) -> None:
        if self.is_monitor:
            self.shared.observe_inflight(kernel, inflight)

    def limits(self) -> List[Optional[int]]:
        return self.shared.limits()
