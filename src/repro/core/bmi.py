"""BMI — Balanced Memory-request Issuing (paper §3.2).

When concurrent kernels share one SM's memory pipeline, the kernel
with more memory instructions monopolises the LSU and the other kernel
starves (Figure 6).  BMI arbitrates the single per-cycle memory-
instruction issue slot between kernels:

* :class:`RoundRobinBMI` (RBMI) — issue memory instructions from
  kernels in a loose round-robin.  Loose means a kernel's turn is not
  wasted when it has nothing to issue: another kernel may go, and the
  turn advances.
* :class:`QuotaBMI` (QBMI) — because one memory instruction expands to
  ``Req/Minst`` requests and kernels differ widely in coalescing
  degree (Table 2: 1–17), round-robin over *instructions* does not
  balance *requests*.  QBMI assigns each kernel a quota
  ``LCM(r_1..r_K) / r_i`` of memory instructions, where ``r_i`` is the
  kernel's measured ``Req/Minst`` (updated every ``sample_window``
  requests).  The kernel with the largest remaining quota has issue
  priority; each issue decrements its quota; when any kernel's quota
  reaches zero a fresh quota set — recomputed from the latest
  ``Req/Minst`` — is *added* to all kernels' remaining quotas, so a
  zero-quota kernel is never starved while others are idle
  (Figure 7's workflow).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

#: cap on the Req/Minst estimate fed into the LCM (keeps quotas bounded
#: even for degenerate coalescing; Table 2's maximum is 17).
MAX_REQ_PER_MINST = 32


class ReqPerMinstEstimator:
    """Hardware-style running estimate of one kernel's ``Req/Minst``.

    The estimate is refreshed every ``window`` memory requests issued
    by the kernel (paper: 1024), matching the observation that the
    metric is stable throughout a kernel's execution (§3.2).
    """

    def __init__(self, window: int = 1024):
        if window < 1:
            raise ValueError("window must be positive")
        self.window = window
        self._minsts = 0
        self._reqs = 0
        self._estimate = 1
        #: window-boundary hook (wired by the SM to the engine's event
        #: wheel); fired when the estimate is refreshed.  None = no
        #: listener.
        self.on_window = None

    def note_mem_inst(self) -> None:
        self._minsts += 1

    def note_request(self) -> None:
        self._reqs += 1
        if self._reqs >= self.window:
            self._refresh()

    def _refresh(self) -> None:
        if self._minsts:
            raw = round(self._reqs / self._minsts)
            self._estimate = max(1, min(MAX_REQ_PER_MINST, raw))
        self._minsts = 0
        self._reqs = 0
        if self.on_window is not None:
            self.on_window()

    @property
    def value(self) -> int:
        if self._minsts >= 8:
            # Early in execution, use the running partial ratio.
            raw = round(self._reqs / self._minsts)
            return max(1, min(MAX_REQ_PER_MINST, raw))
        return self._estimate


def compute_quotas(req_per_minst: Sequence[int]) -> List[int]:
    """Quota_i = LCM(r_1..r_K) / r_i (paper §3.2 formula).

    Higher ``Req/Minst`` ⇒ lower quota, so every kernel is granted the
    same number of memory *requests* per quota round.
    """
    rates = [max(1, min(MAX_REQ_PER_MINST, int(r))) for r in req_per_minst]
    if not rates:
        raise ValueError("need at least one kernel")
    lcm = math.lcm(*rates)
    return [lcm // r for r in rates]


class MemIssuePolicy:
    """Interface: choose which kernel wins the cycle's memory-issue slot."""

    def pick(self, candidate_kernels: Sequence[int]) -> int:
        """Return the index (into ``candidate_kernels``) of the winner."""
        raise NotImplementedError

    def note_mem_inst(self, kernel: int) -> None:
        """A memory instruction issued from ``kernel``."""

    def note_request(self, kernel: int) -> None:
        """A memory request (post-coalescing) issued from ``kernel``."""


class UnmanagedIssue(MemIssuePolicy):
    """Baseline: no dedicated management — the first proposing
    scheduler wins (scheduler priority rotates at the SM level), so
    memory-intensive kernels win in proportion to their ready memory
    warps, reproducing the starvation of §2.5."""

    def pick(self, candidate_kernels: Sequence[int]) -> int:
        return 0


class RoundRobinBMI(MemIssuePolicy):
    """RBMI: loose round-robin over kernel slots."""

    def __init__(self, num_kernels: int):
        if num_kernels < 1:
            raise ValueError("need at least one kernel")
        self.num_kernels = num_kernels
        self._turn = 0

    def pick(self, candidate_kernels: Sequence[int]) -> int:
        # Prefer the turn-holder; otherwise the next kernel after the
        # turn-holder that is actually proposing (loose round-robin).
        for offset in range(self.num_kernels):
            kernel = (self._turn + offset) % self.num_kernels
            if kernel in candidate_kernels:
                self._turn = (kernel + 1) % self.num_kernels
                return candidate_kernels.index(kernel)
        return 0

    @staticmethod
    def hardware_cost(num_kernels: int) -> Dict[str, int]:
        return {"turn_pointer_bits": max(1, (num_kernels - 1).bit_length())}


class QuotaBMI(MemIssuePolicy):
    """QBMI: quota-based priority (Figure 7 workflow)."""

    def __init__(self, num_kernels: int, window: int = 1024,
                 initial_req_per_minst: Optional[Sequence[int]] = None):
        if num_kernels < 1:
            raise ValueError("need at least one kernel")
        self.num_kernels = num_kernels
        self.estimators = [ReqPerMinstEstimator(window) for _ in range(num_kernels)]
        if initial_req_per_minst is not None:
            if len(initial_req_per_minst) != num_kernels:
                raise ValueError("one initial Req/Minst per kernel required")
            for est, r in zip(self.estimators, initial_req_per_minst):
                est._estimate = max(1, min(MAX_REQ_PER_MINST, int(r)))
        self.quotas: List[int] = [0] * num_kernels
        #: observability collector + SM id, wired by
        #: ``Observability.attach`` (set before the initial replenish
        #: below so the sentinel check is always valid).
        self._obs = None
        self._obs_key = 0
        #: window-boundary hook (wired by the SM to the engine's event
        #: wheel); fired on every quota replenish.  Set before the
        #: initial replenish so the sentinel check is always valid.
        self.on_window = None
        self._replenish()

    def _replenish(self) -> None:
        estimates = [est.value for est in self.estimators]
        fresh = compute_quotas(estimates)
        old_quotas = self.quotas
        if self._obs is not None:
            old_quotas = list(old_quotas)
        for i, quota in enumerate(fresh):
            self.quotas[i] += quota
        if self._obs is not None:
            self._obs.qbmi_replenish(self._obs_key, old_quotas,
                                     self.quotas, estimates)
        if self.on_window is not None:
            self.on_window()

    def pick(self, candidate_kernels: Sequence[int]) -> int:
        best_idx = max(range(len(candidate_kernels)),
                       key=lambda i: self.quotas[candidate_kernels[i]])
        winner = candidate_kernels[best_idx]
        self.quotas[winner] -= 1
        if self.quotas[winner] <= 0:
            self._replenish()
        return best_idx

    def note_mem_inst(self, kernel: int) -> None:
        self.estimators[kernel].note_mem_inst()

    def note_request(self, kernel: int) -> None:
        self.estimators[kernel].note_request()

    @staticmethod
    def hardware_cost(num_kernels: int) -> Dict[str, int]:
        """§4.4: one extra 10-bit memory instruction counter per kernel
        plus quota arithmetic, on top of the MILG counters."""
        return {
            "mem_inst_counter_bits": 10 * num_kernels,
            "request_counter_bits": 10 * num_kernels,
            "quota_register_bits": 16 * num_kernels,
        }
