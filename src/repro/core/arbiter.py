"""Scheme composition: what runs inside each SM for a given experiment.

A :class:`SchemeConfig` names the mechanism stack —

* memory-issue balancing (``bmi``: none / rbmi / qbmi, §3.2),
* in-flight memory instruction limiting (``mil``: none / smil / dmil,
  §3.3, with ``smil_limits`` for the static variant),
* UCP L1D way partitioning (``ucp``, §3.1),
* SMK's warp-instruction quota gate (``smk_quotas``, the "+W" part of
  SMK-(P+W) [45]) —

and :meth:`SchemeConfig.build` instantiates the per-SM state bundle
(:class:`SchemeBundle`) the SM consults at issue time.  TB partitioning
(Warped-Slicer / SMK-P / spatial / leftover) is decided *before* the
run by :mod:`repro.cke` and enters the engine as per-kernel TB limits,
so any TB partitioner composes with any scheme stack, as in the
paper's evaluation matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.bmi import MemIssuePolicy, QuotaBMI, RoundRobinBMI, UnmanagedIssue
from repro.core.cache_partition import UCPController
from repro.core.mil import (
    DynamicLimiter,
    GlobalLimiterView,
    MemInstLimiter,
    NoLimit,
    StaticLimiter,
)

BMI_CHOICES = ("none", "rbmi", "qbmi")
MIL_CHOICES = ("none", "smil", "dmil", "gdmil")


class SMKQuotaGate:
    """SMK-(P+W)'s periodic warp-instruction quota [45].

    Each kernel receives a quota of warp instructions per epoch
    (proportional to its isolated IPC, from offline profiling); a
    kernel that exhausts its quota stops issuing *any* instruction
    until every resident kernel's quota reaches zero, whereupon all
    quotas are re-armed.
    """

    def __init__(self, quotas: Sequence[int]):
        if not quotas or any(q < 1 for q in quotas):
            raise ValueError("quotas must be positive")
        self._initial = list(quotas)
        self.remaining = list(quotas)
        self.epochs = 0

    def can_issue(self, kernel: int) -> bool:
        return self.remaining[kernel] > 0

    def note_issue(self, kernel: int) -> None:
        if self.remaining[kernel] > 0:
            self.remaining[kernel] -= 1

    def maybe_reset(self, resident_kernels: Sequence[int]) -> None:
        """Re-arm once every *resident* kernel has drained its quota
        (kernels with no warps on this SM cannot drain and are
        ignored, preventing livelock)."""
        if all(self.remaining[k] <= 0 for k in resident_kernels):
            self.remaining = list(self._initial)
            self.epochs += 1


@dataclass(frozen=True)
class SchemeConfig:
    """Declarative description of the intra-SM mechanism stack."""

    bmi: str = "none"
    mil: str = "none"
    #: per-kernel static caps for SMIL (None entry = unlimited).
    smil_limits: Optional[Tuple[Optional[int], ...]] = None
    ucp: bool = False
    ucp_interval: int = 5000
    #: per-kernel warp-instruction quotas per epoch (SMK-(P+W)).
    smk_quotas: Optional[Tuple[int, ...]] = None
    #: sampling window (memory requests) for QBMI/DMIL; None uses the
    #: GPUConfig value.
    sample_window: Optional[int] = None
    #: initial Req/Minst hints for QBMI (None = learn from scratch).
    qbmi_init_req_per_minst: Optional[Tuple[int, ...]] = None
    #: allow MILG to probe its limit back up after stall-free windows;
    #: False is the paper's literal one-way formula (ablation knob).
    dmil_recovery: bool = True
    #: per-kernel L1D read bypassing (§4.5 discussion): True entries
    #: send that kernel's loads straight to L2, skipping L1 lookup,
    #: allocation and MSHRs.
    l1d_bypass: Optional[Tuple[bool, ...]] = None

    def __post_init__(self) -> None:
        if self.bmi not in BMI_CHOICES:
            raise ValueError(f"bmi must be one of {BMI_CHOICES}, got {self.bmi!r}")
        if self.mil not in MIL_CHOICES:
            raise ValueError(f"mil must be one of {MIL_CHOICES}, got {self.mil!r}")
        if self.mil == "smil" and self.smil_limits is None:
            raise ValueError("smil requires smil_limits")

    def describe(self) -> str:
        parts = []
        if self.bmi != "none":
            parts.append(self.bmi.upper())
        if self.mil == "smil":
            limits = ",".join("Inf" if l is None else str(l)
                              for l in (self.smil_limits or ()))
            parts.append(f"SMIL({limits})")
        elif self.mil == "dmil":
            parts.append("DMIL")
        elif self.mil == "gdmil":
            parts.append("GlobalDMIL")
        if self.ucp:
            parts.append("UCP")
        if self.l1d_bypass:
            flags = ",".join("1" if b else "0" for b in self.l1d_bypass)
            parts.append(f"Bypass({flags})")
        if self.smk_quotas:
            parts.append("SMK-W")
        return "+".join(parts) if parts else "baseline"

    def build(self, num_kernels: int, gpu_config, l1_tags,
              shared: Optional[dict] = None,
              sm_id: int = 0) -> "SchemeBundle":
        """Instantiate per-SM scheme state.

        ``shared`` is a dict living at GPU scope for mechanisms with
        cross-SM state (global DMIL); ``sm_id`` identifies the SM so
        SM 0 can act as the monitor.
        """
        window = self.sample_window or gpu_config.sample_window

        if self.bmi == "rbmi":
            policy: MemIssuePolicy = RoundRobinBMI(num_kernels)
        elif self.bmi == "qbmi":
            policy = QuotaBMI(num_kernels, window,
                              self.qbmi_init_req_per_minst)
        else:
            policy = UnmanagedIssue()

        if self.mil == "smil":
            limits = self.smil_limits
            assert limits is not None
            if len(limits) != num_kernels:
                raise ValueError("one SMIL limit per kernel required")
            limiter: MemInstLimiter = StaticLimiter(limits)
        elif self.mil == "dmil":
            limiter = DynamicLimiter(num_kernels, window, self.dmil_recovery)
        elif self.mil == "gdmil":
            if shared is None:
                shared = {}
            core = shared.setdefault(
                "gdmil", DynamicLimiter(num_kernels, window, self.dmil_recovery))
            limiter = GlobalLimiterView(core, is_monitor=(sm_id == 0))
        else:
            limiter = NoLimit(num_kernels)

        ucp = (UCPController(num_kernels, l1_tags, self.ucp_interval)
               if self.ucp and num_kernels >= 2 else None)

        gate = None
        if self.smk_quotas is not None:
            if len(self.smk_quotas) != num_kernels:
                raise ValueError("one SMK quota per kernel required")
            gate = SMKQuotaGate(self.smk_quotas)

        bypass = self.l1d_bypass
        if bypass is not None and len(bypass) != num_kernels:
            raise ValueError("one bypass flag per kernel required")
        return SchemeBundle(policy, limiter, ucp, gate, bypass)


class SchemeBundle:
    """Per-SM instances of the configured mechanisms."""

    def __init__(self, mem_policy: MemIssuePolicy, limiter: MemInstLimiter,
                 ucp: Optional[UCPController], smk_gate: Optional[SMKQuotaGate],
                 l1d_bypass: Optional[Tuple[bool, ...]] = None):
        self.mem_policy = mem_policy
        self.limiter = limiter
        self.ucp = ucp
        self.smk_gate = smk_gate
        self.l1d_bypass = l1d_bypass

    def bypasses_l1d(self, kernel: int) -> bool:
        return bool(self.l1d_bypass) and self.l1d_bypass[kernel]
