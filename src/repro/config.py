"""Architecture configuration for the simulated GPU (paper Table 1).

Two configurations are provided:

* :data:`MAXWELL_CONFIG` — the paper's Maxwell-like baseline (Table 1):
  16 SMs, 4 GTO warp schedulers per SM, 24KB 6-way L1D, 128 MSHRs,
  2MB L2, 16-channel DRAM.
* :func:`scaled_config` — a proportionally scaled-down configuration
  used by the experiment harness so that a pure-Python cycle-level
  simulation finishes in seconds rather than hours.  The scaling
  preserves the ratios that drive the paper's phenomena (warps per
  scheduler, MSHRs per warp, cache lines per warp, DRAM bandwidth per
  SM) — see DESIGN.md §2.

All cycle counts are in SM core cycles (the paper clocks core,
interconnect and L2 at the same 1.4 GHz; DRAM timing is folded into the
service-rate model in :mod:`repro.mem.dram`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and miss-handling resources of one cache.

    ``lines = size_bytes // line_size`` and ``sets = lines // assoc``;
    construction validates divisibility so a typo cannot silently build
    a different cache than intended.
    """

    size_bytes: int
    line_size: int
    assoc: int
    mshrs: int
    miss_queue: int
    hit_latency: int = 1
    #: write-evict/write-no-allocate (L1D) if False, write-back/
    #: write-allocate (L2) if True.
    write_allocate: bool = False
    #: xor-index the set bits with higher address bits (Table 1).
    xor_index: bool = True
    #: maximum outstanding misses a single MSHR entry can merge.
    mshr_merge: int = 8

    def __post_init__(self) -> None:
        if self.size_bytes % self.line_size:
            raise ValueError("cache size must be a multiple of line size")
        lines = self.size_bytes // self.line_size
        if lines % self.assoc:
            raise ValueError("line count must be a multiple of associativity")
        if self.assoc < 1 or self.mshrs < 1 or self.miss_queue < 1:
            raise ValueError("assoc, mshrs and miss_queue must be positive")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.assoc


@dataclass(frozen=True)
class GPUConfig:
    """Full-GPU configuration (paper Table 1 plus simulation knobs)."""

    num_sms: int = 16
    warp_size: int = 32
    schedulers_per_sm: int = 4
    #: warp scheduling policy: "gto" (Greedy-Then-Oldest, Table 1
    #: default) or "lrr" (Loose Round-Robin, used in §4.3).
    scheduler_policy: str = "gto"

    # Per-SM static resource limits (Table 1).
    max_threads_per_sm: int = 3072
    max_warps_per_sm: int = 96
    max_tbs_per_sm: int = 16
    registers_per_sm: int = 65536
    smem_per_sm: int = 98304  # 96KB

    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=24 * 1024, line_size=128, assoc=6,
            mshrs=128, miss_queue=32,
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=2048 * 1024, line_size=128, assoc=16,
            mshrs=128, miss_queue=64, hit_latency=30,
            write_allocate=True,
        )
    )

    # Interconnect: one-way latency in cycles and flits-per-cycle
    # aggregate bandwidth each direction (16x16 crossbar, 32B flits).
    icnt_latency: int = 12
    icnt_flits_per_cycle: int = 16

    # DRAM: channel count and per-channel service model.
    dram_channels: int = 16
    dram_latency: int = 120
    #: cycles a channel is busy per request that hits the open row.
    dram_row_hit_cycles: int = 4
    #: cycles per request that must open a new row.
    dram_row_miss_cycles: int = 12
    #: lines per DRAM row (row-buffer locality granularity).
    dram_row_lines: int = 32

    # Execution unit latencies / widths.
    alu_latency: int = 6
    sfu_latency: int = 16
    alu_units: int = 4
    sfu_units: int = 1
    lsu_units: int = 1
    #: L1D requests the LSU can process per cycle (the L1 is banked;
    #: coalesced requests to distinct banks proceed in parallel).
    lsu_width: int = 4

    #: maximum independent instructions a warp may issue past an
    #: outstanding load before blocking (simple MLP model).
    warp_mlp: int = 2

    #: MILG / QBMI sampling window in memory requests (paper: 1024).
    sample_window: int = 1024

    def __post_init__(self) -> None:
        if self.scheduler_policy not in ("gto", "lrr"):
            raise ValueError(f"unknown scheduler policy {self.scheduler_policy!r}")
        if self.max_warps_per_sm * self.warp_size < self.max_threads_per_sm:
            raise ValueError("warp limit inconsistent with thread limit")
        if self.num_sms < 1:
            raise ValueError("need at least one SM")

    @property
    def warps_per_scheduler(self) -> int:
        return self.max_warps_per_sm // self.schedulers_per_sm

    def replace(self, **kwargs) -> "GPUConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


#: The paper's Table 1 baseline.
MAXWELL_CONFIG = GPUConfig()


def scaled_config(
    num_sms: int = 2,
    scheduler_policy: str = "gto",
    l1d_kb: int = 12,
    sample_window: int = 256,
) -> GPUConfig:
    """Scaled-down configuration used by tests, examples and benches.

    The per-SM ratios of the Table 1 machine are preserved at roughly
    1/6 scale: 16 warps/SM (4 per scheduler), 8 TB slots, a ``l1d_kb``
    KB 4-way L1D with 24 MSHRs, and a DRAM/interconnect bandwidth
    scaled to the SM count so that memory-intensive kernels saturate
    the miss-handling resources exactly as in the paper.

    ``l1d_kb`` scales the L1D (12 ≈ paper 24KB, 24 ≈ 48KB, 48 ≈ 96KB
    for the §4.3 sensitivity study).
    """
    l1d = CacheConfig(
        size_bytes=l1d_kb * 1024, line_size=128, assoc=4,
        mshrs=48, miss_queue=12,
    )
    l2 = CacheConfig(
        size_bytes=64 * 1024 * max(1, num_sms), line_size=128, assoc=8,
        mshrs=64, miss_queue=16, hit_latency=8, write_allocate=True,
    )
    return GPUConfig(
        num_sms=num_sms,
        schedulers_per_sm=4,
        scheduler_policy=scheduler_policy,
        max_threads_per_sm=512,
        max_warps_per_sm=16,
        max_tbs_per_sm=8,
        registers_per_sm=16384,
        smem_per_sm=16384,
        l1d=l1d,
        l2=l2,
        icnt_latency=4,
        icnt_flits_per_cycle=4 * max(1, num_sms),
        dram_channels=2 * max(1, num_sms),
        dram_latency=40,
        dram_row_hit_cycles=3,
        dram_row_miss_cycles=9,
        sample_window=sample_window,
    )
