"""Phase telemetry: interval time-series sampling + the mechanism-
adaptation event log.

The paper's two mechanisms are *adaptive* — DMIL's MILG recomputes each
kernel's in-flight cap every 1024 memory requests and QBMI re-derives
quotas from each kernel's windowed ``Req/Minst`` on the same cadence —
so end-of-run aggregates hide exactly the convergence/oscillation
dynamics that justify the designs.  :class:`PhaseSampler` records, every
``interval`` cycles (default 256), flat-array series per SM and per
co-running kernel:

* per-kernel IPC and issue-slot stall mix (*deltas* of the PR-2
  taxonomy, so the per-interval counts sum exactly to the aggregate
  :class:`~repro.obs.stalls.StallTable`);
* per-kernel LSU stall reasons and windowed L1D miss rate;
* per-kernel in-flight memory instructions vs. the live DMIL cap, the
  QBMI quota and the windowed ``Req/Minst`` estimate (monitor-SM view);
* per-SM IPC, MSHR occupancy and miss-queue occupancy;
* DRAM bandwidth utilisation (serviced requests per channel-cycle).

Alongside the series, :meth:`PhaseSampler.log_adapt` accumulates one
:class:`AdaptEvent` per mechanism update — every MILG recompute and
every QBMI quota replenish — as ``(cycle, kernel, old -> new value,
window rsfail count, Req/Minst)``.

The sampler is *pull-based*: it consumes the hook-fed stall tables and
the simulator's pull statistics at interval boundaries, never feeding
anything back into the simulation, so sampler-on runs are bit-identical
to sampler-off runs (asserted in ``tests/test_timeline.py``).  Records
built by :meth:`PhaseSampler.snapshot` are plain JSON-safe dicts that
pickle across ``run_jobs`` workers and merge by list concatenation on
:class:`~repro.obs.collector.ObsReport` (trivially associative).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.stalls import (
    ISSUED,
    KERNEL_NONE,
    LSU_STALL_REASONS,
    SCHED_STALL_REASONS,
)

#: default sampling interval in core cycles.
DEFAULT_PHASE_INTERVAL = 256

#: bump when the phase-record schema changes (see ``docs/TELEMETRY.md``).
PHASE_RECORD_VERSION = 1

#: mechanism labels for the adaptation event log (the ``log_adapt``
#: taxonomy — machine-checked by REPRO-S002).
ADAPT_MIL = "mil"
ADAPT_QBMI = "qbmi"
ADAPT_MECHANISMS: Tuple[str, ...] = (ADAPT_MIL, ADAPT_QBMI)

#: declared registry leaves under a ``phase.`` segment (REPRO-S001).
PHASE_REGISTRY_LEAVES: Tuple[str, ...] = ("interval", "samples")
#: declared registry leaves under an ``adapt.`` segment (REPRO-S001).
ADAPT_REGISTRY_LEAVES: Tuple[str, ...] = ("mil_events", "qbmi_events")

#: every scheduler issue-slot outcome the stall-mix series cover.
PHASE_SCHED_OUTCOMES: Tuple[str, ...] = (ISSUED,) + SCHED_STALL_REASONS


@dataclass(frozen=True)
class AdaptEvent:
    """One mechanism adaptation: a MILG limit recompute or one kernel's
    share of a QBMI quota replenish.

    ``old``/``new`` are the in-flight limit (``None`` = unlimited)
    for :data:`ADAPT_MIL`, or the remaining quota for
    :data:`ADAPT_QBMI`.  ``rsfails`` is the window's reservation-failure
    count (MIL only); ``req_per_minst`` the windowed estimate feeding
    the quota formula (QBMI only)."""

    cycle: int
    sm_id: int
    kernel: int
    mechanism: str
    old: Optional[int]
    new: Optional[int]
    rsfails: int = 0
    req_per_minst: Optional[int] = None

    def to_list(self) -> List[object]:
        """JSON-safe flat form (the order is part of the record schema)."""
        return [self.cycle, self.sm_id, self.kernel, self.mechanism,
                self.old, self.new, self.rsfails, self.req_per_minst]

    @classmethod
    def from_list(cls, row: Sequence[object]) -> "AdaptEvent":
        cycle, sm_id, kernel, mechanism, old, new, rsfails, rpm = row
        return cls(cycle, sm_id, kernel, mechanism, old, new, rsfails, rpm)


def adapt_events_from_record(record: Dict[str, object]) -> List[AdaptEvent]:
    """Rehydrate a phase record's event rows into :class:`AdaptEvent`."""
    return [AdaptEvent.from_list(row)
            for row in record.get("adapt_events", [])]


class PhaseSampler:
    """Windowed phase sampler for one observed run.

    Driven by the engine's reference cycle loop (one ``on_cycle`` call
    per simulated cycle); all reads are pull-based, so the sampler can
    never perturb simulation state.  ``snapshot`` is non-destructive —
    a partial tail interval is measured into the returned record
    without committing baselines, so mid-run reports stay exact and a
    later final report re-measures the (longer) tail correctly.
    """

    def __init__(self, interval: int = DEFAULT_PHASE_INTERVAL):
        if interval < 1:
            raise ValueError("phase interval must be positive")
        self.interval = interval
        #: dotted series name -> one value per completed interval.
        self.series: Dict[str, List[float]] = {}
        self.adapt_events: List[AdaptEvent] = []
        #: completed (committed) interval samples.
        self.samples = 0
        #: cycles covered by committed samples.
        self._covered = 0
        # Delta baselines, committed at each interval boundary.
        self._prev_insts: Dict[int, int] = {}
        self._prev_kr: Dict[Tuple[int, str], int] = {}
        self._prev_sm_issued: Dict[int, int] = {}
        self._prev_lsu: Dict[Tuple[int, str], int] = {}
        self._prev_l1: Dict[int, Tuple[int, int]] = {}
        self._prev_dram = 0

    # ------------------------------------------------------------------
    # event log (fed by the Observability hook methods)
    def log_adapt(self, mechanism: str, cycle: int, sm_id: int, kernel: int,
                  old: Optional[int], new: Optional[int], rsfails: int = 0,
                  req_per_minst: Optional[int] = None) -> None:
        """Record one mechanism adaptation (MILG recompute / QBMI
        replenish share) at the current simulation cycle."""
        self.adapt_events.append(AdaptEvent(
            cycle, sm_id, kernel, mechanism, old, new, rsfails,
            req_per_minst))

    def adapt_event_counts(self) -> Dict[str, int]:
        """Event totals per mechanism (registry fold + reports)."""
        counts = {mechanism: 0 for mechanism in ADAPT_MECHANISMS}
        for event in self.adapt_events:
            counts[event.mechanism] = counts.get(event.mechanism, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # sampling
    def on_cycle(self, cycle: int, gpu) -> None:
        """End-of-cycle hook from the engine's reference loop; commits
        one sample whenever an interval boundary completes."""
        upto = cycle + 1
        if upto % self.interval == 0:
            self._append(self._measure(upto, gpu, commit=True))

    def _append(self, row: Dict[str, float]) -> None:
        series = self.series
        for name, value in row.items():
            bucket = series.get(name)
            if bucket is None:
                series[name] = [value]
            else:
                bucket.append(value)

    def _measure(self, upto: int, gpu, commit: bool) -> Dict[str, float]:
        """One sample row covering cycles ``[_covered, upto)``.

        Stall-mix entries are deltas of the live
        :class:`~repro.obs.stalls.StallTable`, so summing a series over
        all rows (including the snapshot tail) reproduces the aggregate
        taxonomy exactly — the invariant the phase tests assert.
        """
        window = upto - self._covered
        row: Dict[str, float] = {
            "cycle": float(upto),
            "window": float(window),
        }
        stats = gpu.kernel_stats
        slots = sorted(stats)
        obs = gpu.obs

        # Scheduler issue-slot outcomes: per-(kernel, reason) and
        # per-SM issued totals from one pass over the live table.
        cur_kr: Dict[Tuple[int, str], int] = {}
        cur_sm: Dict[int, int] = {}
        for (sm_id, _sched, kernel, reason), v in obs.stalls.sched.items():
            key = (kernel, reason)
            cur_kr[key] = cur_kr.get(key, 0) + v
            if reason == ISSUED:
                cur_sm[sm_id] = cur_sm.get(sm_id, 0) + v
        prev_kr = self._prev_kr
        for reason in PHASE_SCHED_OUTCOMES:
            total = 0
            for kernel in slots:
                key = (kernel, reason)
                delta = cur_kr.get(key, 0) - prev_kr.get(key, 0)
                row[f"k{kernel}.issue.{reason}"] = float(delta)
                total += delta
            key = (KERNEL_NONE, reason)
            total += cur_kr.get(key, 0) - prev_kr.get(key, 0)
            row[f"issue.{reason}"] = float(total)

        # LSU stall reasons (per-cycle counts, windowed deltas).
        cur_lsu: Dict[Tuple[int, str], int] = {}
        for (_sm, kernel, reason), v in obs.stalls.lsu.items():
            key = (kernel, reason)
            cur_lsu[key] = cur_lsu.get(key, 0) + v
        prev_lsu = self._prev_lsu
        for reason in LSU_STALL_REASONS:
            for kernel in slots:
                key = (kernel, reason)
                row[f"k{kernel}.lsu.{reason}"] = float(
                    cur_lsu.get(key, 0) - prev_lsu.get(key, 0))

        # Per-kernel IPC over the window (machine-wide, like
        # RunResult.ipc) and windowed L1D miss rate.
        prev_insts = self._prev_insts
        for kernel in slots:
            delta = stats[kernel].warp_insts - prev_insts.get(kernel, 0)
            row[f"k{kernel}.ipc"] = delta / window if window else 0.0
        cur_l1: Dict[int, List[int]] = {kernel: [0, 0] for kernel in slots}
        for l1 in gpu.memory.l1s:
            l1_stats = l1.stats
            for kernel in slots:
                pair = cur_l1[kernel]
                pair[0] += l1_stats.accesses.get(kernel, 0)
                pair[1] += l1_stats.misses.get(kernel, 0)
        prev_l1 = self._prev_l1
        for kernel in slots:
            prev_acc, prev_miss = prev_l1.get(kernel, (0, 0))
            delta_acc = cur_l1[kernel][0] - prev_acc
            delta_miss = cur_l1[kernel][1] - prev_miss
            row[f"k{kernel}.l1d_miss_rate"] = (
                delta_miss / delta_acc if delta_acc else 0.0)

        # Per-SM occupancy gauges + per-SM IPC (issued slots/cycle).
        prev_sm = self._prev_sm_issued
        for sm in gpu.sms:
            sid = sm.sm_id
            delta = cur_sm.get(sid, 0) - prev_sm.get(sid, 0)
            row[f"sm{sid}.ipc"] = delta / window if window else 0.0
            row[f"sm{sid}.mshr"] = float(len(sm.l1.mshrs))
            row[f"sm{sid}.missq"] = float(len(sm.l1.miss_queue))

        # In-flight memory instructions vs. the live caps/quotas.
        # Limits and quotas are the monitor SM's (SM 0) view — exact
        # for global DMIL and per-SM QBMI on SM 0, representative for
        # local DMIL (documented in docs/TELEMETRY.md).
        inflight = {kernel: 0 for kernel in slots}
        for sm in gpu.sms:
            for kernel, kstate in sm.kstate.items():
                inflight[kernel] += kstate.inflight_minsts
        monitor = gpu.sms[0]
        limits = monitor.bundle.limiter.limits()
        policy = monitor.bundle.mem_policy
        quotas = getattr(policy, "quotas", None)
        estimators = getattr(policy, "estimators", None)
        for kernel in slots:
            row[f"k{kernel}.inflight"] = float(inflight[kernel])
            limit = limits[kernel] if kernel < len(limits) else None
            row[f"k{kernel}.mil_limit"] = (
                -1.0 if limit is None else float(limit))
            if quotas is not None:
                row[f"k{kernel}.quota"] = float(quotas[kernel])
            if estimators is not None:
                row[f"k{kernel}.req_per_minst"] = float(
                    estimators[kernel].value)

        # DRAM bandwidth utilisation: serviced requests per
        # channel-cycle over the window.
        serviced = gpu.memory.dram.total_serviced()
        channels = len(gpu.memory.dram.channels)
        delta = serviced - self._prev_dram
        row["dram.bw_util"] = (
            delta / (window * channels) if window else 0.0)

        if commit:
            self._prev_kr = cur_kr
            self._prev_sm_issued = cur_sm
            self._prev_lsu = cur_lsu
            self._prev_insts = {kernel: stats[kernel].warp_insts
                                for kernel in slots}
            self._prev_l1 = {kernel: (cur_l1[kernel][0], cur_l1[kernel][1])
                             for kernel in slots}
            self._prev_dram = serviced
            self._covered = upto
            self.samples += 1
        return row

    # ------------------------------------------------------------------
    # collection
    def snapshot(self, gpu) -> Dict[str, object]:
        """One self-describing, JSON-safe phase record for the run.

        If the run length is not a multiple of the interval, the
        partial tail is measured into the record without committing it,
        so repeated snapshots (mid-run reports, final collection) each
        cover every simulated cycle exactly once.
        """
        series = {name: list(values) for name, values in self.series.items()}
        cycles = gpu.cycles_run
        if cycles > self._covered:
            tail = self._measure(cycles, gpu, commit=False)
            for name, value in tail.items():
                bucket = series.get(name)
                if bucket is None:
                    series[name] = [value]
                else:
                    bucket.append(value)
        return {
            "version": PHASE_RECORD_VERSION,
            "interval": self.interval,
            "cycles": cycles,
            "num_sms": gpu.config.num_sms,
            "kernel_names": [launch.profile.name
                             for launch in gpu.launches],
            "series": series,
            "adapt_events": [event.to_list()
                             for event in self.adapt_events],
        }


def merge_phase_records(groups: Sequence[List[Dict[str, object]]]
                        ) -> List[Dict[str, object]]:
    """Cross-worker merge for phase records: concatenation.

    Each record describes one observed run's timeline; merging campaign
    cells keeps every timeline intact (the dashboard renders one panel
    per record).  Concatenation is associative, so the parent may merge
    worker results in any grouping and get the same ledger.
    """
    merged: List[Dict[str, object]] = []
    for group in groups:
        merged.extend(group)
    return merged
