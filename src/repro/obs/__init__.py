"""Observability layer for the simulator and the experiment harness.

The package turns the paper's "look inside the memory pipeline"
methodology (§2.3–§2.4, Figures 3/6/8) into first-class, queryable
instrumentation:

* :mod:`repro.obs.registry` — a hierarchical counter/gauge registry
  with dotted names (``sm0.sched2.issue.mil_capped``), snapshot-able
  mid-run and mergeable across parallel campaign workers;
* :mod:`repro.obs.stalls` — the stall-attribution taxonomy: every
  cycle a warp scheduler fails to issue is classified (scoreboard,
  LSU reservation failure by resource, BMI arbitration loss, MIL cap,
  SMK quota gate, no-ready-warp, ...) into per-kernel/per-SM counters;
* :mod:`repro.obs.trace` — a Chrome trace-event recorder (Perfetto /
  ``chrome://tracing``) of warp issue slices, memory request lifetimes
  and DMIL/QBMI quota-change instants, behind sampling controls;
* :mod:`repro.obs.telemetry` — live heartbeat/progress telemetry for
  parallel experiment campaigns;
* :mod:`repro.obs.collector` — :class:`Observability`, the per-run
  façade the engine wires through the SMs, schedulers, LSUs and the
  memory backend.

Everything is zero-cost when disabled: instrumentation hooks in the
simulator's hot paths are sentinel-checked (``if self._obs is not
None``) and the fast cycle loop stays bit-identical with observability
off.  With observability *on*, the engine runs the reference per-cycle
loop so stall attribution is exact — the simulated results are still
bit-identical (the perf suite proves fast == reference on every run).
"""

from repro.obs.collector import Observability, ObsOptions, ObsReport
from repro.obs.registry import Counter, CounterRegistry, Gauge, process_registry
from repro.obs.stalls import (
    ISSUED,
    LSU_STALL_REASONS,
    SCHED_STALL_REASONS,
    STALL_BMI_LOSS,
    STALL_EXEC_PORT,
    STALL_LSU_FULL,
    STALL_MIL_CAPPED,
    STALL_NO_WARP,
    STALL_OTHER,
    STALL_SCOREBOARD,
    STALL_SMK_GATE,
    StallTable,
    format_stall_report,
)
from repro.obs.telemetry import CampaignTelemetry, JobHeartbeat
from repro.obs.trace import TraceRecorder

__all__ = [
    "CampaignTelemetry",
    "Counter",
    "CounterRegistry",
    "Gauge",
    "ISSUED",
    "JobHeartbeat",
    "LSU_STALL_REASONS",
    "Observability",
    "ObsOptions",
    "ObsReport",
    "SCHED_STALL_REASONS",
    "STALL_BMI_LOSS",
    "STALL_EXEC_PORT",
    "STALL_LSU_FULL",
    "STALL_MIL_CAPPED",
    "STALL_NO_WARP",
    "STALL_OTHER",
    "STALL_SCOREBOARD",
    "STALL_SMK_GATE",
    "StallTable",
    "TraceRecorder",
    "format_stall_report",
    "process_registry",
]
