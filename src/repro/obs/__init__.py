"""Observability layer for the simulator and the experiment harness.

The package turns the paper's "look inside the memory pipeline"
methodology (§2.3–§2.4, Figures 3/6/8) into first-class, queryable
instrumentation:

* :mod:`repro.obs.registry` — a hierarchical counter/gauge registry
  with dotted names (``sm0.sched2.issue.mil_capped``), snapshot-able
  mid-run and mergeable across parallel campaign workers;
* :mod:`repro.obs.stalls` — the stall-attribution taxonomy: every
  cycle a warp scheduler fails to issue is classified (scoreboard,
  LSU reservation failure by resource, BMI arbitration loss, MIL cap,
  SMK quota gate, no-ready-warp, ...) into per-kernel/per-SM counters;
* :mod:`repro.obs.trace` — a Chrome trace-event recorder (Perfetto /
  ``chrome://tracing``) of warp issue slices, memory request lifetimes
  and DMIL/QBMI quota-change instants, behind sampling controls;
* :mod:`repro.obs.telemetry` — live heartbeat/progress telemetry for
  parallel experiment campaigns;
* :mod:`repro.obs.timeline` — the phase sampler: interval time-series
  (IPC, stall mix, occupancies, DMIL caps, QBMI quotas, DRAM
  bandwidth) plus the mechanism-adaptation event log;
* :mod:`repro.obs.ledger` — durable versioned JSON run artifacts
  (config fingerprint, git sha, metrics, phase records);
* :mod:`repro.obs.dash` / :mod:`repro.obs.compare` — the standalone
  HTML dashboard renderer and the ``repro compare`` regression gate;
* :mod:`repro.obs.collector` — :class:`Observability`, the per-run
  façade the engine wires through the SMs, schedulers, LSUs and the
  memory backend.

Everything is zero-cost when disabled: instrumentation hooks in the
simulator's hot paths are sentinel-checked (``if self._obs is not
None``) and the fast cycle loop stays bit-identical with observability
off.  With observability *on*, the engine runs the reference per-cycle
loop so stall attribution is exact — the simulated results are still
bit-identical (the perf suite proves fast == reference on every run).
"""

from repro.obs.collector import Observability, ObsOptions, ObsReport
from repro.obs.compare import Comparison, compare_paths, format_comparison
from repro.obs.dash import render_dashboard, write_dashboard
from repro.obs.ledger import (
    ARTIFACT_VERSION,
    artifact_from_outcome,
    load_artifacts,
    write_artifacts,
)
from repro.obs.registry import Counter, CounterRegistry, Gauge, process_registry
from repro.obs.stalls import (
    ISSUED,
    LSU_STALL_REASONS,
    SCHED_STALL_REASONS,
    STALL_BMI_LOSS,
    STALL_EXEC_PORT,
    STALL_LSU_FULL,
    STALL_MIL_CAPPED,
    STALL_NO_WARP,
    STALL_OTHER,
    STALL_SCOREBOARD,
    STALL_SMK_GATE,
    StallTable,
    format_stall_report,
)
from repro.obs.telemetry import CampaignTelemetry, JobHeartbeat
from repro.obs.timeline import (
    ADAPT_MECHANISMS,
    ADAPT_MIL,
    ADAPT_QBMI,
    AdaptEvent,
    DEFAULT_PHASE_INTERVAL,
    PhaseSampler,
    adapt_events_from_record,
    merge_phase_records,
)
from repro.obs.trace import TraceRecorder

__all__ = [
    "ADAPT_MECHANISMS",
    "ADAPT_MIL",
    "ADAPT_QBMI",
    "ARTIFACT_VERSION",
    "AdaptEvent",
    "CampaignTelemetry",
    "Comparison",
    "Counter",
    "CounterRegistry",
    "DEFAULT_PHASE_INTERVAL",
    "Gauge",
    "ISSUED",
    "JobHeartbeat",
    "LSU_STALL_REASONS",
    "Observability",
    "ObsOptions",
    "ObsReport",
    "PhaseSampler",
    "SCHED_STALL_REASONS",
    "STALL_BMI_LOSS",
    "STALL_EXEC_PORT",
    "STALL_LSU_FULL",
    "STALL_MIL_CAPPED",
    "STALL_NO_WARP",
    "STALL_OTHER",
    "STALL_SCOREBOARD",
    "STALL_SMK_GATE",
    "StallTable",
    "TraceRecorder",
    "adapt_events_from_record",
    "artifact_from_outcome",
    "compare_paths",
    "format_comparison",
    "format_stall_report",
    "load_artifacts",
    "merge_phase_records",
    "process_registry",
    "render_dashboard",
    "write_artifacts",
    "write_dashboard",
]
