"""Stall-attribution taxonomy (paper §2.3–§2.4, Figure 3).

Every cycle a warp scheduler fails to issue an instruction is
classified by *why* the highest-priority latency-ready warp (the one
the hardware would have issued) could not go:

====================  ==================================================
``scoreboard``        every owned warp is blocked on a data dependence
                      (outstanding load, SFU/ALU initiation interval, or
                      the MLP cap on outstanding loads)
``no_warp``           the scheduler owns no warp with work left
``smk_gate``          SMK-(P+W)'s warp-instruction quota gate denied the
                      warp's kernel this epoch
``lsu_full``          the warp's next instruction is a memory op and the
                      LSU queue is full — memory-pipeline backpressure,
                      the §2.4 congestion signal
``mil_capped``        the MIL limiter caps the kernel's in-flight memory
                      instructions (§3.3)
``bmi_loss``          the scheduler proposed a memory instruction but
                      lost the single-LSU-slot arbitration (§3.2) and
                      had no compute fallback
``exec_port``         a compute warp was ready but its execution port
                      (the shared SFU) was taken this cycle
``other``             residual same-cycle races (e.g. a quota consumed
                      between selection and attribution)
====================  ==================================================

Separately, every cycle the **LSU pipeline itself** stalls on an L1D
reservation failure is attributed to the missing resource — line slot,
MSHR entry, MSHR merge list, or miss-queue entry (``rsfail_line`` /
``rsfail_mshr`` / ``rsfail_merge`` / ``rsfail_missq``).  These per-cycle
counts sum exactly to ``RunResult.lsu_stall_cycles``, so the reported
LSU-reservation-failure share is consistent with
``RunResult.lsu_stall_pct()`` by construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: scheduler-level issue outcomes / stall classes.
ISSUED = "issued"
STALL_SCOREBOARD = "scoreboard"
STALL_NO_WARP = "no_warp"
STALL_SMK_GATE = "smk_gate"
STALL_LSU_FULL = "lsu_full"
STALL_MIL_CAPPED = "mil_capped"
STALL_BMI_LOSS = "bmi_loss"
STALL_EXEC_PORT = "exec_port"
STALL_OTHER = "other"

SCHED_STALL_REASONS: Tuple[str, ...] = (
    STALL_SCOREBOARD, STALL_NO_WARP, STALL_SMK_GATE, STALL_LSU_FULL,
    STALL_MIL_CAPPED, STALL_BMI_LOSS, STALL_EXEC_PORT, STALL_OTHER,
)

#: LSU-level stall classes (one per stalled LSU cycle), named after the
#: L1D resource whose reservation failed — mirrors
#: :class:`repro.mem.cache.AccessResult`.
LSU_STALL_REASONS: Tuple[str, ...] = (
    "rsfail_line", "rsfail_mshr", "rsfail_merge", "rsfail_missq",
)

#: kernel slot used when a stall cannot be pinned on one kernel
#: (e.g. a scheduler with no ready warp at all).
KERNEL_NONE = -1


class StallTable:
    """Accumulated stall attribution for one run.

    ``sched`` is keyed ``(sm_id, sched_id, kernel, reason)`` — one
    entry per scheduler issue slot outcome; ``lsu`` is keyed
    ``(sm_id, kernel, reason)`` — one entry per stalled LSU cycle.
    Plain dict-of-int state so tables pickle across campaign workers
    and merge by summation.
    """

    __slots__ = ("sched", "lsu")

    def __init__(self) -> None:
        self.sched: Dict[Tuple[int, int, int, str], int] = {}
        self.lsu: Dict[Tuple[int, int, str], int] = {}

    # ------------------------------------------------------------------
    # hot-side accumulation (callers sentinel-check the obs handle)
    def bump_sched(self, sm_id: int, sched_id: int, kernel: int,
                   reason: str, amount: int = 1) -> None:
        key = (sm_id, sched_id, kernel, reason)
        self.sched[key] = self.sched.get(key, 0) + amount

    def bump_lsu(self, sm_id: int, kernel: int, reason: str,
                 amount: int = 1) -> None:
        key = (sm_id, kernel, reason)
        self.lsu[key] = self.lsu.get(key, 0) + amount

    # ------------------------------------------------------------------
    # aggregation
    def merge(self, other: "StallTable") -> None:
        for key, value in other.sched.items():
            self.sched[key] = self.sched.get(key, 0) + value
        for key, value in other.lsu.items():
            self.lsu[key] = self.lsu.get(key, 0) + value

    def sched_by_reason(self, kernel: Optional[int] = None) -> Dict[str, int]:
        """Scheduler outcomes summed over SMs/schedulers, optionally
        restricted to one kernel slot."""
        out: Dict[str, int] = {}
        for (_sm, _sched, k, reason), value in self.sched.items():
            if kernel is not None and k != kernel:
                continue
            out[reason] = out.get(reason, 0) + value
        return out

    def lsu_by_reason(self, kernel: Optional[int] = None) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for (_sm, k, reason), value in self.lsu.items():
            if kernel is not None and k != kernel:
                continue
            out[reason] = out.get(reason, 0) + value
        return out

    def kernels(self) -> List[int]:
        seen = {k for (_sm, _sched, k, _r) in self.sched if k != KERNEL_NONE}
        seen.update(k for (_sm, k, _r) in self.lsu if k != KERNEL_NONE)
        return sorted(seen)

    def lsu_stall_cycles(self) -> int:
        """Total stalled LSU cycles — equals the engine's
        ``lsu_stall_cycles`` counter by construction."""
        return sum(self.lsu.values())

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (tuple keys flattened to lists)."""
        return {
            "sched": [[sm, sched, k, reason, v]
                      for (sm, sched, k, reason), v in sorted(self.sched.items())],
            "lsu": [[sm, k, reason, v]
                    for (sm, k, reason), v in sorted(self.lsu.items())],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "StallTable":
        table = cls()
        for sm, sched, k, reason, v in payload.get("sched", []):
            table.sched[(sm, sched, k, reason)] = v
        for sm, k, reason, v in payload.get("lsu", []):
            table.lsu[(sm, k, reason)] = v
        return table


# ----------------------------------------------------------------------
# reporting
def _share_row(label: str, counts: Dict[str, int], reasons: Iterable[str],
               denom: int) -> str:
    cells = []
    for reason in reasons:
        value = counts.get(reason, 0)
        pct = 100.0 * value / denom if denom else 0.0
        cells.append(f"{reason}={pct:5.1f}%")
    return f"  {label:<14} " + "  ".join(cells)


def format_stall_report(report) -> str:
    """Human-readable per-kernel stall breakdown for an
    :class:`~repro.obs.collector.ObsReport` (the ``stalls`` CLI)."""
    stalls = report.stall_table()
    lines: List[str] = []
    issue_slots = report.issue_slots()
    sm_cycles = report.cycles * report.num_sms

    lines.append(f"scheduler issue-slot breakdown "
                 f"({report.cycles} cycles x {report.num_sms} SMs x "
                 f"{report.schedulers_per_sm} schedulers = "
                 f"{issue_slots} slots)")
    overall = stalls.sched_by_reason()
    reasons = [ISSUED] + [r for r in SCHED_STALL_REASONS
                          if overall.get(r, 0)]
    lines.append(_share_row("all kernels", overall, reasons, issue_slots))
    for slot in stalls.kernels():
        name = report.kernel_label(slot)
        lines.append(_share_row(name, stalls.sched_by_reason(slot),
                                reasons, issue_slots))

    lines.append("")
    total_rsfail = stalls.lsu_stall_cycles()
    pct = 100.0 * total_rsfail / sm_cycles if sm_cycles else 0.0
    lines.append(f"LSU memory-pipeline stalls (reservation failures): "
                 f"{total_rsfail} cycles = {pct:.1f}% of SM-cycles")
    lsu_overall = stalls.lsu_by_reason()
    lsu_reasons = [r for r in LSU_STALL_REASONS if lsu_overall.get(r, 0)]
    if lsu_reasons:
        lines.append(_share_row("all kernels", lsu_overall, lsu_reasons,
                                sm_cycles))
        for slot in stalls.kernels():
            counts = stalls.lsu_by_reason(slot)
            if any(counts.values()):
                lines.append(_share_row(report.kernel_label(slot), counts,
                                        lsu_reasons, sm_cycles))
    else:
        lines.append("  (none)")
    return "\n".join(lines)
