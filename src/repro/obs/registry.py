"""Hierarchical counter/gauge registry with dotted metric names.

Components (SM, scheduler, LSU, L1D, MSHR file, interconnect, L2, DRAM
channel) register metrics under dotted names —
``sm0.sched2.issue.mil_capped``, ``l2.misses.k1``, ``dram.serviced`` —
and the registry supports:

* **live handles**: :meth:`CounterRegistry.counter` /
  :meth:`CounterRegistry.gauge` return tiny mutable cells a hot path
  can bump without a dict lookup per event;
* **scopes**: :meth:`CounterRegistry.scoped` prefixes a component's
  names so the component itself stays ignorant of where it lives;
* **snapshots**: a flat ``{name: value}`` dict taken at any point
  mid-run (pull-based stats can be folded in by the caller);
* **merging**: snapshots from parallel campaign workers combine with
  :meth:`CounterRegistry.merge_snapshot` (counters add, gauges take
  the latest value);
* **queries**: :meth:`CounterRegistry.total` aggregates over an
  ``fnmatch`` pattern (``sm*.sched*.issue.mil_capped``) and
  :meth:`CounterRegistry.tree` nests the flat names by dot for
  hierarchical display.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Dict, Iterable, Optional, Tuple, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing metric cell."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str, value: Number = 0):
        self.name = name
        self.value = value

    def add(self, amount: Number = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time metric cell (last write wins)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str, value: Number = 0):
        self.name = name
        self.value = value

    def set(self, value: Number) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class Scope:
    """A name-prefixing view of a registry for one component."""

    __slots__ = ("_registry", "prefix")

    def __init__(self, registry: "CounterRegistry", prefix: str):
        self._registry = registry
        self.prefix = prefix

    def counter(self, name: str) -> Counter:
        return self._registry.counter(f"{self.prefix}.{name}")

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(f"{self.prefix}.{name}")

    def scoped(self, suffix: str) -> "Scope":
        return Scope(self._registry, f"{self.prefix}.{suffix}")


class CounterRegistry:
    """The flat store behind the dotted-name hierarchy."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Union[Counter, Gauge]] = {}

    # ------------------------------------------------------------------
    # registration
    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = Counter(name)
            self._metrics[name] = metric
        elif not isinstance(metric, Counter):
            raise TypeError(f"{name!r} is registered as a {metric.kind}")
        return metric

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = Gauge(name)
            self._metrics[name] = metric
        elif not isinstance(metric, Gauge):
            raise TypeError(f"{name!r} is registered as a {metric.kind}")
        return metric

    def scoped(self, prefix: str) -> Scope:
        """A view that prefixes every name with ``prefix.``."""
        return Scope(self, prefix)

    def bump(self, name: str, amount: Number = 1) -> None:
        """One-shot counter increment (cold paths; hot paths should
        hold a :class:`Counter` handle instead)."""
        self.counter(name).add(amount)

    def set(self, name: str, value: Number) -> None:
        """One-shot gauge write."""
        self.gauge(name).set(value)

    # ------------------------------------------------------------------
    # snapshots
    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, Number]:
        """Flat ``{dotted-name: value}`` view, optionally filtered to
        names under ``prefix``."""
        if prefix is None:
            return {name: m.value for name, m in self._metrics.items()}
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return {name: m.value for name, m in self._metrics.items()
                if name == prefix or name.startswith(dotted)}

    def merge_snapshot(self, snapshot: Dict[str, Number],
                       gauges: Iterable[str] = ()) -> None:
        """Fold another run's/worker's snapshot into this registry.

        Names listed in ``gauges`` (or already registered as gauges
        here) overwrite; everything else accumulates — the right
        semantics for combining per-worker campaign registries.
        """
        gauge_names = set(gauges)
        for name, value in snapshot.items():
            existing = self._metrics.get(name)
            if name in gauge_names or isinstance(existing, Gauge):
                self.gauge(name).set(value)
            else:
                self.counter(name).add(value)

    @staticmethod
    def merged(snapshots: Iterable[Dict[str, Number]],
               gauges: Iterable[str] = ()) -> Dict[str, Number]:
        """Combine snapshots from parallel workers into one flat dict."""
        registry = CounterRegistry()
        for snap in snapshots:
            registry.merge_snapshot(snap, gauges=gauges)
        return registry.snapshot()

    # ------------------------------------------------------------------
    # queries
    def total(self, pattern: str) -> Number:
        """Sum of every metric whose dotted name matches the ``fnmatch``
        pattern, e.g. ``sm*.sched*.issue.mil_capped``."""
        return sum(m.value for name, m in self._metrics.items()
                   if fnmatchcase(name, pattern))

    def matching(self, pattern: str) -> Dict[str, Number]:
        """Flat view of metrics matching the ``fnmatch`` pattern."""
        return {name: m.value for name, m in self._metrics.items()
                if fnmatchcase(name, pattern)}

    def tree(self) -> Dict[str, object]:
        """The dotted names nested into a dict hierarchy, leaves being
        values: ``{"sm0": {"sched2": {"issue": {"mil_capped": 7}}}}``."""
        return snapshot_tree(self.snapshot())

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics


def snapshot_tree(snapshot: Dict[str, Number]) -> Dict[str, object]:
    """Nest a flat dotted-name snapshot into a dict hierarchy.

    A name that is both a leaf and an interior node keeps its leaf
    value under the ``""`` key of the interior dict.
    """
    root: Dict[str, object] = {}
    for name, value in sorted(snapshot.items()):
        parts = name.split(".")
        node = root
        for part in parts[:-1]:
            child = node.get(part)
            if not isinstance(child, dict):
                child = {} if child is None else {"": child}
                node[part] = child
            node = child
        leaf = parts[-1]
        existing = node.get(leaf)
        if isinstance(existing, dict):
            existing[""] = value
        else:
            node[leaf] = value
    return root


def aggregate(snapshot: Dict[str, Number], pattern: str) -> Number:
    """:meth:`CounterRegistry.total` over an already-taken snapshot."""
    return sum(v for name, v in snapshot.items()
               if fnmatchcase(name, pattern))


#: process-wide registry for infrastructure metrics that outlive any
#: single run or Observability instance (e.g. ``trace_cache.*`` from
#: :mod:`repro.workloads.trace`).  Per-run simulator metrics belong on
#: the per-``Observability`` registries instead.
_PROCESS_REGISTRY = CounterRegistry()


def process_registry() -> CounterRegistry:
    """The process-wide :class:`CounterRegistry` singleton."""
    return _PROCESS_REGISTRY
