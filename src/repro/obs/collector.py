"""The per-run observability façade the engine wires into components.

One :class:`Observability` instance lives on a :class:`~repro.sim.engine.GPU`
built with ``obs=...``.  The engine hands it to the SMs, the LSUs, the
memory subsystem and (via :meth:`Observability.attach`) the scheme
mechanisms (DMIL's MILGs, QBMI); each hook site sentinel-checks its
``_obs`` handle so the cost with observability off is one attribute
test — the fast cycle loop stays bit-identical and inside the perf
thresholds.

At collection time :meth:`Observability.report` folds the live push
counters together with the simulator's pull-based statistics (cache,
LSU, interconnect, L2, DRAM) into one :class:`ObsReport` — a
plain-data, picklable record that survives the parallel-campaign
worker boundary and merges across workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.registry import CounterRegistry, Number, aggregate, snapshot_tree
from repro.obs.stalls import KERNEL_NONE, StallTable
from repro.obs.timeline import (
    ADAPT_MIL,
    ADAPT_QBMI,
    DEFAULT_PHASE_INTERVAL,
    PhaseSampler,
    merge_phase_records,
)
from repro.obs.trace import DEFAULT_MAX_EVENTS, TraceRecorder, write_trace_events

#: registry names that merge as gauges (latest value) across workers.
GAUGE_NAMES_HINT = ("*.limit", "*.rate", "engine.cycles", "phase.interval")


@dataclass(frozen=True)
class ObsOptions:
    """What to record for one observed run."""

    #: record a Chrome trace (warp issue slices, memory request
    #: lifetimes, quota-change instants).
    trace: bool = False
    #: record every Nth warp-issue slice.
    trace_issue_sample: int = 16
    #: trace every Nth L1D request's lifetime.
    trace_mem_sample: int = 4
    #: hard cap on buffered trace events.
    trace_max_events: int = DEFAULT_MAX_EVENTS
    #: record interval time-series + the adaptation event log
    #: (:mod:`repro.obs.timeline`).
    phase: bool = False
    #: sampling interval in cycles for the phase sampler.
    phase_interval: int = DEFAULT_PHASE_INTERVAL


class Observability:
    """Live instrumentation state for one simulated run."""

    def __init__(self, options: Optional[ObsOptions] = None):
        self.options = options or ObsOptions()
        self.registry = CounterRegistry()
        self.stalls = StallTable()
        #: current simulation cycle, maintained by the engine's sampled
        #: reference loop; timestamps the adaptation event log.
        self.cycle = 0
        self.sampler: Optional[PhaseSampler] = None
        if self.options.phase:
            self.sampler = PhaseSampler(self.options.phase_interval)
        self.trace: Optional[TraceRecorder] = None
        if self.options.trace:
            self.trace = TraceRecorder(
                max_events=self.options.trace_max_events,
                issue_sample=self.options.trace_issue_sample,
                mem_sample=self.options.trace_mem_sample)

    # ------------------------------------------------------------------
    # wiring
    def attach(self, gpu) -> None:
        """Hook the mechanisms the engine cannot reach at construction
        time: DMIL's MILGs and QBMI's quota machinery (duck-typed so
        this module never imports the scheme classes)."""
        for sm in gpu.sms:
            bundle = sm.bundle
            limiter = bundle.limiter
            # Global DMIL: instrument the shared core once (monitor SM).
            core = getattr(limiter, "shared", limiter)
            milgs = getattr(core, "milgs", None)
            if milgs is not None:
                for kernel, milg in enumerate(milgs):
                    if milg._obs is None:
                        milg._obs = self
                        milg._obs_key = (sm.sm_id, kernel)
            policy = bundle.mem_policy
            if hasattr(policy, "_obs") and policy._obs is None:
                policy._obs = self
                policy._obs_key = sm.sm_id
            if self.trace is not None:
                self.trace.name_process(sm.sm_id, f"SM {sm.sm_id}")
                for sched in sm.schedulers:
                    self.trace.name_thread(sm.sm_id, sched.sched_id,
                                           f"sched {sched.sched_id}")

    # ------------------------------------------------------------------
    # hot-path hooks (every caller sentinel-checks `_obs is not None`)
    def lsu_rsfail(self, sm_id: int, kernel: int, reason: str,
                   cycle: int) -> None:
        """One stalled LSU cycle attributed to the failing resource."""
        self.stalls.bump_lsu(sm_id, kernel, reason)

    def issue_event(self, sm_id: int, sched_id: int, kernel: int, op: str,
                    cycle: int) -> None:
        """A warp instruction issued (trace slice, sampled)."""
        trace = self.trace
        if trace is not None and trace.want_issue():
            trace.complete(op, "issue", sm_id, sched_id, cycle, 1,
                           args={"kernel": kernel})

    def mem_request_created(self, request, cycle: int) -> None:
        """The LSU materialised a new L1D request; maybe start tracing
        its lifetime."""
        trace = self.trace
        if trace is None:
            return
        event_id = trace.next_mem_id()
        if event_id is None:
            return
        request.trace_id = event_id
        kind = "store" if request.is_write else "load"
        trace.async_begin(f"mem:{kind}", "mem", request.sm_id, event_id,
                          cycle, args={"kernel": request.kernel,
                                       "line": request.line})

    def mem_request_l1(self, request, result: str, cycle: int) -> None:
        """A traced request's L1D outcome (hit / miss / bypass)."""
        trace = self.trace
        if trace is None or request.trace_id is None:
            return
        trace.async_instant(f"l1d:{result}", "mem", request.sm_id,
                            request.trace_id, cycle)
        if result == "hit":
            trace.async_end("mem:load", "mem", request.sm_id,
                            request.trace_id, cycle)
            request.trace_id = None

    def mem_request_stage(self, request, stage: str, cycle: int) -> None:
        """A traced request reached a backend stage (to-L2, L2 hit/miss,
        DRAM enqueue, ...)."""
        trace = self.trace
        if trace is None or request.trace_id is None:
            return
        trace.async_instant(stage, "mem", request.sm_id, request.trace_id,
                            cycle)

    def mem_request_done(self, request, cycle: int) -> None:
        """A traced request's data came back (or its write drained)."""
        trace = self.trace
        if trace is None or request.trace_id is None:
            return
        kind = "store" if request.is_write else "load"
        trace.async_end(f"mem:{kind}", "mem", request.sm_id,
                        request.trace_id, cycle)
        request.trace_id = None

    def mil_update(self, key: Tuple[int, int], old_limit: Optional[int],
                   limit: Optional[int], window_rsfails: int,
                   windows: int) -> None:
        """A MILG recomputed its in-flight limit (DMIL quota change).

        ``old_limit``/``window_rsfails`` are captured *before* the MILG
        resets its window so the adaptation log can show the
        ``old -> new`` transition and what drove it."""
        sm_id, kernel = key
        scope = self.registry.scoped(f"sm{sm_id}.mil.k{kernel}")
        scope.counter("recomputes").add()
        scope.gauge("limit").set(-1 if limit is None else limit)
        sampler = self.sampler
        if sampler is not None:
            sampler.log_adapt(ADAPT_MIL, self.cycle, sm_id, kernel,
                              old_limit, limit, rsfails=window_rsfails)
        trace = self.trace
        if trace is not None:
            shown = -1 if limit is None else limit
            trace.instant("dmil:limit", "quota", sm_id, windows,
                          args={"kernel": kernel, "limit": shown})
            trace.counter(f"dmil limit k{kernel}", sm_id, windows,
                          {"limit": float(shown)})

    def qbmi_replenish(self, sm_id: int, old_quotas: Sequence[int],
                       quotas: Sequence[int],
                       estimates: Sequence[int]) -> None:
        """QBMI re-armed its per-kernel quota set.  ``old_quotas`` is
        the (possibly exhausted) set before the replenish, ``estimates``
        the windowed Req/Minst values the fresh quotas derive from."""
        self.registry.counter(f"sm{sm_id}.bmi.replenishes").add()
        sampler = self.sampler
        if sampler is not None:
            for kernel, new in enumerate(quotas):
                sampler.log_adapt(ADAPT_QBMI, self.cycle, sm_id, kernel,
                                  old_quotas[kernel], new,
                                  req_per_minst=estimates[kernel])
        trace = self.trace
        if trace is not None:
            trace.instant("qbmi:replenish", "quota", sm_id, 0,
                          args={"quotas": list(quotas)})

    # ------------------------------------------------------------------
    # collection
    def report(self, gpu) -> "ObsReport":
        """Snapshot everything into a plain-data report.  Callable
        mid-run (the registry folding is pull-based) or at the end."""
        cfg = gpu.config
        registry = self.registry
        # Fold the simulator's pull-based statistics into the registry
        # hierarchy so one snapshot answers "what happened where".
        registry.set("engine.cycles", gpu.cycles_run)
        for sm in gpu.sms:
            scope = registry.scoped(f"sm{sm.sm_id}")
            lsu_scope = scope.scoped("lsu")
            lsu_scope.gauge("stall_cycles").set(sm.lsu.stall_cycles)
            lsu_scope.gauge("busy_cycles").set(sm.lsu.busy_cycles)
            l1_scope = scope.scoped("l1d")
            stats = sm.l1.stats
            for kernel, value in stats.accesses.items():
                l1_scope.gauge(f"accesses.k{kernel}").set(value)
            for kernel, value in stats.hits.items():
                l1_scope.gauge(f"hits.k{kernel}").set(value)
            for kernel, value in stats.misses.items():
                l1_scope.gauge(f"misses.k{kernel}").set(value)
            for kernel, value in stats.rsfails.items():
                l1_scope.gauge(f"rsfails.k{kernel}").set(value)
            for reason, value in stats.rsfail_reasons.items():
                l1_scope.gauge(f"rsfail_reasons.{reason}").set(value)
        memory = gpu.memory
        l2_scope = registry.scoped("l2")
        for kernel, value in memory.l2_stats.accesses.items():
            l2_scope.gauge(f"accesses.k{kernel}").set(value)
        for kernel, value in memory.l2_stats.misses.items():
            l2_scope.gauge(f"misses.k{kernel}").set(value)
        for kernel, value in memory.l2_stats.writes.items():
            l2_scope.gauge(f"writes.k{kernel}").set(value)
        l2_scope.gauge("head_stall_cycles").set(memory.l2_head_stall_cycles)
        icnt_scope = registry.scoped("icnt")
        icnt_scope.gauge("req_flits").set(memory.icnt.req_flits_sent)
        icnt_scope.gauge("rsp_flits").set(memory.icnt.rsp_flits_sent)
        dram_scope = registry.scoped("dram")
        dram_scope.gauge("serviced").set(memory.dram.total_serviced())
        dram_scope.gauge("row_hit_rate").set(memory.dram.row_hit_rate())
        # Fold the stall table under per-scheduler dotted names
        # (summed over kernels; per-kernel machine-wide views too).
        folded: Dict[str, Number] = {}
        for (sm_id, sched_id, kernel, reason), v in self.stalls.sched.items():
            _refold(folded, f"sm{sm_id}.sched{sched_id}.issue.{reason}", v)
            if kernel != KERNEL_NONE:
                _refold(folded, f"kernel{kernel}.stall.{reason}", v)
        for (sm_id, kernel, reason), v in self.stalls.lsu.items():
            _refold(folded, f"sm{sm_id}.lsu.{reason}.k{kernel}", v)
        for name, v in folded.items():
            registry.set(name, v)
        sampler = self.sampler
        phases: List[Dict[str, object]] = []
        if sampler is not None:
            registry.set("phase.interval", sampler.interval)
            registry.set("phase.samples", sampler.samples)
            event_counts = sampler.adapt_event_counts()
            registry.set("adapt.mil_events", event_counts[ADAPT_MIL])
            registry.set("adapt.qbmi_events", event_counts[ADAPT_QBMI])
            phases.append(sampler.snapshot(gpu))

        return ObsReport(
            cycles=gpu.cycles_run,
            num_sms=cfg.num_sms,
            schedulers_per_sm=cfg.schedulers_per_sm,
            kernel_names=[launch.profile.name for launch in gpu.launches],
            counters=registry.snapshot(),
            sched_stalls=dict(self.stalls.sched),
            lsu_stalls=dict(self.stalls.lsu),
            trace_events=(list(self.trace.events)
                          if self.trace is not None else None),
            trace_dropped=(self.trace.dropped
                           if self.trace is not None else 0),
            phases=phases,
        )


def _refold(registry_names: Dict[str, Number], name: str, v: Number) -> None:
    registry_names[name] = registry_names.get(name, 0) + v


@dataclass
class ObsReport:
    """Plain-data snapshot of one (or several merged) observed runs.

    Every field pickles, so reports ride inside
    :class:`~repro.sim.stats.RunResult` across the parallel-campaign
    worker boundary and merge in the parent with :meth:`merged`.
    """

    cycles: int
    num_sms: int
    schedulers_per_sm: int
    kernel_names: List[str]
    #: flat dotted-name registry snapshot.
    counters: Dict[str, Number] = field(default_factory=dict)
    #: (sm, sched, kernel, reason) -> count
    sched_stalls: Dict[Tuple[int, int, int, str], int] = field(
        default_factory=dict)
    #: (sm, kernel, reason) -> stalled LSU cycles
    lsu_stalls: Dict[Tuple[int, int, str], int] = field(default_factory=dict)
    trace_events: Optional[List[Dict[str, object]]] = None
    trace_dropped: int = 0
    #: phase records (one per observed run with the sampler on) —
    #: JSON-safe dicts, schema in :mod:`repro.obs.timeline`.
    phases: List[Dict[str, object]] = field(default_factory=list)

    # ------------------------------------------------------------------
    def stall_table(self) -> StallTable:
        table = StallTable()
        table.sched.update(self.sched_stalls)
        table.lsu.update(self.lsu_stalls)
        return table

    def issue_slots(self) -> int:
        return self.cycles * self.num_sms * self.schedulers_per_sm

    def kernel_label(self, slot: int) -> str:
        if 0 <= slot < len(self.kernel_names):
            return f"{self.kernel_names[slot]}#{slot}"
        return f"k{slot}"

    def lsu_stall_share(self) -> float:
        """Stalled-LSU-cycle share of SM-cycles — matches
        ``RunResult.lsu_stall_pct()`` exactly (one taxonomy entry is
        recorded per stalled LSU cycle)."""
        denom = self.cycles * self.num_sms
        return sum(self.lsu_stalls.values()) / denom if denom else 0.0

    def sched_stall_shares(self,
                           kernel: Optional[int] = None) -> Dict[str, float]:
        """Scheduler outcome shares of the total issue slots."""
        slots = self.issue_slots()
        if not slots:
            return {}
        table = self.stall_table()
        return {reason: count / slots
                for reason, count in table.sched_by_reason(kernel).items()}

    def total(self, pattern: str) -> Number:
        """Aggregate the counter snapshot over an ``fnmatch`` pattern."""
        return aggregate(self.counters, pattern)

    def tree(self) -> Dict[str, object]:
        return snapshot_tree(self.counters)

    def write_trace(self, path: str) -> None:
        if self.trace_events is None:
            raise ValueError("this report carries no trace "
                             "(run with ObsOptions(trace=True))")
        write_trace_events(path, self.trace_events, self.trace_dropped)

    # ------------------------------------------------------------------
    @staticmethod
    def merged(reports: Sequence["ObsReport"]) -> "ObsReport":
        """Combine reports from parallel campaign cells/workers:
        stall counts and counters accumulate, cycle totals add, kernel
        names keep the first report's labels."""
        if not reports:
            raise ValueError("need at least one report")
        first = reports[0]
        out = ObsReport(
            cycles=0,
            num_sms=first.num_sms,
            schedulers_per_sm=first.schedulers_per_sm,
            kernel_names=list(first.kernel_names),
        )
        for report in reports:
            out.cycles += report.cycles
            for key, v in report.sched_stalls.items():
                out.sched_stalls[key] = out.sched_stalls.get(key, 0) + v
            for key, v in report.lsu_stalls.items():
                out.lsu_stalls[key] = out.lsu_stalls.get(key, 0) + v
            for name, v in report.counters.items():
                out.counters[name] = out.counters.get(name, 0) + v
            out.trace_dropped += report.trace_dropped
        out.phases = merge_phase_records([report.phases
                                          for report in reports])
        return out


#: accepted spellings for "turn observability on" at API boundaries.
ObsLike = Union[None, bool, ObsOptions, Observability]


def resolve_obs(obs: ObsLike) -> Optional[Observability]:
    """Normalise the ``obs=`` argument accepted by the engine/runner:
    ``None``/``False`` → off, ``True`` → default options, an
    :class:`ObsOptions` → fresh collector, an :class:`Observability` →
    used as-is."""
    if obs is None or obs is False:
        return None
    if obs is True:
        return Observability()
    if isinstance(obs, ObsOptions):
        return Observability(obs)
    if isinstance(obs, Observability):
        return obs
    raise TypeError(f"cannot interpret obs={obs!r}")
