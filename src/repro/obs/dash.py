"""Dependency-free HTML dashboard for run artifacts.

`repro dash ARTIFACTS OUT.html` renders a ledger directory (or a
single artifact) into one self-contained HTML file: inline SVG
sparklines for the phase time-series, stacked bars for the issue-slot
stall mix, and adaptation timelines (DMIL cap / QBMI quota series with
event markers).  No external assets, scripts or fonts — the file opens
anywhere, uploads as a CI workflow artifact, and diffs cleanly.
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Sequence

from repro.obs.stalls import SCHED_STALL_REASONS
from repro.obs.timeline import ADAPT_MIL, adapt_events_from_record

#: fixed palette (reason -> colour) for the stall-mix bars; the
#: remainder bucket and sparklines reuse the same scheme.
_PALETTE = ("#2f7ed8", "#c0392b", "#27ae60", "#8e44ad", "#f39c12",
            "#16a085", "#7f8c8d", "#d35400", "#2c3e50", "#9b59b6")

_CSS = """
body { font-family: sans-serif; margin: 1.5em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
h3 { font-size: 0.95em; margin: 0.8em 0 0.2em; }
table { border-collapse: collapse; margin: 0.5em 0; }
td, th { border: 1px solid #ccc; padding: 0.25em 0.6em;
         font-size: 0.85em; text-align: right; }
th { background: #f0f0f0; }
td.l, th.l { text-align: left; }
.spark { margin: 0.2em 1em 0.2em 0; display: inline-block; }
.label { font-size: 0.75em; color: #555; }
.legend { font-size: 0.75em; color: #555; margin: 0.2em 0; }
.chip { display: inline-block; width: 0.8em; height: 0.8em;
        margin-right: 0.2em; vertical-align: middle; }
.meta { font-size: 0.8em; color: #666; }
"""


def _sparkline(values: Sequence[float], width: int = 220, height: int = 36,
               color: str = "#2f7ed8") -> str:
    """One inline-SVG sparkline (auto-scaled, min/max annotated)."""
    values = [float(v) for v in values]
    if not values:
        return "<svg class='spark' width='%d' height='%d'></svg>" % (
            width, height)
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    n = len(values)
    step = width / max(1, n - 1)
    pts = []
    for i, v in enumerate(values):
        x = i * step if n > 1 else width / 2
        y = height - 2 - (v - lo) / span * (height - 4)
        pts.append(f"{x:.1f},{y:.1f}")
    return (
        f"<svg class='spark' width='{width}' height='{height}' "
        f"viewBox='0 0 {width} {height}'>"
        f"<polyline fill='none' stroke='{color}' stroke-width='1.5' "
        f"points='{' '.join(pts)}'/>"
        f"<title>min {lo:.4g} / max {hi:.4g}</title></svg>")


def _stacked_bar(shares: Dict[str, float], width: int = 420,
                 height: int = 18) -> str:
    """One horizontal stacked bar of reason -> share (0..1)."""
    parts = []
    x = 0.0
    for i, (reason, share) in enumerate(sorted(shares.items())):
        w = max(0.0, float(share)) * width
        if w <= 0:
            continue
        color = _PALETTE[i % len(_PALETTE)]
        parts.append(
            f"<rect x='{x:.1f}' y='0' width='{w:.1f}' height='{height}' "
            f"fill='{color}'><title>{html.escape(reason)}: "
            f"{share * 100:.1f}%</title></rect>")
        x += w
    return (f"<svg width='{width}' height='{height}' "
            f"viewBox='0 0 {width} {height}'>{''.join(parts)}</svg>")


def _stall_legend(shares: Dict[str, float]) -> str:
    chips = []
    for i, (reason, share) in enumerate(sorted(shares.items())):
        color = _PALETTE[i % len(_PALETTE)]
        chips.append(f"<span class='chip' style='background:{color}'></span>"
                     f"{html.escape(reason)} {share * 100:.1f}%")
    return "<div class='legend'>" + " &nbsp; ".join(chips) + "</div>"


def _series_block(record: Dict[str, object], kernels: Sequence[str]) -> str:
    """Sparkline panels for one phase record."""
    series: Dict[str, List[float]] = record.get("series", {})
    if not series:
        return "<p class='meta'>no phase series recorded</p>"
    out: List[str] = []
    interval = record.get("interval")
    out.append(f"<p class='meta'>phase record: {len(series.get('cycle', []))}"
               f" samples, interval {interval} cycles</p>")
    global_names = [("dram.bw_util", "DRAM bandwidth util")]
    shown: List[str] = []
    for name, label in global_names:
        if name in series:
            shown.append(f"<span><div class='label'>{html.escape(label)}"
                         f"</div>{_sparkline(series[name])}</span>")
    out.append("<div>" + "".join(shown) + "</div>")
    for slot, kernel in enumerate(kernels):
        panels = []
        for suffix, label, color in (
                ("ipc", "IPC", "#2f7ed8"),
                ("inflight", "in-flight minsts", "#27ae60"),
                ("mil_limit", "DMIL cap", "#c0392b"),
                ("quota", "QBMI quota", "#8e44ad"),
                ("req_per_minst", "Req/Minst", "#f39c12"),
                ("l1d_miss_rate", "L1D miss rate", "#16a085")):
            name = f"k{slot}.{suffix}"
            if name in series:
                panels.append(
                    f"<span><div class='label'>{html.escape(label)}</div>"
                    f"{_sparkline(series[name], color=color)}</span>")
        out.append(f"<h3>{html.escape(kernel)}#{slot}</h3>"
                   "<div>" + "".join(panels) + "</div>")
    return "".join(out)


def _adapt_block(record: Dict[str, object], kernels: Sequence[str],
                 max_rows: int = 12) -> str:
    """Adaptation-timeline table (first ``max_rows`` events)."""
    events = adapt_events_from_record(record)
    if not events:
        return ""
    rows = []
    for event in events[:max_rows]:
        kernel = (kernels[event.kernel]
                  if 0 <= event.kernel < len(kernels) else f"k{event.kernel}")
        detail = (f"rsfails {event.rsfails}" if event.mechanism == ADAPT_MIL
                  else f"Req/Minst {event.req_per_minst}")
        old = "unltd" if event.old is None else str(event.old)
        new = "unltd" if event.new is None else str(event.new)
        rows.append(
            f"<tr><td>{event.cycle}</td><td class='l'>"
            f"{html.escape(event.mechanism)}</td>"
            f"<td class='l'>{html.escape(kernel)}#{event.kernel}</td>"
            f"<td>{old} &rarr; {new}</td>"
            f"<td class='l'>{html.escape(detail)}</td></tr>")
    more = ""
    if len(events) > max_rows:
        more = (f"<p class='meta'>... {len(events) - max_rows} more "
                "adaptation events</p>")
    return ("<h3>mechanism adaptations</h3><table><tr><th>cycle</th>"
            "<th class='l'>mech</th><th class='l'>kernel</th>"
            "<th>old &rarr; new</th><th class='l'>window</th></tr>"
            + "".join(rows) + "</table>" + more)


def _artifact_section(artifact: Dict[str, object]) -> str:
    kernels = artifact.get("kernels", [])
    metrics = artifact.get("metrics", {})
    out: List[str] = []
    out.append(f"<h2>{html.escape(str(artifact['workload']))} &middot; "
               f"{html.escape(str(artifact['scheme']))}</h2>")
    meta_bits = [f"cycles {artifact.get('cycles')}"]
    if artifact.get("config_fingerprint"):
        meta_bits.append(f"config {artifact['config_fingerprint']}")
    if artifact.get("git_sha"):
        meta_bits.append(f"git {str(artifact['git_sha'])[:12]}")
    out.append(f"<p class='meta'>{' &middot; '.join(meta_bits)}</p>")
    cells = []
    for name in ("total_ipc", "weighted_speedup", "antt", "fairness",
                 "lsu_stall_pct", "dram_row_hit_rate"):
        value = metrics.get(name)
        if value is not None:
            cells.append(f"<th>{html.escape(name)}</th>")
    row = []
    for name in ("total_ipc", "weighted_speedup", "antt", "fairness",
                 "lsu_stall_pct", "dram_row_hit_rate"):
        value = metrics.get(name)
        if value is not None:
            row.append(f"<td>{float(value):.4f}</td>")
    out.append("<table><tr>" + "".join(cells) + "</tr><tr>"
               + "".join(row) + "</tr></table>")
    shares = artifact.get("stall_shares")
    if shares:
        known = {reason: shares[reason]
                 for reason in ("issued",) + SCHED_STALL_REASONS
                 if reason in shares}
        out.append("<h3>issue-slot mix</h3>")
        out.append(_stacked_bar(known))
        out.append(_stall_legend(known))
    for record in artifact.get("phases", []):
        out.append(_series_block(record, kernels))
        out.append(_adapt_block(record, kernels))
    return "".join(out)


def render_dashboard(artifacts: Sequence[Dict[str, object]],
                     title: str = "repro run dashboard") -> str:
    """Full standalone HTML document for a set of artifacts."""
    body = "".join(_artifact_section(artifact) for artifact in artifacts)
    if not artifacts:
        body = "<p>no artifacts found</p>"
    return ("<!DOCTYPE html><html><head><meta charset='utf-8'>"
            f"<title>{html.escape(title)}</title>"
            f"<style>{_CSS}</style></head><body>"
            f"<h1>{html.escape(title)}</h1>{body}</body></html>")


def write_dashboard(path: str, artifacts: Sequence[Dict[str, object]],
                    title: Optional[str] = None) -> None:
    doc = render_dashboard(artifacts, title or "repro run dashboard")
    with open(path, "w") as fh:
        fh.write(doc)
