"""Chrome trace-event recorder (Perfetto / ``chrome://tracing``).

Emits the JSON-object variant of the Trace Event Format:
``{"traceEvents": [...], "displayTimeUnit": "ms"}``.  One simulated
core cycle maps to one microsecond of trace time, so a 10K-cycle run
renders as a 10 ms timeline.

Event kinds used by the simulator:

* ``ph:"X"`` complete slices for warp issue events (pid = SM,
  tid = scheduler), behind ``issue_sample`` (record every Nth issue);
* ``ph:"b"/"n"/"e"`` async slices for memory request lifetimes
  (issue → L1D outcome → to-L2 → L2 hit/miss → DRAM → fill delivery /
  writeback), behind ``mem_sample`` (trace every Nth L1D request);
* ``ph:"i"`` instants for DMIL limit recomputations and QBMI quota
  replenishments;
* ``ph:"C"`` counter events for sampled quantities (e.g. the DMIL
  limit over time);
* ``ph:"M"`` metadata naming the SM "processes" and scheduler
  "threads".

``max_events`` caps the buffer; once full, further events are counted
in ``dropped`` instead of recorded, so a long traced run degrades
gracefully rather than exhausting memory.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

#: default buffer cap — ~40MB of JSON worst case, loads fine in Perfetto.
DEFAULT_MAX_EVENTS = 200_000


class TraceRecorder:
    """Buffered trace-event sink with sampling controls."""

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS,
                 issue_sample: int = 1, mem_sample: int = 1):
        if max_events < 1:
            raise ValueError("max_events must be positive")
        if issue_sample < 1 or mem_sample < 1:
            raise ValueError("sampling intervals must be >= 1")
        self.max_events = max_events
        self.issue_sample = issue_sample
        self.mem_sample = mem_sample
        self.events: List[Dict[str, object]] = []
        self.dropped = 0
        self._issue_seen = 0
        self._mem_seen = 0
        self._next_async_id = 0
        self._named_pids: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    # sampling decisions
    def want_issue(self) -> bool:
        """True when the next warp-issue event should be recorded."""
        self._issue_seen += 1
        return (self._issue_seen % self.issue_sample) == 0

    def next_mem_id(self) -> Optional[int]:
        """Async-slice id for the next memory request, or ``None`` when
        the request falls outside the sampling interval / buffer cap."""
        self._mem_seen += 1
        if (self._mem_seen % self.mem_sample) != 0:
            return None
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return None
        self._next_async_id += 1
        return self._next_async_id

    # ------------------------------------------------------------------
    # event emission
    def _add(self, event: Dict[str, object]) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def name_process(self, pid: int, name: str) -> None:
        """Emit the metadata event labelling ``pid`` (once per pid)."""
        if self._named_pids.get(pid):
            return
        self._named_pids[pid] = True
        self._add({"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                   "args": {"name": name}})

    def name_thread(self, pid: int, tid: int, name: str) -> None:
        self._add({"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                   "args": {"name": name}})

    def complete(self, name: str, cat: str, pid: int, tid: int, ts: int,
                 dur: int, args: Optional[Dict[str, object]] = None) -> None:
        event: Dict[str, object] = {"ph": "X", "name": name, "cat": cat,
                                    "pid": pid, "tid": tid, "ts": ts,
                                    "dur": dur}
        if args:
            event["args"] = args
        self._add(event)

    def instant(self, name: str, cat: str, pid: int, ts: int,
                args: Optional[Dict[str, object]] = None,
                tid: int = 0) -> None:
        event: Dict[str, object] = {"ph": "i", "name": name, "cat": cat,
                                    "pid": pid, "tid": tid, "ts": ts,
                                    "s": "t"}
        if args:
            event["args"] = args
        self._add(event)

    def counter(self, name: str, pid: int, ts: int,
                values: Dict[str, float]) -> None:
        self._add({"ph": "C", "name": name, "pid": pid, "tid": 0, "ts": ts,
                   "args": dict(values)})

    def async_begin(self, name: str, cat: str, pid: int, event_id: int,
                    ts: int, args: Optional[Dict[str, object]] = None) -> None:
        event: Dict[str, object] = {"ph": "b", "name": name, "cat": cat,
                                    "pid": pid, "tid": 0, "ts": ts,
                                    "id": event_id}
        if args:
            event["args"] = args
        self._add(event)

    def async_instant(self, name: str, cat: str, pid: int, event_id: int,
                      ts: int,
                      args: Optional[Dict[str, object]] = None) -> None:
        event: Dict[str, object] = {"ph": "n", "name": name, "cat": cat,
                                    "pid": pid, "tid": 0, "ts": ts,
                                    "id": event_id}
        if args:
            event["args"] = args
        self._add(event)

    def async_end(self, name: str, cat: str, pid: int, event_id: int,
                  ts: int) -> None:
        self._add({"ph": "e", "name": name, "cat": cat, "pid": pid,
                   "tid": 0, "ts": ts, "id": event_id})

    # ------------------------------------------------------------------
    # export
    def to_json_obj(self) -> Dict[str, object]:
        return {
            "traceEvents": self.events,
            "displayTimeUnit": "ms",
            "otherData": {
                "source": "repro simulator",
                "time_unit": "1 core cycle = 1us",
                "dropped_events": self.dropped,
                "issue_sample": self.issue_sample,
                "mem_sample": self.mem_sample,
            },
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json_obj(), fh)
            fh.write("\n")


def write_trace_events(path: str, events: List[Dict[str, object]],
                       dropped: int = 0) -> None:
    """Write an already-collected event list (e.g. carried inside a
    pickled :class:`~repro.obs.collector.ObsReport`) as a loadable
    Chrome trace JSON file."""
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro simulator",
                      "dropped_events": dropped},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
        fh.write("\n")
