"""Cross-run artifact comparison: the simulated-metric regression gate.

`repro compare A B` loads two artifact sets written by
:mod:`repro.obs.ledger` (directories or single files), pairs them by
``(workload, scheme)`` and reports per-workload IPC / weighted-speedup
deltas, the largest stall-mix share shifts, and the geomean of the
B/A total-IPC ratios.  With ``--check`` the CLI exits nonzero when the
geomean drops below ``1 - threshold%`` — the simulated-metric
counterpart of the wall-clock ``repro bench --check`` gate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.ledger import load_artifacts

#: default allowed geomean total-IPC drop, percent.
DEFAULT_THRESHOLD_PCT = 2.0


@dataclass
class CellComparison:
    """One (workload, scheme) cell present in both artifact sets."""

    workload: str
    scheme: str
    ipc_a: float
    ipc_b: float
    ws_a: Optional[float]
    ws_b: Optional[float]
    #: reason -> share change in percentage points (B - A).
    stall_shifts: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc_ratio(self) -> float:
        return self.ipc_b / self.ipc_a if self.ipc_a else 0.0

    @property
    def ipc_delta_pct(self) -> float:
        return (self.ipc_ratio - 1.0) * 100.0 if self.ipc_a else 0.0

    def top_stall_shift(self) -> Optional[Tuple[str, float]]:
        if not self.stall_shifts:
            return None
        reason = max(self.stall_shifts,
                     key=lambda r: abs(self.stall_shifts[r]))
        return reason, self.stall_shifts[reason]


@dataclass
class Comparison:
    """Everything `repro compare` prints and gates on."""

    cells: List[CellComparison]
    only_a: List[Tuple[str, str]]
    only_b: List[Tuple[str, str]]

    def geomean_ratio(self) -> float:
        ratios = [cell.ipc_ratio for cell in self.cells if cell.ipc_ratio > 0]
        if not ratios:
            return 0.0
        return math.exp(sum(math.log(r) for r in ratios) / len(ratios))

    def regressed(self, threshold_pct: float = DEFAULT_THRESHOLD_PCT) -> bool:
        """True when the geomean total-IPC ratio drops more than the
        threshold (or no cells could be compared at all)."""
        if not self.cells:
            return True
        return self.geomean_ratio() < 1.0 - threshold_pct / 100.0


def _stall_shifts(a: Dict[str, object],
                  b: Dict[str, object]) -> Dict[str, float]:
    shares_a = a.get("stall_shares") or {}
    shares_b = b.get("stall_shares") or {}
    shifts: Dict[str, float] = {}
    for reason in sorted(set(shares_a) | set(shares_b)):
        delta = (shares_b.get(reason, 0.0) - shares_a.get(reason, 0.0)) * 100.0
        if abs(delta) > 1e-12:
            shifts[reason] = delta
    return shifts


def compare_paths(path_a: str, path_b: str) -> Comparison:
    """Load two artifact sets and pair them by (workload, scheme)."""
    set_a = load_artifacts(path_a)
    set_b = load_artifacts(path_b)
    cells: List[CellComparison] = []
    for key in sorted(set_a.keys() & set_b.keys()):
        a, b = set_a[key], set_b[key]
        cells.append(CellComparison(
            workload=key[0],
            scheme=key[1],
            ipc_a=float(a["metrics"].get("total_ipc", 0.0)),
            ipc_b=float(b["metrics"].get("total_ipc", 0.0)),
            ws_a=a["metrics"].get("weighted_speedup"),
            ws_b=b["metrics"].get("weighted_speedup"),
            stall_shifts=_stall_shifts(a, b),
        ))
    return Comparison(
        cells=cells,
        only_a=sorted(set_a.keys() - set_b.keys()),
        only_b=sorted(set_b.keys() - set_a.keys()),
    )


def format_comparison(comparison: Comparison,
                      threshold_pct: float = DEFAULT_THRESHOLD_PCT) -> str:
    """Human-readable diff table plus the geomean verdict line."""
    lines: List[str] = []
    header = (f"{'workload':<24} {'scheme':<12} {'ipc A':>9} {'ipc B':>9} "
              f"{'delta':>8}  top stall shift")
    lines.append(header)
    lines.append("-" * len(header))
    for cell in comparison.cells:
        shift = cell.top_stall_shift()
        shift_txt = (f"{shift[0]} {shift[1]:+.2f}pp" if shift else "-")
        lines.append(
            f"{cell.workload:<24} {cell.scheme:<12} "
            f"{cell.ipc_a:>9.4f} {cell.ipc_b:>9.4f} "
            f"{cell.ipc_delta_pct:>+7.2f}%  {shift_txt}")
    for key in comparison.only_a:
        lines.append(f"{key[0]:<24} {key[1]:<12} (only in A)")
    for key in comparison.only_b:
        lines.append(f"{key[0]:<24} {key[1]:<12} (only in B)")
    if comparison.cells:
        geomean = comparison.geomean_ratio()
        verdict = ("REGRESSION" if comparison.regressed(threshold_pct)
                   else "ok")
        lines.append("")
        lines.append(f"geomean total-IPC ratio B/A: {geomean:.4f} "
                     f"({(geomean - 1.0) * 100.0:+.2f}%, "
                     f"threshold -{threshold_pct:g}%) -> {verdict}")
    else:
        lines.append("")
        lines.append("no overlapping (workload, scheme) cells to compare")
    return "\n".join(lines)
