"""Run-artifact ledger: durable, self-describing JSON records of runs.

Every run/campaign can emit one versioned artifact per
``(workload, scheme)`` cell under an artifacts directory: config
fingerprint, git sha, scheme, workload pair, aggregate metrics,
stall-mix shares and (when the phase sampler was on) the full phase
records from :mod:`repro.obs.timeline`.  Artifacts are the durable
counterpart of the live campaign heartbeats — `repro compare` diffs two
artifact sets for CI regression gating and `repro dash` renders them
into a standalone HTML dashboard.

Deliberately stdlib-only and wall-clock-free (REPRO-D003): an artifact
of a deterministic run is itself deterministic, which is what lets CI
compare against a *committed* golden artifact byte-for-byte.  Writes
use the same atomic temp-file + ``os.replace`` and corrupt/stale-
tolerant read idiom as the harness disk caches.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from dataclasses import asdict
from typing import Dict, List, Optional, Sequence, Tuple

#: bump when the artifact schema changes; loaders skip other versions.
ARTIFACT_VERSION = 1

#: index file written next to the per-cell artifacts.
INDEX_NAME = "ledger.json"


def config_fingerprint(config) -> str:
    """Stable short fingerprint of a (dataclass) GPU config."""
    payload = json.dumps(asdict(config), sort_keys=True)
    return hashlib.md5(payload.encode()).hexdigest()[:16]


def current_git_sha(root: Optional[str] = None) -> Optional[str]:
    """The repo's HEAD sha, or None when git is unavailable."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=root,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def artifact_from_outcome(outcome, config=None, settings=None,
                          git_sha: Optional[str] = None,
                          provenance: Optional[Dict[str, object]] = None
                          ) -> Dict[str, object]:
    """Build one artifact dict from a harness
    :class:`~repro.harness.runner.WorkloadOutcome`.

    ``provenance`` (resilient campaigns only) records how the cell was
    obtained — attempts, journal resume, absorbed faults.  It is only
    embedded when degradation actually happened, so a fault-free
    resilient campaign emits artifacts byte-identical to the plain
    executor's (and to committed goldens)."""
    result = outcome.result
    obs = result.obs
    slots = list(range(len(result.kernel_names)))
    metrics: Dict[str, object] = {
        "weighted_speedup": outcome.weighted_speedup,
        "antt": outcome.antt,
        "fairness": outcome.fairness,
        "iso_ipcs": list(outcome.iso_ipcs),
        "shared_ipcs": list(outcome.shared_ipcs),
        "norm_ipcs": list(outcome.norm_ipcs),
        "total_ipc": result.total_ipc(),
        "l1d_miss_rates": [result.l1d_miss_rate(slot) for slot in slots],
        "lsu_stall_pct": result.lsu_stall_pct(),
        "dram_row_hit_rate": result.dram_row_hit_rate,
    }
    stall_shares: Optional[Dict[str, float]] = None
    lsu_shares: Optional[Dict[str, float]] = None
    phases: List[Dict[str, object]] = []
    if obs is not None:
        stall_shares = obs.sched_stall_shares()
        table = obs.stall_table()
        total_lsu = sum(obs.lsu_stalls.values())
        lsu_shares = {reason: (count / total_lsu if total_lsu else 0.0)
                      for reason, count in table.lsu_by_reason().items()}
        phases = list(obs.phases)
    artifact: Dict[str, object] = {
        "artifact_version": ARTIFACT_VERSION,
        "kind": "run",
        "workload": outcome.mix_name,
        "mix_class": outcome.mix_class,
        "scheme": outcome.scheme,
        "partition": list(outcome.partition),
        "kernels": list(result.kernel_names),
        "cycles": result.cycles,
        "seed": getattr(settings, "seed", None),
        "config_fingerprint": (config_fingerprint(config)
                               if config is not None else None),
        "git_sha": git_sha,
        "metrics": metrics,
        "stall_shares": stall_shares,
        "lsu_stall_shares": lsu_shares,
        "phases": phases,
    }
    if provenance is not None:
        artifact["provenance"] = provenance
    return artifact


def artifact_slug(workload: str, scheme: str) -> str:
    """Filesystem-safe ``workload__scheme`` artifact file stem."""
    raw = f"{workload}__{scheme}"
    return "".join(ch if ch.isalnum() or ch in "-_." else "-" for ch in raw)


def _atomic_write_json(path: str, payload: object) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def _read_json(path: str) -> Optional[object]:
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def write_artifact(directory: str, artifact: Dict[str, object]) -> str:
    """Atomically write one artifact; returns its path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(
        directory,
        artifact_slug(artifact["workload"], artifact["scheme"]) + ".json")
    _atomic_write_json(path, artifact)
    return path


def write_artifacts(directory: str,
                    artifacts: Sequence[Dict[str, object]],
                    campaign: Optional[Dict[str, object]] = None
                    ) -> List[str]:
    """Write a set of artifacts plus the ``ledger.json`` index.

    ``campaign`` (resilient campaigns only) embeds a degradation block
    in the index — ``campaign.retries``, ``campaign.quarantined``,
    ``campaign.resumed`` and the journal name — so a ledger records
    not just what was measured but how bumpy the measuring was.  A
    fault-free plain campaign writes the index unchanged."""
    paths = [write_artifact(directory, artifact) for artifact in artifacts]
    entries = [{"workload": artifact["workload"],
                "scheme": artifact["scheme"],
                "file": os.path.basename(path)}
               for artifact, path in zip(artifacts, paths)]
    entries.sort(key=lambda entry: entry["file"])
    index: Dict[str, object] = {"artifact_version": ARTIFACT_VERSION,
                                "entries": entries}
    if campaign is not None:
        index["campaign"] = campaign
    _atomic_write_json(os.path.join(directory, INDEX_NAME), index)
    return paths


def load_artifact(path: str) -> Optional[Dict[str, object]]:
    """One artifact, or None when the file is corrupt, not an artifact,
    or written by a different schema version (stale-version tolerance
    mirrors the harness trace cache)."""
    record = _read_json(path)
    if not isinstance(record, dict):
        return None
    if record.get("artifact_version") != ARTIFACT_VERSION:
        return None
    if "workload" not in record or "scheme" not in record:
        return None
    return record


def load_artifacts(path: str) -> Dict[Tuple[str, str], Dict[str, object]]:
    """All valid artifacts under ``path`` keyed ``(workload, scheme)``.

    ``path`` may be an artifacts directory or a single artifact file.
    Corrupt and stale-version files are skipped, not fatal.
    """
    loaded: Dict[Tuple[str, str], Dict[str, object]] = {}
    if os.path.isdir(path):
        for name in sorted(os.listdir(path)):
            if not name.endswith(".json") or name == INDEX_NAME:
                continue
            artifact = load_artifact(os.path.join(path, name))
            if artifact is not None:
                loaded[(artifact["workload"], artifact["scheme"])] = artifact
    else:
        artifact = load_artifact(path)
        if artifact is not None:
            loaded[(artifact["workload"], artifact["scheme"])] = artifact
    return loaded
