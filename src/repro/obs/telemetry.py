"""Live telemetry for parallel experiment campaigns.

``run_jobs`` accepts any ``progress`` callable taking one
:class:`JobHeartbeat` per finished job; :class:`CampaignTelemetry` is
the standard consumer — it tracks throughput (jobs/s and simulated
cycles/s), estimates time remaining from the per-job cycle budgets,
and (optionally) prints one heartbeat line per completed job:

.. code-block:: text

    [ 12/48  25.0%] mix rbmi+dmil mc+mc          2.31s   1.4Mcyc/s  eta 83s
    [ 13/48  27.1%] iso mc (cache)               0.00s              eta 78s

Cache hits are flagged and excluded from the throughput estimate so a
warm rerun doesn't report absurd cycle rates.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import IO, List, Optional


@dataclass(frozen=True)
class JobHeartbeat:
    """One campaign job event, as seen by the dispatching parent.

    Most beats are completions (``event="done"``); the resilient
    executor (:mod:`repro.harness.resilience`) additionally emits
    ``"retry"`` (an attempt failed, the cell will run again — not a
    completion), ``"quarantined"`` (retry budget exhausted, the cell's
    slot holds a placeholder) and ``"resumed"`` (replayed from the
    checkpoint journal without executing).
    """

    index: int          #: 1-based completion index
    total: int          #: total jobs in the campaign
    label: str          #: human label, e.g. ``"mix rbmi+dmil mc+mc"``
    duration_s: float   #: wall-clock seconds inside the worker (0 if cached)
    sim_cycles: int     #: simulated cycles the job covers (its budget)
    cache_hit: bool = False
    attempt: int = 1    #: 1-based attempt number (resilient executor)
    event: str = "done"           #: done | retry | quarantined | resumed
    fault: Optional[str] = None   #: what failed, e.g. ``"timeout"``

    @property
    def cycles_per_s(self) -> float:
        if self.cache_hit or self.duration_s <= 0:
            return 0.0
        return self.sim_cycles / self.duration_s

    @property
    def completed(self) -> bool:
        """Whether this beat fills the cell's result slot (retry beats
        report churn, not progress)."""
        return self.event != "retry"


class CampaignTelemetry:
    """Progress consumer for ``run_jobs``/``run_campaign``.

    Pass the instance itself as the ``progress`` callback.  Thread-safe
    enough for the harness's usage: heartbeats arrive from the single
    dispatching thread (``as_completed`` loop), never from workers.
    """

    def __init__(self, stream: Optional[IO[str]] = None, quiet: bool = False):
        self.stream = stream if stream is not None else sys.stderr
        self.quiet = quiet
        self.heartbeats: List[JobHeartbeat] = []
        self._started = time.monotonic()
        self._sim_cycles_done = 0
        self._busy_seconds = 0.0
        self._cache_hits = 0
        self._completed = 0
        self._retries = 0
        self._quarantined = 0
        self._resumed = 0

    # ------------------------------------------------------------------
    def __call__(self, beat: JobHeartbeat) -> None:
        self.heartbeats.append(beat)
        if not beat.completed:
            # A failed attempt: churn, not progress.  Its wall-clock is
            # excluded from the pace estimate — retried work shows up
            # again in the successful attempt's beat.
            self._retries += 1
        else:
            self._completed += 1
            if beat.event == "quarantined":
                self._quarantined += 1
            elif beat.event == "resumed":
                self._resumed += 1
            if beat.cache_hit:
                self._cache_hits += 1
            else:
                self._sim_cycles_done += beat.sim_cycles
                self._busy_seconds += beat.duration_s
        if not self.quiet:
            self.stream.write(self.format_beat(beat) + "\n")
            self.stream.flush()

    # ------------------------------------------------------------------
    # derived figures
    @property
    def jobs_done(self) -> int:
        return self._completed

    @property
    def cache_hits(self) -> int:
        return self._cache_hits

    @property
    def retries(self) -> int:
        return self._retries

    @property
    def quarantined(self) -> int:
        return self._quarantined

    @property
    def resumed(self) -> int:
        return self._resumed

    def elapsed_s(self) -> float:
        return time.monotonic() - self._started

    def cycles_per_s(self) -> float:
        """Aggregate simulated-cycle throughput over uncached jobs
        (sum of worker-side busy time, so parallel workers show the
        per-worker rate, not an inflated wall-clock rate)."""
        if self._busy_seconds <= 0:
            return 0.0
        return self._sim_cycles_done / self._busy_seconds

    def eta_s(self) -> Optional[float]:
        """Wall-clock estimate for the remaining jobs, from the mean
        wall-clock pace of *uncached* jobs so far.  Cache hits complete
        instantly, so counting them in the pace (or dividing wall-clock
        by a done-count dominated by hits, with elapsed ≈ 0) would
        grossly understate the remaining time on a warm rerun.  ``None``
        before the first heartbeat or until an uncached job has
        finished."""
        done = self.jobs_done
        if not done or not self.heartbeats:
            return None
        total = self.heartbeats[-1].total
        remaining = max(0, total - done)
        if not remaining:
            return 0.0
        uncached = done - self._cache_hits
        if not uncached:
            # Only instant cache hits so far: no usable pace signal.
            return None
        elapsed = self.elapsed_s()
        if elapsed <= 0:
            return None
        return remaining * (elapsed / uncached)

    # ------------------------------------------------------------------
    # rendering
    def format_beat(self, beat: JobHeartbeat) -> str:
        pct = 100.0 * beat.index / beat.total if beat.total else 0.0
        head = f"[{beat.index:3d}/{beat.total:<3d} {pct:5.1f}%]"
        label = beat.label if len(beat.label) <= 28 else beat.label[:25] + "..."
        if beat.event == "retry":
            return (f"{head} {label:<36} !retry: attempt "
                    f"{beat.attempt} failed ({beat.fault})")
        if beat.event == "quarantined":
            return (f"{head} {label:<36} !quarantined after "
                    f"{beat.attempt} attempts ({beat.fault})")
        if beat.cache_hit:
            marker = " (journal)" if beat.event == "resumed" else " (cache)"
            mid = f"{label + marker:<36} {beat.duration_s:6.2f}s"
            rate = " " * 11
        else:
            mid = f"{label:<36} {beat.duration_s:6.2f}s"
            rate_v = self.cycles_per_s()
            if not rate_v:
                rate = " " * 11
            elif rate_v >= 1e6:
                rate = f" {rate_v / 1e6:5.1f}Mc/s"
            else:
                rate = f" {rate_v / 1e3:5.0f}kc/s"
        eta = self.eta_s()
        tail = f"  eta {eta:4.0f}s" if eta is not None else ""
        return f"{head} {mid}{rate}{tail}"

    def summary(self) -> str:
        """One closing line for the campaign."""
        done = self.jobs_done
        elapsed = self.elapsed_s()
        rate = self.cycles_per_s()
        bits = [f"{done} jobs in {elapsed:.1f}s"]
        if self._cache_hits:
            bits.append(f"{self._cache_hits} cached")
        if self._resumed:
            bits.append(f"{self._resumed} resumed")
        if self._retries:
            bits.append(f"{self._retries} retries")
        if self._quarantined:
            bits.append(f"{self._quarantined} quarantined")
        if rate >= 1e6:
            bits.append(f"{rate / 1e6:.1f}M sim-cycles/s per worker")
        elif rate:
            bits.append(f"{rate / 1e3:.0f}k sim-cycles/s per worker")
        return "campaign: " + ", ".join(bits)


@dataclass
class NullTelemetry:
    """Progress sink that only counts (for tests / quiet embedding)."""

    heartbeats: List[JobHeartbeat] = field(default_factory=list)

    def __call__(self, beat: JobHeartbeat) -> None:
        self.heartbeats.append(beat)
