"""repro — reproduction of "Accelerate GPU Concurrent Kernel Execution
by Mitigating Memory Pipeline Stalls" (Dai et al., HPCA 2018).

A cycle-level GPU simulator with intra-SM concurrent kernel execution
(CKE) plus the paper's mechanisms: balanced memory-request issuing
(RBMI/QBMI), memory instruction limiting (SMIL/DMIL), UCP L1D cache
partitioning, on top of Warped-Slicer / SMK / spatial-multitasking TB
partitioners.

Quickstart::

    from repro import scaled_config, SchemeConfig
    from repro.harness import run_pair

    cfg = scaled_config()
    outcome = run_pair("bp", "sv", SchemeConfig(mil="dmil"), cfg)
    print(outcome.weighted_speedup)
"""

from repro.config import MAXWELL_CONFIG, CacheConfig, GPUConfig, scaled_config
from repro.core.arbiter import SchemeConfig
from repro.sim.engine import GPU, KernelLaunch, make_launches
from repro.workloads import ALL_PROFILES, get_profile

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "GPUConfig",
    "MAXWELL_CONFIG",
    "scaled_config",
    "SchemeConfig",
    "GPU",
    "KernelLaunch",
    "make_launches",
    "ALL_PROFILES",
    "get_profile",
    "__version__",
]
