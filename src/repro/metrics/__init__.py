"""Multiprogramming metrics used throughout the paper's evaluation,
plus the §4.5 event-based energy model."""

from repro.metrics.energy import EnergyModel, EnergyReport, energy_report
from repro.metrics.speedup import (
    antt,
    fairness,
    normalized_ipcs,
    weighted_speedup,
)

__all__ = [
    "normalized_ipcs",
    "weighted_speedup",
    "antt",
    "fairness",
    "EnergyModel",
    "EnergyReport",
    "energy_report",
]
