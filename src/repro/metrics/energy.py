"""A coarse event-based energy model (paper §4.5's efficiency claim).

The paper argues that although its schemes may raise average dynamic
power (computing units busier), *energy efficiency improves because
leakage is amortised over more useful work*.  With fixed-length
measurement windows this translates directly: leakage energy is
constant per run, so instructions-per-joule rises exactly when the
schemes raise throughput.

Per-event energies are in arbitrary "units" chosen for realistic
relative magnitudes (an L2 access ≈ 3× an L1 access, a DRAM access an
order of magnitude beyond that); they are configuration data, not
measurements — swap in CACTI/GPUWattch numbers via
:class:`EnergyModel` if you have them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim.stats import RunResult


@dataclass(frozen=True)
class EnergyModel:
    """Per-event dynamic energies plus per-SM static leakage."""

    alu_op: float = 1.0
    sfu_op: float = 4.0
    issue_op: float = 0.5
    l1_access: float = 10.0
    l2_access: float = 30.0
    dram_access: float = 200.0
    icnt_flit: float = 2.0
    #: static leakage per SM per cycle.
    leakage_per_sm_cycle: float = 20.0

    def __post_init__(self) -> None:
        for name in ("alu_op", "sfu_op", "l1_access", "l2_access",
                     "dram_access", "leakage_per_sm_cycle"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one run."""

    dynamic: float
    leakage: float
    instructions: int
    cycles: int

    @property
    def total(self) -> float:
        return self.dynamic + self.leakage

    @property
    def avg_power(self) -> float:
        """Energy per cycle (arbitrary units)."""
        return self.total / self.cycles if self.cycles else 0.0

    @property
    def insts_per_energy(self) -> float:
        """The efficiency figure of merit (higher is better)."""
        return self.instructions / self.total if self.total else 0.0

    def breakdown(self) -> Dict[str, float]:
        return {
            "dynamic": self.dynamic,
            "leakage": self.leakage,
            "total": self.total,
            "insts_per_energy": self.insts_per_energy,
        }


def energy_report(result: RunResult,
                  model: EnergyModel = EnergyModel()) -> EnergyReport:
    """Apply the event-energy model to one run's activity counters."""
    alu = sum(k.alu_insts for k in result.kernels.values())
    sfu = sum(k.sfu_insts for k in result.kernels.values())
    insts = result.total_insts()
    l1_events = (sum(result.l1d_accesses.values())
                 + sum(result.l1d_rsfails.values()))
    dynamic = (
        alu * model.alu_op
        + sfu * model.sfu_op
        + insts * model.issue_op
        + l1_events * model.l1_access
        + result.l2_accesses * model.l2_access
        + result.dram_accesses * model.dram_access
        + result.icnt_flits * model.icnt_flit
    )
    leakage = model.leakage_per_sm_cycle * result.num_sms * result.cycles
    return EnergyReport(dynamic=dynamic, leakage=leakage,
                        instructions=insts, cycles=result.cycles)
