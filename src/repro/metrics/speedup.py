"""Weighted speedup, ANTT and fairness (paper §2.3, after [10]).

All metrics build on the per-kernel *normalized IPC*: IPC during
concurrent execution divided by IPC when the kernel runs alone at its
default occupancy.

* **Weighted speedup** — Σᵢ normalized_ipcᵢ (higher is better; equals
  the kernel count under perfect sharing).
* **ANTT** — average normalized turnaround time, (1/n)·Σᵢ
  (1/normalized_ipcᵢ): the mean user-perceived slowdown (lower is
  better).
* **Fairness** — min(normalized_ipc) / max(normalized_ipc) (higher is
  better; 1.0 means all kernels slow down equally).
"""

from __future__ import annotations

from typing import List, Sequence


def normalized_ipcs(shared_ipcs: Sequence[float],
                    isolated_ipcs: Sequence[float]) -> List[float]:
    """Per-kernel speedups of concurrent over isolated execution."""
    if len(shared_ipcs) != len(isolated_ipcs):
        raise ValueError("one isolated IPC per kernel required")
    if any(ipc <= 0 for ipc in isolated_ipcs):
        raise ValueError("isolated IPCs must be positive")
    return [s / i for s, i in zip(shared_ipcs, isolated_ipcs)]


def weighted_speedup(norm_ipcs: Sequence[float]) -> float:
    if not norm_ipcs:
        raise ValueError("need at least one kernel")
    return float(sum(norm_ipcs))


def antt(norm_ipcs: Sequence[float]) -> float:
    """Average Normalized Turnaround Time (lower is better)."""
    if not norm_ipcs:
        raise ValueError("need at least one kernel")
    if any(n <= 0 for n in norm_ipcs):
        return float("inf")
    return sum(1.0 / n for n in norm_ipcs) / len(norm_ipcs)


def fairness(norm_ipcs: Sequence[float]) -> float:
    """Lowest over highest normalized IPC (higher is better)."""
    if not norm_ipcs:
        raise ValueError("need at least one kernel")
    top = max(norm_ipcs)
    if top <= 0:
        return 0.0
    return min(norm_ipcs) / top
