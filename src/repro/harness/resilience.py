"""Resilient campaign execution: timeouts, retries, quarantine, a
checkpoint journal and deterministic fault injection.

The plain executor (:mod:`repro.harness.parallel`) assumes every worker
finishes cleanly — one crashed or hung process strands the whole
parameter sweep.  This module wraps the same job model in a robustness
layer, in the shape shared-environment schedulers treat as table
stakes: worker failure, stragglers and partial results are expected
events, not campaign aborts.

* :class:`ResiliencePolicy` — per-job wall-clock timeout, retry count
  with exponential backoff, and quarantine-instead-of-abort once the
  retry budget is exhausted.
* :func:`run_jobs_resilient` — a self-managed worker pool (one task
  pipe per worker, a shared result queue) that detects dead workers,
  kills and respawns hung ones, retries failed cells with backoff and
  returns a :class:`ResilienceReport` of the degradation alongside the
  results.  Results stay bit-identical to a fault-free run: a retry
  re-executes the same deterministic simulation.
* :class:`CampaignJournal` — an append-only, atomic, versioned
  checkpoint journal under the harness cache dir.  Every completed
  cell's pickled result rides in the journal with a SHA-256
  fingerprint; ``repro campaign --resume`` replays verified entries
  and re-runs only unfinished / quarantined / corrupted cells, yielding
  a merged report bit-identical to an uninterrupted campaign.
* :class:`FaultPlan` — a seeded, deterministic fault-injection
  schedule (worker kills, injected hangs, poisoned cells, unpicklable
  results, cache/journal corruption), activated in worker processes
  via ``$REPRO_FAULT_PLAN`` (loaded by ``parallel._init_worker``).
  Each fault fires a bounded number of times, coordinated across
  processes by exclusive marker-file claims, so the chaos tests can
  script "kill the worker on this cell, once" and know the retry will
  succeed.
* :class:`JobError` — a picklable failure that carries the worker's
  full formatted traceback across the process boundary (the bare
  exception repr the pool used to surface loses the stack).

See docs/RESILIENCE.md for the journal schema and FaultPlan format.
"""

from __future__ import annotations

import base64
import fnmatch
import glob as globmod
import hashlib
import json
import multiprocessing
import os
import pickle
import queue as queuemod
import signal
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness import parallel as _par
from repro.harness.runner import CACHE_VERSION, ExperimentRunner
from repro.obs.telemetry import JobHeartbeat

#: environment variable naming the active fault-plan JSON file.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: bump when the journal line schema changes; loaders skip other
#: versions (same stale-tolerance contract as the artifact ledger).
JOURNAL_VERSION = 1

#: fault kinds a plan may schedule.
FAULT_KINDS = ("kill", "hang", "raise", "unpicklable", "corrupt")


# ----------------------------------------------------------------------
# picklable worker failures
class JobError(Exception):
    """A job failure that survives the process boundary intact.

    Exceptions raised inside pool workers are pickled back to the
    parent; the original traceback object does not pickle, so only the
    bare repr used to arrive.  ``JobError`` captures the *formatted*
    worker-side stack as a string at raise time — ``str(err)`` in the
    parent shows the full remote traceback.
    """

    def __init__(self, label: str, original_type: str, formatted: str):
        super().__init__(label, original_type, formatted)
        self.label = label
        self.original_type = original_type
        self.formatted = formatted

    @classmethod
    def from_exception(cls, label: str, exc: BaseException) -> "JobError":
        formatted = "".join(traceback.format_exception(
            type(exc), exc, exc.__traceback__))
        return cls(label, type(exc).__name__, formatted)

    def __str__(self) -> str:
        return (f"job {self.label!r} failed with {self.original_type}; "
                f"worker traceback:\n{self.formatted}")

    def __reduce__(self):
        return (JobError, (self.label, self.original_type, self.formatted))


class FaultInjected(RuntimeError):
    """Raised by a ``raise``-kind fault (a deliberately poisoned cell)."""


class _Unpicklable:
    """Result wrapper whose pickling always fails (fault injection)."""

    def __init__(self, inner):
        self.inner = inner

    def __reduce__(self):
        raise TypeError("deliberately unpicklable result (fault injection)")


# ----------------------------------------------------------------------
# deterministic fault injection
@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``match`` is an :mod:`fnmatch` glob over the job label (e.g.
    ``"mix ws st+sv"`` or ``"mix ws-dmil *"``); ``times`` bounds how
    often the fault fires campaign-wide (claims are coordinated across
    worker processes through marker files); ``seconds`` is the hang
    duration for ``hang`` faults; ``path`` is the file glob a
    ``corrupt`` fault garbles (first sorted match).
    """

    id: str
    kind: str
    match: str = "*"
    times: int = 1
    seconds: float = 3600.0
    path: Optional[str] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(expected one of {FAULT_KINDS})")


class FaultPlan:
    """A deterministic schedule of injected faults.

    The plan is a JSON file named by ``$REPRO_FAULT_PLAN``; worker
    processes load it during ``_init_worker`` and consult it around
    every job.  Firing is *claimed* before it happens: fault ``f`` with
    ``times=N`` owns marker slots ``f.fired.0 .. f.fired.N-1`` in the
    plan's state directory, and a worker fires only after exclusively
    creating one (``open(..., "x")`` — atomic on POSIX).  A killed
    worker leaves its claim behind, so the retried cell runs clean:
    the schedule is deterministic no matter which worker draws the job.
    """

    VERSION = 1

    def __init__(self, faults: Sequence[FaultSpec], state_dir: str,
                 seed: int = 0):
        self.faults = list(faults)
        self.state_dir = state_dir
        self.seed = seed
        ids = [f.id for f in self.faults]
        if len(set(ids)) != len(ids):
            raise ValueError("fault ids must be unique")

    # ------------------------------------------------------------------
    # (de)serialisation
    def to_file(self, path: str) -> str:
        payload = {
            "version": self.VERSION,
            "seed": self.seed,
            "state_dir": self.state_dir,
            "faults": [{k: v for k, v in {
                "id": f.id, "kind": f.kind, "match": f.match,
                "times": f.times, "seconds": f.seconds, "path": f.path,
            }.items() if v is not None} for f in self.faults],
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return path

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path) as fh:
            payload = json.load(fh)
        if payload.get("version") != cls.VERSION:
            raise ValueError(f"unsupported fault-plan version "
                             f"{payload.get('version')!r}")
        state_dir = payload.get("state_dir") or (path + ".state")
        faults = [FaultSpec(
            id=str(entry["id"]), kind=str(entry["kind"]),
            match=str(entry.get("match", "*")),
            times=int(entry.get("times", 1)),
            seconds=float(entry.get("seconds", 3600.0)),
            path=entry.get("path"),
        ) for entry in payload.get("faults", [])]
        return cls(faults, state_dir, seed=int(payload.get("seed", 0)))

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan named by ``$REPRO_FAULT_PLAN``, or None.  Unreadable
        plans are an explicit error — a chaos run silently running
        fault-free would pass tests it should fail."""
        path = os.environ.get(FAULT_PLAN_ENV)
        if not path:
            return None
        return cls.from_file(path)

    # ------------------------------------------------------------------
    # the claim protocol
    def _claim(self, spec: FaultSpec) -> bool:
        """Exclusively claim one remaining firing of ``spec``; False
        when its ``times`` budget is exhausted."""
        os.makedirs(self.state_dir, exist_ok=True)
        for n in range(spec.times):
            marker = os.path.join(self.state_dir, f"{spec.id}.fired.{n}")
            try:
                with open(marker, "x") as fh:
                    fh.write(f"pid={os.getpid()}\n")
                return True
            except FileExistsError:
                continue
        return False

    def fired(self, fault_id: str) -> int:
        """How many times fault ``fault_id`` has fired so far."""
        pattern = os.path.join(self.state_dir, f"{fault_id}.fired.*")
        return len(globmod.glob(pattern))

    def _matching(self, label: str, kinds: Tuple[str, ...]
                  ) -> List[FaultSpec]:
        return [f for f in self.faults
                if f.kind in kinds and fnmatch.fnmatchcase(label, f.match)]

    # ------------------------------------------------------------------
    # firing
    def fire_pre(self, label: str, in_worker: bool = True) -> None:
        """Faults that strike before/while the job runs.  ``kill`` and
        ``hang`` only make sense in a sacrificial worker process — the
        serial in-process path skips them (killing the parent would
        take the campaign down with it, which is exactly what the
        resilience layer exists to prevent)."""
        for spec in self._matching(label, ("kill", "hang", "raise")):
            if spec.kind in ("kill", "hang") and not in_worker:
                continue
            if not self._claim(spec):
                continue
            if spec.kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif spec.kind == "hang":
                time.sleep(spec.seconds)
            else:
                raise FaultInjected(
                    f"fault {spec.id!r} poisoned cell {label!r}")

    def mutate_result(self, label: str, result):
        """``unpicklable`` faults wrap the finished result in a shell
        whose pickling fails, modelling a worker that computed fine but
        cannot ship its answer home."""
        for spec in self._matching(label, ("unpicklable",)):
            if self._claim(spec):
                return _Unpicklable(result)
        return result

    def fire_post(self, label: str) -> None:
        """``corrupt`` faults garble one on-disk file (cache record,
        journal, artifact) after the job completes, exercising every
        reader's corrupt-tolerance path."""
        for spec in self._matching(label, ("corrupt",)):
            if not spec.path or not self._claim(spec):
                continue
            matches = sorted(globmod.glob(spec.path))
            if matches:
                with open(matches[0], "w") as fh:
                    fh.write("{corrupt")


# ----------------------------------------------------------------------
# the checkpoint journal
def job_key(job) -> str:
    """Stable identity of one job.  Frozen dataclasses of str/int/bool
    fields repr deterministically, and the repr carries every field
    that affects the simulated result (kernels, scheme, cycles, obs)."""
    return f"{type(job).__name__}:{job!r}"


def journal_key(runner: ExperimentRunner) -> str:
    """Campaign-identity fingerprint naming the journal file: config +
    settings + cache version.  Job keys already carry the per-cell
    identity, so one journal per (config, settings) is safe to share
    across campaigns — foreign cells simply never match."""
    blob = f"{CACHE_VERSION}:{runner._cfg_key}:{runner.settings!r}"
    return hashlib.md5(blob.encode()).hexdigest()[:16]


def default_journal_path(runner: ExperimentRunner) -> Optional[str]:
    """``<cache_dir>/journal/campaign-<key>.jsonl`` or None when the
    runner has no cache dir to durably write under."""
    if not runner.cache_dir:
        return None
    return os.path.join(runner.cache_dir, "journal",
                        f"campaign-{journal_key(runner)}.jsonl")


class CampaignJournal:
    """Append-only checkpoint journal of completed campaign cells.

    One JSON object per line.  A ``done`` entry carries the cell's
    pickled result (base64) plus its SHA-256 fingerprint; a
    ``quarantine`` entry records a cell abandoned after the retry
    budget.  Appends are a single buffered write + flush + fsync, so a
    crash can tear at most the final line — and the loader treats any
    unparsable line, wrong-version entry or fingerprint mismatch as
    "cell not checkpointed", never as an error.  Resume therefore
    re-runs exactly the cells it cannot prove finished.
    """

    def __init__(self, path: str):
        self.path = path
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)

    def reset(self) -> None:
        """Start a fresh campaign: drop any previous journal."""
        try:
            os.unlink(self.path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    def _append(self, entry: Dict[str, object]) -> None:
        line = json.dumps(entry, sort_keys=True)
        try:
            with open(self.path, "a") as fh:
                fh.write(line + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        except OSError:
            # The journal is a recovery aid, never a correctness
            # dependency of the in-flight campaign.
            pass

    def record_done(self, job, result) -> None:
        blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        self._append({
            "v": JOURNAL_VERSION,
            "kind": "done",
            "key": job_key(job),
            "label": _par._job_label(job),
            "sha": hashlib.sha256(blob).hexdigest(),
            "blob": base64.b64encode(blob).decode("ascii"),
        })

    def record_quarantine(self, job, faults: Sequence[str]) -> None:
        self._append({
            "v": JOURNAL_VERSION,
            "kind": "quarantine",
            "key": job_key(job),
            "label": _par._job_label(job),
            "faults": list(faults),
        })

    # ------------------------------------------------------------------
    def load(self) -> Tuple[Dict[str, object], Dict[str, List[str]]]:
        """Verified checkpoints: ``(done, quarantined)`` keyed by job
        key.  Entries replay in order — a later ``done`` supersedes an
        earlier ``quarantine`` of the same cell (the resumed run
        finished it)."""
        done: Dict[str, object] = {}
        quarantined: Dict[str, List[str]] = {}
        try:
            with open(self.path) as fh:
                lines = fh.readlines()
        except OSError:
            return done, quarantined
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn/corrupt line: not checkpointed
            if not isinstance(entry, dict) \
                    or entry.get("v") != JOURNAL_VERSION:
                continue
            key = entry.get("key")
            if not isinstance(key, str):
                continue
            kind = entry.get("kind")
            if kind == "done":
                try:
                    blob = base64.b64decode(entry["blob"],
                                            validate=True)
                except (KeyError, ValueError, TypeError):
                    continue
                if hashlib.sha256(blob).hexdigest() != entry.get("sha"):
                    continue  # corrupted checkpoint: re-run the cell
                try:
                    done[key] = pickle.loads(blob)
                except Exception:
                    continue
                quarantined.pop(key, None)
            elif kind == "quarantine":
                faults = entry.get("faults")
                quarantined[key] = (list(faults)
                                    if isinstance(faults, list) else [])
                done.pop(key, None)
        return done, quarantined


# ----------------------------------------------------------------------
# policy and per-cell accounting
@dataclass(frozen=True)
class ResiliencePolicy:
    """Retry/timeout/quarantine behaviour of one resilient batch.

    ``timeout_s`` is the per-attempt wall-clock budget (None disables
    preemption); a cell gets ``retries`` extra attempts after its
    first, sleeping ``backoff_s * backoff_factor**(attempt-1)`` between
    them; once the budget is gone the cell is quarantined (campaign
    continues) unless ``quarantine`` is False (the first exhausted cell
    re-raises and aborts the batch, pre-PR behaviour).
    """

    timeout_s: Optional[float] = None
    retries: int = 2
    backoff_s: float = 0.25
    backoff_factor: float = 2.0
    quarantine: bool = True

    def backoff_after(self, attempt: int) -> float:
        """Seconds to wait before re-dispatching after failed attempt
        number ``attempt`` (1-based)."""
        return self.backoff_s * (self.backoff_factor ** (attempt - 1))

    @property
    def max_attempts(self) -> int:
        return max(1, self.retries + 1)


@dataclass(frozen=True)
class Quarantined:
    """Placeholder result of a cell abandoned after the retry budget."""

    label: str
    faults: Tuple[str, ...] = ()


@dataclass
class CellReport:
    """Degradation accounting for one unique job."""

    label: str
    attempts: int = 0
    faults: List[str] = field(default_factory=list)
    resumed: bool = False
    quarantined: bool = False


class ResilienceReport:
    """What the resilient executor had to absorb for one batch.

    A plain class with per-instance state: the report is built
    parent-side and handed back to the caller, never shared through
    the class object (REPRO-R002 discipline).
    """

    def __init__(self, cells: Optional[Dict[str, CellReport]] = None):
        self.cells: Dict[str, CellReport] = dict(cells) if cells else {}

    def cell(self, job) -> CellReport:
        key = job_key(job)
        if key not in self.cells:
            self.cells[key] = CellReport(label=_par._job_label(job))
        return self.cells[key]

    @property
    def retries(self) -> int:
        return sum(max(0, c.attempts - 1) for c in self.cells.values())

    @property
    def quarantined(self) -> List[str]:
        return [c.label for c in self.cells.values() if c.quarantined]

    @property
    def resumed(self) -> int:
        return sum(1 for c in self.cells.values() if c.resumed)

    def merged(self, other: "ResilienceReport") -> "ResilienceReport":
        out = ResilienceReport(dict(self.cells))
        out.cells.update(other.cells)
        return out

    def summary(self) -> str:
        bits = [f"{len(self.cells)} cells"]
        if self.resumed:
            bits.append(f"{self.resumed} resumed from journal")
        if self.retries:
            bits.append(f"{self.retries} retries")
        quarantined = self.quarantined
        if quarantined:
            bits.append(f"{len(quarantined)} quarantined "
                        f"({', '.join(quarantined)})")
        return "resilience: " + ", ".join(bits)


# ----------------------------------------------------------------------
# the resilient worker pool
def _resilient_worker_main(worker_id: int, conn, result_q, config, settings,
                           cache_dir, iso_seed, curve_seed) -> None:
    """Worker loop: receive ``(seq, job)`` on the private pipe, execute,
    ship ``(worker_id, blob)`` on the shared result queue.

    The payload is pre-pickled *in the worker*: an unpicklable result
    is detected here and converted into a :class:`JobError`, instead of
    dying inside the queue's feeder thread where the parent would only
    see silence (and misread it as a hang)."""
    _par._init_worker(config, settings, cache_dir, iso_seed, curve_seed)
    plan = _par._worker_fault_plan()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        seq, job = msg
        label = _par._job_label(job)
        start = time.perf_counter()
        try:
            if plan is not None:
                plan.fire_pre(label)
            result = _par.execute_job(_par._WORKER_RUNNER, job)
            if plan is not None:
                result = plan.mutate_result(label, result)
                plan.fire_post(label)
            payload = ("ok", seq, time.perf_counter() - start, result)
        except Exception as exc:
            err = (exc if isinstance(exc, JobError)
                   else JobError.from_exception(label, exc))
            payload = ("err", seq, time.perf_counter() - start, err)
        try:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            err = JobError(label, type(exc).__name__,
                           f"result of {label!r} could not be pickled "
                           f"across the process boundary: {exc}")
            blob = pickle.dumps(("err", seq, time.perf_counter() - start,
                                 err), protocol=pickle.HIGHEST_PROTOCOL)
        result_q.put((worker_id, blob))


class _Worker:
    """One sacrificial worker process plus its private task pipe."""

    def __init__(self, ctx, worker_id: int, init_payload, result_q):
        self.id = worker_id
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        self.conn = send_conn
        self.proc = ctx.Process(
            target=_resilient_worker_main,
            args=(worker_id, recv_conn, result_q) + tuple(init_payload),
            daemon=True)
        self.proc.start()
        recv_conn.close()
        #: (seq, job, attempt, deadline | None) while busy.
        self.busy: Optional[Tuple[int, object, int, Optional[float]]] = None

    def dispatch(self, seq: int, job, attempt: int,
                 deadline: Optional[float]) -> bool:
        try:
            self.conn.send((seq, job))
        except (OSError, ValueError):
            return False
        self.busy = (seq, job, attempt, deadline)
        return True

    def alive(self) -> bool:
        return self.proc.is_alive()

    def kill(self) -> None:
        try:
            self.proc.kill()
        except (OSError, AttributeError):  # pragma: no cover - defensive
            try:
                self.proc.terminate()
            except OSError:
                pass
        self.proc.join(timeout=5.0)

    def shutdown(self) -> None:
        try:
            self.conn.send(None)
        except (OSError, ValueError):
            pass
        self.proc.join(timeout=2.0)
        if self.proc.is_alive():
            self.kill()
        try:
            self.conn.close()
        except OSError:
            pass


class _ResilientDispatch:
    """Parent-side state machine for one resilient batch."""

    #: result-queue poll granularity; also bounds how late a timeout
    #: can be noticed.  Jobs here take >= tens of milliseconds, so a
    #: 50 ms tick costs nothing measurable.
    POLL_S = 0.05

    def __init__(self, runner: ExperimentRunner, pending: List,
                 policy: ResiliencePolicy, nworkers: int,
                 report: ResilienceReport, journal: Optional[CampaignJournal],
                 progress, done_offset: int, total: int):
        self.runner = runner
        self.policy = policy
        self.report = report
        self.journal = journal
        self.progress = progress
        self.total = total
        self.done = done_offset
        self.results: Dict[object, object] = {}
        self.jobs = list(pending)
        #: FIFO of (seq, attempt) ready to dispatch now.
        self.runnable: List[Tuple[int, int]] = [
            (seq, 1) for seq in range(len(self.jobs))]
        #: (eligible_monotonic, seq, attempt) sleeping out a backoff.
        self.backoff: List[Tuple[float, int, int]] = []
        self.outstanding = len(self.jobs)
        self.ctx = multiprocessing.get_context()
        self.result_q = self.ctx.Queue()
        self.init_payload = (runner.config, runner.settings,
                             runner.cache_dir) + _par._seed_payload(runner)
        self.workers = [_Worker(self.ctx, wid, self.init_payload,
                                self.result_q)
                        for wid in range(nworkers)]
        self._next_wid = nworkers

    # ------------------------------------------------------------------
    def run(self) -> Dict[object, object]:
        try:
            while self.outstanding:
                self._promote_backoff()
                self._dispatch_ready()
                self._drain_results()
                self._reap_dead_and_timed_out()
        finally:
            for worker in self.workers:
                worker.shutdown()
            self.result_q.close()
        return self.results

    # ------------------------------------------------------------------
    def _promote_backoff(self) -> None:
        if not self.backoff:
            return
        now = time.monotonic()
        ready = [entry for entry in self.backoff if entry[0] <= now]
        if ready:
            self.backoff = [e for e in self.backoff if e[0] > now]
            # Deterministic order: by seq, so retried cells re-enter
            # the queue in input order.
            for _when, seq, attempt in sorted(ready, key=lambda e: e[1]):
                self.runnable.append((seq, attempt))

    def _dispatch_ready(self) -> None:
        for worker in self.workers:
            if not self.runnable:
                return
            if worker.busy is not None:
                continue
            if not worker.alive():
                self._respawn(worker)
                continue
            seq, attempt = self.runnable.pop(0)
            job = self.jobs[seq]
            deadline = (time.monotonic() + self.policy.timeout_s
                        if self.policy.timeout_s else None)
            cell = self.report.cell(job)
            cell.attempts += 1
            if not worker.dispatch(seq, job, attempt, deadline):
                # Broken pipe: treat as a crash of this attempt.
                cell.attempts -= 1
                self.runnable.insert(0, (seq, attempt))
                self._respawn(worker)

    def _respawn(self, worker: _Worker) -> None:
        index = self.workers.index(worker)
        worker.shutdown()
        self.workers[index] = _Worker(self.ctx, self._next_wid,
                                      self.init_payload, self.result_q)
        self._next_wid += 1

    # ------------------------------------------------------------------
    def _wait_timeout(self) -> float:
        timeout = self.POLL_S
        now = time.monotonic()
        for worker in self.workers:
            if worker.busy and worker.busy[3] is not None:
                timeout = min(timeout, max(0.0, worker.busy[3] - now))
        for when, _seq, _attempt in self.backoff:
            timeout = min(timeout, max(0.0, when - now))
        return max(0.001, timeout)

    def _drain_results(self) -> None:
        try:
            wid, blob = self.result_q.get(timeout=self._wait_timeout())
        except queuemod.Empty:
            return
        while True:
            self._handle_result(wid, blob)
            try:
                wid, blob = self.result_q.get_nowait()
            except queuemod.Empty:
                return

    def _worker_by_id(self, wid: int) -> Optional[_Worker]:
        for worker in self.workers:
            if worker.id == wid:
                return worker
        return None

    def _handle_result(self, wid: int, blob: bytes) -> None:
        worker = self._worker_by_id(wid)
        if worker is None or worker.busy is None:
            return  # stale message from a worker already reaped
        seq, job, attempt, _deadline = worker.busy
        worker.busy = None
        try:
            status, got_seq, duration, payload = pickle.loads(blob)
        except Exception:
            self._attempt_failed(seq, attempt, "garbled-result", 0.0)
            return
        if got_seq != seq:  # pragma: no cover - protocol safety net
            self._attempt_failed(seq, attempt, "desequenced-result", 0.0)
            return
        if status == "ok":
            self._attempt_succeeded(seq, payload, duration, attempt)
        else:
            fault = f"error:{payload.original_type}" \
                if isinstance(payload, JobError) else "error"
            self._attempt_failed(seq, attempt, fault, duration,
                                 error=payload)

    def _reap_dead_and_timed_out(self) -> None:
        now = time.monotonic()
        for worker in self.workers:
            if worker.busy is None:
                if not worker.alive():
                    self._respawn(worker)
                continue
            seq, job, attempt, deadline = worker.busy
            if not worker.alive():
                worker.busy = None
                self._respawn(worker)
                self._attempt_failed(seq, attempt, "worker-crash", 0.0)
            elif deadline is not None and now > deadline:
                worker.busy = None
                worker.kill()
                self._respawn(worker)
                self._attempt_failed(seq, attempt, "timeout",
                                     self.policy.timeout_s or 0.0)

    # ------------------------------------------------------------------
    def _attempt_succeeded(self, seq: int, result, duration: float,
                           attempt: int) -> None:
        job = self.jobs[seq]
        if job in self.results:
            return  # pragma: no cover - duplicate completion guard
        self.results[job] = result
        self.outstanding -= 1
        self.done += 1
        if self.journal is not None:
            self.journal.record_done(job, result)
        if self.progress is not None:
            self.progress(JobHeartbeat(
                index=self.done, total=self.total,
                label=_par._job_label(job), duration_s=duration,
                sim_cycles=_par._job_cycles(self.runner, job),
                attempt=attempt))

    def _attempt_failed(self, seq: int, attempt: int, fault: str,
                        duration: float, error: Optional[JobError] = None
                        ) -> None:
        job = self.jobs[seq]
        cell = self.report.cell(job)
        cell.faults.append(fault)
        label = _par._job_label(job)
        if attempt < self.policy.max_attempts:
            eligible = time.monotonic() + self.policy.backoff_after(attempt)
            self.backoff.append((eligible, seq, attempt + 1))
            if self.progress is not None:
                self.progress(JobHeartbeat(
                    index=self.done, total=self.total, label=label,
                    duration_s=duration, sim_cycles=0,
                    attempt=attempt, event="retry", fault=fault))
            return
        # Retry budget exhausted.
        if not self.policy.quarantine:
            raise error if error is not None else JobError(
                label, fault, f"cell {label!r} failed with {fault!r} "
                              f"after {attempt} attempts")
        cell.quarantined = True
        self.results[job] = Quarantined(label, tuple(cell.faults))
        self.outstanding -= 1
        self.done += 1
        if self.journal is not None:
            self.journal.record_quarantine(job, cell.faults)
        if self.progress is not None:
            self.progress(JobHeartbeat(
                index=self.done, total=self.total, label=label,
                duration_s=duration, sim_cycles=0,
                attempt=attempt, event="quarantined", fault=fault))


# ----------------------------------------------------------------------
# serial fallback
def _run_serial_resilient(runner: ExperimentRunner, pending: List,
                          policy: ResiliencePolicy,
                          report: ResilienceReport,
                          journal: Optional[CampaignJournal],
                          progress, done_offset: int, total: int
                          ) -> Dict[object, object]:
    """In-process fallback: retries, quarantine and ``raise`` /
    ``unpicklable`` / ``corrupt`` faults still apply; preemptive
    timeouts and ``kill`` / ``hang`` faults need a sacrificial worker
    process and are skipped (documented in docs/RESILIENCE.md)."""
    plan = _par._worker_fault_plan(load=True)
    results: Dict[object, object] = {}
    done = done_offset
    for job in pending:
        label = _par._job_label(job)
        cell = report.cell(job)
        result = None
        for attempt in range(1, policy.max_attempts + 1):
            cell.attempts += 1
            start = time.perf_counter()
            try:
                if plan is not None:
                    plan.fire_pre(label, in_worker=False)
                result = _par.execute_job(runner, job)
                if plan is not None:
                    result = plan.mutate_result(label, result)
                    plan.fire_post(label)
                if isinstance(result, _Unpicklable):
                    raise JobError(label, "TypeError",
                                   f"result of {label!r} could not be "
                                   f"pickled across the process boundary")
            except Exception as exc:
                error = (exc if isinstance(exc, JobError)
                         else JobError.from_exception(label, exc))
                fault = f"error:{error.original_type}"
                cell.faults.append(fault)
                duration = time.perf_counter() - start
                if attempt < policy.max_attempts:
                    if progress is not None:
                        progress(JobHeartbeat(
                            index=done, total=total, label=label,
                            duration_s=duration, sim_cycles=0,
                            attempt=attempt, event="retry", fault=fault))
                    time.sleep(policy.backoff_after(attempt))
                    continue
                if not policy.quarantine:
                    raise error from None
                cell.quarantined = True
                results[job] = Quarantined(label, tuple(cell.faults))
                done += 1
                if journal is not None:
                    journal.record_quarantine(job, cell.faults)
                if progress is not None:
                    progress(JobHeartbeat(
                        index=done, total=total, label=label,
                        duration_s=duration, sim_cycles=0,
                        attempt=attempt, event="quarantined", fault=fault))
                break
            else:
                results[job] = result
                done += 1
                if journal is not None:
                    journal.record_done(job, result)
                if progress is not None:
                    progress(JobHeartbeat(
                        index=done, total=total, label=label,
                        duration_s=time.perf_counter() - start,
                        sim_cycles=_par._job_cycles(runner, job),
                        attempt=attempt))
                break
    return results


# ----------------------------------------------------------------------
# batch + campaign entry points
def run_jobs_resilient(runner: ExperimentRunner, jobs: Sequence,
                       policy: Optional[ResiliencePolicy] = None,
                       workers: Optional[int] = None,
                       progress=None,
                       journal: Optional[CampaignJournal] = None,
                       resume: bool = False,
                       fault_plan: Optional[str] = None,
                       report: Optional[ResilienceReport] = None
                       ) -> Tuple[List, ResilienceReport]:
    """Execute ``jobs`` under ``policy``; returns ``(results, report)``
    with results in input order (quarantined cells yield
    :class:`Quarantined` placeholders).

    Semantics mirror :func:`repro.harness.parallel.run_jobs` — dedup,
    input-order results, Iso/Curve cache absorption — plus the
    robustness layer: per-attempt timeouts, retry with exponential
    backoff, dead-worker respawn, quarantine, and (when ``journal`` is
    given) checkpointing of every completed cell.  ``resume=True``
    replays the journal's verified checkpoints and re-runs only the
    unfinished/quarantined remainder; ``resume=False`` resets it.
    ``fault_plan`` exports ``$REPRO_FAULT_PLAN`` to the workers for the
    duration of the batch (chaos tests drive this).
    """
    policy = policy or ResiliencePolicy()
    report = report if report is not None else ResilienceReport()
    unique: List = list(dict.fromkeys(jobs))
    results: Dict[object, object] = {}
    if not unique:
        return [], report
    total = len(unique)
    pending = unique
    checkpoints: Dict[str, object] = {}
    if journal is not None:
        if resume:
            checkpoints, _quarantined = journal.load()
        else:
            journal.reset()
    done = 0
    if checkpoints:
        pending = []
        for job in unique:
            payload = checkpoints.get(job_key(job))
            if payload is None:
                pending.append(job)
                continue
            results[job] = payload
            cell = report.cell(job)
            cell.resumed = True
            done += 1
            if progress is not None:
                progress(JobHeartbeat(
                    index=done, total=total, label=_par._job_label(job),
                    duration_s=0.0,
                    sim_cycles=_par._job_cycles(runner, job),
                    cache_hit=True, event="resumed"))
    plan_env_set = False
    prior_plan = os.environ.get(FAULT_PLAN_ENV)
    if fault_plan is not None:
        os.environ[FAULT_PLAN_ENV] = fault_plan
        plan_env_set = True
    try:
        # Unlike run_jobs, no CPU-count cap: resilient workers exist
        # for fault *isolation* (a sacrificial process to kill or
        # preempt), not just throughput, so an explicit workers=N must
        # spawn real processes even on a single-core host — they
        # timeshare, results are identical, and timeouts/kills work.
        # The pending-count clamp only avoids idle processes; whether
        # to use the pool at all follows the *requested* parallelism
        # (a single pending cell under workers=2 still needs a
        # sacrificial worker, or its timeout could never preempt).
        resolved = _par.PoolConfig(workers=workers).resolved_workers()
        nworkers = min(resolved, len(pending)) if pending else 0
        executed: Dict[object, object] = {}
        if pending:
            if resolved > 1:
                try:
                    dispatch = _ResilientDispatch(
                        runner, pending, policy, nworkers, report,
                        journal, progress, done, total)
                    executed = dispatch.run()
                except (OSError, ValueError, ImportError):
                    # No usable multiprocessing here: degrade to the
                    # in-process loop (same results, fewer guarantees).
                    executed = _run_serial_resilient(
                        runner, pending, policy, report, journal,
                        progress, done, total)
            else:
                executed = _run_serial_resilient(
                    runner, pending, policy, report, journal, progress,
                    done, total)
        results.update(executed)
    finally:
        if plan_env_set:
            if prior_plan is None:
                os.environ.pop(FAULT_PLAN_ENV, None)
            else:
                os.environ[FAULT_PLAN_ENV] = prior_plan
    for job in unique:
        result = results[job]
        if not isinstance(result, Quarantined):
            _par._absorb(runner, job, result)
    return [results[job] for job in jobs], report


def run_campaign_resilient(runner: ExperimentRunner,
                           mixes: Sequence, schemes: Sequence[str],
                           policy: Optional[ResiliencePolicy] = None,
                           workers: Optional[int] = None,
                           cycles: Optional[int] = None,
                           obs: bool = False,
                           progress=None,
                           phase_interval: Optional[int] = None,
                           artifacts_dir: Optional[str] = None,
                           journal_path: Optional[str] = None,
                           resume: bool = False,
                           fault_plan: Optional[str] = None):
    """The resilient analogue of
    :func:`repro.harness.parallel.run_campaign`: same two phases
    (shared inputs, then the mixes×schemes grid), same mix-major
    outcome order, same bit-identical results — but a crashed, hung or
    poisoned cell is retried, then quarantined, instead of stranding
    the sweep.  Returns ``(outcomes, report)`` where quarantined cells
    appear as :class:`Quarantined` placeholders.

    The checkpoint journal lives at ``journal_path`` (default: under
    the runner's cache dir; no cache dir means no journal).
    ``resume=True`` replays it and re-runs only unfinished /
    quarantined cells.  When ``artifacts_dir`` is given, completed
    cells are written to the run-artifact ledger with per-cell resume
    provenance and a campaign-level degradation block
    (``campaign.retries`` / ``campaign.quarantined``).
    """
    policy = policy or ResiliencePolicy()
    if journal_path is None:
        journal_path = default_journal_path(runner)
    if resume and journal_path is None:
        raise ValueError(
            "--resume needs a checkpoint journal: give the runner a "
            "cache dir or pass journal_path explicitly")
    journal = CampaignJournal(journal_path) if journal_path else None
    if journal is not None and not resume:
        journal.reset()
    report = ResilienceReport()
    _prefetch, report = run_jobs_resilient(
        runner, _par.prefetch_jobs(mixes, schemes), policy=policy,
        workers=workers, progress=progress, journal=journal,
        resume=resume, fault_plan=fault_plan, report=report)
    cells = _par.campaign_jobs(mixes, schemes, cycles, obs=obs,
                               phase_interval=phase_interval)
    outcomes, report = run_jobs_resilient(
        runner, cells, policy=policy, workers=workers,
        progress=progress, journal=journal, resume=True,
        fault_plan=fault_plan, report=report)
    if artifacts_dir:
        from repro.obs import ledger
        sha = ledger.current_git_sha()
        artifacts = []
        # run_jobs_resilient returns results in cell order, so the
        # grid job and its outcome pair positionally.
        for job, outcome in zip(cells, outcomes):
            if isinstance(outcome, Quarantined):
                continue
            cell = report.cells.get(job_key(job))
            provenance = None
            if cell is not None and (cell.resumed or cell.attempts > 1
                                     or cell.faults):
                provenance = {
                    "attempts": cell.attempts,
                    "resumed": cell.resumed,
                    "faults": list(cell.faults),
                }
            artifacts.append(ledger.artifact_from_outcome(
                outcome, runner.config, runner.settings, git_sha=sha,
                provenance=provenance))
        ledger.write_artifacts(artifacts_dir, artifacts, campaign={
            "retries": report.retries,
            "quarantined": report.quarantined,
            "resumed": report.resumed,
            "journal": (os.path.basename(journal_path)
                        if journal_path else None),
        })
    return outcomes, report
