"""One driver per paper table/figure (see DESIGN.md §4).

Every driver takes an :class:`~repro.harness.runner.ExperimentRunner`
(so isolated-profiling runs are shared and cached across drivers) and
returns plain data structures that the benches print and that
``EXPERIMENTS.md`` records.  Cycle budgets scale through the runner's
settings, so the same drivers serve quick CI benches and longer
campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cke.warped_slicer import sweet_spot, theoretical_weighted_speedup
from repro.core.bmi import QuotaBMI
from repro.core.mil import MILG
from repro.harness.reporting import geomean
from repro.harness.runner import ExperimentRunner, WorkloadOutcome
from repro.workloads.mixes import (
    WorkloadMix,
    mix,
    paper_pairs,
    representative_pairs,
    representative_triples,
)
from repro.workloads.profiles import ALL_PROFILES

#: scheme sets used by the main-result figures.
WS_SCHEMES = ("spatial", "ws", "ws-qbmi", "ws-dmil")
SMK_SCHEMES = ("smk-p+w", "smk-p+qbmi", "smk-p+dmil")


# ----------------------------------------------------------------------
# Table 2 / Figure 2 — workload characterisation
def table2_characteristics(runner: ExperimentRunner) -> List[Dict[str, object]]:
    """Per-benchmark characteristics (paper Table 2), measured on the
    scaled machine, with the paper's reference values alongside."""
    rows = []
    for profile in ALL_PROFILES:
        iso = runner.isolated(profile)
        occ = profile.occupancy(runner.config)
        rows.append({
            "name": profile.name,
            "rf_oc": occ["rf"], "smem_oc": occ["smem"],
            "thread_oc": occ["threads"], "tb_oc": occ["tbs"],
            "cinst_per_minst": profile.cinst_per_minst,
            "req_per_minst": profile.reqs_per_minst,
            "l1d_miss_rate": iso.l1d_miss_rate,
            "l1d_rsfail_rate": iso.l1d_rsfail_rate,
            "lsu_stall_pct": iso.lsu_stall_pct,
            "type": profile.kind,
            "paper": profile.paper,
        })
    return rows


def classify_measured(rows: Sequence[Dict[str, object]],
                      stall_threshold: float = 0.20) -> Dict[str, str]:
    """The paper's classification rule: >20% LSU stall cycles ⇒
    memory-intensive.  On the scaled machine the same rule separates
    the classes (C kernels sit well below, M kernels well above)."""
    return {str(r["name"]): ("M" if float(r["lsu_stall_pct"]) > stall_threshold
                             else "C")
            for r in rows}


def figure2_utilization(runner: ExperimentRunner) -> List[Dict[str, float]]:
    """ALU/SFU utilization and LSU stall fraction per benchmark,
    sorted by decreasing ALU utilization (paper Figure 2)."""
    rows = []
    for profile in ALL_PROFILES:
        iso = runner.isolated(profile)
        rows.append({
            "name": profile.name,
            "alu_utilization": iso.alu_utilization,
            "sfu_utilization": iso.sfu_utilization,
            "lsu_stall_pct": iso.lsu_stall_pct,
        })
    rows.sort(key=lambda r: -float(r["alu_utilization"]))
    return rows


# ----------------------------------------------------------------------
# Figure 3 — scalability curves and the sweet spot
@dataclass
class SweetSpotResult:
    pair: str
    curves: Dict[str, Tuple[float, ...]]
    partition: Tuple[int, ...]
    theoretical_ws: float


def figure3_sweet_spot(runner: ExperimentRunner, a: str = "bp",
                       b: str = "sv") -> SweetSpotResult:
    m = mix(a, b)
    profiles = list(m.profiles)
    curves = [runner.curve(p) for p in profiles]
    partition = sweet_spot(profiles, curves, runner.config)
    return SweetSpotResult(
        pair=m.name,
        curves={c.kernel: c.ipc_by_tbs for c in curves},
        partition=tuple(partition),
        theoretical_ws=theoretical_weighted_speedup(curves, partition),
    )


# ----------------------------------------------------------------------
# Figure 4 — theoretical vs achieved weighted speedup
@dataclass
class GapRow:
    mix_name: str
    mix_class: str
    theoretical: float
    achieved: float


def figure4_gap(runner: ExperimentRunner,
                pairs: Optional[Sequence[WorkloadMix]] = None,
                cycles: Optional[int] = None) -> List[GapRow]:
    pairs = list(pairs) if pairs is not None else representative_pairs(3)
    rows = []
    for m in pairs:
        profiles = list(m.profiles)
        curves = [runner.curve(p) for p in profiles]
        partition = sweet_spot(profiles, curves, runner.config)
        theo = theoretical_weighted_speedup(curves, partition)
        outcome = runner.run_mix(m, "ws", cycles=cycles)
        rows.append(GapRow(m.name, m.mix_class, theo, outcome.weighted_speedup))
    return rows


def gap_by_class(rows: Sequence[GapRow]) -> Dict[str, Tuple[float, float]]:
    """Geometric means per class (paper Figure 4 bars)."""
    classes: Dict[str, List[GapRow]] = {}
    for row in rows:
        classes.setdefault(row.mix_class, []).append(row)
    classes["ALL"] = list(rows)
    return {
        cls: (geomean([r.theoretical for r in rs]),
              geomean([r.achieved for r in rs]))
        for cls, rs in classes.items()
    }


# ----------------------------------------------------------------------
# generic scheme-comparison sweeps (Figures 5, 11, 12, 13)
@dataclass
class SchemeSweep:
    """Outcomes for a set of workloads × a set of schemes."""

    schemes: Tuple[str, ...]
    outcomes: Dict[str, Dict[str, WorkloadOutcome]] = field(default_factory=dict)

    def add(self, outcome: WorkloadOutcome) -> None:
        self.outcomes.setdefault(outcome.mix_name, {})[outcome.scheme] = outcome

    def mixes(self) -> List[str]:
        return list(self.outcomes)

    def outcome(self, mix_name: str, scheme: str) -> WorkloadOutcome:
        return self.outcomes[mix_name][scheme]

    def class_of(self, mix_name: str) -> str:
        return next(iter(self.outcomes[mix_name].values())).mix_class

    def classes(self) -> List[str]:
        seen: List[str] = []
        for name in self.outcomes:
            cls = self.class_of(name)
            if cls not in seen:
                seen.append(cls)
        return seen

    def mean_metric(self, scheme: str, metric: str,
                    mix_class: Optional[str] = None) -> float:
        values = [getattr(per_mix[scheme], metric)
                  for name, per_mix in self.outcomes.items()
                  if mix_class is None or self.class_of(name) == mix_class]
        return geomean(values)

    def improvement(self, scheme: str, baseline: str,
                    metric: str = "weighted_speedup") -> float:
        """Mean relative improvement of ``scheme`` over ``baseline``."""
        return (self.mean_metric(scheme, metric)
                / self.mean_metric(baseline, metric) - 1.0)


def scheme_sweep(runner: ExperimentRunner, schemes: Sequence[str],
                 workloads: Sequence[WorkloadMix],
                 cycles: Optional[int] = None,
                 policy=None, resume: bool = False) -> SchemeSweep:
    """The workloads×schemes grid behind every scheme-comparison
    figure, fanned over worker processes when the host allows (the
    pool size resolves from ``$REPRO_BENCH_WORKERS``/CPU count; one
    worker degrades to the serial loop).  Outcomes are bit-identical
    to serial execution either way.

    ``policy`` (a :class:`~repro.harness.resilience.ResiliencePolicy`)
    or ``resume=True`` routes the grid through the resilient executor:
    crashed/hung cells are retried then quarantined instead of
    stranding the sweep, completed cells checkpoint to the journal, and
    ``resume`` re-runs only the unfinished remainder.  Quarantined
    cells are simply absent from the sweep (their metrics never
    existed), so downstream geomeans stay well-defined."""
    sweep = SchemeSweep(tuple(schemes))
    if policy is not None or resume:
        from repro.harness.resilience import Quarantined
        outcomes, _report = runner.run_campaign_resilient(
            list(workloads), list(schemes), policy=policy,
            cycles=cycles, resume=resume)
        for outcome in outcomes:
            if not isinstance(outcome, Quarantined):
                sweep.add(outcome)
        return sweep
    for outcome in runner.run_campaign(list(workloads), list(schemes),
                                       cycles=cycles):
        sweep.add(outcome)
    return sweep


def figure5_cache_partitioning(runner: ExperimentRunner,
                               cycles: Optional[int] = None) -> SchemeSweep:
    """WS vs WS + UCP L1D partitioning on the six case-study pairs."""
    return scheme_sweep(runner, ("ws", "ws-ucp"), paper_pairs(), cycles)


def figure11_qbmi_vs_dmil(runner: ExperimentRunner,
                          cycles: Optional[int] = None) -> SchemeSweep:
    return scheme_sweep(runner, ("ws-qbmi", "ws-dmil", "ws-qbmi+dmil"),
                        paper_pairs(), cycles)


def figure12_main(runner: ExperimentRunner,
                  pairs: Optional[Sequence[WorkloadMix]] = None,
                  cycles: Optional[int] = None) -> SchemeSweep:
    pairs = list(pairs) if pairs is not None else representative_pairs(3)
    return scheme_sweep(runner, WS_SCHEMES, pairs, cycles)


def figure13_smk(runner: ExperimentRunner,
                 pairs: Optional[Sequence[WorkloadMix]] = None,
                 cycles: Optional[int] = None) -> SchemeSweep:
    pairs = list(pairs) if pairs is not None else representative_pairs(3)
    return scheme_sweep(runner, SMK_SCHEMES, pairs, cycles)


def figure14_three_kernels(runner: ExperimentRunner,
                           cycles: Optional[int] = None) -> SchemeSweep:
    return scheme_sweep(runner, ("ws", "ws-qbmi", "ws-dmil"),
                        representative_triples(), cycles)


# ----------------------------------------------------------------------
# Figures 6 and 8 — timelines
def figure6_timelines(runner: ExperimentRunner, a: str = "bp", b: str = "sv",
                      interval: int = 1000,
                      cycles: Optional[int] = None) -> Dict[str, List[int]]:
    """L1D accesses per interval: each kernel alone, then concurrent."""
    pa, pb = mix(a, b).profiles
    iso_a = runner.isolated_result(pa, timeline_interval=interval,
                                   cycles=cycles)
    iso_b = runner.isolated_result(pb, timeline_interval=interval,
                                   cycles=cycles)
    shared = runner.run_mix(mix(a, b), "ws", cycles=cycles,
                            timeline_interval=interval)
    timeline = shared.result.timeline
    assert timeline is not None
    return {
        f"{a}_alone": iso_a.timeline.get("l1d_access", 0),
        f"{b}_alone": iso_b.timeline.get("l1d_access", 0),
        f"{a}_shared": timeline.get("l1d_access", 0),
        f"{b}_shared": timeline.get("l1d_access", 1),
    }


def figure8_issue_timelines(runner: ExperimentRunner, a: str = "bp",
                            b: str = "sv", interval: int = 1000,
                            cycles: Optional[int] = None
                            ) -> Dict[str, Dict[str, object]]:
    """Warp instructions issued per interval and normalized IPC under
    WS, WS-RBMI and WS-QBMI (paper Figure 8)."""
    out: Dict[str, Dict[str, object]] = {}
    for scheme in ("ws", "ws-rbmi", "ws-qbmi"):
        outcome = runner.run_mix(mix(a, b), scheme, cycles=cycles,
                                 timeline_interval=interval)
        timeline = outcome.result.timeline
        assert timeline is not None
        out[scheme] = {
            f"{a}_insts": timeline.get("insts", 0),
            f"{b}_insts": timeline.get("insts", 1),
            "norm_ipc": tuple(outcome.norm_ipcs),
        }
    return out


# ----------------------------------------------------------------------
# Figure 9 — the SMIL sweep
def figure9_smil_sweep(runner: ExperimentRunner, a: str, b: str,
                       limits: Sequence[Optional[int]] = (1, 2, 3, 4, 6, 8, None),
                       cycles: Optional[int] = None
                       ) -> Dict[Tuple[str, str], float]:
    """Weighted speedup over a grid of (Limit_k0, Limit_k1)."""
    surface: Dict[Tuple[str, str], float] = {}
    for la in limits:
        for lb in limits:
            spec = f"ws-smil:{'inf' if la is None else la},{'inf' if lb is None else lb}"
            outcome = runner.run_mix(mix(a, b), spec, cycles=cycles)
            surface[(str(la), str(lb))] = outcome.weighted_speedup
    return surface


def smil_optimum(surface: Dict[Tuple[str, str], float]) -> Tuple[Tuple[str, str], float]:
    best = max(surface.items(), key=lambda kv: kv[1])
    return best[0], best[1]


# ----------------------------------------------------------------------
# §4.3 — sensitivity studies
def sensitivity_l1d_capacity(runner_factory, l1d_kbs: Sequence[int] = (12, 24, 48),
                             cycles: Optional[int] = None
                             ) -> Dict[int, SchemeSweep]:
    """WS vs WS-QBMI vs WS-DMIL across L1D capacities.

    ``runner_factory(l1d_kb)`` must return an ExperimentRunner on a
    config with that capacity (the scaled analogue of 24/48/96 KB).
    """
    out = {}
    for kb in l1d_kbs:
        runner = runner_factory(kb)
        out[kb] = scheme_sweep(runner, ("ws", "ws-qbmi", "ws-dmil"),
                               paper_pairs(), cycles)
    return out


def sensitivity_scheduler(runner_factory,
                          policies: Sequence[str] = ("gto", "lrr"),
                          cycles: Optional[int] = None
                          ) -> Dict[str, SchemeSweep]:
    """Same sweep under GTO and LRR warp scheduling."""
    out = {}
    for policy in policies:
        runner = runner_factory(policy)
        out[policy] = scheme_sweep(runner, ("ws", "ws-qbmi", "ws-dmil"),
                                   paper_pairs(), cycles)
    return out


# ----------------------------------------------------------------------
# §4.4 — hardware overhead
def hardware_overhead(num_kernels: int = 2, num_sms: int = 16
                      ) -> Dict[str, object]:
    """Storage bits for the proposed mechanisms (paper §4.4)."""
    milg = MILG.hardware_cost()
    milg_bits = sum(milg.values())
    qbmi = QuotaBMI.hardware_cost(num_kernels)
    qbmi_bits = sum(qbmi.values())
    return {
        "milg_per_kernel_bits": milg_bits,
        "milg_per_sm_bits": milg_bits * num_kernels,
        "milg_gpu_bits": milg_bits * num_kernels * num_sms,
        "qbmi_per_sm_bits": qbmi_bits,
        "qbmi_gpu_bits": qbmi_bits * num_sms,
        "detail": {"milg": milg, "qbmi": qbmi},
    }
