"""Plain-text tables and series for the experiment drivers.

The paper's figures are bar/line charts; the drivers regenerate the
underlying rows/series and these helpers render them the way the
benches and ``EXPERIMENTS.md`` present them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

Number = Union[int, float]


def _fmt(value, width: int, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:>{width}.{precision}f}"
    return f"{value!s:>{width}}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 precision: int = 3) -> str:
    """Fixed-width text table."""
    widths = [len(h) for h in headers]
    rendered: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        cells = []
        for i, cell in enumerate(row):
            text = _fmt(cell, widths[i], precision).strip()
            widths[i] = max(widths[i], len(text))
            cells.append(text)
        rendered.append(cells)
    lines = ["  ".join(h.rjust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered:
        lines.append("  ".join(c.rjust(widths[i]) for i, c in enumerate(cells)))
    return "\n".join(lines)


def format_series(series: Dict[str, Sequence[Number]], precision: int = 2,
                  max_points: int = 40) -> str:
    """Render named numeric series (timeline/curve data) compactly."""
    lines = []
    for name, values in series.items():
        vals = list(values)
        if len(vals) > max_points:
            step = len(vals) / max_points
            vals = [vals[int(i * step)] for i in range(max_points)]
        body = " ".join(f"{v:.{precision}f}" if isinstance(v, float) else str(v)
                        for v in vals)
        lines.append(f"{name}: {body}")
    return "\n".join(lines)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper averages weighted speedups this way)."""
    vals = [v for v in values if v > 0]
    if not vals:
        raise ValueError("geomean needs positive values")
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))
