"""Report rendering for the experiment harness.

Two layers live here (consolidated from the former near-duplicate
``harness/report.py``):

* plain-text table/series formatters used by the experiment drivers —
  the paper's figures are bar/line charts; the drivers regenerate the
  underlying rows/series and these helpers render them the way the
  benches and ``EXPERIMENTS.md`` present them;
* the full-campaign markdown report generator (:func:`build_report` /
  :func:`write_report`) behind ``python -m repro report out.md``.
"""

from __future__ import annotations

import io
from typing import Dict, List, Sequence, Union

Number = Union[int, float]


def _fmt(value, width: int, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:>{width}.{precision}f}"
    return f"{value!s:>{width}}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 precision: int = 3) -> str:
    """Fixed-width text table."""
    widths = [len(h) for h in headers]
    rendered: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        cells = []
        for i, cell in enumerate(row):
            text = _fmt(cell, widths[i], precision).strip()
            widths[i] = max(widths[i], len(text))
            cells.append(text)
        rendered.append(cells)
    lines = ["  ".join(h.rjust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered:
        lines.append("  ".join(c.rjust(widths[i]) for i, c in enumerate(cells)))
    return "\n".join(lines)


def format_series(series: Dict[str, Sequence[Number]], precision: int = 2,
                  max_points: int = 40) -> str:
    """Render named numeric series (timeline/curve data) compactly."""
    lines = []
    for name, values in series.items():
        vals = list(values)
        if len(vals) > max_points:
            step = len(vals) / max_points
            vals = [vals[int(i * step)] for i in range(max_points)]
        body = " ".join(f"{v:.{precision}f}" if isinstance(v, float) else str(v)
                        for v in vals)
        lines.append(f"{name}: {body}")
    return "\n".join(lines)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper averages weighted speedups this way)."""
    vals = [v for v in values if v > 0]
    if not vals:
        raise ValueError("geomean needs positive values")
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))


# ----------------------------------------------------------------------
# full-campaign markdown report (``python -m repro report out.md``)
def _scheme_metric_table(sweep, schemes, metric: str) -> str:
    classes = [*sweep.classes(), None]
    labels = [c or "ALL" for c in classes]
    rows = [[scheme] + [sweep.mean_metric(scheme, metric, cls)
                        for cls in classes]
            for scheme in schemes]
    return format_table(["scheme", *labels], rows, precision=3)


def build_report(runner, include_sweeps: bool = True) -> str:
    """Run every experiment driver against ``runner`` and render one
    markdown document — the programmatic counterpart of
    ``EXPERIMENTS.md`` (which records one such campaign)."""
    # Imported lazily: the experiment drivers import the runner module,
    # which this module must not depend on at import time (both are
    # pulled in by ``harness/__init__``).
    from repro.harness import experiments as ex

    out = io.StringIO()
    w = out.write

    w("# Reproduction campaign report\n\n")
    w(f"config: {runner.config.num_sms} SMs, "
      f"{runner.config.max_warps_per_sm} warps/SM, "
      f"L1D {runner.config.l1d.size_bytes // 1024}KB/"
      f"{runner.config.l1d.mshrs} MSHRs, "
      f"scheduler {runner.config.scheduler_policy.upper()}; "
      f"windows iso={runner.settings.iso_cycles} "
      f"conc={runner.settings.concurrent_cycles} cycles\n\n")

    w("## Table 2 — workload characterisation\n\n```\n")
    rows = ex.table2_characteristics(runner)
    classes = ex.classify_measured(rows)
    w(format_table(
        ["bench", "miss", "miss(paper)", "rsfail", "rsfail(paper)",
         "lsu_stall", "type", "type(paper)"],
        [[r["name"], r["l1d_miss_rate"], r["paper"]["l1d_miss_rate"],
          r["l1d_rsfail_rate"], r["paper"]["l1d_rsfail_rate"],
          r["lsu_stall_pct"], classes[str(r["name"])], r["paper"]["type"]]
         for r in rows], precision=2))
    w("\n```\n\n")

    w("## Figure 3 — sweet spot (bp+sv)\n\n```\n")
    spot = ex.figure3_sweet_spot(runner)
    w(format_series({k: v for k, v in spot.curves.items()}))
    w(f"\nsweet spot: {spot.partition}, theoretical WS "
      f"{spot.theoretical_ws:.2f}\n```\n\n")

    w("## Figure 4 — theoretical vs achieved\n\n```\n")
    gaps = ex.figure4_gap(runner)
    w(format_table(["mix", "class", "theoretical", "achieved"],
                   [[g.mix_name, g.mix_class, g.theoretical, g.achieved]
                    for g in gaps], precision=2))
    w("\n```\n\n")

    if include_sweeps:
        w("## Figure 12 — main result (Warped-Slicer)\n\n")
        sweep = ex.figure12_main(runner)
        for metric in ("weighted_speedup", "antt", "fairness"):
            w(f"### {metric}\n\n```\n")
            w(_scheme_metric_table(sweep, ex.WS_SCHEMES, metric))
            w("\n```\n\n")

        w("## Figure 13 — main result (SMK)\n\n")
        smk = ex.figure13_smk(runner)
        for metric in ("weighted_speedup", "antt"):
            w(f"### {metric}\n\n```\n")
            w(_scheme_metric_table(smk, ex.SMK_SCHEMES, metric))
            w("\n```\n\n")

    w("## §4.4 — hardware overhead\n\n```\n")
    cost = ex.hardware_overhead()
    w(format_table(["component", "bits"],
                   [[k, v] for k, v in cost.items() if k != "detail"]))
    w("\n```\n")
    return out.getvalue()


def write_report(path: str, runner=None, include_sweeps: bool = True) -> str:
    """Build the report and write it to ``path``; returns the text."""
    if runner is None:
        from repro.harness.runner import ExperimentRunner
        runner = ExperimentRunner()
    text = build_report(runner, include_sweeps=include_sweeps)
    with open(path, "w") as fh:
        fh.write(text)
    return text
