"""Experiment harness: cached isolated profiling, the scheme registry
(spatial / leftover / WS / SMK × BMI / MIL / UCP), and one driver per
paper table/figure."""

from repro.harness.runner import (
    ExperimentRunner,
    IsoRecord,
    RunnerSettings,
    WorkloadOutcome,
    run_pair,
)
from repro.harness.reporting import (
    build_report,
    format_series,
    format_table,
    geomean,
    write_report,
)
from repro.harness import experiments

__all__ = [
    "ExperimentRunner",
    "RunnerSettings",
    "IsoRecord",
    "WorkloadOutcome",
    "run_pair",
    "build_report",
    "write_report",
    "format_table",
    "format_series",
    "geomean",
    "experiments",
]
