"""Experiment harness: cached isolated profiling, the scheme registry
(spatial / leftover / WS / SMK × BMI / MIL / UCP), one driver per
paper table/figure, and the resilient campaign executor (checkpoint
journal, retry/quarantine, deterministic fault injection)."""

from repro.harness.runner import (
    ExperimentRunner,
    IsoRecord,
    RunnerSettings,
    WorkloadOutcome,
    run_pair,
)
from repro.harness.reporting import (
    build_report,
    format_series,
    format_table,
    geomean,
    write_report,
)
from repro.harness.resilience import (
    CampaignJournal,
    FaultPlan,
    FaultSpec,
    JobError,
    Quarantined,
    ResiliencePolicy,
    ResilienceReport,
    run_campaign_resilient,
    run_jobs_resilient,
)
from repro.harness import experiments

__all__ = [
    "ExperimentRunner",
    "RunnerSettings",
    "IsoRecord",
    "WorkloadOutcome",
    "run_pair",
    "build_report",
    "write_report",
    "format_table",
    "format_series",
    "geomean",
    "experiments",
    "CampaignJournal",
    "FaultPlan",
    "FaultSpec",
    "JobError",
    "Quarantined",
    "ResiliencePolicy",
    "ResilienceReport",
    "run_campaign_resilient",
    "run_jobs_resilient",
]
