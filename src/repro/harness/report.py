"""Full-campaign report generator.

``build_report`` runs every experiment driver against one runner and
renders a single markdown document — the programmatic counterpart of
``EXPERIMENTS.md`` (which records one such campaign).  Usable from the
CLI: ``python -m repro report out.md``.
"""

from __future__ import annotations

import io
from typing import Optional

from repro.harness import experiments as ex
from repro.harness.reporting import format_series, format_table
from repro.harness.runner import ExperimentRunner


def _scheme_metric_table(sweep, schemes, metric: str) -> str:
    classes = [*sweep.classes(), None]
    labels = [c or "ALL" for c in classes]
    rows = [[scheme] + [sweep.mean_metric(scheme, metric, cls)
                        for cls in classes]
            for scheme in schemes]
    return format_table(["scheme", *labels], rows, precision=3)


def build_report(runner: ExperimentRunner,
                 include_sweeps: bool = True) -> str:
    """Run the campaign and return the markdown report."""
    out = io.StringIO()
    w = out.write

    w("# Reproduction campaign report\n\n")
    w(f"config: {runner.config.num_sms} SMs, "
      f"{runner.config.max_warps_per_sm} warps/SM, "
      f"L1D {runner.config.l1d.size_bytes // 1024}KB/"
      f"{runner.config.l1d.mshrs} MSHRs, "
      f"scheduler {runner.config.scheduler_policy.upper()}; "
      f"windows iso={runner.settings.iso_cycles} "
      f"conc={runner.settings.concurrent_cycles} cycles\n\n")

    w("## Table 2 — workload characterisation\n\n```\n")
    rows = ex.table2_characteristics(runner)
    classes = ex.classify_measured(rows)
    w(format_table(
        ["bench", "miss", "miss(paper)", "rsfail", "rsfail(paper)",
         "lsu_stall", "type", "type(paper)"],
        [[r["name"], r["l1d_miss_rate"], r["paper"]["l1d_miss_rate"],
          r["l1d_rsfail_rate"], r["paper"]["l1d_rsfail_rate"],
          r["lsu_stall_pct"], classes[str(r["name"])], r["paper"]["type"]]
         for r in rows], precision=2))
    w("\n```\n\n")

    w("## Figure 3 — sweet spot (bp+sv)\n\n```\n")
    spot = ex.figure3_sweet_spot(runner)
    w(format_series({k: v for k, v in spot.curves.items()}))
    w(f"\nsweet spot: {spot.partition}, theoretical WS "
      f"{spot.theoretical_ws:.2f}\n```\n\n")

    w("## Figure 4 — theoretical vs achieved\n\n```\n")
    gaps = ex.figure4_gap(runner)
    w(format_table(["mix", "class", "theoretical", "achieved"],
                   [[g.mix_name, g.mix_class, g.theoretical, g.achieved]
                    for g in gaps], precision=2))
    w("\n```\n\n")

    if include_sweeps:
        w("## Figure 12 — main result (Warped-Slicer)\n\n")
        sweep = ex.figure12_main(runner)
        for metric in ("weighted_speedup", "antt", "fairness"):
            w(f"### {metric}\n\n```\n")
            w(_scheme_metric_table(sweep, ex.WS_SCHEMES, metric))
            w("\n```\n\n")

        w("## Figure 13 — main result (SMK)\n\n")
        smk = ex.figure13_smk(runner)
        for metric in ("weighted_speedup", "antt"):
            w(f"### {metric}\n\n```\n")
            w(_scheme_metric_table(smk, ex.SMK_SCHEMES, metric))
            w("\n```\n\n")

    w("## §4.4 — hardware overhead\n\n```\n")
    cost = ex.hardware_overhead()
    w(format_table(["component", "bits"],
                   [[k, v] for k, v in cost.items() if k != "detail"]))
    w("\n```\n")
    return out.getvalue()


def write_report(path: str, runner: Optional[ExperimentRunner] = None,
                 include_sweeps: bool = True) -> str:
    """Build the report and write it to ``path``; returns the text."""
    text = build_report(runner or ExperimentRunner(),
                        include_sweeps=include_sweeps)
    with open(path, "w") as fh:
        fh.write(text)
    return text
