"""Wall-clock performance benchmarks for the simulator's fast paths.

Two benchmarks validate the perf work in this repo, each emitting a
JSON report at the repository root:

* :func:`bench_cycle_loop` (``BENCH_cycle_loop.json``) measures
  simulated-cycles-per-second of the optimised cycle loop against the
  reference loop (``GPU(reference=True)``) on the paper's Table-1
  machine (the default :class:`~repro.config.GPUConfig`, 16 SMs), one
  workload at a time, single thread.  Every rep asserts the two loops
  produce bit-identical :class:`~repro.sim.stats.RunResult` stats.

* :func:`bench_memory_path` (``BENCH_memory_path.json``) storms the
  memory-pipeline components in isolation — tag store, MSHR file and
  DRAM channel queue — driving each object implementation and its
  struct-of-arrays twin (:mod:`repro.mem.pool`, the slot-pooled
  request path) through identical deterministic operation sequences.
  Each storm asserts end-state equality before reporting ops/sec.

* :func:`bench_campaign` (``BENCH_campaign.json``) times a full
  experiment campaign — the paper's scheme-ablation grid (WS, WS+BMI,
  WS+MIL, WS+BMI+MIL over two mixes, §4) including Warped-Slicer
  profiling curves — three ways: reference loop serially, fast loop
  serially, and fast loop through the parallel executor
  (:mod:`repro.harness.parallel`).  All three legs must agree on every
  outcome, bit for bit.

Timing methodology: legs alternate (reference first) and reps take the
best (minimum) wall time, the standard way to suppress scheduler noise
on a shared machine.  ``cpu_count`` is recorded in both reports so a
reader can judge how much the parallel leg could possibly help.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import GPUConfig
from repro.core.arbiter import SchemeConfig
from repro.harness.runner import (ExperimentRunner, RunnerSettings,
                                  WorkloadOutcome)
from repro.sim.engine import GPU, make_launches
from repro.sim.stats import RunResult
from repro.workloads.mixes import WorkloadMix
from repro.workloads.profiles import get_profile

#: file names (written at the repo root by default).
CYCLE_LOOP_REPORT = "BENCH_cycle_loop.json"
MEMORY_PATH_REPORT = "BENCH_memory_path.json"
CAMPAIGN_REPORT = "BENCH_campaign.json"

#: the campaign the wall-clock benchmark times: the paper's §4
#: mechanism ablation (WS alone, +BMI, +MIL, +both) over one
#: memory/memory and one mixed-intensity two-kernel workload.
CAMPAIGN_MIXES: Tuple[Tuple[str, ...], ...] = (("bp", "cd"), ("st", "sv"))
CAMPAIGN_SCHEMES: Tuple[str, ...] = ("ws", "ws-rbmi", "ws-dmil",
                                     "ws-rbmi+dmil")
CAMPAIGN_SETTINGS = dict(iso_cycles=4000, curve_cycles=2500,
                         concurrent_cycles=6000)

#: single-run workloads for the cycle-loop benchmark; the concurrent
#: mix is *the* reference workload (a paper-machine CKE run).
CYCLE_LOOP_WORKLOADS: Tuple[Tuple[str, Tuple[str, ...],
                                  Optional[Tuple[int, ...]]], ...] = (
    ("bp-iso", ("bp",), None),
    ("cd-iso", ("cd",), None),
    ("sv-iso", ("sv",), None),
    ("bp+cd-even", ("bp", "cd"), (8, 8)),
    ("st+sv-even", ("st", "sv"), (8, 8)),
    ("cd+sv-even", ("cd", "sv"), (8, 8)),
)
REFERENCE_WORKLOAD = "bp+cd-even"

#: the paper's M-type (memory-intensive) workloads in the suite above —
#: the set the memory-pipeline perf work is gated on.  The baseline
#: diff block reports a separate geomean over exactly these.
MEMORY_BOUND_WORKLOADS = frozenset(
    ("cd-iso", "sv-iso", "st+sv-even", "cd+sv-even"))


# ----------------------------------------------------------------------
# bit-identity signatures
def result_signature(result: RunResult) -> Tuple:
    """Every stat a RunResult carries, as a comparable tuple."""
    return (
        result.cycles,
        tuple(result.kernel_names),
        tuple(sorted(
            (slot, k.warp_insts, k.alu_insts, k.sfu_insts, k.mem_insts,
             k.mem_requests, k.tbs_launched, k.tbs_completed)
            for slot, k in result.kernels.items())),
        tuple(sorted(result.l1d_accesses.items())),
        tuple(sorted(result.l1d_hits.items())),
        tuple(sorted(result.l1d_misses.items())),
        tuple(sorted(result.l1d_rsfails.items())),
        result.lsu_stall_cycles,
        result.lsu_busy_cycles,
        result.alu_busy,
        result.sfu_busy,
        result.dram_row_hit_rate,
        result.l2_accesses,
        result.l2_misses,
        result.dram_accesses,
        result.icnt_flits,
    )


def outcome_signature(outcome: WorkloadOutcome) -> Tuple:
    """A campaign cell's full identity: metrics + run stats.

    Floats are compared exactly — the fast paths must be bit-identical
    to the reference loop, not merely close."""
    return (
        outcome.mix_name,
        outcome.mix_class,
        outcome.scheme,
        tuple(outcome.partition),
        tuple(outcome.iso_ipcs),
        tuple(outcome.shared_ipcs),
        tuple(outcome.norm_ipcs),
        outcome.weighted_speedup,
        outcome.antt,
        outcome.fairness,
        result_signature(outcome.result),
    )


# ----------------------------------------------------------------------
# report provenance + baseline diffing
#: a fresh geomean below this fraction of the committed baseline's
#: throughput counts as a regression (``scripts/bench.sh --check``).
REGRESSION_THRESHOLD = 0.9


def _git_sha() -> Optional[str]:
    """Current checkout's commit, or None outside a git work tree."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, cwd=os.path.dirname(os.path.abspath(__file__)))
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _host_info() -> Dict:
    """Enough host identity to judge whether two reports are comparable
    (wall-clock numbers from different machines are not)."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def _load_baseline(path: str) -> Optional[Dict]:
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def _resolve_baseline_sha(path: str, baseline: Optional[Dict]
                          ) -> Tuple[Optional[str], Optional[str]]:
    """The commit a committed baseline's numbers came from, plus where
    that answer was found.

    Prefers the ``git_sha`` the report recorded at generation time;
    reports written outside a work tree carry ``null``, so fall back to
    the last commit that touched the committed file.  Returns
    ``(sha, source)`` with source ``"report"`` or ``"git-log"``, or
    ``(None, None)`` when neither resolves."""
    if not baseline:
        return None, None
    sha = baseline.get("git_sha")
    if sha:
        return sha, "report"
    directory = os.path.dirname(os.path.abspath(path))
    try:
        proc = subprocess.run(
            ["git", "log", "-1", "--format=%H", "--",
             os.path.basename(path)],
            capture_output=True, text=True, timeout=10, cwd=directory)
    except (OSError, subprocess.SubprocessError):
        return None, None
    sha = proc.stdout.strip()
    if proc.returncode == 0 and sha:
        return sha, "git-log"
    return None, None


def _cycle_loop_baseline(workloads: List[Dict],
                         baseline: Optional[Dict],
                         baseline_path: str) -> Optional[Dict]:
    """Diff fresh fast-loop throughput against the committed report.

    The committed numbers are wall-clock on whichever host produced
    them, so the block records the ratio per workload plus the geomean
    — the regression gate ``scripts/bench.sh --check`` keys off
    ``regressed``.  Memory-bound workloads (the paper's M-type set)
    additionally get their own geomean so memory-pipeline perf work can
    be gated independently of compute-bound legs."""
    if not baseline:
        return None
    by_name = {w.get("workload"): w for w in baseline.get("workloads", ())}
    per_workload = {}
    ratios = []
    mem_ratios = []
    for w in workloads:
        base = by_name.get(w["workload"])
        if not base or not base.get("fast_cycles_per_s"):
            continue
        ratio = w["fast_cycles_per_s"] / base["fast_cycles_per_s"]
        per_workload[w["workload"]] = {
            "baseline_fast_cycles_per_s": base["fast_cycles_per_s"],
            "fast_cycles_per_s": w["fast_cycles_per_s"],
            "ratio": ratio,
        }
        ratios.append(ratio)
        if w["workload"] in MEMORY_BOUND_WORKLOADS:
            mem_ratios.append(ratio)
    if not ratios:
        return None
    geomean = _geomean(ratios)
    sha, sha_source = _resolve_baseline_sha(baseline_path, baseline)
    return {
        "baseline_git_sha": sha,
        "baseline_git_sha_source": sha_source,
        "baseline_geomean_speedup": baseline.get("geomean_speedup"),
        "per_workload": per_workload,
        "geomean_vs_baseline": geomean,
        "memory_bound_geomean_vs_baseline":
            _geomean(mem_ratios) if mem_ratios else None,
        "regression_threshold": REGRESSION_THRESHOLD,
        "regressed": geomean < REGRESSION_THRESHOLD,
    }


def _campaign_baseline(report: Dict,
                       baseline: Optional[Dict],
                       baseline_path: str) -> Optional[Dict]:
    """Diff the three campaign speedup layers against the committed
    report (speedups are within-run ratios, so they transfer across
    hosts better than raw wall times)."""
    if not baseline:
        return None
    sha, sha_source = _resolve_baseline_sha(baseline_path, baseline)
    block: Dict = {"baseline_git_sha": sha,
                   "baseline_git_sha_source": sha_source}
    ratios = {}
    for key in ("fast_loop_speedup", "parallel_speedup", "campaign_speedup"):
        base = baseline.get(key)
        cur = report.get(key)
        if base and cur:
            ratios[key] = {"baseline": base, "current": cur,
                           "ratio": cur / base}
    if not ratios:
        return None
    block.update(ratios)
    headline = ratios.get("campaign_speedup", {}).get("ratio", 1.0)
    block["regression_threshold"] = REGRESSION_THRESHOLD
    block["regressed"] = headline < REGRESSION_THRESHOLD
    return block


# ----------------------------------------------------------------------
# cycle-loop benchmark
def _build_gpu(kernels: Sequence[str], tb_limits, config: GPUConfig,
               reference: bool, seed: int = 0) -> GPU:
    profiles = [get_profile(k) for k in kernels]
    if tb_limits is None:
        tb_limits = [p.max_tbs_per_sm(config) for p in profiles]
    launches = make_launches(profiles, list(tb_limits), config, seed=seed)
    return GPU(config, launches, SchemeConfig(), reference=reference)


def _time_run(kernels: Sequence[str], tb_limits, config: GPUConfig,
              cycles: int, reference: bool) -> Tuple[float, Tuple]:
    gpu = _build_gpu(kernels, tb_limits, config, reference)
    t0 = time.perf_counter()
    result = gpu.run(cycles)
    dt = time.perf_counter() - t0
    return dt, result_signature(result)


def bench_cycle_loop(cycles: int = 2500, reps: int = 2,
                     config: Optional[GPUConfig] = None,
                     out_path: Optional[str] = None,
                     workload_names: Optional[Sequence[str]] = None) -> Dict:
    """Fast-loop vs reference-loop cycles/sec, workload by workload.

    ``workload_names`` selects a subset of :data:`CYCLE_LOOP_WORKLOADS`
    (None = the full suite).  Raises ``AssertionError`` if any
    workload's fast run is not bit-identical to its reference run.
    """
    config = config or GPUConfig()
    if workload_names is None:
        selected = CYCLE_LOOP_WORKLOADS
    else:
        known = {w[0]: w for w in CYCLE_LOOP_WORKLOADS}
        unknown = [n for n in workload_names if n not in known]
        if unknown:
            raise ValueError(
                f"unknown workload(s) {unknown}; choices: {sorted(known)}")
        selected = tuple(known[n] for n in workload_names)
    workloads = []
    for name, kernels, tb_limits in selected:
        ref_best = fast_best = float("inf")
        ref_sig = fast_sig = None
        for _ in range(max(1, reps)):
            dt, sig = _time_run(kernels, tb_limits, config, cycles,
                                reference=True)
            ref_best = min(ref_best, dt)
            assert ref_sig is None or sig == ref_sig, \
                f"{name}: reference loop is not deterministic"
            ref_sig = sig
            dt, sig = _time_run(kernels, tb_limits, config, cycles,
                                reference=False)
            fast_best = min(fast_best, dt)
            fast_sig = sig
            assert fast_sig == ref_sig, \
                f"{name}: fast loop diverged from the reference loop"
        workloads.append({
            "workload": name,
            "kernels": list(kernels),
            "tb_limits": list(tb_limits) if tb_limits else None,
            "cycles": cycles,
            "memory_bound": name in MEMORY_BOUND_WORKLOADS,
            "reference_s": ref_best,
            "fast_s": fast_best,
            "reference_cycles_per_s": cycles / ref_best,
            "fast_cycles_per_s": cycles / fast_best,
            "speedup": ref_best / fast_best,
            "identical": True,
        })
    speedups = [w["speedup"] for w in workloads]
    reference = next((w for w in workloads
                      if w["workload"] == REFERENCE_WORKLOAD), workloads[0])
    report = {
        "benchmark": "cycle_loop",
        "config": "paper-table1-default",
        "git_sha": _git_sha(),
        "host": _host_info(),
        "num_sms": config.num_sms,
        "cpu_count": os.cpu_count(),
        "reps": reps,
        "workloads": workloads,
        "reference_workload": reference["workload"],
        "reference_workload_speedup": reference["speedup"],
        "min_speedup": min(speedups),
        "geomean_speedup": _geomean(speedups),
    }
    # Diff against the committed report *before* overwriting it.
    committed_path = _root_path(CYCLE_LOOP_REPORT)
    committed = _load_baseline(committed_path)
    report["baseline"] = _cycle_loop_baseline(workloads, committed,
                                              committed_path)
    _write_report(report, out_path or committed_path)
    return report


# ----------------------------------------------------------------------
# memory-path component microbenchmarks
def _lcg_ops(n: int, seed: int, modulus: int) -> List[int]:
    """Deterministic pseudo-random op stream (multiplicative LCG);
    precomputed so sequence generation never lands inside a timed
    region."""
    ops = []
    state = seed or 1
    for _ in range(n):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        ops.append(state % modulus)
    return ops


def _tag_storm_object(store, fill_gap: int, ops: Sequence[int]) -> Tuple:
    """One tag-store storm at the object store's native API: the L1
    access pattern — lookup, LRU touch on hit, reserve on miss, fill
    the reservation ``fill_gap`` ops later, periodic invalidate.
    :func:`_tag_storm_array` is the structurally identical twin; both
    stay native so the measured delta is the data structure, not an
    adapter shim."""
    hits = misses = 0
    outstanding: List[int] = []
    for i, line in enumerate(ops):
        ln = store.lookup(line)
        if ln is not None:
            if ln.valid:
                hits += 1
            continue
        ok, _dirty, _tag = store.reserve(line, kernel=line & 1)
        if ok:
            misses += 1
            outstanding.append(line)
        if len(outstanding) >= fill_gap:
            store.fill(outstanding.pop(0))
        if i % 97 == 0 and outstanding:
            store.invalidate(ops[i % len(ops)])
    for line in outstanding:
        store.fill(line)
    occupancy = tuple(sorted(store.occupancy_by_kernel().items()))
    return hits, misses, occupancy


def _tag_storm_array(store, fill_gap: int, ops: Sequence[int]) -> Tuple:
    hits = misses = 0
    outstanding: List[int] = []
    valid = store.valid
    find = store.find
    touch = store.touch
    for i, line in enumerate(ops):
        way = find(line)
        if way >= 0:
            if valid[way]:
                touch(way)
                hits += 1
            continue
        ok, _dirty, _tag = store.reserve(line, kernel=line & 1)
        if ok:
            misses += 1
            outstanding.append(line)
        if len(outstanding) >= fill_gap:
            store.fill(outstanding.pop(0))
        if i % 97 == 0 and outstanding:
            store.invalidate(ops[i % len(ops)])
    for line in outstanding:
        store.fill(line)
    occupancy = tuple(sorted(store.occupancy_by_kernel().items()))
    return hits, misses, occupancy


def _mshr_storm(file, release_waiters, ops: Sequence[int]) -> Tuple:
    """Allocate/merge/release churn at the MSHR file's native API.
    ``release_waiters`` adapts the one API-surface difference (entry
    object vs live list)."""
    merges = allocs = waiter_total = 0
    outstanding: List[int] = []
    for i, line in enumerate(ops):
        if file.try_merge(line, waiter=i):
            merges += 1
        elif line not in outstanding and file.can_allocate():
            file.allocate(line, kernel=line & 1, waiter=i)
            outstanding.append(line)
            allocs += 1
        if file.full or (outstanding and i % 5 == 0):
            waiter_total += len(release_waiters(file, outstanding.pop(0)))
    for line in outstanding:
        waiter_total += len(release_waiters(file, line))
    return merges, allocs, waiter_total, file.peak_used


def _dram_storm(channel, push, pending, ops: Sequence[int]) -> Tuple:
    """Enqueue/tick churn at the DRAM channel's native API (``push``
    adapts ``enqueue`` vs ``ring_push``; ``pending`` the queue-depth
    probe)."""
    done: List[int] = []
    cycle = 0
    for i, row in enumerate(ops):
        while channel.full:
            cycle += 1
            channel.tick(cycle, lambda payload, t: done.append(payload))
        push(channel, row & 7, (row & 8) == 8, i)
        cycle += 1
        channel.tick(cycle, lambda payload, t: done.append(payload))
    while pending(channel):
        cycle += 1
        channel.tick(cycle, lambda payload, t: done.append(payload))
    return (channel.serviced, channel.row_hits, channel.busy_until,
            len(done), sum(done))


def _time_storm(run, reps: int) -> Tuple[float, Tuple]:
    best = float("inf")
    digest = None
    for _ in range(max(1, reps)):
        t0 = time.perf_counter()
        result = run()
        dt = time.perf_counter() - t0
        best = min(best, dt)
        assert digest is None or result == digest, \
            "storm is not deterministic"
        digest = result
    return best, digest


def _memory_path_baseline(components: List[Dict],
                          baseline: Optional[Dict],
                          baseline_path: str) -> Optional[Dict]:
    """Diff fresh pooled-twin throughput against the committed report
    (same shape as the cycle-loop baseline block, keyed by
    component)."""
    if not baseline:
        return None
    by_name = {c.get("component"): c
               for c in baseline.get("components", ())}
    per_component = {}
    ratios = []
    for comp in components:
        base = by_name.get(comp["component"])
        if not base or not base.get("pooled_ops_per_s"):
            continue
        ratio = comp["pooled_ops_per_s"] / base["pooled_ops_per_s"]
        per_component[comp["component"]] = {
            "baseline_pooled_ops_per_s": base["pooled_ops_per_s"],
            "pooled_ops_per_s": comp["pooled_ops_per_s"],
            "ratio": ratio,
        }
        ratios.append(ratio)
    if not ratios:
        return None
    geomean = _geomean(ratios)
    sha, sha_source = _resolve_baseline_sha(baseline_path, baseline)
    return {
        "baseline_git_sha": sha,
        "baseline_git_sha_source": sha_source,
        "per_component": per_component,
        "geomean_vs_baseline": geomean,
        "regression_threshold": REGRESSION_THRESHOLD,
        "regressed": geomean < REGRESSION_THRESHOLD,
    }


def bench_memory_path(ops: int = 200_000, reps: int = 3,
                      out_path: Optional[str] = None) -> Dict:
    """Object vs struct-of-arrays throughput, component by component.

    Each storm drives both implementations through the same
    deterministic operation sequence at their native APIs and asserts
    the end-state digests match before any number is reported — the
    microbenchmark carries its own bit-identity proof, like the
    cycle-loop benchmark does.
    """
    from repro.config import CacheConfig
    from repro.mem.cache import SetAssocCache
    from repro.mem.dram import DRAMChannel, RingDRAMChannel
    from repro.mem.mshr import MSHRFile
    from repro.mem.pool import ArrayMSHRFile, ArrayTagStore

    cache_cfg = CacheConfig(size_bytes=16384, line_size=128, assoc=8,
                            mshrs=16, miss_queue=16)
    gpu_cfg = GPUConfig()
    # The L1 hit path dominates the simulator's per-access cost, so the
    # tag storm is hit-heavy: 3 in 4 accesses land in a hot working set
    # that fits the cache, the rest stream through a cold tail.
    tag_ops = [(op & 127) if op % 4 else (128 + op % 8192)
               for op in _lcg_ops(ops, seed=11, modulus=1 << 30)]
    mshr_ops = _lcg_ops(ops, seed=23, modulus=64)
    dram_ops = _lcg_ops(ops // 4, seed=37, modulus=256)

    components = []

    def record(name: str, obj_run, pool_run, n_ops: int) -> None:
        obj_s, obj_digest = _time_storm(obj_run, reps)
        pool_s, pool_digest = _time_storm(pool_run, reps)
        assert pool_digest == obj_digest, \
            f"{name}: pooled twin diverged from the object implementation"
        components.append({
            "component": name,
            "ops": n_ops,
            "object_s": obj_s,
            "pooled_s": pool_s,
            "object_ops_per_s": n_ops / obj_s,
            "pooled_ops_per_s": n_ops / pool_s,
            "speedup": obj_s / pool_s,
            "identical": True,
        })

    record(
        "tag-store",
        lambda: _tag_storm_object(SetAssocCache(cache_cfg), 8, tag_ops),
        lambda: _tag_storm_array(ArrayTagStore(cache_cfg), 8, tag_ops),
        len(tag_ops))
    record(
        "mshr-file",
        lambda: _mshr_storm(MSHRFile(16, merge_limit=8),
                            lambda f, ln: f.release(ln).waiters, mshr_ops),
        lambda: _mshr_storm(ArrayMSHRFile(16, merge_limit=8),
                            lambda f, ln: f.release(ln), mshr_ops),
        len(mshr_ops))
    record(
        "dram-channel",
        lambda: _dram_storm(
            DRAMChannel(gpu_cfg, capacity=32),
            lambda ch, row, wr, payload: ch.enqueue(row, wr, payload),
            lambda ch: len(ch.queue), dram_ops),
        lambda: _dram_storm(
            RingDRAMChannel(gpu_cfg, capacity=32),
            lambda ch, row, wr, payload: ch.ring_push(row, wr, payload),
            lambda ch: ch.size(), dram_ops),
        len(dram_ops))

    speedups = [c["speedup"] for c in components]
    report = {
        "benchmark": "memory_path",
        "git_sha": _git_sha(),
        "host": _host_info(),
        "cpu_count": os.cpu_count(),
        "reps": reps,
        "components": components,
        "min_speedup": min(speedups),
        "geomean_speedup": _geomean(speedups),
    }
    committed_path = _root_path(MEMORY_PATH_REPORT)
    committed = _load_baseline(committed_path)
    report["baseline"] = _memory_path_baseline(components, committed,
                                               committed_path)
    _write_report(report, out_path or committed_path)
    return report


# ----------------------------------------------------------------------
# campaign benchmark
def _campaign_runner(cache_dir: str,
                     config: Optional[GPUConfig] = None) -> ExperimentRunner:
    return ExperimentRunner(config or GPUConfig(),
                            RunnerSettings(**CAMPAIGN_SETTINGS),
                            cache_dir=cache_dir)


def _campaign_mixes() -> List[WorkloadMix]:
    return [WorkloadMix(tuple(get_profile(k) for k in kernels))
            for kernels in CAMPAIGN_MIXES]


def _run_campaign_leg(reference: bool, workers: int,
                      config: Optional[GPUConfig] = None
                      ) -> Tuple[float, List[Tuple]]:
    """One timed pass over the whole campaign grid with a fresh disk
    cache (every leg recomputes everything from scratch)."""
    prior = os.environ.get("REPRO_REFERENCE_LOOP")
    if reference:
        os.environ["REPRO_REFERENCE_LOOP"] = "1"
    else:
        os.environ.pop("REPRO_REFERENCE_LOOP", None)
    try:
        mixes = _campaign_mixes()
        with tempfile.TemporaryDirectory() as cache_dir:
            runner = _campaign_runner(cache_dir, config)
            t0 = time.perf_counter()
            if workers > 1:
                outcomes = runner.run_campaign(mixes, list(CAMPAIGN_SCHEMES),
                                               workers=workers)
            else:
                outcomes = [runner.run_mix(mix, scheme)
                            for mix in mixes for scheme in CAMPAIGN_SCHEMES]
            dt = time.perf_counter() - t0
        return dt, [outcome_signature(o) for o in outcomes]
    finally:
        if prior is None:
            os.environ.pop("REPRO_REFERENCE_LOOP", None)
        else:
            os.environ["REPRO_REFERENCE_LOOP"] = prior


def bench_campaign(workers: int = 4,
                   config: Optional[GPUConfig] = None,
                   out_path: Optional[str] = None) -> Dict:
    """Reference-serial vs fast-serial vs fast-parallel campaign.

    The headline ``campaign_speedup`` compares the end-to-end stack —
    fast loops *and* the ``workers``-process executor — against the
    reference loop run serially; ``fast_loop_speedup`` and
    ``parallel_speedup`` attribute it to the two layers.  On a
    single-core host (see ``cpu_count``) the parallel layer cannot
    contribute, so the headline degrades to roughly the fast-loop
    speedup minus pool overhead.

    Raises ``AssertionError`` if any leg disagrees on any outcome.
    """
    ref_s, ref_sigs = _run_campaign_leg(reference=True, workers=1,
                                        config=config)
    fast_s, fast_sigs = _run_campaign_leg(reference=False, workers=1,
                                          config=config)
    par_s, par_sigs = _run_campaign_leg(reference=False, workers=workers,
                                        config=config)
    assert fast_sigs == ref_sigs, \
        "fast-serial campaign diverged from reference-serial"
    assert par_sigs == ref_sigs, \
        "parallel campaign diverged from reference-serial"
    cells = len(ref_sigs)
    report = {
        "benchmark": "campaign",
        "config": "paper-table1-default",
        "git_sha": _git_sha(),
        "host": _host_info(),
        "mixes": [list(m) for m in CAMPAIGN_MIXES],
        "schemes": list(CAMPAIGN_SCHEMES),
        "settings": dict(CAMPAIGN_SETTINGS),
        "cells": cells,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "reference_serial_s": ref_s,
        "fast_serial_s": fast_s,
        "fast_parallel_s": par_s,
        "fast_loop_speedup": ref_s / fast_s,
        "parallel_speedup": fast_s / par_s,
        "campaign_speedup": ref_s / par_s,
        "identical": True,
    }
    committed_path = _root_path(CAMPAIGN_REPORT)
    committed = _load_baseline(committed_path)
    report["baseline"] = _campaign_baseline(report, committed,
                                            committed_path)
    _write_report(report, out_path or committed_path)
    return report


# ----------------------------------------------------------------------
# report plumbing
def _geomean(values: Sequence[float]) -> float:
    prod = 1.0
    for v in values:
        prod *= v
    return prod ** (1.0 / len(values))


def _root_path(filename: str) -> str:
    """Repo root when running from a checkout; CWD otherwise."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.normpath(os.path.join(here, "..", "..", ".."))
    if os.path.isdir(os.path.join(root, "src")):
        return os.path.join(root, filename)
    return os.path.join(os.getcwd(), filename)


def _write_report(report: Dict, path: str) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
