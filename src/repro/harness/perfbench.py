"""Wall-clock performance benchmarks for the simulator's fast paths.

Two benchmarks validate the perf work in this repo, each emitting a
JSON report at the repository root:

* :func:`bench_cycle_loop` (``BENCH_cycle_loop.json``) measures
  simulated-cycles-per-second of the optimised cycle loop against the
  reference loop (``GPU(reference=True)``) on the paper's Table-1
  machine (the default :class:`~repro.config.GPUConfig`, 16 SMs), one
  workload at a time, single thread.  Every rep asserts the two loops
  produce bit-identical :class:`~repro.sim.stats.RunResult` stats.

* :func:`bench_campaign` (``BENCH_campaign.json``) times a full
  experiment campaign — the paper's scheme-ablation grid (WS, WS+BMI,
  WS+MIL, WS+BMI+MIL over two mixes, §4) including Warped-Slicer
  profiling curves — three ways: reference loop serially, fast loop
  serially, and fast loop through the parallel executor
  (:mod:`repro.harness.parallel`).  All three legs must agree on every
  outcome, bit for bit.

Timing methodology: legs alternate (reference first) and reps take the
best (minimum) wall time, the standard way to suppress scheduler noise
on a shared machine.  ``cpu_count`` is recorded in both reports so a
reader can judge how much the parallel leg could possibly help.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import GPUConfig
from repro.core.arbiter import SchemeConfig
from repro.harness.runner import (ExperimentRunner, RunnerSettings,
                                  WorkloadOutcome)
from repro.sim.engine import GPU, make_launches
from repro.sim.stats import RunResult
from repro.workloads.mixes import WorkloadMix
from repro.workloads.profiles import get_profile

#: file names (written at the repo root by default).
CYCLE_LOOP_REPORT = "BENCH_cycle_loop.json"
CAMPAIGN_REPORT = "BENCH_campaign.json"

#: the campaign the wall-clock benchmark times: the paper's §4
#: mechanism ablation (WS alone, +BMI, +MIL, +both) over one
#: memory/memory and one mixed-intensity two-kernel workload.
CAMPAIGN_MIXES: Tuple[Tuple[str, ...], ...] = (("bp", "cd"), ("st", "sv"))
CAMPAIGN_SCHEMES: Tuple[str, ...] = ("ws", "ws-rbmi", "ws-dmil",
                                     "ws-rbmi+dmil")
CAMPAIGN_SETTINGS = dict(iso_cycles=4000, curve_cycles=2500,
                         concurrent_cycles=6000)

#: single-run workloads for the cycle-loop benchmark; the concurrent
#: mix is *the* reference workload (a paper-machine CKE run).
CYCLE_LOOP_WORKLOADS: Tuple[Tuple[str, Tuple[str, ...],
                                  Optional[Tuple[int, ...]]], ...] = (
    ("bp-iso", ("bp",), None),
    ("cd-iso", ("cd",), None),
    ("bp+cd-even", ("bp", "cd"), (8, 8)),
)
REFERENCE_WORKLOAD = "bp+cd-even"


# ----------------------------------------------------------------------
# bit-identity signatures
def result_signature(result: RunResult) -> Tuple:
    """Every stat a RunResult carries, as a comparable tuple."""
    return (
        result.cycles,
        tuple(result.kernel_names),
        tuple(sorted(
            (slot, k.warp_insts, k.alu_insts, k.sfu_insts, k.mem_insts,
             k.mem_requests, k.tbs_launched, k.tbs_completed)
            for slot, k in result.kernels.items())),
        tuple(sorted(result.l1d_accesses.items())),
        tuple(sorted(result.l1d_hits.items())),
        tuple(sorted(result.l1d_misses.items())),
        tuple(sorted(result.l1d_rsfails.items())),
        result.lsu_stall_cycles,
        result.lsu_busy_cycles,
        result.alu_busy,
        result.sfu_busy,
        result.dram_row_hit_rate,
        result.l2_accesses,
        result.l2_misses,
        result.dram_accesses,
        result.icnt_flits,
    )


def outcome_signature(outcome: WorkloadOutcome) -> Tuple:
    """A campaign cell's full identity: metrics + run stats.

    Floats are compared exactly — the fast paths must be bit-identical
    to the reference loop, not merely close."""
    return (
        outcome.mix_name,
        outcome.mix_class,
        outcome.scheme,
        tuple(outcome.partition),
        tuple(outcome.iso_ipcs),
        tuple(outcome.shared_ipcs),
        tuple(outcome.norm_ipcs),
        outcome.weighted_speedup,
        outcome.antt,
        outcome.fairness,
        result_signature(outcome.result),
    )


# ----------------------------------------------------------------------
# cycle-loop benchmark
def _build_gpu(kernels: Sequence[str], tb_limits, config: GPUConfig,
               reference: bool, seed: int = 0) -> GPU:
    profiles = [get_profile(k) for k in kernels]
    if tb_limits is None:
        tb_limits = [p.max_tbs_per_sm(config) for p in profiles]
    launches = make_launches(profiles, list(tb_limits), config, seed=seed)
    return GPU(config, launches, SchemeConfig(), reference=reference)


def _time_run(kernels: Sequence[str], tb_limits, config: GPUConfig,
              cycles: int, reference: bool) -> Tuple[float, Tuple]:
    gpu = _build_gpu(kernels, tb_limits, config, reference)
    t0 = time.perf_counter()
    result = gpu.run(cycles)
    dt = time.perf_counter() - t0
    return dt, result_signature(result)


def bench_cycle_loop(cycles: int = 2500, reps: int = 2,
                     config: Optional[GPUConfig] = None,
                     out_path: Optional[str] = None) -> Dict:
    """Fast-loop vs reference-loop cycles/sec, workload by workload.

    Raises ``AssertionError`` if any workload's fast run is not
    bit-identical to its reference run.
    """
    config = config or GPUConfig()
    workloads = []
    for name, kernels, tb_limits in CYCLE_LOOP_WORKLOADS:
        ref_best = fast_best = float("inf")
        ref_sig = fast_sig = None
        for _ in range(max(1, reps)):
            dt, sig = _time_run(kernels, tb_limits, config, cycles,
                                reference=True)
            ref_best = min(ref_best, dt)
            assert ref_sig is None or sig == ref_sig, \
                f"{name}: reference loop is not deterministic"
            ref_sig = sig
            dt, sig = _time_run(kernels, tb_limits, config, cycles,
                                reference=False)
            fast_best = min(fast_best, dt)
            fast_sig = sig
            assert fast_sig == ref_sig, \
                f"{name}: fast loop diverged from the reference loop"
        workloads.append({
            "workload": name,
            "kernels": list(kernels),
            "tb_limits": list(tb_limits) if tb_limits else None,
            "cycles": cycles,
            "reference_s": ref_best,
            "fast_s": fast_best,
            "reference_cycles_per_s": cycles / ref_best,
            "fast_cycles_per_s": cycles / fast_best,
            "speedup": ref_best / fast_best,
            "identical": True,
        })
    speedups = [w["speedup"] for w in workloads]
    reference = next(w for w in workloads
                     if w["workload"] == REFERENCE_WORKLOAD)
    report = {
        "benchmark": "cycle_loop",
        "config": "paper-table1-default",
        "num_sms": config.num_sms,
        "cpu_count": os.cpu_count(),
        "reps": reps,
        "workloads": workloads,
        "reference_workload": REFERENCE_WORKLOAD,
        "reference_workload_speedup": reference["speedup"],
        "min_speedup": min(speedups),
        "geomean_speedup": _geomean(speedups),
    }
    _write_report(report, out_path or _root_path(CYCLE_LOOP_REPORT))
    return report


# ----------------------------------------------------------------------
# campaign benchmark
def _campaign_runner(cache_dir: str,
                     config: Optional[GPUConfig] = None) -> ExperimentRunner:
    return ExperimentRunner(config or GPUConfig(),
                            RunnerSettings(**CAMPAIGN_SETTINGS),
                            cache_dir=cache_dir)


def _campaign_mixes() -> List[WorkloadMix]:
    return [WorkloadMix(tuple(get_profile(k) for k in kernels))
            for kernels in CAMPAIGN_MIXES]


def _run_campaign_leg(reference: bool, workers: int,
                      config: Optional[GPUConfig] = None
                      ) -> Tuple[float, List[Tuple]]:
    """One timed pass over the whole campaign grid with a fresh disk
    cache (every leg recomputes everything from scratch)."""
    prior = os.environ.get("REPRO_REFERENCE_LOOP")
    if reference:
        os.environ["REPRO_REFERENCE_LOOP"] = "1"
    else:
        os.environ.pop("REPRO_REFERENCE_LOOP", None)
    try:
        mixes = _campaign_mixes()
        with tempfile.TemporaryDirectory() as cache_dir:
            runner = _campaign_runner(cache_dir, config)
            t0 = time.perf_counter()
            if workers > 1:
                outcomes = runner.run_campaign(mixes, list(CAMPAIGN_SCHEMES),
                                               workers=workers)
            else:
                outcomes = [runner.run_mix(mix, scheme)
                            for mix in mixes for scheme in CAMPAIGN_SCHEMES]
            dt = time.perf_counter() - t0
        return dt, [outcome_signature(o) for o in outcomes]
    finally:
        if prior is None:
            os.environ.pop("REPRO_REFERENCE_LOOP", None)
        else:
            os.environ["REPRO_REFERENCE_LOOP"] = prior


def bench_campaign(workers: int = 4,
                   config: Optional[GPUConfig] = None,
                   out_path: Optional[str] = None) -> Dict:
    """Reference-serial vs fast-serial vs fast-parallel campaign.

    The headline ``campaign_speedup`` compares the end-to-end stack —
    fast loops *and* the ``workers``-process executor — against the
    reference loop run serially; ``fast_loop_speedup`` and
    ``parallel_speedup`` attribute it to the two layers.  On a
    single-core host (see ``cpu_count``) the parallel layer cannot
    contribute, so the headline degrades to roughly the fast-loop
    speedup minus pool overhead.

    Raises ``AssertionError`` if any leg disagrees on any outcome.
    """
    ref_s, ref_sigs = _run_campaign_leg(reference=True, workers=1,
                                        config=config)
    fast_s, fast_sigs = _run_campaign_leg(reference=False, workers=1,
                                          config=config)
    par_s, par_sigs = _run_campaign_leg(reference=False, workers=workers,
                                        config=config)
    assert fast_sigs == ref_sigs, \
        "fast-serial campaign diverged from reference-serial"
    assert par_sigs == ref_sigs, \
        "parallel campaign diverged from reference-serial"
    cells = len(ref_sigs)
    report = {
        "benchmark": "campaign",
        "config": "paper-table1-default",
        "mixes": [list(m) for m in CAMPAIGN_MIXES],
        "schemes": list(CAMPAIGN_SCHEMES),
        "settings": dict(CAMPAIGN_SETTINGS),
        "cells": cells,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "reference_serial_s": ref_s,
        "fast_serial_s": fast_s,
        "fast_parallel_s": par_s,
        "fast_loop_speedup": ref_s / fast_s,
        "parallel_speedup": fast_s / par_s,
        "campaign_speedup": ref_s / par_s,
        "identical": True,
    }
    _write_report(report, out_path or _root_path(CAMPAIGN_REPORT))
    return report


# ----------------------------------------------------------------------
# report plumbing
def _geomean(values: Sequence[float]) -> float:
    prod = 1.0
    for v in values:
        prod *= v
    return prod ** (1.0 / len(values))


def _root_path(filename: str) -> str:
    """Repo root when running from a checkout; CWD otherwise."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.normpath(os.path.join(here, "..", "..", ".."))
    if os.path.isdir(os.path.join(root, "src")):
        return os.path.join(root, filename)
    return os.path.join(os.getcwd(), filename)


def _write_report(report: Dict, path: str) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
