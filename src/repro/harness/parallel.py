"""Parallel campaign executor: fan independent simulation jobs out
over worker processes.

Experiment campaigns in this repo are embarrassingly parallel — every
isolated run, every scalability-curve point and every mix×scheme cell
is an independent simulation.  This module describes each unit of work
as a small picklable job dataclass and executes a batch of them on a
:class:`~concurrent.futures.ProcessPoolExecutor`:

* ``IsoJob``   — one kernel alone at one TB count (normalisation runs);
* ``CurveJob`` — one kernel's full scalability curve (Warped-Slicer
  profiling, paper §2.5 / Fig. 3a);
* ``MixJob``   — one concurrent mix under one scheme (a campaign cell).

Jobs reference kernels by their short profile names so they pickle in
a few bytes; each worker process rebuilds a private
:class:`~repro.harness.runner.ExperimentRunner` from the parent's
config/settings and can additionally be pre-seeded with already-known
isolated records and curves so it never re-derives shared inputs.

Duplicate jobs within a batch are executed once (results are fanned
back out to every requesting position), results of ``IsoJob`` /
``CurveJob`` are installed into the parent runner's in-memory caches,
and the shared on-disk cache (``.repro_cache``) is written atomically
(temp file + ``os.replace`` — see ``runner.py``) so concurrent workers
cannot corrupt records.  When multiprocessing is unavailable — or
``workers <= 1`` — the batch degrades gracefully to an in-process
serial loop with identical results.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.cke.warped_slicer import ScalabilityCurve
from repro.harness.runner import (ExperimentRunner, IsoRecord,
                                  RunnerSettings, WorkloadOutcome)
from repro.obs.telemetry import JobHeartbeat
from repro.workloads.mixes import WorkloadMix
from repro.workloads.profiles import get_profile

#: environment override for the default worker count.
WORKERS_ENV = "REPRO_BENCH_WORKERS"


# ----------------------------------------------------------------------
# job descriptions (frozen → hashable → dedupable; tiny → cheap pickles)
@dataclass(frozen=True)
class IsoJob:
    """One isolated run of ``kernel`` at ``tbs`` TBs per SM."""

    kernel: str
    tbs: Optional[int] = None
    cycles: Optional[int] = None


@dataclass(frozen=True)
class CurveJob:
    """One kernel's full scalability curve (all TB counts)."""

    kernel: str


@dataclass(frozen=True)
class MixJob:
    """One concurrent mix under one scheme.

    ``obs=True`` runs the cell with the observability layer attached:
    the outcome's ``result.obs`` carries a picklable
    :class:`~repro.obs.collector.ObsReport` (stall taxonomy + counter
    snapshot) back across the worker boundary, mergeable in the parent
    with ``ObsReport.merged``.

    ``phase_interval`` additionally turns on the phase sampler
    (:mod:`repro.obs.timeline`) at that cycle interval — the report
    then also carries the run's phase records and adaptation event
    log (implies ``obs``)."""

    kernels: Tuple[str, ...]
    scheme: str = "ws"
    cycles: Optional[int] = None
    obs: bool = False
    phase_interval: Optional[int] = None


Job = Union[IsoJob, CurveJob, MixJob]


@dataclass(frozen=True)
class PoolConfig:
    """Worker-pool shape for one batch of jobs.

    ``workers=None`` resolves from ``$REPRO_BENCH_WORKERS`` or the CPU
    count; ``workers<=1`` runs the batch serially in-process.
    ``chunksize`` batches job dispatch to cut IPC overhead for large
    campaigns of cheap jobs.
    """

    workers: Optional[int] = None
    chunksize: int = 1

    def resolved_workers(self) -> int:
        if self.workers is not None:
            return max(1, self.workers)
        env = os.environ.get(WORKERS_ENV)
        if env:
            try:
                return max(1, int(env))
            except ValueError:
                pass
        return os.cpu_count() or 1


# ----------------------------------------------------------------------
# worker-side execution
_WORKER_RUNNER: Optional[ExperimentRunner] = None
_WORKER_FAULT_PLAN = None


def _init_worker(config, settings: RunnerSettings, cache_dir: Optional[str],
                 iso_seed: Sequence[Tuple[Optional[int], IsoRecord]],
                 curve_seed: Sequence[ScalabilityCurve]) -> None:
    """Build this worker's private runner, pre-seeded with everything
    the parent already knows so shared inputs are never recomputed.

    Constructing the runner also points the kernel-trace disk cache at
    ``cache_dir/traces-v<CACHE_VERSION>`` (see ``ExperimentRunner``),
    so workers share compiled trace chunks with the parent and a
    version bump invalidates both caches together.

    Fault injection activates here too: when ``$REPRO_FAULT_PLAN``
    names a plan file (see :mod:`repro.harness.resilience`), the worker
    loads it once at init and the resilient executor's worker loop
    consults it around every job.  An unreadable plan is an init
    error, never a silent fault-free run."""
    global _WORKER_RUNNER, _WORKER_FAULT_PLAN
    runner = ExperimentRunner(config, settings, cache_dir=cache_dir)
    for cycles, record in iso_seed:
        _install_iso(runner, record, cycles)
    for curve in curve_seed:
        _install_curve(runner, curve)
    _WORKER_RUNNER = runner
    from repro.harness.resilience import FaultPlan
    _WORKER_FAULT_PLAN = FaultPlan.from_env()


def _worker_fault_plan(load: bool = False):
    """The fault plan this process loaded at ``_init_worker`` time.
    ``load=True`` (the serial in-process path, where no worker init
    ever runs) re-reads ``$REPRO_FAULT_PLAN`` fresh instead."""
    if load:
        from repro.harness.resilience import FaultPlan
        return FaultPlan.from_env()
    return _WORKER_FAULT_PLAN


def _wrap_job_error(job: Job, exc: Exception):
    """Re-raise ``exc`` as a picklable JobError carrying the full
    formatted worker-side traceback — the bare exception the pool used
    to ship home loses the stack in transit."""
    from repro.harness.resilience import JobError
    if isinstance(exc, JobError):
        raise exc
    raise JobError.from_exception(_job_label(job), exc) from None


def _run_job_in_worker(job: Job):
    try:
        return execute_job(_WORKER_RUNNER, job)
    except Exception as exc:
        _wrap_job_error(job, exc)


def _run_job_in_worker_timed(job: Job):
    """Like :func:`_run_job_in_worker` but also reports the worker-side
    wall-clock seconds, for campaign telemetry heartbeats."""
    start = time.perf_counter()
    try:
        result = execute_job(_WORKER_RUNNER, job)
    except Exception as exc:
        _wrap_job_error(job, exc)
    return result, time.perf_counter() - start


def execute_job(runner: ExperimentRunner, job: Job):
    """Run one job on ``runner`` (shared by workers and serial mode)."""
    if isinstance(job, IsoJob):
        return runner.isolated(get_profile(job.kernel), job.tbs, job.cycles)
    if isinstance(job, CurveJob):
        return runner.curve(get_profile(job.kernel))
    if isinstance(job, MixJob):
        mix = WorkloadMix(tuple(get_profile(k) for k in job.kernels))
        obs: object = job.obs or None
        if job.phase_interval:
            from repro.obs.collector import ObsOptions
            obs = ObsOptions(phase=True, phase_interval=job.phase_interval)
        return runner.run_mix(mix, job.scheme, cycles=job.cycles, obs=obs)
    raise TypeError(f"unknown job type {type(job).__name__}")


# ----------------------------------------------------------------------
# parent-side cache installation
def _install_iso(runner: ExperimentRunner, record: IsoRecord,
                 cycles: Optional[int]) -> None:
    # ``isolated()`` resolves a default (None) TB count before its
    # cache lookup, so keying by the record's resolved count serves
    # both explicit and default-TB requests.
    cycles = cycles or runner.settings.iso_cycles
    runner._iso_cache[runner._iso_key(record.name, record.tbs, cycles)] \
        = record


def _install_curve(runner: ExperimentRunner, curve: ScalabilityCurve) -> None:
    key = (runner._cfg_key, curve.kernel, runner.settings.curve_cycles,
           runner.settings.seed, _cache_version())
    runner._curve_cache[key] = curve


def _cache_version() -> int:
    from repro.harness.runner import CACHE_VERSION
    return CACHE_VERSION


def _absorb(runner: ExperimentRunner, job: Job, result) -> None:
    """Install a worker's result into the parent runner's caches."""
    if isinstance(job, IsoJob):
        _install_iso(runner, result, job.cycles)
    elif isinstance(job, CurveJob):
        _install_curve(runner, result)


def _seed_payload(runner: ExperimentRunner):
    """Everything the parent's in-memory caches hold, as initargs.

    ``_iso_key`` is ``(version, cfg, name, tbs, cycles, seed)`` — the
    cycle budget rides along so the worker re-keys records exactly."""
    iso_seed = [(key[4], record)
                for key, record in runner._iso_cache.items()]
    curve_seed = list(runner._curve_cache.values())
    return iso_seed, curve_seed


# ----------------------------------------------------------------------
# telemetry helpers
_CACHE_MISS = object()

#: per-finished-job progress callback (campaign telemetry).
ProgressFn = Callable[[JobHeartbeat], None]


def _probe_cache(runner: ExperimentRunner, job: Job):
    """The parent-side cached result for ``job``, or ``_CACHE_MISS``.
    Used by the telemetry path to flag cache hits before dispatch."""
    if isinstance(job, IsoJob):
        tbs = job.tbs
        if tbs is None:
            tbs = get_profile(job.kernel).max_tbs_per_sm(runner.config)
        cycles = job.cycles or runner.settings.iso_cycles
        key = runner._iso_key(job.kernel, tbs, cycles)
        return runner._iso_cache.get(key, _CACHE_MISS)
    if isinstance(job, CurveJob):
        key = (runner._cfg_key, job.kernel, runner.settings.curve_cycles,
               runner.settings.seed, _cache_version())
        return runner._curve_cache.get(key, _CACHE_MISS)
    return _CACHE_MISS


def _job_label(job: Job) -> str:
    if isinstance(job, IsoJob):
        return f"iso {job.kernel}" + (f" tbs={job.tbs}" if job.tbs else "")
    if isinstance(job, CurveJob):
        return f"curve {job.kernel}"
    if isinstance(job, MixJob):
        return f"mix {job.scheme} {'+'.join(job.kernels)}"
    return repr(job)


def _job_cycles(runner: ExperimentRunner, job: Job) -> int:
    """Simulated-cycle budget of one job (for cycles/sec telemetry)."""
    settings = runner.settings
    if isinstance(job, IsoJob):
        return job.cycles or settings.iso_cycles
    if isinstance(job, CurveJob):
        points = get_profile(job.kernel).max_tbs_per_sm(runner.config)
        return points * settings.curve_cycles
    if isinstance(job, MixJob):
        return job.cycles or settings.concurrent_cycles
    return 0


# ----------------------------------------------------------------------
# ledger-informed job ordering
def job_cost_key(job: Job) -> Optional[Tuple[str, str]]:
    """The ledger ``(workload, scheme)`` key a job's cost hint lives
    under, or None for job types the ledger does not record."""
    if isinstance(job, MixJob):
        return "+".join(job.kernels), job.scheme
    return None


def ledger_cost_hints(artifacts_path: str) -> Dict[Tuple[str, str], float]:
    """Per-cell expected-cost hints from a prior campaign's run
    artifacts: ``(workload, scheme) -> cost``.

    Cost is the artifact's simulated-cycle budget scaled by its
    measured activity (``1 + total_ipc``) — a deterministic wall-clock
    proxy that needs no timing fields: a cell simulating more cycles,
    or doing more work per cycle, takes a worker longer.  Missing or
    unreadable artifacts simply yield no hint.
    """
    from repro.obs import ledger
    hints: Dict[Tuple[str, str], float] = {}
    for key, artifact in ledger.load_artifacts(artifacts_path).items():
        cycles = artifact.get("cycles") or 0
        metrics = artifact.get("metrics") or {}
        ipc = metrics.get("total_ipc") or 0.0
        hints[key] = float(cycles) * (1.0 + float(ipc))
    return hints


def _order_by_cost(pending: List[Job],
                   cost_hints: Dict[Tuple[str, str], float]) -> List[Job]:
    """Longest-expected-first (LPT) dispatch order.  A long cell
    dispatched last leaves the pool tail-bound on one worker; front-
    loading the expensive cells packs the workers tighter.  The sort is
    stable with unknown-cost jobs at 0, so unhinted batches keep their
    input order exactly — and results are returned in input order
    regardless (ordering only moves dispatch)."""
    indexed = list(enumerate(pending))
    indexed.sort(key=lambda pair: (
        -cost_hints.get(job_cost_key(pair[1]) or ("", ""), 0.0), pair[0]))
    return [job for _i, job in indexed]


# ----------------------------------------------------------------------
# batch execution
def run_jobs(runner: ExperimentRunner, jobs: Sequence[Job],
             workers: Optional[int] = None, chunksize: int = 1,
             progress: Optional[ProgressFn] = None,
             cost_hints: Optional[Dict[Tuple[str, str], float]] = None
             ) -> List:
    """Execute ``jobs`` and return their results in input order.

    Identical jobs are executed once.  ``IsoJob`` / ``CurveJob``
    results are installed into ``runner``'s in-memory caches (and, via
    the workers, the shared disk cache), so subsequent serial calls hit
    the cache.  The pool is capped at the machine's CPU count (more
    processes than cores only add overhead to CPU-bound jobs); it falls
    back to an in-process serial loop when the pool is unavailable or
    the cap resolves to 1.

    ``progress`` receives one :class:`JobHeartbeat` per finished unique
    job, in completion order, from the dispatching thread; results are
    unaffected by its presence.

    ``cost_hints`` (see :func:`ledger_cost_hints`) reorders the
    *dispatch* of uncached jobs longest-expected-first; the returned
    list stays in input order, bit-identical with or without hints.
    """
    pool_cfg = PoolConfig(workers=workers, chunksize=chunksize)
    unique: List[Job] = list(dict.fromkeys(jobs))
    if not unique:
        return []
    results: Dict[Job, object] = {}
    total = len(unique)
    pending = unique
    if progress is not None:
        # Flag parent-side cache hits up front: they cost nothing, so
        # heartbeat them immediately and dispatch only the real work.
        pending = []
        done = 0
        for job in unique:
            cached = _probe_cache(runner, job)
            if cached is _CACHE_MISS:
                pending.append(job)
            else:
                results[job] = cached
                done += 1
                progress(JobHeartbeat(
                    index=done, total=total, label=_job_label(job),
                    duration_s=0.0, sim_cycles=_job_cycles(runner, job),
                    cache_hit=True))
    if cost_hints and len(pending) > 1:
        pending = _order_by_cost(list(pending), cost_hints)
    # Cap the pool at the machine's CPU count: extra processes beyond
    # that cannot run concurrently, so oversubscribing only adds spawn,
    # pickle, and scheduling overhead to a CPU-bound campaign.
    nworkers = (min(pool_cfg.resolved_workers(), len(pending),
                    os.cpu_count() or 1)
                if pending else 0)
    pool_failed = False
    if nworkers > 1:
        try:
            iso_seed, curve_seed = _seed_payload(runner)
            with ProcessPoolExecutor(
                    max_workers=nworkers,
                    initializer=_init_worker,
                    initargs=(runner.config, runner.settings,
                              runner.cache_dir, iso_seed, curve_seed),
            ) as pool:
                if progress is None:
                    for job, result in zip(
                            pending,
                            pool.map(_run_job_in_worker, pending,
                                     chunksize=max(1, pool_cfg.chunksize))):
                        results[job] = result
                else:
                    futures = {pool.submit(_run_job_in_worker_timed, job): job
                               for job in pending}
                    done = total - len(pending)
                    not_done = set(futures)
                    while not_done:
                        finished, not_done = wait(
                            not_done, return_when=FIRST_COMPLETED)
                        for future in finished:
                            job = futures[future]
                            result, duration = future.result()
                            results[job] = result
                            done += 1
                            progress(JobHeartbeat(
                                index=done, total=total,
                                label=_job_label(job), duration_s=duration,
                                sim_cycles=_job_cycles(runner, job)))
        except (OSError, ValueError, RuntimeError, ImportError):
            # No usable multiprocessing here (restricted sandbox, dead
            # workers, ...): degrade to the serial path below.
            for job in pending:
                results.pop(job, None)
            pool_failed = True
    if pool_failed or nworkers <= 1:
        done = total - len(pending)
        for job in pending:
            if job in results:
                continue
            start = time.perf_counter()
            results[job] = execute_job(runner, job)
            if progress is not None:
                done += 1
                progress(JobHeartbeat(
                    index=done, total=total, label=_job_label(job),
                    duration_s=time.perf_counter() - start,
                    sim_cycles=_job_cycles(runner, job)))
    for job in unique:
        _absorb(runner, job, results[job])
    return [results[job] for job in jobs]


def campaign_jobs(mixes: Sequence[WorkloadMix], schemes: Sequence[str],
                  cycles: Optional[int] = None, obs: bool = False,
                  phase_interval: Optional[int] = None) -> List[MixJob]:
    """The mix-major grid of cells for a mixes×schemes campaign."""
    return [MixJob(tuple(p.name for p in mix.profiles), scheme, cycles, obs,
                   phase_interval)
            for mix in mixes for scheme in schemes]


def prefetch_jobs(mixes: Sequence[WorkloadMix],
                  schemes: Sequence[str]) -> List[Job]:
    """Shared inputs of a campaign: every kernel's isolated run (for
    normalisation) and — when any scheme partitions via Warped-Slicer —
    every kernel's scalability curve."""
    kernels = list(dict.fromkeys(
        p.name for mix in mixes for p in mix.profiles))
    jobs: List[Job] = [IsoJob(k) for k in kernels]
    if any(s.lower().startswith(("ws", "dws")) for s in schemes):
        jobs += [CurveJob(k) for k in kernels]
    return jobs


def run_campaign(runner: ExperimentRunner, mixes: Sequence[WorkloadMix],
                 schemes: Sequence[str], workers: Optional[int] = None,
                 cycles: Optional[int] = None,
                 chunksize: int = 1, obs: bool = False,
                 progress: Optional[ProgressFn] = None,
                 phase_interval: Optional[int] = None,
                 artifacts_dir: Optional[str] = None
                 ) -> List[WorkloadOutcome]:
    """Run the full mixes×schemes grid, in parallel, in two phases.

    Phase 1 computes the shared inputs (isolated runs, curves) once and
    installs them everywhere; phase 2 fans the grid cells out, each
    worker pre-seeded with phase 1's results.  Outcomes come back in
    mix-major grid order, bit-identical to the serial loop.

    ``obs=True`` runs every cell observed (stall-attribution report on
    each outcome's ``result.obs``); ``phase_interval`` also turns on
    the phase sampler in every cell; ``progress`` receives live
    :class:`JobHeartbeat` telemetry from both phases.

    ``artifacts_dir`` makes the parent emit one run-artifact JSON per
    cell (plus the ``ledger.json`` index) after all workers return —
    workers only ship picklable reports back, the ledger write happens
    in exactly one process.  When the directory already holds artifacts
    from a prior campaign, their per-cell costs order this one's
    dispatch longest-first (:func:`ledger_cost_hints`) — results are
    unaffected, only worker packing.
    """
    run_jobs(runner, prefetch_jobs(mixes, schemes), workers=workers,
             chunksize=chunksize, progress=progress)
    cost_hints = None
    if artifacts_dir and os.path.isdir(artifacts_dir):
        cost_hints = ledger_cost_hints(artifacts_dir)
    outcomes = run_jobs(
        runner,
        campaign_jobs(mixes, schemes, cycles, obs=obs,
                      phase_interval=phase_interval),
        workers=workers, chunksize=chunksize, progress=progress,
        cost_hints=cost_hints)
    if artifacts_dir:
        from repro.obs import ledger
        sha = ledger.current_git_sha()
        ledger.write_artifacts(artifacts_dir, [
            ledger.artifact_from_outcome(outcome, runner.config,
                                         runner.settings, git_sha=sha)
            for outcome in outcomes])
    return outcomes
