"""Parallel campaign executor: fan independent simulation jobs out
over worker processes.

Experiment campaigns in this repo are embarrassingly parallel — every
isolated run, every scalability-curve point and every mix×scheme cell
is an independent simulation.  This module describes each unit of work
as a small picklable job dataclass and executes a batch of them on a
:class:`~concurrent.futures.ProcessPoolExecutor`:

* ``IsoJob``   — one kernel alone at one TB count (normalisation runs);
* ``CurveJob`` — one kernel's full scalability curve (Warped-Slicer
  profiling, paper §2.5 / Fig. 3a);
* ``MixJob``   — one concurrent mix under one scheme (a campaign cell).

Jobs reference kernels by their short profile names so they pickle in
a few bytes; each worker process rebuilds a private
:class:`~repro.harness.runner.ExperimentRunner` from the parent's
config/settings and can additionally be pre-seeded with already-known
isolated records and curves so it never re-derives shared inputs.

Duplicate jobs within a batch are executed once (results are fanned
back out to every requesting position), results of ``IsoJob`` /
``CurveJob`` are installed into the parent runner's in-memory caches,
and the shared on-disk cache (``.repro_cache``) is written atomically
(temp file + ``os.replace`` — see ``runner.py``) so concurrent workers
cannot corrupt records.  When multiprocessing is unavailable — or
``workers <= 1`` — the batch degrades gracefully to an in-process
serial loop with identical results.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cke.warped_slicer import ScalabilityCurve
from repro.harness.runner import (ExperimentRunner, IsoRecord,
                                  RunnerSettings, WorkloadOutcome)
from repro.workloads.mixes import WorkloadMix
from repro.workloads.profiles import get_profile

#: environment override for the default worker count.
WORKERS_ENV = "REPRO_BENCH_WORKERS"


# ----------------------------------------------------------------------
# job descriptions (frozen → hashable → dedupable; tiny → cheap pickles)
@dataclass(frozen=True)
class IsoJob:
    """One isolated run of ``kernel`` at ``tbs`` TBs per SM."""

    kernel: str
    tbs: Optional[int] = None
    cycles: Optional[int] = None


@dataclass(frozen=True)
class CurveJob:
    """One kernel's full scalability curve (all TB counts)."""

    kernel: str


@dataclass(frozen=True)
class MixJob:
    """One concurrent mix under one scheme."""

    kernels: Tuple[str, ...]
    scheme: str = "ws"
    cycles: Optional[int] = None


Job = Union[IsoJob, CurveJob, MixJob]


@dataclass(frozen=True)
class PoolConfig:
    """Worker-pool shape for one batch of jobs.

    ``workers=None`` resolves from ``$REPRO_BENCH_WORKERS`` or the CPU
    count; ``workers<=1`` runs the batch serially in-process.
    ``chunksize`` batches job dispatch to cut IPC overhead for large
    campaigns of cheap jobs.
    """

    workers: Optional[int] = None
    chunksize: int = 1

    def resolved_workers(self) -> int:
        if self.workers is not None:
            return max(1, self.workers)
        env = os.environ.get(WORKERS_ENV)
        if env:
            try:
                return max(1, int(env))
            except ValueError:
                pass
        return os.cpu_count() or 1


# ----------------------------------------------------------------------
# worker-side execution
_WORKER_RUNNER: Optional[ExperimentRunner] = None


def _init_worker(config, settings: RunnerSettings, cache_dir: Optional[str],
                 iso_seed: Sequence[Tuple[Optional[int], IsoRecord]],
                 curve_seed: Sequence[ScalabilityCurve]) -> None:
    """Build this worker's private runner, pre-seeded with everything
    the parent already knows so shared inputs are never recomputed."""
    global _WORKER_RUNNER
    runner = ExperimentRunner(config, settings, cache_dir=cache_dir)
    for cycles, record in iso_seed:
        _install_iso(runner, record, cycles)
    for curve in curve_seed:
        _install_curve(runner, curve)
    _WORKER_RUNNER = runner


def _run_job_in_worker(job: Job):
    return execute_job(_WORKER_RUNNER, job)


def execute_job(runner: ExperimentRunner, job: Job):
    """Run one job on ``runner`` (shared by workers and serial mode)."""
    if isinstance(job, IsoJob):
        return runner.isolated(get_profile(job.kernel), job.tbs, job.cycles)
    if isinstance(job, CurveJob):
        return runner.curve(get_profile(job.kernel))
    if isinstance(job, MixJob):
        mix = WorkloadMix(tuple(get_profile(k) for k in job.kernels))
        return runner.run_mix(mix, job.scheme, cycles=job.cycles)
    raise TypeError(f"unknown job type {type(job).__name__}")


# ----------------------------------------------------------------------
# parent-side cache installation
def _install_iso(runner: ExperimentRunner, record: IsoRecord,
                 cycles: Optional[int]) -> None:
    # ``isolated()`` resolves a default (None) TB count before its
    # cache lookup, so keying by the record's resolved count serves
    # both explicit and default-TB requests.
    cycles = cycles or runner.settings.iso_cycles
    runner._iso_cache[runner._iso_key(record.name, record.tbs, cycles)] \
        = record


def _install_curve(runner: ExperimentRunner, curve: ScalabilityCurve) -> None:
    key = (runner._cfg_key, curve.kernel, runner.settings.curve_cycles,
           runner.settings.seed, _cache_version())
    runner._curve_cache[key] = curve


def _cache_version() -> int:
    from repro.harness.runner import CACHE_VERSION
    return CACHE_VERSION


def _absorb(runner: ExperimentRunner, job: Job, result) -> None:
    """Install a worker's result into the parent runner's caches."""
    if isinstance(job, IsoJob):
        _install_iso(runner, result, job.cycles)
    elif isinstance(job, CurveJob):
        _install_curve(runner, result)


def _seed_payload(runner: ExperimentRunner):
    """Everything the parent's in-memory caches hold, as initargs.

    ``_iso_key`` is ``(version, cfg, name, tbs, cycles, seed)`` — the
    cycle budget rides along so the worker re-keys records exactly."""
    iso_seed = [(key[4], record)
                for key, record in runner._iso_cache.items()]
    curve_seed = list(runner._curve_cache.values())
    return iso_seed, curve_seed


# ----------------------------------------------------------------------
# batch execution
def run_jobs(runner: ExperimentRunner, jobs: Sequence[Job],
             workers: Optional[int] = None, chunksize: int = 1) -> List:
    """Execute ``jobs`` and return their results in input order.

    Identical jobs are executed once.  ``IsoJob`` / ``CurveJob``
    results are installed into ``runner``'s in-memory caches (and, via
    the workers, the shared disk cache), so subsequent serial calls hit
    the cache.  Falls back to an in-process serial loop when the pool
    is unavailable or ``workers`` resolves to 1.
    """
    pool_cfg = PoolConfig(workers=workers, chunksize=chunksize)
    unique: List[Job] = list(dict.fromkeys(jobs))
    if not unique:
        return []
    nworkers = min(pool_cfg.resolved_workers(), len(unique))
    results: Dict[Job, object] = {}
    if nworkers > 1:
        try:
            iso_seed, curve_seed = _seed_payload(runner)
            with ProcessPoolExecutor(
                    max_workers=nworkers,
                    initializer=_init_worker,
                    initargs=(runner.config, runner.settings,
                              runner.cache_dir, iso_seed, curve_seed),
            ) as pool:
                for job, result in zip(
                        unique,
                        pool.map(_run_job_in_worker, unique,
                                 chunksize=max(1, pool_cfg.chunksize))):
                    results[job] = result
        except (OSError, ValueError, RuntimeError, ImportError):
            # No usable multiprocessing here (restricted sandbox, dead
            # workers, ...): degrade to the serial path below.
            results.clear()
    if not results:
        for job in unique:
            results[job] = execute_job(runner, job)
    for job in unique:
        _absorb(runner, job, results[job])
    return [results[job] for job in jobs]


def campaign_jobs(mixes: Sequence[WorkloadMix], schemes: Sequence[str],
                  cycles: Optional[int] = None) -> List[MixJob]:
    """The mix-major grid of cells for a mixes×schemes campaign."""
    return [MixJob(tuple(p.name for p in mix.profiles), scheme, cycles)
            for mix in mixes for scheme in schemes]


def prefetch_jobs(mixes: Sequence[WorkloadMix],
                  schemes: Sequence[str]) -> List[Job]:
    """Shared inputs of a campaign: every kernel's isolated run (for
    normalisation) and — when any scheme partitions via Warped-Slicer —
    every kernel's scalability curve."""
    kernels = list(dict.fromkeys(
        p.name for mix in mixes for p in mix.profiles))
    jobs: List[Job] = [IsoJob(k) for k in kernels]
    if any(s.lower().startswith(("ws", "dws")) for s in schemes):
        jobs += [CurveJob(k) for k in kernels]
    return jobs


def run_campaign(runner: ExperimentRunner, mixes: Sequence[WorkloadMix],
                 schemes: Sequence[str], workers: Optional[int] = None,
                 cycles: Optional[int] = None,
                 chunksize: int = 1) -> List[WorkloadOutcome]:
    """Run the full mixes×schemes grid, in parallel, in two phases.

    Phase 1 computes the shared inputs (isolated runs, curves) once and
    installs them everywhere; phase 2 fans the grid cells out, each
    worker pre-seeded with phase 1's results.  Outcomes come back in
    mix-major grid order, bit-identical to the serial loop.
    """
    run_jobs(runner, prefetch_jobs(mixes, schemes), workers=workers,
             chunksize=chunksize)
    return run_jobs(runner, campaign_jobs(mixes, schemes, cycles),
                    workers=workers, chunksize=chunksize)
