"""Experiment runner: isolated profiling (cached), scheme resolution,
and concurrent-workload execution with the paper's metrics.

Scheme names follow the paper's labels:

==================  =====================================================
``spatial``         spatial multitasking [2]
``leftover``        Hyper-Q-style left-over policy
``even``            naive even intra-SM TB split
``ws``              Warped-Slicer TB partition (sweet spot)
``ws-rbmi``         + round-robin balanced memory issuing
``ws-qbmi``         + quota-based balanced memory issuing (§3.2)
``ws-dmil``         + dynamic memory instruction limiting (§3.3.2)
``ws-gdmil``        + *global* DMIL (one MILG set, broadcast; §3.3.2)
``ws-qbmi+dmil``    + both
``ws-ucp``          + UCP L1D way partitioning (§3.1)
``ws-smil:3,1``     + static limits (Inf spelled ``inf``) (§3.3.1)
``ws-byp:0,1``      + L1D bypassing for flagged kernels (§4.5)
``dws`` (+suffix)   *dynamic* Warped-Slicer: online profiling (§2.5)
``smk-p``           SMK DRF partition only
``smk-p+w``         SMK-(P+W): DRF + warp-instruction quotas [45]
``smk-p+qbmi``      SMK-P + QBMI
``smk-p+dmil``      SMK-P + DMIL
==================  =====================================================

Isolated runs (needed both for normalisation and for Warped-Slicer's
scalability curves) are cached in memory and optionally on disk
(``.repro_cache``), keyed by profile calibration, configuration and
cycle budget.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.config import GPUConfig, scaled_config
from repro.core.arbiter import SchemeConfig
from repro.cke.leftover import leftover_partition
from repro.cke.partition import even_partition
from repro.cke.smk import drf_partition, smk_quotas
from repro.cke.spatial import spatial_masks, spatial_tb_limits
from repro.cke.dynamic_ws import DynamicWarpedSlicer
from repro.cke.warped_slicer import ScalabilityCurve, sweet_spot
from repro.metrics.speedup import antt, fairness, normalized_ipcs, weighted_speedup
from repro.sim.engine import GPU, make_launches
from repro.sim.stats import RunResult
from repro.workloads.kernel import KernelProfile
from repro.workloads.mixes import WorkloadMix
from repro.workloads.profiles import get_profile
from repro.workloads.trace import configure_disk_cache

#: bump when profile calibration or simulator timing changes, to
#: invalidate the on-disk isolated-run cache.
CACHE_VERSION = 3


@dataclass(frozen=True)
class RunnerSettings:
    """Cycle budgets and seeding for one experiment campaign."""

    iso_cycles: int = 8000
    curve_cycles: int = 6000
    concurrent_cycles: int = 12000
    seed: int = 0


@dataclass
class IsoRecord:
    """Cached scalars from one isolated run."""

    name: str
    tbs: int
    ipc: float
    l1d_miss_rate: float
    l1d_rsfail_rate: float
    lsu_stall_pct: float
    alu_utilization: float
    sfu_utilization: float
    compute_utilization: float


@dataclass
class WorkloadOutcome:
    """Metrics of one concurrent run under one scheme."""

    mix_name: str
    mix_class: str
    scheme: str
    partition: Tuple[int, ...]
    iso_ipcs: List[float]
    shared_ipcs: List[float]
    norm_ipcs: List[float]
    weighted_speedup: float
    antt: float
    fairness: float
    result: RunResult = field(repr=False)

    def kernel_norm(self, index: int) -> float:
        return self.norm_ipcs[index]


def _config_key(config: GPUConfig) -> str:
    blob = json.dumps(asdict(config), sort_keys=True, default=str)
    return hashlib.md5(blob.encode()).hexdigest()[:16]


def _atomic_write_json(path: str, payload) -> None:
    """Write ``payload`` so concurrent readers (and writers) never see
    a partial record: dump to a same-directory temp file, then
    ``os.replace`` it into place (atomic on POSIX)."""
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
    except OSError:
        # The cache is an optimisation, never a correctness dependency.
        try:
            os.unlink(tmp)
        except OSError:
            pass


def _read_json_record(path: str):
    """Load a cache record, treating unreadable/corrupt files (e.g. a
    half-written record from a crashed run) as a cache miss."""
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


class ExperimentRunner:
    """Shared state (config + caches) for a set of experiments."""

    def __init__(self, config: Optional[GPUConfig] = None,
                 settings: Optional[RunnerSettings] = None,
                 cache_dir: Optional[str] = None):
        self.config = config or scaled_config()
        self.settings = settings or RunnerSettings()
        self.cache_dir = cache_dir
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)
            # Compiled kernel-trace chunks live beside the result cache
            # under a versioned directory, so the CACHE_VERSION bump
            # that retires stale isolated-run records retires stale
            # traces with it.  Pool workers inherit this through
            # ``parallel._init_worker`` building their runner here.
            configure_disk_cache(
                os.path.join(cache_dir, f"traces-v{CACHE_VERSION}"))
        self._iso_cache: Dict[Tuple, IsoRecord] = {}
        self._curve_cache: Dict[Tuple, ScalabilityCurve] = {}
        self._cfg_key = _config_key(self.config)

    # ------------------------------------------------------------------
    # isolated runs
    def _iso_key(self, name: str, tbs: int, cycles: int) -> Tuple:
        return (CACHE_VERSION, self._cfg_key, name, tbs, cycles,
                self.settings.seed)

    def _disk_path(self, key: Tuple) -> Optional[str]:
        if not self.cache_dir:
            return None
        digest = hashlib.md5(repr(key).encode()).hexdigest()
        return os.path.join(self.cache_dir, f"iso-{digest}.json")

    def isolated(self, profile: KernelProfile, tbs: Optional[int] = None,
                 cycles: Optional[int] = None) -> IsoRecord:
        """Run (or recall) one kernel alone at ``tbs`` TBs per SM."""
        if tbs is None:
            tbs = profile.max_tbs_per_sm(self.config)
        if tbs < 1:
            raise ValueError(f"{profile.name} cannot fit a single TB")
        cycles = cycles or self.settings.iso_cycles
        key = self._iso_key(profile.name, tbs, cycles)
        if key in self._iso_cache:
            return self._iso_cache[key]
        path = self._disk_path(key)
        if path and os.path.exists(path):
            payload = _read_json_record(path)
            if payload is not None:
                try:
                    record = IsoRecord(**payload)
                except TypeError:
                    record = None  # stale/foreign schema: recompute
                if record is not None:
                    self._iso_cache[key] = record
                    return record
        result = self._run_isolated(profile, tbs, cycles)
        record = IsoRecord(
            name=profile.name, tbs=tbs, ipc=result.ipc(0),
            l1d_miss_rate=result.l1d_miss_rate(0),
            l1d_rsfail_rate=result.l1d_rsfail_rate(0),
            lsu_stall_pct=result.lsu_stall_pct(),
            alu_utilization=result.alu_utilization(),
            sfu_utilization=result.sfu_utilization(),
            compute_utilization=result.compute_utilization(),
        )
        self._iso_cache[key] = record
        if path:
            _atomic_write_json(path, asdict(record))
        return record

    def _run_isolated(self, profile: KernelProfile, tbs: int,
                      cycles: int, timeline_interval: Optional[int] = None
                      ) -> RunResult:
        launches = make_launches([profile], [tbs], self.config,
                                 seed=self.settings.seed)
        gpu = GPU(self.config, launches, SchemeConfig(),
                  timeline_interval=timeline_interval)
        return gpu.run(cycles)

    def isolated_result(self, profile: KernelProfile,
                        tbs: Optional[int] = None,
                        cycles: Optional[int] = None,
                        timeline_interval: Optional[int] = None) -> RunResult:
        """Uncached isolated run returning the full RunResult (used by
        timeline experiments such as Figure 6a/6b)."""
        if tbs is None:
            tbs = profile.max_tbs_per_sm(self.config)
        return self._run_isolated(profile, tbs,
                                  cycles or self.settings.iso_cycles,
                                  timeline_interval)

    def curve(self, profile: KernelProfile) -> ScalabilityCurve:
        """Scalability curve (Warped-Slicer profiling, Figure 3a)."""
        key = (self._cfg_key, profile.name, self.settings.curve_cycles,
               self.settings.seed, CACHE_VERSION)
        if key in self._curve_cache:
            return self._curve_cache[key]
        max_tbs = profile.max_tbs_per_sm(self.config)
        points = [self.isolated(profile, tbs, self.settings.curve_cycles).ipc
                  for tbs in range(1, max_tbs + 1)]
        curve = ScalabilityCurve(profile.name, tuple(points))
        self._curve_cache[key] = curve
        return curve

    # ------------------------------------------------------------------
    # parallel campaigns (see repro.harness.parallel)
    def prefetch(self, jobs, workers: Optional[int] = None,
                 progress=None) -> None:
        """Execute a batch of jobs (``IsoJob``/``CurveJob``/``MixJob``)
        in parallel and install the cacheable results, so subsequent
        serial calls are cache hits."""
        from repro.harness.parallel import run_jobs
        run_jobs(self, jobs, workers=workers, progress=progress)

    def run_campaign(self, mixes: Sequence[WorkloadMix],
                     schemes: Sequence[str],
                     workers: Optional[int] = None,
                     cycles: Optional[int] = None,
                     obs: bool = False,
                     progress=None,
                     phase_interval: Optional[int] = None,
                     artifacts_dir: Optional[str] = None
                     ) -> List[WorkloadOutcome]:
        """Run every mix under every scheme, fanned over worker
        processes; outcomes in mix-major grid order, bit-identical to
        the serial loop.

        ``obs=True`` attaches a stall-attribution report to every
        cell's result; ``phase_interval`` also samples interval
        time-series + the adaptation event log in every cell
        (:mod:`repro.obs.timeline`); ``artifacts_dir`` writes one
        versioned run artifact per cell plus a ``ledger.json`` index
        (:mod:`repro.obs.ledger`); ``progress`` (e.g. a
        :class:`~repro.obs.telemetry.CampaignTelemetry`) receives one
        :class:`~repro.obs.telemetry.JobHeartbeat` per finished job."""
        from repro.harness.parallel import run_campaign
        return run_campaign(self, mixes, schemes, workers=workers,
                            cycles=cycles, obs=obs, progress=progress,
                            phase_interval=phase_interval,
                            artifacts_dir=artifacts_dir)

    def run_campaign_resilient(self, mixes: Sequence[WorkloadMix],
                               schemes: Sequence[str],
                               policy=None,
                               workers: Optional[int] = None,
                               cycles: Optional[int] = None,
                               obs: bool = False,
                               progress=None,
                               phase_interval: Optional[int] = None,
                               artifacts_dir: Optional[str] = None,
                               journal_path: Optional[str] = None,
                               resume: bool = False,
                               fault_plan: Optional[str] = None):
        """Like :meth:`run_campaign`, but under the resilience layer
        (:mod:`repro.harness.resilience`): per-job timeouts, retry with
        backoff, dead-worker respawn, quarantine instead of abort, and
        a checkpoint journal under the cache dir that ``resume=True``
        replays so only unfinished/quarantined cells re-run.  Returns
        ``(outcomes, report)``; quarantined cells appear as
        :class:`~repro.harness.resilience.Quarantined` placeholders,
        everything else is bit-identical to :meth:`run_campaign`."""
        from repro.harness.resilience import run_campaign_resilient
        return run_campaign_resilient(
            self, mixes, schemes, policy=policy, workers=workers,
            cycles=cycles, obs=obs, progress=progress,
            phase_interval=phase_interval, artifacts_dir=artifacts_dir,
            journal_path=journal_path, resume=resume,
            fault_plan=fault_plan)

    # ------------------------------------------------------------------
    # scheme resolution
    def resolve_scheme(self, name: str, profiles: Sequence[KernelProfile]
                       ) -> Tuple[List[int], Optional[List[Set[int]]], SchemeConfig]:
        """Translate a scheme name into (tb_limits, sm_masks, stack)."""
        name = name.lower()
        masks: Optional[List[Set[int]]] = None

        if name == "spatial":
            masks = spatial_masks(len(profiles), self.config)
            return spatial_tb_limits(profiles, self.config), masks, SchemeConfig()
        if name == "leftover":
            return list(leftover_partition(profiles, self.config)), None, SchemeConfig()
        if name == "even":
            return list(even_partition(profiles, self.config)), None, SchemeConfig()

        if name.startswith("ws"):
            curves = [self.curve(p) for p in profiles]
            partition = sweet_spot(profiles, curves, self.config)
            stack = self._stack_for(name[2:], profiles)
            return list(partition), None, stack
        if name.startswith("smk"):
            partition = drf_partition(profiles, self.config)
            suffix = name[len("smk"):]
            if suffix in ("-p+w", "+w"):
                ipcs = [self.isolated(p).ipc for p in profiles]
                stack = SchemeConfig(smk_quotas=smk_quotas(ipcs))
            elif suffix in ("-p", ""):
                stack = SchemeConfig()
            elif suffix.startswith("-p+"):
                stack = self._stack_for("-" + suffix[len("-p+"):], profiles)
            else:
                raise ValueError(f"unknown SMK variant {name!r}")
            return list(partition), None, stack
        raise ValueError(f"unknown scheme {name!r}")

    def _stack_for(self, suffix: str, profiles: Sequence[KernelProfile]
                   ) -> SchemeConfig:
        """Parse the mechanism suffix after the TB-partition prefix,
        e.g. ``-qbmi+dmil`` or ``-smil:3,1``."""
        suffix = suffix.lstrip("-")
        if not suffix:
            return SchemeConfig()
        kwargs: Dict[str, object] = {}
        for token in suffix.split("+"):
            if token == "rbmi":
                kwargs["bmi"] = "rbmi"
            elif token == "qbmi":
                kwargs["bmi"] = "qbmi"
                kwargs["qbmi_init_req_per_minst"] = tuple(
                    p.reqs_per_minst for p in profiles)
            elif token == "dmil":
                kwargs["mil"] = "dmil"
            elif token == "gdmil":
                kwargs["mil"] = "gdmil"
            elif token == "ucp":
                kwargs["ucp"] = True
            elif token.startswith("byp:"):
                flags = tuple(part.strip() in ("1", "true")
                              for part in token[len("byp:"):].split(","))
                kwargs["l1d_bypass"] = flags
            elif token.startswith("smil:"):
                limits = tuple(
                    None if part in ("inf", "none") else int(part)
                    for part in token[len("smil:"):].split(","))
                kwargs["mil"] = "smil"
                kwargs["smil_limits"] = limits
            else:
                raise ValueError(f"unknown scheme token {token!r}")
        return SchemeConfig(**kwargs)

    # ------------------------------------------------------------------
    # concurrent runs
    def run_mix_with_stack(self, mix: WorkloadMix, stack: SchemeConfig,
                           partition_scheme: str = "ws",
                           cycles: Optional[int] = None,
                           timeline_interval: Optional[int] = None,
                           obs=None) -> WorkloadOutcome:
        """Run a workload with an explicit mechanism stack on top of a
        named TB-partitioning scheme — the hook ablation studies use
        for stacks the name grammar cannot express."""
        profiles = list(mix.profiles)
        tb_limits, masks, _ = self.resolve_scheme(partition_scheme, profiles)
        return self._run(mix, f"{partition_scheme}:{stack.describe()}",
                         tb_limits, masks, stack, cycles, timeline_interval,
                         obs=obs)

    def run_mix(self, mix: WorkloadMix, scheme: str,
                cycles: Optional[int] = None,
                timeline_interval: Optional[int] = None,
                obs=None) -> WorkloadOutcome:
        """Run one workload under one scheme and compute the metrics.

        ``obs`` enables observability for the concurrent run (``True``,
        an ``ObsOptions`` or an ``Observability``); the outcome's
        ``result.obs`` then carries the stall/trace report."""
        if scheme.lower().startswith("dws"):
            if obs:
                raise ValueError(
                    "observability is not supported for dynamic "
                    "Warped-Slicer runs (profiling phases re-launch "
                    "the engine mid-run)")
            return self._run_dynamic_ws(mix, scheme, cycles)
        profiles = list(mix.profiles)
        tb_limits, masks, stack = self.resolve_scheme(scheme, profiles)
        return self._run(mix, scheme, tb_limits, masks, stack, cycles,
                         timeline_interval, obs=obs)

    def _run_dynamic_ws(self, mix: WorkloadMix, scheme: str,
                        cycles: Optional[int]) -> WorkloadOutcome:
        """Dynamic Warped-Slicer: profile online, reconfigure, measure.

        Metrics are computed over the post-reconfiguration measurement
        window only (the paper reports steady-state numbers); the
        attached RunResult is cumulative over the whole run.
        """
        profiles = list(mix.profiles)
        stack = self._stack_for(scheme[len("dws"):], profiles)
        slicer = DynamicWarpedSlicer(profiles, self.config, stack,
                                     seed=self.settings.seed)
        dyn = slicer.execute(cycles or self.settings.concurrent_cycles)
        iso = [self.isolated(p).ipc for p in profiles]
        shared = [dyn.window_ipc(slot) for slot in range(len(profiles))]
        norms = normalized_ipcs(shared, iso)
        return WorkloadOutcome(
            mix_name=mix.name,
            mix_class=mix.mix_class,
            scheme=scheme,
            partition=tuple(dyn.partition),
            iso_ipcs=iso,
            shared_ipcs=shared,
            norm_ipcs=norms,
            weighted_speedup=weighted_speedup(norms),
            antt=antt(norms),
            fairness=fairness(norms),
            result=dyn.result,
        )

    def _run(self, mix: WorkloadMix, scheme_label: str, tb_limits, masks,
             stack: SchemeConfig, cycles: Optional[int],
             timeline_interval: Optional[int], obs=None) -> WorkloadOutcome:
        profiles = list(mix.profiles)
        launches = make_launches(profiles, tb_limits, self.config,
                                 sm_masks=masks, seed=self.settings.seed)
        gpu = GPU(self.config, launches, stack,
                  timeline_interval=timeline_interval, obs=obs)
        result = gpu.run(cycles or self.settings.concurrent_cycles)
        iso = [self.isolated(p).ipc for p in profiles]
        # Spatial multitasking concentrates each kernel on a subset of
        # SMs; IPC totals are machine-wide either way, so normalisation
        # against whole-machine isolated IPC is consistent across
        # schemes (as in the paper).
        shared = [result.ipc(slot) for slot in range(len(profiles))]
        norms = normalized_ipcs(shared, iso)
        return WorkloadOutcome(
            mix_name=mix.name,
            mix_class=mix.mix_class,
            scheme=scheme_label,
            partition=tuple(tb_limits),
            iso_ipcs=iso,
            shared_ipcs=shared,
            norm_ipcs=norms,
            weighted_speedup=weighted_speedup(norms),
            antt=antt(norms),
            fairness=fairness(norms),
            result=result,
        )


def run_pair(a: str, b: str, scheme="ws",
             config: Optional[GPUConfig] = None,
             cycles: Optional[int] = None) -> WorkloadOutcome:
    """Convenience one-shot: run benchmarks ``a``+``b`` under a scheme.

    ``scheme`` may be a scheme name (see module docstring) or a
    :class:`SchemeConfig` (run with the Warped-Slicer partition).
    """
    runner = ExperimentRunner(config)
    mix = WorkloadMix((get_profile(a), get_profile(b)))
    if isinstance(scheme, SchemeConfig):
        profiles = list(mix.profiles)
        curves = [runner.curve(p) for p in profiles]
        partition = sweet_spot(profiles, curves, runner.config)
        launches = make_launches(profiles, list(partition), runner.config,
                                 seed=runner.settings.seed)
        gpu = GPU(runner.config, launches, scheme)
        result = gpu.run(cycles or runner.settings.concurrent_cycles)
        iso = [runner.isolated(p).ipc for p in profiles]
        shared = [result.ipc(i) for i in range(len(profiles))]
        norms = normalized_ipcs(shared, iso)
        return WorkloadOutcome(mix.name, mix.mix_class, scheme.describe(),
                               tuple(partition), iso, shared, norms,
                               weighted_speedup(norms), antt(norms),
                               fairness(norms), result)
    return runner.run_mix(mix, scheme, cycles=cycles)
