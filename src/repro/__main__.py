"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``characterize``
    Isolated characterisation of all 13 benchmarks (Table 2 / Fig 2).
``run A B [--scheme S] [--cycles N] [--obs] [--trace OUT.json]
[--phase-interval N] [--artifacts DIR]``
    One concurrent workload under one scheme.  ``--obs`` appends the
    stall-attribution breakdown; ``--trace`` also records a Chrome
    trace (Perfetto-loadable) of the run; ``--phase-interval`` samples
    interval time-series + the mechanism-adaptation event log;
    ``--artifacts`` writes a versioned run-artifact JSON to DIR.
``stalls A B [--scheme S] [--cycles N]``
    Per-kernel stall-attribution breakdown (the paper's Figure 3
    methodology): where every scheduler issue slot went, and which L1D
    resource each LSU stall cycle waited on.
``trace A B OUT.json [--scheme S] [--cycles N]``
    Record a concurrent run as Chrome trace-event JSON — open in
    Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
``report OUT.md [--quick]``
    Full campaign report written to a markdown file.
``campaign A,B [C,D ...] [--schemes S1,S2] [--workers N] [--progress]
[--obs] [--phase-interval N] [--artifacts DIR] [--timeout S]
[--retries N] [--backoff S] [--resume] [--fault-plan PLAN.json]
[--cache DIR]``
    A mixes×schemes grid fanned out over worker processes, with
    optional live heartbeat telemetry, per-cell stall reports, phase
    sampling, and a per-cell run-artifact ledger under DIR.  Any of
    ``--timeout/--retries/--resume/--fault-plan`` routes the grid
    through the resilient executor (``repro.harness.resilience``):
    hung or crashed cells are retried with backoff then quarantined,
    completed cells checkpoint to a journal under the cache dir, and
    ``--resume`` re-runs only the unfinished remainder.
``dash ARTIFACTS OUT.html [--title T]``
    Render an artifacts directory (or one artifact) into a
    self-contained HTML dashboard: SVG sparklines of the phase series,
    stall-mix stacked bars, adaptation timelines.  No external assets.
``compare A B [--check] [--threshold PCT]``
    Diff two artifact sets by (workload, scheme): per-workload IPC
    deltas, stall-mix shifts, geomean total-IPC ratio.  With
    ``--check``, exit 1 when the geomean drops more than PCT percent
    (default 2) — the simulated-metric regression gate for CI.
``bench [--which cycle-loop|memory-path|campaign|all] [--workers N] [--reps N]
[--workloads A,B] [--out PATH] [--check]``
    Wall-clock perf benchmarks; writes ``BENCH_*.json`` at the root
    (or ``--out``).  Reports carry ``git_sha``, host info and a
    ``baseline`` block diffing the committed report; ``--check`` exits
    1 on a >10% geomean regression.
``lint [paths] [--format text|json|github] [--select IDS]
[--baseline FILE] [--write-baseline] [--list-rules] [--project]
[--index-cache FILE] [--no-index-cache]``
    AST-based simulator-invariant linter (determinism, sentinel-hook
    discipline, stat hygiene, picklability); ``--project`` adds the
    whole-program rules (event-wheel discipline, cross-process shared
    state, taxonomy drift) over an incrementally cached project index —
    see ``docs/LINT_RULES.md``.  Exits 1 on findings, 2 on usage errors.
``schemes``
    List the scheme names the harness understands.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import scaled_config
from repro.harness.reporting import format_table
from repro.harness.runner import ExperimentRunner, RunnerSettings
from repro.workloads.mixes import mix
from repro.workloads.profiles import ALL_PROFILES

SCHEME_HELP = [
    ("spatial", "spatial multitasking (SM split)"),
    ("leftover", "Hyper-Q style left-over policy"),
    ("even", "naive even intra-SM TB split"),
    ("ws", "Warped-Slicer sweet-spot TB partition"),
    ("ws-rbmi / ws-qbmi", "+ balanced memory issuing (§3.2)"),
    ("ws-dmil / ws-gdmil", "+ dynamic memory instruction limiting (§3.3.2)"),
    ("ws-smil:3,1", "+ static limits, 'inf' for unlimited (§3.3.1)"),
    ("ws-ucp", "+ UCP L1D way partitioning (§3.1)"),
    ("ws-byp:0,1", "+ L1D bypassing for flagged kernels (§4.5)"),
    ("smk-p+w", "SMK DRF partition + warp-instruction quotas"),
    ("smk-p+qbmi / smk-p+dmil", "SMK-P + the paper's schemes"),
]


def cmd_characterize(_args) -> int:
    runner = ExperimentRunner(scaled_config())
    rows = []
    for profile in ALL_PROFILES:
        iso = runner.isolated(profile)
        rows.append([profile.name, profile.kind, iso.ipc,
                     iso.alu_utilization, iso.lsu_stall_pct,
                     iso.l1d_miss_rate, iso.l1d_rsfail_rate])
    rows.sort(key=lambda r: -r[3])
    print(format_table(
        ["bench", "type", "IPC", "ALU_util", "LSU_stall", "L1D_miss",
         "rsfail"], rows, precision=2))
    return 0


def _obs_options(args):
    """Resolve the observability request of a run-like command."""
    from repro.obs import ObsOptions
    kwargs = {}
    phase_interval = getattr(args, "phase_interval", None)
    if phase_interval:
        kwargs["phase"] = True
        kwargs["phase_interval"] = phase_interval
    if getattr(args, "trace", None):
        return ObsOptions(trace=True,
                          trace_issue_sample=args.issue_sample,
                          trace_mem_sample=args.mem_sample, **kwargs)
    if kwargs or getattr(args, "obs", False) \
            or getattr(args, "artifacts", None):
        return ObsOptions(**kwargs)
    return None


def cmd_run(args) -> int:
    runner = ExperimentRunner(scaled_config())
    try:
        outcome = runner.run_mix(mix(args.a, args.b), args.scheme,
                                 cycles=args.cycles, obs=_obs_options(args))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"workload {outcome.mix_name} ({outcome.mix_class}) "
          f"under {outcome.scheme}")
    print(f"  TB partition/SM : {outcome.partition}")
    for name, norm in zip((args.a, args.b), outcome.norm_ipcs):
        print(f"  {name:>4} normalized IPC: {norm:.3f}")
    print(f"  weighted speedup: {outcome.weighted_speedup:.3f}")
    print(f"  ANTT            : {outcome.antt:.3f}")
    print(f"  fairness        : {outcome.fairness:.3f}")
    report = outcome.result.obs
    if report is not None:
        from repro.obs import format_stall_report
        print()
        print(format_stall_report(report))
    if report is not None and report.phases:
        record = report.phases[0]
        events = record.get("adapt_events", [])
        samples = len(record.get("series", {}).get("cycle", []))
        print(f"\nphase telemetry: {samples} samples @ "
              f"{record['interval']}-cycle interval, "
              f"{len(events)} adaptation events")
    if args.artifacts:
        from repro.obs import ledger
        artifact = ledger.artifact_from_outcome(
            outcome, runner.config, runner.settings,
            git_sha=ledger.current_git_sha())
        paths = ledger.write_artifacts(args.artifacts, [artifact])
        print(f"artifact written to {paths[0]}")
    if getattr(args, "trace", None):
        report.write_trace(args.trace)
        print(f"\ntrace written to {args.trace} "
              f"({len(report.trace_events)} events, "
              f"{report.trace_dropped} dropped) — open in Perfetto")
    return 0


def cmd_stalls(args) -> int:
    from repro.obs import format_stall_report
    runner = ExperimentRunner(scaled_config())
    try:
        outcome = runner.run_mix(mix(args.a, args.b), args.scheme,
                                 cycles=args.cycles, obs=True)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"workload {outcome.mix_name} ({outcome.mix_class}) "
          f"under {outcome.scheme}")
    print(format_stall_report(outcome.result.obs))
    return 0


def cmd_trace(args) -> int:
    from repro.obs import ObsOptions
    runner = ExperimentRunner(scaled_config())
    options = ObsOptions(trace=True,
                         trace_issue_sample=args.issue_sample,
                         trace_mem_sample=args.mem_sample)
    try:
        outcome = runner.run_mix(mix(args.a, args.b), args.scheme,
                                 cycles=args.cycles, obs=options)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = outcome.result.obs
    report.write_trace(args.out)
    print(f"trace written to {args.out} "
          f"({len(report.trace_events)} events, "
          f"{report.trace_dropped} dropped) — open in Perfetto "
          f"(https://ui.perfetto.dev) or chrome://tracing")
    return 0


def cmd_report(args) -> int:
    from repro.harness.reporting import write_report
    settings = (RunnerSettings(iso_cycles=3000, curve_cycles=2000,
                               concurrent_cycles=4000)
                if args.quick else None)
    runner = ExperimentRunner(scaled_config(), settings)
    write_report(args.out, runner, include_sweeps=not args.quick)
    print(f"report written to {args.out}")
    return 0


def cmd_campaign(args) -> int:
    from repro.workloads.mixes import WorkloadMix
    from repro.workloads.profiles import get_profile
    mixes = []
    for spec in args.mixes:
        names = [n.strip() for n in spec.split(",") if n.strip()]
        if len(names) < 2:
            print(f"mix {spec!r} needs at least two kernels", file=sys.stderr)
            return 2
        mixes.append(WorkloadMix(tuple(get_profile(n) for n in names)))
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    resilient = (args.resume or args.fault_plan is not None
                 or args.timeout is not None or args.retries is not None)
    # The resilience layer checkpoints under the cache dir, so the
    # resilient path defaults one on; the plain path keeps the
    # historical cacheless default unless --cache asks otherwise.
    cache_dir = args.cache or (".repro_cache" if resilient else None)
    runner = ExperimentRunner(scaled_config(), cache_dir=cache_dir)
    telemetry = None
    if args.progress:
        from repro.obs import CampaignTelemetry
        telemetry = CampaignTelemetry()
    obs = args.obs or bool(args.phase_interval) or bool(args.artifacts)
    report = None
    if resilient:
        from repro.harness.resilience import Quarantined, ResiliencePolicy
        policy = ResiliencePolicy(
            timeout_s=args.timeout,
            retries=args.retries if args.retries is not None else 2,
            backoff_s=args.backoff)
        outcomes, report = runner.run_campaign_resilient(
            mixes, schemes, policy=policy, workers=args.workers,
            obs=obs, progress=telemetry,
            phase_interval=args.phase_interval,
            artifacts_dir=args.artifacts, resume=args.resume,
            fault_plan=args.fault_plan)
        quarantined = [o for o in outcomes if isinstance(o, Quarantined)]
        outcomes = [o for o in outcomes if not isinstance(o, Quarantined)]
        print(report.summary(), file=sys.stderr)
        for placeholder in quarantined:
            print(f"  quarantined: {placeholder.label} "
                  f"({', '.join(placeholder.faults)})", file=sys.stderr)
    else:
        outcomes = runner.run_campaign(mixes, schemes, workers=args.workers,
                                       obs=obs, progress=telemetry,
                                       phase_interval=args.phase_interval,
                                       artifacts_dir=args.artifacts)
    if telemetry is not None:
        print(telemetry.summary(), file=sys.stderr)
    rows = [[o.mix_name, o.scheme, str(o.partition), o.weighted_speedup,
             o.antt, o.fairness] for o in outcomes]
    print(format_table(
        ["mix", "scheme", "TBs/SM", "WS", "ANTT", "fairness"],
        rows, precision=3))
    if obs:
        from repro.obs import format_stall_report
        from repro.obs.collector import ObsReport
        reports = [o.result.obs for o in outcomes if o.result.obs is not None]
        if reports:
            print()
            print(f"stall attribution merged over {len(reports)} cells:")
            merged = ObsReport.merged(reports)
            print(format_stall_report(merged))
            if merged.phases:
                events = sum(len(r.get("adapt_events", []))
                             for r in merged.phases)
                print(f"\nphase telemetry: {len(merged.phases)} records, "
                      f"{events} adaptation events")
    if args.artifacts:
        print(f"artifacts written to {args.artifacts}/", file=sys.stderr)
    return 0


def cmd_dash(args) -> int:
    from repro.obs import ledger
    from repro.obs.dash import write_dashboard
    artifacts = ledger.load_artifacts(args.artifacts)
    if not artifacts:
        print(f"error: no valid artifacts under {args.artifacts}",
              file=sys.stderr)
        return 2
    ordered = [artifacts[key] for key in sorted(artifacts)]
    write_dashboard(args.out, ordered, title=args.title)
    print(f"dashboard with {len(ordered)} artifact(s) written to {args.out}")
    return 0


def cmd_compare(args) -> int:
    from repro.obs.compare import compare_paths, format_comparison
    comparison = compare_paths(args.a, args.b)
    print(format_comparison(comparison, threshold_pct=args.threshold))
    if not comparison.cells:
        print("error: no overlapping (workload, scheme) cells",
              file=sys.stderr)
        return 2
    if args.check and comparison.regressed(args.threshold):
        print(f"compare: geomean total-IPC regression beyond "
              f"{args.threshold:g}% threshold", file=sys.stderr)
        return 1
    return 0


def cmd_bench(args) -> int:
    from repro.harness.perfbench import (bench_campaign, bench_cycle_loop,
                                         bench_memory_path)
    regressed = False
    if args.which in ("cycle-loop", "all"):
        workload_names = (args.workloads.split(",")
                          if args.workloads else None)
        try:
            report = bench_cycle_loop(reps=args.reps,
                                      workload_names=workload_names,
                                      out_path=args.out)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        out = args.out or "BENCH_cycle_loop.json"
        print(f"cycle loop: {report['reference_workload']} "
              f"{report['reference_workload_speedup']:.2f}x "
              f"(min {report['min_speedup']:.2f}x, "
              f"geomean {report['geomean_speedup']:.2f}x) "
              f"-> {out}")
        baseline = report.get("baseline")
        if baseline is not None:
            print(f"  vs committed baseline: "
                  f"{baseline['geomean_vs_baseline']:.2f}x geomean"
                  + (" [REGRESSED]" if baseline["regressed"] else ""))
            regressed = regressed or baseline["regressed"]
    if args.which in ("memory-path", "all"):
        report = bench_memory_path(reps=max(args.reps, 3),
                                   out_path=args.out
                                   if args.which == "memory-path" else None)
        parts = ", ".join(f"{c['component']} {c['speedup']:.2f}x"
                          for c in report["components"])
        print(f"memory path: {parts} "
              f"(geomean {report['geomean_speedup']:.2f}x) "
              f"-> BENCH_memory_path.json")
        baseline = report.get("baseline")
        if baseline is not None:
            print(f"  vs committed baseline: "
                  f"{baseline['geomean_vs_baseline']:.2f}x geomean"
                  + (" [REGRESSED]" if baseline["regressed"] else ""))
            regressed = regressed or baseline["regressed"]
    if args.which in ("campaign", "all"):
        report = bench_campaign(workers=args.workers,
                                out_path=args.out
                                if args.which == "campaign" else None)
        print(f"campaign: {report['campaign_speedup']:.2f}x end-to-end "
              f"(fast loop {report['fast_loop_speedup']:.2f}x, "
              f"{args.workers} workers {report['parallel_speedup']:.2f}x "
              f"on {report['cpu_count']} CPUs) -> BENCH_campaign.json")
        baseline = report.get("baseline")
        if baseline is not None and baseline["regressed"]:
            print("  vs committed baseline: [REGRESSED]")
            regressed = True
    if args.check and regressed:
        print("bench: regression beyond threshold vs committed baseline",
              file=sys.stderr)
        return 1
    return 0


def cmd_lint(args) -> int:
    from repro.lint.cli import run_lint_command
    return run_lint_command(
        paths=args.paths,
        fmt=args.format,
        baseline_path=args.baseline,
        write_baseline=args.write_baseline,
        select=args.select,
        list_rules=args.list_rules,
        root=args.root,
        project=args.project,
        index_cache=args.index_cache,
        no_index_cache=args.no_index_cache,
    )


def cmd_schemes(_args) -> int:
    print(format_table(["scheme", "meaning"],
                       [[a, b] for a, b in SCHEME_HELP]))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HPCA'18 CKE memory-pipeline-stall reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("characterize").set_defaults(fn=cmd_characterize)

    run = sub.add_parser("run")
    run.add_argument("a")
    run.add_argument("b")
    run.add_argument("--scheme", default="ws-dmil")
    run.add_argument("--cycles", type=int, default=None)
    run.add_argument("--obs", action="store_true",
                     help="collect and print the stall-attribution breakdown")
    run.add_argument("--trace", metavar="OUT.json", default=None,
                     help="also record a Chrome trace (implies --obs)")
    run.add_argument("--issue-sample", type=int, default=16,
                     help="record every Nth warp-issue slice (default 16)")
    run.add_argument("--mem-sample", type=int, default=4,
                     help="trace every Nth memory request (default 4)")
    run.add_argument("--phase-interval", type=int, default=None,
                     metavar="N",
                     help="sample phase time-series every N cycles "
                          "(implies --obs)")
    run.add_argument("--artifacts", metavar="DIR", default=None,
                     help="write a versioned run-artifact JSON under DIR "
                          "(implies --obs)")
    run.set_defaults(fn=cmd_run)

    stalls = sub.add_parser("stalls")
    stalls.add_argument("a")
    stalls.add_argument("b")
    stalls.add_argument("--scheme", default="ws-dmil")
    stalls.add_argument("--cycles", type=int, default=None)
    stalls.set_defaults(fn=cmd_stalls)

    trace = sub.add_parser("trace")
    trace.add_argument("a")
    trace.add_argument("b")
    trace.add_argument("out", metavar="OUT.json")
    trace.add_argument("--scheme", default="ws-dmil")
    trace.add_argument("--cycles", type=int, default=None)
    trace.add_argument("--issue-sample", type=int, default=16,
                       help="record every Nth warp-issue slice (default 16)")
    trace.add_argument("--mem-sample", type=int, default=4,
                       help="trace every Nth memory request (default 4)")
    trace.set_defaults(fn=cmd_trace)

    report = sub.add_parser("report")
    report.add_argument("out")
    report.add_argument("--quick", action="store_true")
    report.set_defaults(fn=cmd_report)

    campaign = sub.add_parser("campaign")
    campaign.add_argument("mixes", nargs="+", metavar="A,B",
                          help="comma-separated kernel names per mix")
    campaign.add_argument("--schemes", default="ws,ws-dmil")
    campaign.add_argument("--workers", type=int, default=None)
    campaign.add_argument("--progress", action="store_true",
                          help="print one heartbeat line per finished job")
    campaign.add_argument("--obs", action="store_true",
                          help="observe each cell; print a merged stall "
                               "report after the table")
    campaign.add_argument("--phase-interval", type=int, default=None,
                          metavar="N",
                          help="sample phase time-series in every cell "
                               "every N cycles (implies --obs)")
    campaign.add_argument("--artifacts", metavar="DIR", default=None,
                          help="write one run-artifact JSON per cell plus "
                               "a ledger.json index under DIR "
                               "(implies --obs)")
    campaign.add_argument("--timeout", type=float, default=None,
                          metavar="S",
                          help="per-job wall-clock budget in seconds; a "
                               "worker past it is killed and the cell "
                               "retried (enables the resilient executor)")
    campaign.add_argument("--retries", type=int, default=None, metavar="N",
                          help="extra attempts per failed cell before "
                               "quarantine (default 2; enables the "
                               "resilient executor)")
    campaign.add_argument("--backoff", type=float, default=0.25,
                          metavar="S",
                          help="base retry backoff in seconds, doubled "
                               "per attempt (default 0.25)")
    campaign.add_argument("--resume", action="store_true",
                          help="replay the checkpoint journal under the "
                               "cache dir and re-run only unfinished/"
                               "quarantined cells")
    campaign.add_argument("--fault-plan", metavar="PLAN.json", default=None,
                          help="deterministic fault-injection plan for "
                               "chaos testing (see docs/RESILIENCE.md)")
    campaign.add_argument("--cache", metavar="DIR", default=None,
                          help="cache directory (default: .repro_cache "
                               "when a resilience flag is active, else "
                               "none)")
    campaign.set_defaults(fn=cmd_campaign)

    dash = sub.add_parser("dash")
    dash.add_argument("artifacts", metavar="ARTIFACTS",
                      help="artifacts directory (or one artifact JSON)")
    dash.add_argument("out", metavar="OUT.html")
    dash.add_argument("--title", default=None)
    dash.set_defaults(fn=cmd_dash)

    compare = sub.add_parser("compare")
    compare.add_argument("a", metavar="A",
                         help="baseline artifacts directory or file")
    compare.add_argument("b", metavar="B",
                         help="candidate artifacts directory or file")
    compare.add_argument("--check", action="store_true",
                         help="exit 1 when the geomean total-IPC ratio "
                              "drops beyond the threshold")
    compare.add_argument("--threshold", type=float, default=2.0,
                         metavar="PCT",
                         help="allowed geomean drop in percent (default 2)")
    compare.set_defaults(fn=cmd_compare)

    bench = sub.add_parser("bench")
    bench.add_argument("--which", default="all",
                       choices=["cycle-loop", "memory-path", "campaign",
                                "all"])
    bench.add_argument("--workers", type=int, default=4)
    bench.add_argument("--reps", type=int, default=2,
                       help="timing repetitions per workload (best-of)")
    bench.add_argument("--workloads", default=None,
                       help="comma-separated cycle-loop workload subset")
    bench.add_argument("--out", default=None,
                       help="report path override (default: repo root)")
    bench.add_argument("--check", action="store_true",
                       help="exit 1 on >10%% geomean regression vs the "
                            "committed BENCH_*.json")
    bench.set_defaults(fn=cmd_bench)

    lint = sub.add_parser("lint")
    lint.add_argument("paths", nargs="*",
                      help="files/directories to lint (default: src tests)")
    lint.add_argument("--format", default="text",
                      choices=["text", "json", "github"],
                      help="report format (github = Actions annotations)")
    lint.add_argument("--select", action="append", default=[],
                      metavar="IDS",
                      help="comma-separated rule ids or family prefixes "
                           "to run (e.g. REPRO-D001,REPRO-W); default: all")
    lint.add_argument("--project", action="store_true",
                      help="whole-program mode: build the project index "
                           "and run the interprocedural REPRO-W/R/S "
                           "rules on top of the per-file rules")
    lint.add_argument("--index-cache", metavar="FILE", default=None,
                      help="project-index cache location (default: "
                           ".repro_cache/lint-index.json under --root)")
    lint.add_argument("--no-index-cache", action="store_true",
                      help="rebuild the project index from scratch and "
                           "do not write a cache")
    lint.add_argument("--baseline", metavar="FILE", default=None,
                      help="filter findings recorded in this baseline file")
    lint.add_argument("--write-baseline", action="store_true",
                      help="snapshot current findings into the baseline "
                           "and exit 0")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    lint.add_argument("--root", default=None,
                      help="repo root for path-scoped rules "
                           "(default: current directory)")
    lint.set_defaults(fn=cmd_lint)

    sub.add_parser("schemes").set_defaults(fn=cmd_schemes)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
