"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``characterize``
    Isolated characterisation of all 13 benchmarks (Table 2 / Fig 2).
``run A B [--scheme S] [--cycles N]``
    One concurrent workload under one scheme.
``report OUT.md [--quick]``
    Full campaign report written to a markdown file.
``campaign A,B [C,D ...] [--schemes S1,S2] [--workers N]``
    A mixes×schemes grid fanned out over worker processes.
``bench [--which cycle-loop|campaign|all] [--workers N]``
    Wall-clock perf benchmarks; writes ``BENCH_*.json`` at the root.
``schemes``
    List the scheme names the harness understands.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import scaled_config
from repro.harness.reporting import format_table
from repro.harness.runner import ExperimentRunner, RunnerSettings
from repro.workloads.mixes import mix
from repro.workloads.profiles import ALL_PROFILES

SCHEME_HELP = [
    ("spatial", "spatial multitasking (SM split)"),
    ("leftover", "Hyper-Q style left-over policy"),
    ("even", "naive even intra-SM TB split"),
    ("ws", "Warped-Slicer sweet-spot TB partition"),
    ("ws-rbmi / ws-qbmi", "+ balanced memory issuing (§3.2)"),
    ("ws-dmil / ws-gdmil", "+ dynamic memory instruction limiting (§3.3.2)"),
    ("ws-smil:3,1", "+ static limits, 'inf' for unlimited (§3.3.1)"),
    ("ws-ucp", "+ UCP L1D way partitioning (§3.1)"),
    ("ws-byp:0,1", "+ L1D bypassing for flagged kernels (§4.5)"),
    ("smk-p+w", "SMK DRF partition + warp-instruction quotas"),
    ("smk-p+qbmi / smk-p+dmil", "SMK-P + the paper's schemes"),
]


def cmd_characterize(_args) -> int:
    runner = ExperimentRunner(scaled_config())
    rows = []
    for profile in ALL_PROFILES:
        iso = runner.isolated(profile)
        rows.append([profile.name, profile.kind, iso.ipc,
                     iso.alu_utilization, iso.lsu_stall_pct,
                     iso.l1d_miss_rate, iso.l1d_rsfail_rate])
    rows.sort(key=lambda r: -r[3])
    print(format_table(
        ["bench", "type", "IPC", "ALU_util", "LSU_stall", "L1D_miss",
         "rsfail"], rows, precision=2))
    return 0


def cmd_run(args) -> int:
    runner = ExperimentRunner(scaled_config())
    outcome = runner.run_mix(mix(args.a, args.b), args.scheme,
                             cycles=args.cycles)
    print(f"workload {outcome.mix_name} ({outcome.mix_class}) "
          f"under {outcome.scheme}")
    print(f"  TB partition/SM : {outcome.partition}")
    for name, norm in zip((args.a, args.b), outcome.norm_ipcs):
        print(f"  {name:>4} normalized IPC: {norm:.3f}")
    print(f"  weighted speedup: {outcome.weighted_speedup:.3f}")
    print(f"  ANTT            : {outcome.antt:.3f}")
    print(f"  fairness        : {outcome.fairness:.3f}")
    return 0


def cmd_report(args) -> int:
    from repro.harness.report import write_report
    settings = (RunnerSettings(iso_cycles=3000, curve_cycles=2000,
                               concurrent_cycles=4000)
                if args.quick else None)
    runner = ExperimentRunner(scaled_config(), settings)
    write_report(args.out, runner, include_sweeps=not args.quick)
    print(f"report written to {args.out}")
    return 0


def cmd_campaign(args) -> int:
    from repro.workloads.mixes import WorkloadMix
    from repro.workloads.profiles import get_profile
    mixes = []
    for spec in args.mixes:
        names = [n.strip() for n in spec.split(",") if n.strip()]
        if len(names) < 2:
            print(f"mix {spec!r} needs at least two kernels", file=sys.stderr)
            return 2
        mixes.append(WorkloadMix(tuple(get_profile(n) for n in names)))
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    runner = ExperimentRunner(scaled_config())
    outcomes = runner.run_campaign(mixes, schemes, workers=args.workers)
    rows = [[o.mix_name, o.scheme, str(o.partition), o.weighted_speedup,
             o.antt, o.fairness] for o in outcomes]
    print(format_table(
        ["mix", "scheme", "TBs/SM", "WS", "ANTT", "fairness"],
        rows, precision=3))
    return 0


def cmd_bench(args) -> int:
    from repro.harness.perfbench import bench_campaign, bench_cycle_loop
    if args.which in ("cycle-loop", "all"):
        report = bench_cycle_loop()
        print(f"cycle loop: {report['reference_workload']} "
              f"{report['reference_workload_speedup']:.2f}x "
              f"(min {report['min_speedup']:.2f}x, "
              f"geomean {report['geomean_speedup']:.2f}x) "
              f"-> BENCH_cycle_loop.json")
    if args.which in ("campaign", "all"):
        report = bench_campaign(workers=args.workers)
        print(f"campaign: {report['campaign_speedup']:.2f}x end-to-end "
              f"(fast loop {report['fast_loop_speedup']:.2f}x, "
              f"{args.workers} workers {report['parallel_speedup']:.2f}x "
              f"on {report['cpu_count']} CPUs) -> BENCH_campaign.json")
    return 0


def cmd_schemes(_args) -> int:
    print(format_table(["scheme", "meaning"],
                       [[a, b] for a, b in SCHEME_HELP]))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HPCA'18 CKE memory-pipeline-stall reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("characterize").set_defaults(fn=cmd_characterize)

    run = sub.add_parser("run")
    run.add_argument("a")
    run.add_argument("b")
    run.add_argument("--scheme", default="ws-dmil")
    run.add_argument("--cycles", type=int, default=None)
    run.set_defaults(fn=cmd_run)

    report = sub.add_parser("report")
    report.add_argument("out")
    report.add_argument("--quick", action="store_true")
    report.set_defaults(fn=cmd_report)

    campaign = sub.add_parser("campaign")
    campaign.add_argument("mixes", nargs="+", metavar="A,B",
                          help="comma-separated kernel names per mix")
    campaign.add_argument("--schemes", default="ws,ws-dmil")
    campaign.add_argument("--workers", type=int, default=None)
    campaign.set_defaults(fn=cmd_campaign)

    bench = sub.add_parser("bench")
    bench.add_argument("--which", default="all",
                       choices=["cycle-loop", "campaign", "all"])
    bench.add_argument("--workers", type=int, default=4)
    bench.set_defaults(fn=cmd_bench)

    sub.add_parser("schemes").set_defaults(fn=cmd_schemes)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
