"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``characterize``
    Isolated characterisation of all 13 benchmarks (Table 2 / Fig 2).
``run A B [--scheme S] [--cycles N]``
    One concurrent workload under one scheme.
``report OUT.md [--quick]``
    Full campaign report written to a markdown file.
``schemes``
    List the scheme names the harness understands.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import scaled_config
from repro.harness.reporting import format_table
from repro.harness.runner import ExperimentRunner, RunnerSettings
from repro.workloads.mixes import mix
from repro.workloads.profiles import ALL_PROFILES

SCHEME_HELP = [
    ("spatial", "spatial multitasking (SM split)"),
    ("leftover", "Hyper-Q style left-over policy"),
    ("even", "naive even intra-SM TB split"),
    ("ws", "Warped-Slicer sweet-spot TB partition"),
    ("ws-rbmi / ws-qbmi", "+ balanced memory issuing (§3.2)"),
    ("ws-dmil / ws-gdmil", "+ dynamic memory instruction limiting (§3.3.2)"),
    ("ws-smil:3,1", "+ static limits, 'inf' for unlimited (§3.3.1)"),
    ("ws-ucp", "+ UCP L1D way partitioning (§3.1)"),
    ("ws-byp:0,1", "+ L1D bypassing for flagged kernels (§4.5)"),
    ("smk-p+w", "SMK DRF partition + warp-instruction quotas"),
    ("smk-p+qbmi / smk-p+dmil", "SMK-P + the paper's schemes"),
]


def cmd_characterize(_args) -> int:
    runner = ExperimentRunner(scaled_config())
    rows = []
    for profile in ALL_PROFILES:
        iso = runner.isolated(profile)
        rows.append([profile.name, profile.kind, iso.ipc,
                     iso.alu_utilization, iso.lsu_stall_pct,
                     iso.l1d_miss_rate, iso.l1d_rsfail_rate])
    rows.sort(key=lambda r: -r[3])
    print(format_table(
        ["bench", "type", "IPC", "ALU_util", "LSU_stall", "L1D_miss",
         "rsfail"], rows, precision=2))
    return 0


def cmd_run(args) -> int:
    runner = ExperimentRunner(scaled_config())
    outcome = runner.run_mix(mix(args.a, args.b), args.scheme,
                             cycles=args.cycles)
    print(f"workload {outcome.mix_name} ({outcome.mix_class}) "
          f"under {outcome.scheme}")
    print(f"  TB partition/SM : {outcome.partition}")
    for name, norm in zip((args.a, args.b), outcome.norm_ipcs):
        print(f"  {name:>4} normalized IPC: {norm:.3f}")
    print(f"  weighted speedup: {outcome.weighted_speedup:.3f}")
    print(f"  ANTT            : {outcome.antt:.3f}")
    print(f"  fairness        : {outcome.fairness:.3f}")
    return 0


def cmd_report(args) -> int:
    from repro.harness.report import write_report
    settings = (RunnerSettings(iso_cycles=3000, curve_cycles=2000,
                               concurrent_cycles=4000)
                if args.quick else None)
    runner = ExperimentRunner(scaled_config(), settings)
    write_report(args.out, runner, include_sweeps=not args.quick)
    print(f"report written to {args.out}")
    return 0


def cmd_schemes(_args) -> int:
    print(format_table(["scheme", "meaning"],
                       [[a, b] for a, b in SCHEME_HELP]))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HPCA'18 CKE memory-pipeline-stall reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("characterize").set_defaults(fn=cmd_characterize)

    run = sub.add_parser("run")
    run.add_argument("a")
    run.add_argument("b")
    run.add_argument("--scheme", default="ws-dmil")
    run.add_argument("--cycles", type=int, default=None)
    run.set_defaults(fn=cmd_run)

    report = sub.add_parser("report")
    report.add_argument("out")
    report.add_argument("--quick", action="store_true")
    report.set_defaults(fn=cmd_report)

    sub.add_parser("schemes").set_defaults(fn=cmd_schemes)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
