"""Kernel profiles and per-warp instruction streams.

A :class:`KernelProfile` is the synthetic stand-in for one of the
paper's CUDA benchmarks: it fixes the static resource footprint
(registers / shared memory / threads per TB — Table 2's occupancy
columns) and the dynamic behaviour (compute-to-memory instruction
ratio ``Cinst/Minst``, coalescing degree ``Req/Minst``, and the address
pattern that yields the benchmark's L1D miss profile).

A :class:`InstructionStream` turns a profile into the deterministic
instruction sequence one warp executes: groups of ``cinst_per_minst``
compute instructions followed by one memory instruction, repeated for
``iters_per_warp`` iterations per thread block.  All randomness is
drawn from a per-warp :class:`random.Random` seeded from
``(kernel seed, tb index, warp index)``, so runs are exactly
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.workloads.address import AccessPattern

#: Instruction opcodes produced by an InstructionStream.
OP_ALU = "alu"
OP_SFU = "sfu"
OP_LOAD = "ld"
OP_STORE = "st"

#: single-byte opcode encoding used by precompiled traces
#: (:mod:`repro.workloads.trace`).  Ops are compared by identity
#: throughout the simulator, so replay decodes codes back to the
#: interned module constants above via :data:`OP_BY_CODE`.
ALU_CODE = ord("a")
SFU_CODE = ord("s")
LOAD_CODE = ord("l")
STORE_CODE = ord("w")
OP_BY_CODE = [None] * 128
OP_BY_CODE[ALU_CODE] = OP_ALU
OP_BY_CODE[SFU_CODE] = OP_SFU
OP_BY_CODE[LOAD_CODE] = OP_LOAD
OP_BY_CODE[STORE_CODE] = OP_STORE
CODE_BY_OP = {OP_ALU: "a", OP_SFU: "s", OP_LOAD: "l", OP_STORE: "w"}


class MemInstDescriptor:
    """One memory instruction after coalescing: the line addresses it
    touches (kernel-region-local) and whether it is a store.

    Streams hand out one *scratch* descriptor, overwritten by each
    :meth:`InstructionStream.memory_descriptor` call — the descriptor
    is only valid until the stream's next one (the SM consumes it
    immediately).  ``lines`` may be any sequence of ints.
    """

    __slots__ = ("lines", "is_store")

    def __init__(self, lines, is_store: bool):
        self.lines = lines
        self.is_store = is_store

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "store" if self.is_store else "load"
        return f"<MemInstDescriptor {kind} lines={list(self.lines)!r}>"


@dataclass(frozen=True)
class KernelProfile:
    """Static + dynamic characteristics of one synthetic kernel."""

    name: str
    full_name: str
    suite: str
    #: expected classification, 'C' (compute) or 'M' (memory) — Table 2.
    kind: str

    # Dynamic instruction mix (Table 2 columns).
    cinst_per_minst: int
    reqs_per_minst: int
    sfu_frac: float = 0.0
    write_frac: float = 0.05
    #: memory-level parallelism: independent loads one warp keeps in
    #: flight.  Memory-intensive kernels issue back-to-back independent
    #: loads (high MLP) — the reason they saturate miss resources.
    mlp: int = 2

    # Static per-TB resources, in scaled-config units (see DESIGN.md).
    threads_per_tb: int = 64
    regs_per_thread: int = 32
    smem_per_tb: int = 0

    #: factory producing a fresh address pattern per kernel instance.
    pattern_factory: Callable[[], AccessPattern] = None  # type: ignore[assignment]

    #: memory-instruction iterations one warp executes per TB.
    iters_per_warp: int = 200

    #: Table 2 reference values from the paper, for reporting.
    paper: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ("C", "M"):
            raise ValueError(f"kind must be 'C' or 'M', got {self.kind!r}")
        if self.cinst_per_minst < 0 or self.reqs_per_minst < 1:
            raise ValueError("bad instruction mix")
        if self.threads_per_tb < 1:
            raise ValueError("threads_per_tb must be positive")
        if self.pattern_factory is None:
            raise ValueError("pattern_factory is required")

    def warps_per_tb(self, warp_size: int) -> int:
        return max(1, (self.threads_per_tb + warp_size - 1) // warp_size)

    def max_tbs_per_sm(self, config) -> int:
        """Maximum concurrent TBs of this kernel on one SM, limited by
        the four static resources of the paper's Table 2."""
        warp_size = config.warp_size
        by_threads = config.max_threads_per_sm // self.threads_per_tb
        by_warps = config.max_warps_per_sm // self.warps_per_tb(warp_size)
        by_regs = config.registers_per_sm // max(
            1, self.regs_per_thread * self.threads_per_tb)
        by_smem = (config.smem_per_sm // self.smem_per_tb
                   if self.smem_per_tb else config.max_tbs_per_sm)
        by_slots = config.max_tbs_per_sm
        return max(0, min(by_threads, by_warps, by_regs, by_smem, by_slots))

    def occupancy(self, config, tbs: Optional[int] = None) -> Dict[str, float]:
        """Static-resource occupancy at ``tbs`` concurrent TBs (defaults
        to the maximum) — reproduces Table 2's occupancy columns."""
        if tbs is None:
            tbs = self.max_tbs_per_sm(config)
        threads = tbs * self.threads_per_tb
        return {
            "rf": tbs * self.threads_per_tb * self.regs_per_thread
                  / config.registers_per_sm,
            "smem": tbs * self.smem_per_tb / config.smem_per_sm,
            "threads": threads / config.max_threads_per_sm,
            "tbs": tbs / config.max_tbs_per_sm,
        }


class InstructionStream:
    """Deterministic instruction sequence for one warp of one TB.

    The stream interleaves ``cinst_per_minst`` compute instructions
    (ALU, or SFU with probability ``sfu_frac``) with one memory
    instruction per iteration.  ``next_op`` exposes the next opcode so
    the scheduler can decide issue eligibility without consuming it
    (``peek`` is the equivalent method form); it is ``None`` once the
    warp's work is finished.
    """

    __slots__ = ("profile", "next_op", "_pattern", "_warp_index", "_rng",
                 "_rng_random", "_iters_left", "_compute_left",
                 "_cinst_per_minst", "_sfu_frac", "_write_frac", "_scratch",
                 "_base")

    def __init__(self, profile: KernelProfile, pattern: AccessPattern,
                 global_warp_index: int, seed: int, base_line: int = 0):
        self.profile = profile
        self._pattern = pattern
        self._warp_index = global_warp_index
        self._rng = random.Random((seed * 1000003 + global_warp_index) & 0x7FFFFFFF)
        # Hot-loop bindings: pop/_advance run once per issued
        # instruction, so dataclass field lookups are hoisted here.
        self._rng_random = self._rng.random
        self._cinst_per_minst = profile.cinst_per_minst
        self._sfu_frac = profile.sfu_frac
        self._write_frac = profile.write_frac
        self._iters_left = profile.iters_per_warp
        self._compute_left = profile.cinst_per_minst
        #: reusable descriptor (see MemInstDescriptor): one allocation
        #: per stream instead of one per memory instruction.
        self._scratch = MemInstDescriptor((), False)
        #: kernel-region base line added into every descriptor, so the
        #: SM can hand descriptor lines straight to the LSU without
        #: rebasing per instruction.  0 keeps region-local lines (the
        #: trace compiler and unit tests rely on that).
        self._base = base_line
        self.next_op: Optional[str] = None
        self._advance()

    def _advance(self) -> None:
        if self._iters_left <= 0:
            self.next_op = None
            return
        if self._compute_left > 0:
            if self._sfu_frac and self._rng_random() < self._sfu_frac:
                self.next_op = OP_SFU
            else:
                self.next_op = OP_ALU
        else:
            if self._rng_random() < self._write_frac:
                self.next_op = OP_STORE
            else:
                self.next_op = OP_LOAD

    @property
    def done(self) -> bool:
        return self.next_op is None

    def peek(self) -> Optional[str]:
        """Opcode of the next instruction, or None when the TB's work
        for this warp is finished."""
        return self.next_op

    def pop(self) -> str:
        """Consume and return the next opcode.  For memory opcodes the
        caller must follow up with :meth:`memory_descriptor`.

        Runs once per issued instruction; the body of :meth:`_advance`
        is inlined to keep the per-issue cost to one call."""
        op = self.next_op
        if op is None:
            raise RuntimeError("instruction stream exhausted")
        if op is OP_ALU or op is OP_SFU:
            self._compute_left -= 1
        else:
            self._compute_left = self._cinst_per_minst
            self._iters_left -= 1
        # _advance(), inlined:
        if self._iters_left <= 0:
            self.next_op = None
        elif self._compute_left > 0:
            if self._sfu_frac and self._rng_random() < self._sfu_frac:
                self.next_op = OP_SFU
            else:
                self.next_op = OP_ALU
        elif self._rng_random() < self._write_frac:
            self.next_op = OP_STORE
        else:
            self.next_op = OP_LOAD
        return op

    def memory_descriptor(self, is_store: bool) -> MemInstDescriptor:
        """Coalesced line addresses for the memory instruction just
        popped (``Req/Minst`` lines).  Returns the stream's scratch
        descriptor — valid until the next call."""
        desc = self._scratch
        lines = self._pattern.lines(
            self._warp_index, self._rng, self.profile.reqs_per_minst)
        base = self._base
        if base:
            desc.lines = [base + line for line in lines]
        else:
            desc.lines = lines
        desc.is_store = is_store
        return desc

    def alu_run_len(self) -> int:
        """Number of consecutive ALU instructions at the stream head.

        Live streams cannot look ahead without drawing RNG state, so
        they report 0; precompiled :class:`ReplayStream`\\ s scan their
        opcode array.  The SM's issue autopilot uses this to batch
        provably-identical back-to-back ALU issues."""
        return 0

    def pop_alu_burst(self, allow_end: bool) -> int:
        """Fused pop + autopilot-arming probe (see
        :meth:`ReplayStream.pop_alu_burst`).  Live streams cannot look
        ahead, so this is a plain pop that never arms."""
        self.pop()
        return 0

    def pop_mem(self, is_store: bool):
        """Fused pop + memory footprint for a memory opcode: returns
        the popped instruction's line list (see
        :meth:`ReplayStream.pop_mem`)."""
        self.pop()
        return self.memory_descriptor(is_store).lines

    def remaining_iterations(self) -> int:
        return self._iters_left


class ReplayStream:
    """Replays a precompiled ``(profile, warp_index, seed)`` trace.

    Drop-in replacement for :class:`InstructionStream`, built from the
    flat arrays a :class:`repro.workloads.trace.KernelTrace` compiled:
    ``ops`` is one opcode byte per instruction (:data:`OP_BY_CODE`
    encoding), ``lines`` is the concatenated line footprint of every
    memory instruction in order, ``reqs_per_minst`` entries each.
    Popping is an index bump and a table lookup — no RNG, no pattern
    cursor arithmetic — and is bit-identical to the live stream by
    construction: the compiler drove a real :class:`InstructionStream`
    through exactly the SM's ``pop()`` / ``memory_descriptor()`` call
    sequence (see ``docs/PERF.md`` for the proof obligations).
    """

    __slots__ = ("profile", "next_op", "_ops", "_lines", "_pos", "_len",
                 "_rpm", "_mem_seen", "_desc_start", "_iters_left",
                 "_scratch")

    def __init__(self, profile: KernelProfile, ops: bytes, lines,
                 base_line: int = 0):
        self.profile = profile
        self._ops = ops
        # Rebase the whole footprint once at stream creation (one
        # C-level comprehension) instead of per memory instruction in
        # the SM's issue path; the compiled arrays are region-local so
        # one trace serves every launch of the profile.
        self._lines = [base_line + l for l in lines] if base_line else lines
        self._pos = 0
        self._len = len(ops)
        self._rpm = profile.reqs_per_minst
        self._mem_seen = 0
        self._desc_start = 0
        self._iters_left = profile.iters_per_warp
        self._scratch = MemInstDescriptor((), False)
        self.next_op: Optional[str] = OP_BY_CODE[ops[0]] if ops else None

    @property
    def done(self) -> bool:
        return self.next_op is None

    def peek(self) -> Optional[str]:
        return self.next_op

    def pop(self) -> str:
        op = self.next_op
        if op is None:
            raise RuntimeError("instruction stream exhausted")
        if not (op is OP_ALU or op is OP_SFU):
            self._desc_start = self._mem_seen * self._rpm
            self._mem_seen += 1
            self._iters_left -= 1
        pos = self._pos + 1
        self._pos = pos
        self.next_op = OP_BY_CODE[self._ops[pos]] if pos < self._len else None
        return op

    def memory_descriptor(self, is_store: bool) -> MemInstDescriptor:
        desc = self._scratch
        start = self._desc_start
        desc.lines = self._lines[start:start + self._rpm]
        desc.is_store = is_store
        return desc

    def alu_run_len(self) -> int:
        ops = self._ops
        pos = self._pos
        end = self._len
        j = pos
        while j < end and ops[j] == ALU_CODE:
            j += 1
        return j - pos

    def run_ends_stream(self, run: int) -> bool:
        """True when ``run`` more pops would exhaust the stream."""
        return self._pos + run >= self._len

    def pop_alu_burst(self, allow_end: bool) -> int:
        """Pop one ALU op and, when the following opcodes continue the
        run, pre-advance past the whole run in the same scan — the
        fused form of ``pop()`` + ``alu_run_len()`` +
        ``run_ends_stream()`` + ``skip_alu_run()`` the issue autopilot
        arms with.  Returns the pre-advanced remainder length (0 means
        nothing armed; the single pop still happened).  ``allow_end``
        False refuses a run that would exhaust the stream (the
        caller's in-flight loads could observe the drained
        ``next_op``)."""
        ops = self._ops
        pos = self._pos + 1
        end = self._len
        j = pos
        while j < end and ops[j] == ALU_CODE:
            j += 1
        run = j - pos
        if run and (allow_end or j < end):
            self._pos = j
            self.next_op = OP_BY_CODE[ops[j]] if j < end else None
            return run
        self._pos = pos
        self.next_op = OP_BY_CODE[ops[pos]] if pos < end else None
        return 0

    def skip_alu_run(self, run: int) -> None:
        """Advance past ``run`` consecutive ALU opcodes in one step —
        the SM's issue autopilot consumed the whole run up front.
        Exactly equivalent to ``run`` pop() calls returning ALU: an ALU
        pop touches nothing but the position."""
        pos = self._pos + run
        self._pos = pos
        self.next_op = OP_BY_CODE[self._ops[pos]] if pos < self._len else None

    def rewind_alu(self, count: int) -> None:
        """Give back ``count`` unissued ALU opcodes of a skipped run
        (the autopilot disarmed mid-burst)."""
        pos = self._pos - count
        self._pos = pos
        self.next_op = OP_BY_CODE[self._ops[pos]]

    def pop_mem(self, is_store: bool):
        """Fused ``pop()`` + ``memory_descriptor()`` for a memory
        opcode: one call returning the instruction's line slice
        directly (the descriptor scratch object only exists for the
        live stream's pattern plumbing)."""
        start = self._mem_seen * self._rpm
        self._mem_seen += 1
        self._iters_left -= 1
        pos = self._pos + 1
        self._pos = pos
        self.next_op = OP_BY_CODE[self._ops[pos]] if pos < self._len else None
        return self._lines[start:start + self._rpm]

    def remaining_iterations(self) -> int:
        return self._iters_left
