"""Kernel profiles and per-warp instruction streams.

A :class:`KernelProfile` is the synthetic stand-in for one of the
paper's CUDA benchmarks: it fixes the static resource footprint
(registers / shared memory / threads per TB — Table 2's occupancy
columns) and the dynamic behaviour (compute-to-memory instruction
ratio ``Cinst/Minst``, coalescing degree ``Req/Minst``, and the address
pattern that yields the benchmark's L1D miss profile).

A :class:`InstructionStream` turns a profile into the deterministic
instruction sequence one warp executes: groups of ``cinst_per_minst``
compute instructions followed by one memory instruction, repeated for
``iters_per_warp`` iterations per thread block.  All randomness is
drawn from a per-warp :class:`random.Random` seeded from
``(kernel seed, tb index, warp index)``, so runs are exactly
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.workloads.address import AccessPattern

#: Instruction opcodes produced by an InstructionStream.
OP_ALU = "alu"
OP_SFU = "sfu"
OP_LOAD = "ld"
OP_STORE = "st"


@dataclass(frozen=True)
class MemInstDescriptor:
    """One memory instruction after coalescing: the line addresses it
    touches (kernel-region-local) and whether it is a store."""

    lines: tuple
    is_store: bool


@dataclass(frozen=True)
class KernelProfile:
    """Static + dynamic characteristics of one synthetic kernel."""

    name: str
    full_name: str
    suite: str
    #: expected classification, 'C' (compute) or 'M' (memory) — Table 2.
    kind: str

    # Dynamic instruction mix (Table 2 columns).
    cinst_per_minst: int
    reqs_per_minst: int
    sfu_frac: float = 0.0
    write_frac: float = 0.05
    #: memory-level parallelism: independent loads one warp keeps in
    #: flight.  Memory-intensive kernels issue back-to-back independent
    #: loads (high MLP) — the reason they saturate miss resources.
    mlp: int = 2

    # Static per-TB resources, in scaled-config units (see DESIGN.md).
    threads_per_tb: int = 64
    regs_per_thread: int = 32
    smem_per_tb: int = 0

    #: factory producing a fresh address pattern per kernel instance.
    pattern_factory: Callable[[], AccessPattern] = None  # type: ignore[assignment]

    #: memory-instruction iterations one warp executes per TB.
    iters_per_warp: int = 200

    #: Table 2 reference values from the paper, for reporting.
    paper: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ("C", "M"):
            raise ValueError(f"kind must be 'C' or 'M', got {self.kind!r}")
        if self.cinst_per_minst < 0 or self.reqs_per_minst < 1:
            raise ValueError("bad instruction mix")
        if self.threads_per_tb < 1:
            raise ValueError("threads_per_tb must be positive")
        if self.pattern_factory is None:
            raise ValueError("pattern_factory is required")

    def warps_per_tb(self, warp_size: int) -> int:
        return max(1, (self.threads_per_tb + warp_size - 1) // warp_size)

    def max_tbs_per_sm(self, config) -> int:
        """Maximum concurrent TBs of this kernel on one SM, limited by
        the four static resources of the paper's Table 2."""
        warp_size = config.warp_size
        by_threads = config.max_threads_per_sm // self.threads_per_tb
        by_warps = config.max_warps_per_sm // self.warps_per_tb(warp_size)
        by_regs = config.registers_per_sm // max(
            1, self.regs_per_thread * self.threads_per_tb)
        by_smem = (config.smem_per_sm // self.smem_per_tb
                   if self.smem_per_tb else config.max_tbs_per_sm)
        by_slots = config.max_tbs_per_sm
        return max(0, min(by_threads, by_warps, by_regs, by_smem, by_slots))

    def occupancy(self, config, tbs: Optional[int] = None) -> Dict[str, float]:
        """Static-resource occupancy at ``tbs`` concurrent TBs (defaults
        to the maximum) — reproduces Table 2's occupancy columns."""
        if tbs is None:
            tbs = self.max_tbs_per_sm(config)
        threads = tbs * self.threads_per_tb
        return {
            "rf": tbs * self.threads_per_tb * self.regs_per_thread
                  / config.registers_per_sm,
            "smem": tbs * self.smem_per_tb / config.smem_per_sm,
            "threads": threads / config.max_threads_per_sm,
            "tbs": tbs / config.max_tbs_per_sm,
        }


class InstructionStream:
    """Deterministic instruction sequence for one warp of one TB.

    The stream interleaves ``cinst_per_minst`` compute instructions
    (ALU, or SFU with probability ``sfu_frac``) with one memory
    instruction per iteration.  ``next_op`` exposes the next opcode so
    the scheduler can decide issue eligibility without consuming it
    (``peek`` is the equivalent method form); it is ``None`` once the
    warp's work is finished.
    """

    __slots__ = ("profile", "next_op", "_pattern", "_warp_index", "_rng",
                 "_rng_random", "_iters_left", "_compute_left",
                 "_cinst_per_minst", "_sfu_frac", "_write_frac")

    def __init__(self, profile: KernelProfile, pattern: AccessPattern,
                 global_warp_index: int, seed: int):
        self.profile = profile
        self._pattern = pattern
        self._warp_index = global_warp_index
        self._rng = random.Random((seed * 1000003 + global_warp_index) & 0x7FFFFFFF)
        # Hot-loop bindings: pop/_advance run once per issued
        # instruction, so dataclass field lookups are hoisted here.
        self._rng_random = self._rng.random
        self._cinst_per_minst = profile.cinst_per_minst
        self._sfu_frac = profile.sfu_frac
        self._write_frac = profile.write_frac
        self._iters_left = profile.iters_per_warp
        self._compute_left = profile.cinst_per_minst
        self.next_op: Optional[str] = None
        self._advance()

    def _advance(self) -> None:
        if self._iters_left <= 0:
            self.next_op = None
            return
        if self._compute_left > 0:
            if self._sfu_frac and self._rng_random() < self._sfu_frac:
                self.next_op = OP_SFU
            else:
                self.next_op = OP_ALU
        else:
            if self._rng_random() < self._write_frac:
                self.next_op = OP_STORE
            else:
                self.next_op = OP_LOAD

    @property
    def done(self) -> bool:
        return self.next_op is None

    def peek(self) -> Optional[str]:
        """Opcode of the next instruction, or None when the TB's work
        for this warp is finished."""
        return self.next_op

    def pop(self) -> str:
        """Consume and return the next opcode.  For memory opcodes the
        caller must follow up with :meth:`memory_descriptor`.

        Runs once per issued instruction; the body of :meth:`_advance`
        is inlined to keep the per-issue cost to one call."""
        op = self.next_op
        if op is None:
            raise RuntimeError("instruction stream exhausted")
        if op is OP_ALU or op is OP_SFU:
            self._compute_left -= 1
        else:
            self._compute_left = self._cinst_per_minst
            self._iters_left -= 1
        # _advance(), inlined:
        if self._iters_left <= 0:
            self.next_op = None
        elif self._compute_left > 0:
            if self._sfu_frac and self._rng_random() < self._sfu_frac:
                self.next_op = OP_SFU
            else:
                self.next_op = OP_ALU
        elif self._rng_random() < self._write_frac:
            self.next_op = OP_STORE
        else:
            self.next_op = OP_LOAD
        return op

    def memory_descriptor(self, is_store: bool) -> MemInstDescriptor:
        """Coalesced line addresses for the memory instruction just
        popped (``Req/Minst`` lines)."""
        lines = self._pattern.lines(
            self._warp_index, self._rng, self.profile.reqs_per_minst)
        return MemInstDescriptor(lines=tuple(lines), is_store=is_store)

    def remaining_iterations(self) -> int:
        return self._iters_left
