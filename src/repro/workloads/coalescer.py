"""Memory access coalescing (paper §2.1).

"Global and local memory requests from threads in a warp are coalesced
into as few transactions as possible before being sent to the memory
hierarchy."  The profiles in :mod:`repro.workloads.profiles` encode the
*result* of coalescing (Table 2's ``Req/Minst``); this module provides
the mechanism itself, so custom kernels can be described by per-thread
access expressions and have their coalescing degree derived rather than
asserted.

:class:`ThreadAddressPattern` adapts a per-thread byte-address
generator into the line-level :class:`~repro.workloads.address
.AccessPattern` interface the simulator consumes.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence


def coalesce(byte_addresses: Sequence[int], line_size: int = 128) -> List[int]:
    """Merge a warp's per-thread byte addresses into line transactions.

    Returns the unique line indices in first-touch order — one memory
    transaction per distinct line, exactly the coalescing rule modern
    GPUs apply per warp access.
    """
    if line_size < 1:
        raise ValueError("line_size must be positive")
    # An insertion-ordered dict is both the dedup set and the ordered
    # result — one structure, no per-line membership + append pair.
    lines: dict = {}
    for addr in byte_addresses:
        if addr < 0:
            raise ValueError("byte addresses must be non-negative")
        lines[addr // line_size] = None
    return list(lines)


def coalescing_degree(byte_addresses: Sequence[int],
                      line_size: int = 128) -> int:
    """Transactions one warp access generates (the ``Req/Minst`` of a
    single access)."""
    return len(coalesce(byte_addresses, line_size))


# ----------------------------------------------------------------------
# canonical per-thread access expressions
def unit_stride(warp_size: int = 32, element_bytes: int = 4
                ) -> Callable[[int, random.Random], List[int]]:
    """``a[tid]``: fully coalesced — 1 line per warp for 4B elements."""
    def gen(base: int, rng: random.Random) -> List[int]:
        return [base + tid * element_bytes for tid in range(warp_size)]
    return gen


def strided(stride_elements: int, warp_size: int = 32, element_bytes: int = 4
            ) -> Callable[[int, random.Random], List[int]]:
    """``a[tid * s]``: coalescing degrades with the stride."""
    if stride_elements < 1:
        raise ValueError("stride must be >= 1")

    def gen(base: int, rng: random.Random) -> List[int]:
        return [base + tid * stride_elements * element_bytes
                for tid in range(warp_size)]
    return gen


def gather(spread_lines: int, warp_size: int = 32, line_size: int = 128
           ) -> Callable[[int, random.Random], List[int]]:
    """``a[idx[tid]]``: random gather over ``spread_lines`` lines —
    the worst case (kmeans/ATAX-like)."""
    if spread_lines < 1:
        raise ValueError("spread_lines must be >= 1")

    def gen(base: int, rng: random.Random) -> List[int]:
        return [base + rng.randrange(spread_lines) * line_size
                for _ in range(warp_size)]
    return gen


class ThreadAddressPattern:
    """Adapter: a per-thread byte-address generator becomes a line-level
    :class:`~repro.workloads.address.AccessPattern`.

    Each memory instruction advances the warp's base pointer by
    ``advance_bytes`` (the loop induction), generates the warp's thread
    addresses, and coalesces them.  The requested ``count`` is advisory
    for this pattern: the *measured* transaction count is whatever
    coalescing produces, which is the point.
    """

    def __init__(self, thread_gen: Callable[[int, random.Random], List[int]],
                 advance_bytes: int = 128, line_size: int = 128):
        if advance_bytes < 0:
            raise ValueError("advance_bytes must be non-negative")
        self.thread_gen = thread_gen
        self.advance_bytes = advance_bytes
        self.line_size = line_size
        self._bases: dict = {}

    def lines(self, warp_index: int, rng: random.Random, count: int) -> List[int]:
        base = self._bases.get(warp_index, warp_index << 20)
        self._bases[warp_index] = base + self.advance_bytes
        addresses = self.thread_gen(base, rng)
        return coalesce(addresses, self.line_size)

    def measured_req_per_minst(self, samples: int = 64,
                               seed: int = 0) -> float:
        """Average transactions per warp access (for calibrating a
        :class:`~repro.workloads.kernel.KernelProfile`)."""
        rng = random.Random(seed)
        total = 0
        for i in range(samples):
            total += len(self.lines(10_000 + i, rng, 0))
        return total / samples
