"""CKE workload construction: pairing kernels into multi-programmed
mixes, mirroring the paper's methodology (§2.3).

The paper evaluates all pairs of its 13 benchmarks grouped into C+C,
C+M and M+M classes, plus all 3-kernel combinations.  A pure-Python
simulator cannot afford the full cross product per experiment, so
:func:`representative_pairs` selects a deterministic subset per class
that always includes the six pairs the paper singles out for detailed
analysis (pf+bp, bp+hs, bp+sv, bp+ks, sv+ks, sv+ax).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.workloads.kernel import KernelProfile
from repro.workloads.profiles import ALL_PROFILES, get_profile

#: the pairs analysed individually throughout the paper (Figs. 5/9/11).
PAPER_CASE_STUDY_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("pf", "bp"), ("bp", "hs"),   # C+C
    ("bp", "sv"), ("bp", "ks"),   # C+M
    ("sv", "ks"), ("sv", "ax"),   # M+M
)


@dataclass(frozen=True)
class WorkloadMix:
    """An ordered tuple of kernels launched concurrently."""

    profiles: Tuple[KernelProfile, ...]

    def __post_init__(self) -> None:
        if len(self.profiles) < 2:
            raise ValueError("a CKE mix needs at least two kernels")

    @property
    def name(self) -> str:
        return "+".join(p.name for p in self.profiles)

    @property
    def mix_class(self) -> str:
        return classify_mix(self.profiles)

    def __iter__(self):
        return iter(self.profiles)

    def __len__(self) -> int:
        return len(self.profiles)


def classify_mix(profiles: Sequence[KernelProfile]) -> str:
    """Class label in the paper's notation, e.g. ``"C+M"`` — sorted so
    that compute-intensive kernels come first."""
    kinds = sorted((p.kind for p in profiles), key=lambda k: (k != "C", k))
    return "+".join(kinds)


def mix(*names: str) -> WorkloadMix:
    """Build a mix from short benchmark names: ``mix("bp", "sv")``."""
    return WorkloadMix(tuple(get_profile(n) for n in names))


def paper_pairs() -> List[WorkloadMix]:
    """The six case-study pairs the paper analyses individually."""
    return [mix(a, b) for a, b in PAPER_CASE_STUDY_PAIRS]


def all_pairs() -> List[WorkloadMix]:
    """Every unordered pair of the 13 benchmarks (78 mixes)."""
    return [WorkloadMix((a, b))
            for a, b in itertools.combinations(ALL_PROFILES, 2)]


def representative_pairs(per_class: int = 4) -> List[WorkloadMix]:
    """A deterministic per-class sample of pairs for averaged results.

    Always contains the paper's six case-study pairs; the remainder is
    filled from the full cross product in a fixed order so runs are
    reproducible and every class has ``per_class`` members (or all
    available pairs, if fewer).
    """
    chosen: List[WorkloadMix] = paper_pairs()
    seen = {m.name for m in chosen}
    counts = {}
    for m in chosen:
        counts[m.mix_class] = counts.get(m.mix_class, 0) + 1
    for m in all_pairs():
        cls = m.mix_class
        if m.name in seen or counts.get(cls, 0) >= per_class:
            continue
        chosen.append(m)
        seen.add(m.name)
        counts[cls] = counts.get(cls, 0) + 1
    return chosen


def representative_triples(per_class: int = 2) -> List[WorkloadMix]:
    """A deterministic per-class sample of 3-kernel mixes (§4.2)."""
    fixed = [
        mix("pf", "bp", "dc"),    # C+C+C
        mix("cp", "bp", "hs"),
        mix("pf", "bp", "sv"),    # C+C+M
        mix("bp", "hs", "ks"),
        mix("bp", "sv", "ks"),    # C+M+M
        mix("pf", "sv", "ax"),
        mix("sv", "ks", "ax"),    # M+M+M
        mix("3m", "sv", "s2"),
    ]
    counts = {}
    out = []
    for m in fixed:
        cls = m.mix_class
        if counts.get(cls, 0) >= per_class:
            continue
        out.append(m)
        counts[cls] = counts.get(cls, 0) + 1
    return out
