"""Precompiled kernel trace arrays.

Every warp's instruction stream is a pure function of
``(KernelProfile, warp_index, seed)``: the per-warp RNG is seeded from
``(seed, warp_index)`` alone, and the address patterns keep no state
shared *across* warps (StreamPattern cursors are keyed by warp index,
ReusePattern draws only from the RNG, MixPattern composes the two).
CKE schemes never alter the stream either — BMI/MIL/SMK/UCP only
change *when* instructions issue, not *which* — so one compiled trace
serves every scheme leg, every rep, and both the fast and reference
loops of a campaign.

This module compiles streams once into flat parallel arrays — one
opcode byte per instruction plus the concatenated coalesced line
footprint of every memory instruction — and replays them by index bump
(:class:`repro.workloads.kernel.ReplayStream`).  The compiler drives a
real :class:`~repro.workloads.kernel.InstructionStream` through
exactly the SM's call sequence (``pop()``, then ``memory_descriptor``
for memory ops), so the arrays are bit-identical to live generation by
construction; ``tests/test_trace.py`` re-proves it per pattern class.

Traces are memoized process-wide keyed by a *profile fingerprint*
(every stream-affecting profile field plus the address pattern's
``trace_signature()``) and compiled in chunks of :data:`CHUNK_WARPS`
warps so memory stays bounded for long windows (a global LRU keeps at
most :data:`MAX_CHUNKS` chunks resident).  When a disk directory is
configured (:func:`configure_disk_cache` — the harness points it
inside its atomic result cache), chunks are persisted as JSON with the
same temp-file + ``os.replace`` discipline, letting campaign worker
processes share one compile.

Opt-outs: profiles whose pattern lacks ``trace_signature`` fall back
to live RNG streams, as does ``REPRO_NO_TRACE=1`` (useful for
disambiguating trace bugs from timing bugs).  Cache traffic is
observable through the process-wide counter registry
(``trace_cache.*`` — :func:`repro.obs.process_registry`).
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from hashlib import sha1
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import process_registry
from repro.workloads.kernel import (
    CODE_BY_OP,
    OP_ALU,
    OP_SFU,
    OP_STORE,
    InstructionStream,
    KernelProfile,
)

#: bump when the trace array layout or the compile call order changes;
#: embedded in fingerprints and in the disk-cache directory name.
TRACE_FORMAT = 1

#: warps compiled (and persisted) together.  64 warps of a typical
#: profile are a few hundred KB of arrays — big enough to amortise the
#: disk round-trip, small enough that eviction granularity stays fine.
CHUNK_WARPS = 64

#: process-wide cap on resident chunks (LRU).  Long windows launch
#: tens of thousands of warps per kernel; without a cap the arrays
#: for every warp ever launched would stay live.
MAX_CHUNKS = 256

_COUNTERS = process_registry()
_HITS = _COUNTERS.counter("trace_cache.warp_hits")
_COMPILES = _COUNTERS.counter("trace_cache.chunk_compiles")
_DISK_HITS = _COUNTERS.counter("trace_cache.disk_hits")
_DISK_WRITES = _COUNTERS.counter("trace_cache.disk_writes")
_FALLBACKS = _COUNTERS.counter("trace_cache.fallback_streams")

#: (fingerprint, seed) -> KernelTrace, shared by every launch in the
#: process (campaign legs re-create GPU objects constantly).
_TRACES: Dict[Tuple, "KernelTrace"] = {}

#: (digest, seed, chunk_index) -> (ops bytes per warp, lines per warp),
#: in LRU order (popitem(last=False) evicts the coldest chunk).
_CHUNKS: "OrderedDict[Tuple, Tuple[List[bytes], List[List[int]]]]" = OrderedDict()

_DISK_DIR: Optional[str] = None


def profile_fingerprint(profile: KernelProfile) -> Optional[Tuple]:
    """Hashable key covering everything that shapes the instruction
    stream, or ``None`` when the profile is not traceable (its address
    pattern does not declare a ``trace_signature``).

    Deliberately excludes fields that only affect *timing* (``mlp``,
    resources, latencies): profiles differing only in those share one
    trace, exactly like scheme legs do.
    """
    pattern = profile.pattern_factory()
    signature = getattr(pattern, "trace_signature", None)
    if signature is None:
        return None
    return (
        TRACE_FORMAT,
        profile.cinst_per_minst,
        profile.reqs_per_minst,
        profile.sfu_frac,
        profile.write_frac,
        profile.iters_per_warp,
        signature(),
    )


def get_trace(profile: KernelProfile, seed: int) -> Optional["KernelTrace"]:
    """The process-wide compiled trace for ``(profile, seed)``, or
    ``None`` when tracing is unavailable or disabled."""
    if os.environ.get("REPRO_NO_TRACE", "") == "1":
        _FALLBACKS.value += 1
        return None
    fingerprint = profile_fingerprint(profile)
    if fingerprint is None:
        _FALLBACKS.value += 1
        return None
    key = (fingerprint, seed)
    trace = _TRACES.get(key)
    if trace is None:
        trace = KernelTrace(profile, seed, fingerprint)
        _TRACES[key] = trace
    return trace


def configure_disk_cache(path: Optional[str]) -> Optional[str]:
    """Persist compiled chunks under ``path`` (None disables).

    Returns the configured path, or ``None`` when the directory could
    not be created (persistence is best-effort, like the harness's
    result cache)."""
    global _DISK_DIR
    if path is None:
        _DISK_DIR = None
        return None
    try:
        os.makedirs(path, exist_ok=True)
    except OSError:
        _DISK_DIR = None
        return None
    _DISK_DIR = path
    return path


def clear_memory_cache() -> None:
    """Drop every in-process trace and chunk (test hook)."""
    _TRACES.clear()
    _CHUNKS.clear()


class KernelTrace:
    """Lazily compiled per-warp trace arrays for one (profile, seed)."""

    __slots__ = ("profile", "seed", "fingerprint", "digest")

    def __init__(self, profile: KernelProfile, seed: int,
                 fingerprint: Tuple):
        self.profile = profile
        self.seed = seed
        self.fingerprint = fingerprint
        self.digest = sha1(repr(fingerprint).encode()).hexdigest()[:20]

    def warp_arrays(self, warp_index: int) -> Tuple[bytes, List[int]]:
        """``(ops, lines)`` for one warp, compiling or loading the
        containing chunk on demand."""
        chunk_index, offset = divmod(warp_index, CHUNK_WARPS)
        key = (self.digest, self.seed, chunk_index)
        chunks = _CHUNKS
        chunk = chunks.get(key)
        if chunk is not None:
            chunks.move_to_end(key)
        else:
            chunk = self._load_chunk(chunk_index)
            if chunk is None:
                chunk = self._compile_chunk(chunk_index)
                self._store_chunk(chunk_index, chunk)
            chunks[key] = chunk
            while len(chunks) > MAX_CHUNKS:
                chunks.popitem(last=False)
        _HITS.value += 1
        return chunk[0][offset], chunk[1][offset]

    # ------------------------------------------------------------------
    def _compile_chunk(self, chunk_index: int):
        """Generate the arrays for warps ``[chunk*C, (chunk+1)*C)`` by
        driving live streams through the SM's exact call order: the
        ``pop()`` that advances the next-op RNG strictly precedes the
        ``memory_descriptor`` that draws the pattern lines."""
        _COMPILES.value += 1
        profile = self.profile
        seed = self.seed
        # A fresh pattern per chunk is sound: pattern state is keyed by
        # warp index (or drawn from the per-warp RNG), never shared
        # across warps, so chunk boundaries cannot leak state.
        pattern = profile.pattern_factory()
        code_by_op = CODE_BY_OP
        ops_per_warp: List[bytes] = []
        lines_per_warp: List[List[int]] = []
        first = chunk_index * CHUNK_WARPS
        for warp_index in range(first, first + CHUNK_WARPS):
            stream = InstructionStream(profile, pattern, warp_index, seed)
            codes: List[str] = []
            lines: List[int] = []
            while stream.next_op is not None:
                op = stream.pop()
                codes.append(code_by_op[op])
                if not (op is OP_ALU or op is OP_SFU):
                    desc = stream.memory_descriptor(op is OP_STORE)
                    lines.extend(desc.lines)
            ops_per_warp.append("".join(codes).encode("ascii"))
            lines_per_warp.append(lines)
        return ops_per_warp, lines_per_warp

    # ------------------------------------------------------------------
    def _chunk_path(self, chunk_index: int) -> Optional[str]:
        if _DISK_DIR is None:
            return None
        name = f"{self.digest}-s{self.seed}-c{chunk_index}.json"
        return os.path.join(_DISK_DIR, name)

    def _load_chunk(self, chunk_index: int):
        path = self._chunk_path(chunk_index)
        if path is None:
            return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return None
        if (payload.get("format") != TRACE_FORMAT
                or payload.get("fingerprint") != repr(self.fingerprint)):
            return None
        ops = [entry.encode("ascii") for entry in payload["ops"]]
        lines = payload["lines"]
        if len(ops) != CHUNK_WARPS or len(lines) != CHUNK_WARPS:
            return None
        _DISK_HITS.value += 1
        return ops, lines

    def _store_chunk(self, chunk_index: int, chunk) -> None:
        path = self._chunk_path(chunk_index)
        if path is None:
            return
        payload = {
            "format": TRACE_FORMAT,
            "fingerprint": repr(self.fingerprint),
            "ops": [entry.decode("ascii") for entry in chunk[0]],
            "lines": chunk[1],
        }
        # Same atomic discipline as the harness result cache: concurrent
        # campaign workers may race on the same chunk, and the winner's
        # os.replace is indistinguishable from the loser's.
        try:
            fd, tmp_path = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, separators=(",", ":"))
            os.replace(tmp_path, path)
            _DISK_WRITES.value += 1
        except OSError:
            return
