"""The 13 benchmark profiles of the paper's Table 2.

Each profile is calibrated against the *scaled* configuration
(:func:`repro.config.scaled_config`: 512 threads / 16 warps / 8 TB
slots / 16384 registers / 16KB smem per SM, 8KB 4-way L1D = 64 lines):

* static resources are chosen so the limiting resource and the
  occupancy ratios match Table 2's four occupancy columns;
* ``cinst_per_minst`` and ``reqs_per_minst`` are taken verbatim from
  Table 2;
* the address pattern is chosen so the isolated L1D miss rate lands
  near Table 2's ``l1d_miss_rate`` (streaming for ≈1.0, shared-working-
  set reuse for low rates, mixtures in between);
* the reservation-failure behaviour (``l1d_rsfail_rate``) then
  *emerges* from the interaction of request rate, miss rate and the
  MSHR/miss-queue provisioning — it is not a tuned input.

The ``paper`` dict on each profile carries Table 2's reference values
for the characterisation experiment (Table 2 / Figure 2 reproduction).
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.address import MixPattern, ReusePattern, StreamPattern
from repro.workloads.kernel import KernelProfile


def _paper(rf, smem, thread, tb, cinst, req, miss, rsfail, kind) -> Dict[str, float]:
    return {
        "rf_oc": rf, "smem_oc": smem, "thread_oc": thread, "tb_oc": tb,
        "cinst_per_minst": cinst, "req_per_minst": req,
        "l1d_miss_rate": miss, "l1d_rsfail_rate": rsfail, "type": kind,
    }


ALL_PROFILES: List[KernelProfile] = [
    KernelProfile(
        name="cp", full_name="cutcp", suite="Parboil", kind="C",
        cinst_per_minst=4, reqs_per_minst=2, sfu_frac=0.35, write_frac=0.02, mlp=2,
        threads_per_tb=32, regs_per_thread=56, smem_per_tb=1376,
        pattern_factory=lambda: MixPattern(64, 0.85, region_lines=64, recycle_slots=32), iters_per_warp=300,
        paper=_paper(0.875, 0.670, 0.667, 1.000, 4, 2, 0.45, 0.04, "C"),
    ),
    KernelProfile(
        name="hs", full_name="hotspot", suite="Rodinia", kind="C",
        cinst_per_minst=7, reqs_per_minst=3, sfu_frac=0.05, write_frac=0.08, mlp=1,
        threads_per_tb=96, regs_per_thread=56, smem_per_tb=1200,
        pattern_factory=lambda: StreamPattern(48, recycle_slots=24), iters_per_warp=260,
        paper=_paper(0.984, 0.219, 0.583, 0.438, 7, 3, 0.97, 1.53, "C"),
    ),
    KernelProfile(
        name="dc", full_name="dxtc", suite="CUDA SDK", kind="C",
        cinst_per_minst=5, reqs_per_minst=1, sfu_frac=0.10, write_frac=0.04, mlp=2,
        threads_per_tb=32, regs_per_thread=36, smem_per_tb=688,
        pattern_factory=lambda: ReusePattern(24), iters_per_warp=300,
        paper=_paper(0.562, 0.333, 0.333, 1.000, 5, 1, 0.09, 0.17, "C"),
    ),
    KernelProfile(
        name="pf", full_name="pathfinder", suite="Rodinia", kind="C",
        cinst_per_minst=6, reqs_per_minst=2, sfu_frac=0.0, write_frac=0.06, mlp=1,
        threads_per_tb=96, regs_per_thread=26, smem_per_tb=824,
        pattern_factory=lambda: StreamPattern(32, recycle_slots=32), iters_per_warp=260,
        paper=_paper(0.750, 0.250, 1.000, 0.750, 6, 2, 0.99, 0.00, "C"),
    ),
    KernelProfile(
        name="bp", full_name="backprop", suite="Rodinia", kind="C",
        cinst_per_minst=6, reqs_per_minst=2, sfu_frac=0.10, write_frac=0.06, mlp=1,
        threads_per_tb=96, regs_per_thread=19, smem_per_tb=440,
        pattern_factory=lambda: MixPattern(48, 0.30, region_lines=32, recycle_slots=32), iters_per_warp=260,
        paper=_paper(0.562, 0.133, 1.000, 0.750, 6, 2, 0.80, 0.33, "C"),
    ),
    KernelProfile(
        name="bs", full_name="bfs", suite="Rodinia", kind="C",
        cinst_per_minst=4, reqs_per_minst=1, sfu_frac=0.0, write_frac=0.04, mlp=2,
        threads_per_tb=160, regs_per_thread=26, smem_per_tb=0,
        pattern_factory=lambda: StreamPattern(32, recycle_slots=32), iters_per_warp=280,
        paper=_paper(0.750, 0.000, 1.000, 0.375, 4, 1, 1.00, 0.00, "C"),
    ),
    KernelProfile(
        name="st", full_name="stencil", suite="Parboil", kind="C",
        cinst_per_minst=4, reqs_per_minst=1, sfu_frac=0.0, write_frac=0.08, mlp=2,
        threads_per_tb=160, regs_per_thread=26, smem_per_tb=0,
        pattern_factory=lambda: MixPattern(40, 0.40, region_lines=64, recycle_slots=32), iters_per_warp=280,
        paper=_paper(0.750, 0.000, 1.000, 0.375, 4, 1, 0.67, 1.15, "C"),
    ),
    KernelProfile(
        name="3m", full_name="3mm", suite="Polybench", kind="M",
        cinst_per_minst=2, reqs_per_minst=1, sfu_frac=0.0, write_frac=0.04, mlp=4,
        threads_per_tb=96, regs_per_thread=19, smem_per_tb=0,
        pattern_factory=lambda: MixPattern(48, 0.60), iters_per_warp=200,
        paper=_paper(0.562, 0.000, 1.000, 0.750, 2, 1, 0.63, 5.45, "M"),
    ),
    KernelProfile(
        name="sv", full_name="spmv", suite="Parboil", kind="M",
        cinst_per_minst=3, reqs_per_minst=3, sfu_frac=0.0, write_frac=0.04, mlp=4,
        threads_per_tb=64, regs_per_thread=24, smem_per_tb=0,
        pattern_factory=lambda: MixPattern(48, 0.35), iters_per_warp=160,
        paper=_paper(0.750, 0.000, 1.000, 1.000, 3, 3, 0.78, 5.23, "M"),
    ),
    KernelProfile(
        name="cd", full_name="cfd", suite="Rodinia", kind="M",
        cinst_per_minst=9, reqs_per_minst=6, sfu_frac=0.05, write_frac=0.06, mlp=4,
        threads_per_tb=32, regs_per_thread=64, smem_per_tb=0,
        pattern_factory=StreamPattern, iters_per_warp=120,
        paper=_paper(1.000, 0.000, 0.333, 1.000, 9, 6, 0.96, 7.23, "M"),
    ),
    KernelProfile(
        name="s2", full_name="sad2", suite="Parboil", kind="M",
        cinst_per_minst=2, reqs_per_minst=2, sfu_frac=0.0, write_frac=0.04, mlp=4,
        threads_per_tb=32, regs_per_thread=32, smem_per_tb=0,
        pattern_factory=lambda: MixPattern(64, 0.25), iters_per_warp=160,
        paper=_paper(0.500, 0.000, 0.667, 1.000, 2, 2, 0.92, 6.80, "M"),
    ),
    KernelProfile(
        name="ks", full_name="kmeans", suite="Rodinia", kind="M",
        cinst_per_minst=3, reqs_per_minst=17, sfu_frac=0.0, write_frac=0.03, mlp=2,
        threads_per_tb=96, regs_per_thread=19, smem_per_tb=0,
        pattern_factory=lambda: MixPattern(24, 0.45), iters_per_warp=70,
        paper=_paper(0.562, 0.000, 1.000, 0.750, 3, 17, 1.00, 7.96, "M"),
    ),
    KernelProfile(
        name="ax", full_name="ATAX", suite="Polybench", kind="M",
        cinst_per_minst=2, reqs_per_minst=11, sfu_frac=0.0, write_frac=0.03, mlp=2,
        threads_per_tb=96, regs_per_thread=19, smem_per_tb=0,
        pattern_factory=lambda: MixPattern(24, 0.35), iters_per_warp=80,
        paper=_paper(0.562, 0.000, 1.000, 0.750, 2, 11, 0.97, 79.70, "M"),
    ),
]

PROFILES_BY_NAME: Dict[str, KernelProfile] = {p.name: p for p in ALL_PROFILES}
COMPUTE_PROFILES = [p for p in ALL_PROFILES if p.kind == "C"]
MEMORY_PROFILES = [p for p in ALL_PROFILES if p.kind == "M"]


def get_profile(name: str) -> KernelProfile:
    """Look up a profile by its short Table 2 name (e.g. ``"bp"``)."""
    try:
        return PROFILES_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES_BY_NAME))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
