"""Line-address stream generators for synthetic kernels.

Addresses are produced at cache-line granularity (the coalescer in
:mod:`repro.sim.lsu` has already merged thread accesses, matching the
paper's ``Req/Minst`` column).  Each kernel instance owns a disjoint
address region so concurrent kernels never share data; sharing effects
happen in the *capacity* and *resource* domains, as in the paper.

Three patterns cover the behaviours in Table 2:

* :class:`StreamPattern` — each warp walks its private region
  sequentially (compulsory misses, ~1.0 miss rate: ``bs``, ``pf``).
* :class:`ReusePattern` — uniform random lines from a kernel-shared
  working set (miss rate ≈ max(0, 1 - cache_share/ws): ``dc``).
* :class:`MixPattern` — a per-request Bernoulli mix of the two
  (intermediate miss rates: ``cp``, ``bp``, ``st``, ``3m``, ``sv``).
"""

from __future__ import annotations

import random
from typing import List, Optional, Protocol


class AccessPattern(Protocol):
    """A source of line indices local to one kernel's address region."""

    def lines(self, warp_index: int, rng: random.Random, count: int) -> List[int]:
        """Return ``count`` line indices for one memory instruction."""

    def trace_signature(self) -> tuple:
        """Hashable description of every parameter that influences the
        line sequence this pattern produces (optional).

        Patterns that implement it are eligible for trace
        precompilation (:mod:`repro.workloads.trace`): two pattern
        instances with equal signatures must generate identical line
        sequences for identical ``(warp_index, rng draws, count)``
        inputs.  Patterns without the method simply fall back to live
        RNG generation — correct, just slower."""


class StreamPattern:
    """Per-warp sequential walk over a private region of ``region_lines``.

    Consecutive memory instructions of a warp touch consecutive lines,
    so within the measurement window nothing is revisited (compulsory
    misses), while different warps never alias — no accidental MSHR
    merging.
    """

    #: per-warp extra offset (in lines) decorrelating the DRAM-row —
    #: and hence channel — phase of different warps' streams; without
    #: it all warps advance through channels in lockstep and serialise
    #: on one channel at a time.
    ROW_STAGGER = 33

    def __init__(self, region_lines: int = 1 << 16,
                 recycle_slots: Optional[int] = None):
        if region_lines < 1:
            raise ValueError("region_lines must be positive")
        if recycle_slots is not None and recycle_slots < 1:
            raise ValueError("recycle_slots must be positive")
        self.region_lines = region_lines
        #: when set, warp regions are recycled modulo this many slots:
        #: successive thread blocks re-walk the same data (a bounded,
        #: cache-resident footprint — compute kernels).  None gives
        #: every warp instance fresh data (an unbounded streaming
        #: footprint — memory-intensive kernels).
        self.recycle_slots = recycle_slots
        self._cursors: dict = {}

    def lines(self, warp_index: int, rng: random.Random, count: int) -> List[int]:
        slot = (warp_index if self.recycle_slots is None
                else warp_index % self.recycle_slots)
        cursor = self._cursors.get(warp_index, 0)
        base = slot * (self.region_lines + self.ROW_STAGGER)
        out = [base + (cursor + i) % self.region_lines for i in range(count)]
        self._cursors[warp_index] = (cursor + count) % self.region_lines
        return out

    def trace_signature(self) -> tuple:
        return ("stream", self.region_lines, self.recycle_slots,
                self.ROW_STAGGER)


class ReusePattern:
    """Uniform random lines from a working set shared by all warps."""

    def __init__(self, working_set_lines: int):
        if working_set_lines < 1:
            raise ValueError("working_set_lines must be positive")
        self.working_set_lines = working_set_lines

    def lines(self, warp_index: int, rng: random.Random, count: int) -> List[int]:
        ws = self.working_set_lines
        start = rng.randrange(ws)
        # A coalesced instruction touches adjacent lines of the set.
        return [(start + i) % ws for i in range(count)]

    def trace_signature(self) -> tuple:
        return ("reuse", self.working_set_lines)


class MixPattern:
    """Bernoulli mixture: reuse a shared working set with probability
    ``reuse_frac``, otherwise stream from the warp's private region."""

    def __init__(self, working_set_lines: int, reuse_frac: float,
                 region_lines: int = 1 << 16,
                 recycle_slots: Optional[int] = None):
        if not 0.0 <= reuse_frac <= 1.0:
            raise ValueError("reuse_frac must be in [0, 1]")
        self.reuse_frac = reuse_frac
        self._reuse = ReusePattern(working_set_lines)
        self._stream = StreamPattern(region_lines, recycle_slots)
        # Streamed lines must not collide with the shared working set.
        self._stream_base = working_set_lines + 1024

    def lines(self, warp_index: int, rng: random.Random, count: int) -> List[int]:
        if rng.random() < self.reuse_frac:
            return self._reuse.lines(warp_index, rng, count)
        raw = self._stream.lines(warp_index, rng, count)
        return [self._stream_base + line for line in raw]

    def trace_signature(self) -> tuple:
        return ("mix", self.reuse_frac, self._stream_base,
                self._reuse.trace_signature(), self._stream.trace_signature())
