"""Synthetic GPU kernels calibrated to the paper's benchmark suite.

The paper characterises 13 CUDA benchmarks (Table 2) by their dynamic
instruction mix (``Cinst/Minst``), memory coalescing degree
(``Req/Minst``), L1D miss/reservation-failure rates and static-resource
occupancy, then builds 2- and 3-kernel CKE workloads from them.  The
schemes under study never look at program semantics — only at these
observable characteristics — so we reproduce each benchmark as a
parameterised instruction/address stream generator
(:class:`~repro.workloads.kernel.KernelProfile`).
"""

from repro.workloads.address import AccessPattern, MixPattern, ReusePattern, StreamPattern
from repro.workloads.coalescer import (
    ThreadAddressPattern,
    coalesce,
    coalescing_degree,
    gather,
    strided,
    unit_stride,
)
from repro.workloads.kernel import InstructionStream, KernelProfile, MemInstDescriptor
from repro.workloads.profiles import (
    ALL_PROFILES,
    COMPUTE_PROFILES,
    MEMORY_PROFILES,
    PROFILES_BY_NAME,
    get_profile,
)
from repro.workloads.mixes import (
    WorkloadMix,
    classify_mix,
    paper_pairs,
    representative_pairs,
    representative_triples,
)

__all__ = [
    "AccessPattern",
    "ThreadAddressPattern",
    "coalesce",
    "coalescing_degree",
    "unit_stride",
    "strided",
    "gather",
    "StreamPattern",
    "ReusePattern",
    "MixPattern",
    "KernelProfile",
    "InstructionStream",
    "MemInstDescriptor",
    "ALL_PROFILES",
    "COMPUTE_PROFILES",
    "MEMORY_PROFILES",
    "PROFILES_BY_NAME",
    "get_profile",
    "WorkloadMix",
    "classify_mix",
    "paper_pairs",
    "representative_pairs",
    "representative_triples",
]
