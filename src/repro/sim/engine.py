"""Top-level GPU engine: ties SMs, the memory subsystem and the scheme
stack together and runs the measurement window.

As in the paper's methodology (§2.3), kernels are modelled as an
endless stream of thread blocks for the duration of the window
(equivalent to "a kernel will restart if it completes before 2M
cycles"), and per-kernel IPC is measured over the whole window.
"""

from __future__ import annotations

import itertools
import os
from typing import Dict, List, Optional, Sequence, Set, Union

from repro.config import GPUConfig
from repro.core.arbiter import SchemeConfig
from repro.mem.subsystem import MemorySubsystem, PooledMemorySubsystem
from repro.obs.collector import ObsLike, resolve_obs
from repro.sim.sm import StreamingMultiprocessor
from repro.sim.stats import KernelStats, RunResult, TimelineRecorder
from repro.sim.wheel import EventWheel
from repro.workloads import trace as ktrace
from repro.workloads.kernel import InstructionStream, KernelProfile, ReplayStream

#: address-space stride separating kernel instances (in lines).
KERNEL_REGION_LINES = 1 << 40


class KernelLaunch:
    """One kernel instance in a run: profile + per-SM TB limits +
    private address region + deterministic stream seeding."""

    def __init__(self, slot: int, profile: KernelProfile,
                 tb_limits: Sequence[int], seed: int = 0):
        self.slot = slot
        self.profile = profile
        self.tb_limits = list(tb_limits)
        self.seed = seed
        self.base_line = slot * KERNEL_REGION_LINES
        self.pattern = profile.pattern_factory()
        self._warp_counter = itertools.count()
        self._stream_seed = seed * 7919 + slot
        # Precompiled trace for this (profile, seed), shared process-
        # wide; None when the profile is untraceable or tracing is
        # disabled (REPRO_NO_TRACE=1) — then streams fall back to live
        # RNG generation.  Replay is bit-identical either way, so both
        # the fast and the reference loop replay the same arrays.
        self.trace = ktrace.get_trace(profile, self._stream_seed)

    def next_warp_index(self) -> int:
        return next(self._warp_counter)

    def new_stream(self, warp_index: int):
        # Streams rebase their region-local lines by base_line up
        # front, so every descriptor they hand the SM is already in
        # global line space (one rebase per stream, not per issue).
        trace = self.trace
        if trace is not None:
            ops, lines = trace.warp_arrays(warp_index)
            return ReplayStream(self.profile, ops, lines,
                                base_line=self.base_line)
        return InstructionStream(self.profile, self.pattern, warp_index,
                                 seed=self._stream_seed,
                                 base_line=self.base_line)


def make_launches(
    profiles: Sequence[KernelProfile],
    tb_limits: Sequence[Union[int, Sequence[int]]],
    config: GPUConfig,
    sm_masks: Optional[Sequence[Optional[Set[int]]]] = None,
    seed: int = 0,
) -> List[KernelLaunch]:
    """Build launches from per-kernel TB limits.

    ``tb_limits[i]`` is either a single per-SM limit or a per-SM list.
    ``sm_masks[i]`` (optional) restricts kernel *i* to a subset of SMs
    (spatial multitasking); on masked-out SMs the limit is forced to 0.
    """
    if len(profiles) != len(tb_limits):
        raise ValueError("one TB limit per kernel required")
    launches = []
    for slot, (profile, limit) in enumerate(zip(profiles, tb_limits)):
        if isinstance(limit, int):
            per_sm = [limit] * config.num_sms
        else:
            per_sm = list(limit)
            if len(per_sm) != config.num_sms:
                raise ValueError("per-SM limit list length must equal num_sms")
        if sm_masks is not None and sm_masks[slot] is not None:
            mask = sm_masks[slot]
            per_sm = [lim if sm in mask else 0 for sm, lim in enumerate(per_sm)]
        launches.append(KernelLaunch(slot, profile, per_sm, seed))
    return launches


class GPU:
    """A configured GPU ready to simulate one measurement window.

    ``reference=True`` (or the ``REPRO_REFERENCE_LOOP=1`` environment
    variable) disables the cycle-loop fast paths — scheduler sleep
    hints and the memory-subsystem idle skip — forcing the reference
    per-cycle scan everywhere.  Both modes produce bit-identical
    results; the perf suite asserts this on every run.

    ``obs`` enables the observability layer (``True``, an
    :class:`~repro.obs.ObsOptions`, or a prepared
    :class:`~repro.obs.Observability`).  Observed runs use the
    reference per-cycle loop so stall attribution is exact — simulated
    results stay bit-identical to an unobserved run.

    ``pooled`` selects the struct-of-arrays memory path (slot-pooled
    requests, array-backed L1D/MSHR tag stores, ring DRAM queues).
    Default (None): follow the loop mode — pooled on the fast loop,
    the reference object path on the reference loop — overridable via
    ``REPRO_POOLED_MEM=1``/``0``.  Both paths are bit-identical; the
    perf suite and tests/test_pooled_identity.py assert it.
    """

    def __init__(self, config: GPUConfig, launches: List[KernelLaunch],
                 scheme: Optional[SchemeConfig] = None,
                 timeline_interval: Optional[int] = None,
                 reference: Optional[bool] = None,
                 obs: ObsLike = None,
                 pooled: Optional[bool] = None):
        if not launches:
            raise ValueError("need at least one kernel launch")
        self.obs = resolve_obs(obs)
        if self.obs is not None:
            # Per-cycle stall attribution requires every cycle to be
            # ticked: the fast loop's sleep hints skip exactly the
            # cycles whose non-issue the taxonomy must classify.
            reference = True
        if reference is None:
            reference = os.environ.get("REPRO_REFERENCE_LOOP", "") == "1"
        self.reference = reference
        if pooled is None:
            env = os.environ.get("REPRO_POOLED_MEM", "")
            if env in ("0", "1"):
                pooled = env == "1"
            else:
                pooled = not reference
        self.pooled = pooled
        self.config = config
        self.launches = launches
        self.scheme = scheme or SchemeConfig()
        #: the unified event wheel: every component posts its future
        #: activity cycles here, so the fast loop's leap target is one
        #: amortised O(1) query instead of a scan over schedulers, SMs,
        #: the event heap and the DRAM channels.
        self.wheel = EventWheel()
        mem_cls = PooledMemorySubsystem if pooled else MemorySubsystem
        self.memory = mem_cls(config, fastpath=not reference,
                              obs=self.obs, wheel=self.wheel)
        self.timeline = (TimelineRecorder(timeline_interval)
                         if timeline_interval else None)
        self.kernel_stats: Dict[int, KernelStats] = {
            launch.slot: KernelStats() for launch in launches
        }
        self.sms: List[StreamingMultiprocessor] = []
        shared_scheme_state: Dict[str, object] = {}
        for sm_id in range(config.num_sms):
            l1 = self.memory.l1s[sm_id]
            bundle = self.scheme.build(len(launches), config, l1.tags,
                                       shared=shared_scheme_state,
                                       sm_id=sm_id)
            self.sms.append(StreamingMultiprocessor(
                sm_id, config, l1, launches, bundle,
                self.kernel_stats, self.timeline, fastpath=not reference,
                obs=self.obs, wheel=self.wheel,
                pool=self.memory.pool if pooled else None))
        self.cycles_run = 0
        if self.obs is not None:
            self.obs.attach(self)

    def set_tb_limit(self, sm_id: int, slot: int, limit: int) -> None:
        """Reconfigure one kernel's TB cap on one SM at runtime
        (dynamic Warped-Slicer; resident TBs above the new cap drain
        naturally — no preemption)."""
        if limit < 0:
            raise ValueError("limit must be non-negative")
        sm = self.sms[sm_id]
        sm.kstate[slot].tb_limit = limit
        # A raised cap can unblock TB launches on this SM.
        sm._launch_blocked = False
        sm._sleep_until = 0

    def snapshot_insts(self) -> Dict[int, int]:
        """Per-kernel instruction counters (for window measurements)."""
        return {slot: stats.warp_insts
                for slot, stats in self.kernel_stats.items()}

    def run(self, max_cycles: int) -> RunResult:
        """Simulate ``max_cycles`` core cycles and collect results."""
        if max_cycles < 1:
            raise ValueError("max_cycles must be positive")
        # Bind the per-cycle callees to locals: the loop body is pure
        # dispatch, so attribute lookups would be a measurable share.
        memory_tick = self.memory.tick
        sm_ticks = [sm.tick for sm in self.sms]
        start = self.cycles_run
        end = start + max_cycles
        if self.reference:
            obs = self.obs
            if obs is not None and obs.sampler is not None:
                # Sampled reference loop: identical simulation order,
                # plus an end-of-cycle pull-based sample hook and the
                # current-cycle gauge that timestamps the adaptation
                # event log.  Nothing feeds back into the components,
                # so results stay bit-identical to the plain loops.
                sampler_tick = obs.sampler.on_cycle
                for cycle in range(start, end):
                    obs.cycle = cycle
                    memory_tick(cycle)
                    for sm_tick in sm_ticks:
                        sm_tick(cycle)
                    sampler_tick(cycle, self)
                self.cycles_run = end
                return self._collect()
            for cycle in range(start, end):
                memory_tick(cycle)
                for sm_tick in sm_ticks:
                    sm_tick(cycle)
            self.cycles_run = end
            return self._collect()
        # Fast loop with a latency-shadow leap: when every SM is asleep
        # past cycle+1 and the backend queues are drained, nothing can
        # happen until the earliest posted wheel event — jump there
        # directly.  SM sleeps, scheduler wakes, scheduled memory
        # events and DRAM service completions all post their cycles
        # into the wheel, so the leap target is one amortised-O(1)
        # query instead of a scan over every component.  The backend
        # accounts for the leapt cycles in one batch (skip_cycles, a
        # provable no-op replay); each SM's tick catches up its
        # rotation state from the cycle gap.  The sleep scan
        # early-exits on the first awake SM, so saturated phases pay
        # almost nothing for the check.  Stale wheel entries (events
        # that resolved early) at worst wake the engine for one inert
        # tick — exactly what the reference loop would have executed.
        sms = self.sms
        leapable = self.memory.leapable
        skip_cycles = self.memory.skip_cycles
        wheel_next = self.wheel.next_after
        cycle = start
        while cycle < end:
            memory_tick(cycle)
            for sm_tick in sm_ticks:
                sm_tick(cycle)
            nxt = cycle + 1
            for sm in sms:
                if sm._sleep_until <= nxt:
                    break
            else:
                if leapable():
                    target = wheel_next(cycle)
                    if target > end:
                        target = end
                    if target > nxt:
                        skip_cycles(target - nxt)
                        nxt = target
            cycle = nxt
        self.cycles_run = end
        return self._collect()

    def _collect(self) -> RunResult:
        for sm in self.sms:
            # Settle any batched LSU stall accounting and burst-sleep
            # issue accounting before the stats reads below (see
            # LoadStoreUnit._flush_stall_debt and SM._settle_sleep_debt).
            sm.lsu._flush_stall_debt()
            sm._settle_sleep_debt(self.cycles_run)
        cfg = self.config
        cycles = self.cycles_run
        slots = [launch.slot for launch in self.launches]
        accesses = {s: 0 for s in slots}
        hits = {s: 0 for s in slots}
        misses = {s: 0 for s in slots}
        rsfails = {s: 0 for s in slots}
        for l1 in self.memory.l1s:
            for s in slots:
                accesses[s] += l1.stats.accesses.get(s, 0)
                hits[s] += l1.stats.hits.get(s, 0)
                misses[s] += l1.stats.misses.get(s, 0)
                rsfails[s] += l1.stats.rsfails.get(s, 0)
        result = RunResult(
            cycles=cycles,
            kernel_names=[launch.profile.name for launch in self.launches],
            kernels=self.kernel_stats,
            l1d_accesses=accesses,
            l1d_hits=hits,
            l1d_misses=misses,
            l1d_rsfails=rsfails,
            lsu_stall_cycles=sum(sm.lsu.stall_cycles for sm in self.sms),
            lsu_busy_cycles=sum(sm.lsu.busy_cycles for sm in self.sms),
            alu_busy=sum(sm.alu_busy for sm in self.sms),
            sfu_busy=sum(sm.sfu_busy for sm in self.sms),
            alu_slots=cycles * cfg.alu_units * cfg.num_sms,
            sfu_slots=cycles * cfg.sfu_units * cfg.num_sms,
            timeline=self.timeline,
            dram_row_hit_rate=self.memory.dram.row_hit_rate(),
            num_sms=cfg.num_sms,
            l2_accesses=sum(self.memory.l2_stats.accesses.values())
                        + sum(self.memory.l2_stats.writes.values()),
            l2_misses=sum(self.memory.l2_stats.misses.values()),
            dram_accesses=self.memory.dram.total_serviced(),
            icnt_flits=self.memory.icnt.req_flits_sent
                       + self.memory.icnt.rsp_flits_sent,
        )
        if self.obs is not None:
            result.obs = self.obs.report(self)
        return result
