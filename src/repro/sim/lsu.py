"""The Load/Store Unit: the SM's memory pipeline front end.

The LSU holds a short in-order queue of issued memory instructions and
expands the head instruction into its coalesced line requests, one L1D
access per cycle.  When the L1D reports a reservation failure the head
request replays next cycle and the whole pipeline stalls behind it —
including requests from *other* kernels, which is the §2.5 interference
this paper attacks (and why §4.5 notes that partitioning miss
resources alone cannot help: the pipeline is in-order).

Every successful request and every reservation failure is reported to
the scheme bundle (MILG counters, QBMI estimators, UCP shadow tags).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.mem.cache import AccessResult, L1DCache
from repro.mem.subsystem import MemRequest
from repro.sim.warp import MemInst

#: instructions the LSU queue can hold (issue stalls when full).
LSU_QUEUE_DEPTH = 8

_MISSES = (AccessResult.MISS, AccessResult.MISS_MERGED)
_RSFAILS = AccessResult.RSFAILS


class LoadStoreUnit:
    """Per-SM memory pipeline."""

    __slots__ = ("sm_id", "l1", "queue_depth", "width", "queue",
                 "_current_request", "_stall_memo", "use_stall_memo",
                 "_stall_owed", "stall_cycles", "busy_cycles",
                 "bypass_by_kernel", "_obs", "pool", "_inline_stats",
                 "_defer_ok")

    def __init__(self, sm_id: int, l1: L1DCache, queue_depth: int = LSU_QUEUE_DEPTH,
                 width: int = 2):
        if width < 1:
            raise ValueError("width must be >= 1")
        self.sm_id = sm_id
        self.l1 = l1
        self.queue_depth = queue_depth
        self.width = width
        self.queue: Deque[MemInst] = deque()
        self._current_request: Optional[MemRequest] = None
        #: (request-or-slot, l1.version, l1.tags.partition, result,
        #: kernel) of the last reservation failure.  While the head
        #: request, the cache version, and the partition object are all
        #: unchanged, a replay must fail identically — every RSFAIL
        #: path in ``L1DCache.access`` is pure apart from its two stats
        #: bumps — so the lookup can be skipped and only the stats
        #: replayed.  Fast loop only: the reference loop keeps the
        #: plain replay the memo is validated against (the SM clears
        #: the flag).  On the pooled path the first field is the pool
        #: slot id; slot ids are stable while the request stalls (the
        #: memo is cleared before the slot can be recycled).
        self._stall_memo = None
        self.use_stall_memo = True
        #: replayed-stall cycles whose stats bumps are deferred (memo
        #: valid + every per-stall hook inert): the whole stretch is
        #: paid in one batch when the stall breaks (``_flush_stall_debt``)
        #: or at result collection.  Observable state is identical to
        #: per-cycle replay because nothing reads the counters while
        #: the debt is outstanding.
        self._stall_owed = 0
        self.stall_cycles = 0
        self.busy_cycles = 0
        #: kernel -> L1D-bypass verdict, filled in by the owning SM
        #: (the scheme's bypass set is fixed for the whole run).  When
        #: None, fall back to asking the SM's bundle per request.
        self.bypass_by_kernel = None
        #: observability collector (set by the owning SM; None = off).
        self._obs = None
        #: the shared :class:`~repro.mem.pool.RequestPool` when the SM
        #: runs the pooled memory path (``l1`` is then a
        #: ``PooledL1DCache``); None keeps the object path.
        self.pool = None
        #: pooled-path per-run constants resolved by the owning SM:
        #: the kernel-stats dict when the per-request SM hook reduces
        #: to one stats bump (else None), and whether stall replays may
        #: defer their stats (no obs, inert hooks).
        self._inline_stats = None
        self._defer_ok = False

    def can_accept(self) -> bool:
        return len(self.queue) < self.queue_depth

    def _flush_stall_debt(self) -> None:
        """Settle deferred stall replays: pay the owed stats bumps and
        stall cycles for the memoised verdict in one batch.  Must run
        before anything reads ``stall_cycles`` or the L1 stats (the
        engine's result collection does) and whenever the memo's
        premise breaks."""
        owed = self._stall_owed
        if not owed:
            return
        self._stall_owed = 0
        memo = self._stall_memo
        result = memo[3]
        kernel = memo[4]
        stats = self.l1.stats
        stats.rsfails[kernel] += owed
        stats.rsfail_reasons[result] += owed
        self.stall_cycles += owed

    def enqueue(self, inst: MemInst) -> None:
        if not self.can_accept():
            raise RuntimeError("LSU queue full")
        self.queue.append(inst)

    def tick(self, cycle: int, sm) -> None:
        """Process up to ``width`` L1D requests this cycle, in order.

        A reservation failure stalls the pipeline for the rest of the
        cycle (one failure counted per stalled cycle, as a hardware
        replay would)."""
        if self.pool is not None:
            return self._tick_pooled(cycle, sm)
        queue = self.queue
        if not queue:
            return
        l1 = self.l1
        l1_access = l1.access
        rsfails = _RSFAILS
        bypass_map = self.bypass_by_kernel
        obs = self._obs
        on_request_issued = sm.on_request_issued
        # With every scheme hook inert and no timeline, the SM's
        # on_request_issued reduces to one stats bump — inline it.
        # (getattr: unit-test fakes advertise inert hooks without
        # carrying the timeline attribute.)
        if sm._mem_hooks_inert and getattr(sm, "timeline", None) is None:
            kernel_stats = sm.kernel_stats
        else:
            kernel_stats = None
        busy = False
        for _ in range(self.width):
            if not queue:
                break
            inst = queue[0]
            request = self._current_request
            if request is None:
                is_store = inst.is_store
                if is_store:
                    bypass = False
                elif bypass_map is not None:
                    bypass = bypass_map[inst.kernel]
                else:
                    bypass = sm.bundle.bypasses_l1d(inst.kernel)
                request = MemRequest(
                    inst.lines[inst.next_idx],
                    inst.kernel,
                    self.sm_id,
                    is_store,
                    None if is_store else inst,
                    cycle,
                    bypass,
                )
                self._current_request = request
                if obs is not None:
                    obs.mem_request_created(request, cycle)

            memo = self._stall_memo
            if memo is not None:
                if (memo[0] is request and memo[1] == l1.version
                        and memo[2] is l1.tags.partition):
                    # Nothing a failing lookup depends on changed since
                    # the last replay: replay the verdict and its stats
                    # bumps without walking the cache.  When every
                    # per-stall hook is inert (baseline schemes, no
                    # observability) even the bumps are deferred — the
                    # owed count is settled when the stall breaks.
                    if obs is None and sm._mem_hooks_inert:
                        self._stall_owed += 1
                        return
                    result = memo[3]
                    stats = l1.stats
                    stats.rsfails[request.kernel] += 1
                    stats.rsfail_reasons[result] += 1
                else:
                    if self._stall_owed:
                        self._flush_stall_debt()
                    result = l1_access(request, cycle)
            else:
                result = l1_access(request, cycle)
            if result in rsfails:
                # Memory pipeline stall: replay the request next cycle.
                if self.use_stall_memo:
                    self._stall_memo = (request, l1.version,
                                        l1.tags.partition, result,
                                        request.kernel)
                self.stall_cycles += 1
                sm.on_rsfail(request.kernel, cycle)
                if obs is not None:
                    obs.lsu_rsfail(self.sm_id, request.kernel,
                                   result, cycle)
                return

            busy = True
            self._stall_memo = None
            self._current_request = None
            # Inlined MemInst.note_request_sent + maybe_complete: one
            # request accepted, and the instruction leaves the queue
            # (completing unless fills are still owed) once its last
            # line went out.
            next_idx = inst.next_idx + 1
            inst.next_idx = next_idx
            if not inst.is_store and result in _MISSES:
                inst.pending += 1
            if kernel_stats is not None:
                kernel_stats[request.kernel].mem_requests += 1
            else:
                on_request_issued(request, result, cycle)
            if obs is not None:
                obs.mem_request_l1(request, result, cycle)
            if next_idx >= len(inst.lines):
                queue.popleft()
                if not (inst._completed or inst.pending):
                    inst._completed = True
                    inst.on_complete(inst, cycle)
        if busy:
            self.busy_cycles += 1

    def _tick_pooled(self, cycle: int, sm) -> None:
        """:meth:`tick` on the struct-of-arrays path: requests are pool
        slots, the head request's scalars ride in ``_current_request``
        as ``(slot, line, kernel, is_store, bypass)``, and the L1 is a
        :class:`~repro.mem.cache.PooledL1DCache`.  Control flow, stats
        order, the stall memo and the deferral trick mirror the object
        path exactly (bit-identity is asserted in the perf suite and
        tests/test_pooled_identity.py)."""
        queue = self.queue
        if not queue:
            return
        l1 = self.l1
        memo = self._stall_memo
        if memo is not None:
            # Stalled-head fast-out: in a long memory-pipeline stall
            # this is the per-cycle common case, so the deferral check
            # runs before any of the loop bindings below.
            current = self._current_request
            if (current is not None and memo[0] == current[0]
                    and self._defer_ok and memo[1] == l1.version
                    and memo[2] is l1.tags.partition):
                self._stall_owed += 1
                return
        pool = self.pool
        access_slot = l1.access_slot
        rsfails = _RSFAILS
        hit = AccessResult.HIT
        bypass_map = self.bypass_by_kernel
        obs = self._obs
        # Same inert-hook stats inlining as the object path, resolved
        # once per run by the owning SM instead of per tick.
        kernel_stats = self._inline_stats
        busy = False
        current = self._current_request
        for _ in range(self.width):
            if not queue:
                break
            inst = queue[0]
            if current is None:
                is_store = inst.is_store
                if is_store:
                    bypass = False
                elif bypass_map is not None:
                    bypass = bypass_map[inst.kernel]
                else:
                    bypass = sm.bundle.bypasses_l1d(inst.kernel)
                line = inst.lines[inst.next_idx]
                kernel = inst.kernel
                slot = pool.alloc(line, kernel, self.sm_id, is_store,
                                  None if is_store else inst, cycle, bypass)
                current = (slot, line, kernel, is_store, bypass)
                self._current_request = current
                if obs is not None:
                    obs.mem_request_created(pool.view(slot), cycle)
            else:
                slot, line, kernel, is_store, bypass = current

            memo = self._stall_memo
            if memo is not None:
                if (memo[0] == slot and memo[1] == l1.version
                        and memo[2] is l1.tags.partition):
                    # Same replay-verdict memo as the object path; the
                    # slot id substitutes for the request identity (it
                    # cannot be recycled while the stall holds it).
                    if self._defer_ok:
                        self._stall_owed += 1
                        return
                    result = memo[3]
                    stats = l1.stats
                    stats.rsfails[kernel] += 1
                    stats.rsfail_reasons[result] += 1
                else:
                    if self._stall_owed:
                        self._flush_stall_debt()
                    result = access_slot(slot, line, kernel, is_store,
                                         bypass)
            else:
                result = access_slot(slot, line, kernel, is_store, bypass)
            if result in rsfails:
                # Memory pipeline stall: replay the request next cycle.
                if self.use_stall_memo:
                    self._stall_memo = (slot, l1.version,
                                        l1.tags.partition, result, kernel)
                self.stall_cycles += 1
                sm.on_rsfail(kernel, cycle)
                if obs is not None:
                    obs.lsu_rsfail(self.sm_id, kernel, result, cycle)
                return

            busy = True
            self._stall_memo = None
            self._current_request = None
            current = None
            next_idx = inst.next_idx + 1
            inst.next_idx = next_idx
            if not is_store and result in _MISSES:
                inst.pending += 1
            if kernel_stats is not None:
                kernel_stats[kernel].mem_requests += 1
            else:
                sm.on_request_issued_values(kernel, line, is_store, result,
                                            cycle)
            if obs is not None:
                obs.mem_request_l1(pool.view(slot), result, cycle)
            if result is hit:
                # A hit's lifetime ends here: the slot never travels.
                pool.free(slot)
            if next_idx >= len(inst.lines):
                queue.popleft()
                if not (inst._completed or inst.pending):
                    inst._completed = True
                    inst.on_complete(inst, cycle)
        if busy:
            self.busy_cycles += 1
