"""Warp schedulers: Greedy-Then-Oldest and Loose Round-Robin.

Each SM has ``schedulers_per_sm`` schedulers, each owning a disjoint
subset of the SM's warps.  Per cycle a scheduler selects at most one
issuable warp:

* **GTO** (Table 1 default): keep issuing from the most recently
  issued warp; when it cannot issue, fall back to the oldest issuable
  warp (launch order).
* **LRR** (§4.3 sensitivity): rotate a start pointer and take the
  first issuable warp after it.

Selection returns both the scheduler's primary pick and — when the
primary pick is a memory instruction — a *fallback* compute warp, so
the SM can still issue useful work when the LSU arbiter awards the
single memory-issue slot to another scheduler.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.sim.warp import Warp
from repro.workloads.kernel import OP_ALU, OP_LOAD, OP_SFU, OP_STORE


class Selection:
    """Outcome of one scheduler's selection phase."""

    __slots__ = ("warp", "op", "fallback", "fallback_op")

    def __init__(self, warp: Warp, op: str,
                 fallback: Optional[Warp] = None,
                 fallback_op: Optional[str] = None):
        self.warp = warp
        self.op = op
        self.fallback = fallback
        self.fallback_op = fallback_op

    @property
    def is_mem(self) -> bool:
        return self.op in (OP_LOAD, OP_STORE)


class WarpScheduler:
    """One warp scheduler and the warps it owns."""

    def __init__(self, sched_id: int, policy: str):
        if policy not in ("gto", "lrr"):
            raise ValueError(f"unknown scheduler policy {policy!r}")
        self.sched_id = sched_id
        self.policy = policy
        self.warps: List[Warp] = []
        self._greedy: Optional[Warp] = None
        self._lrr_pos = 0

    # ------------------------------------------------------------------
    def add_warp(self, warp: Warp) -> None:
        self.warps.append(warp)

    def remove_warp(self, warp: Warp) -> None:
        self.warps.remove(warp)
        if self._greedy is warp:
            self._greedy = None

    def note_issued(self, warp: Warp) -> None:
        """Record the issuing warp (updates GTO greediness)."""
        self._greedy = warp

    # ------------------------------------------------------------------
    def _priority_order(self) -> List[Warp]:
        if self.policy == "gto":
            ordered = sorted(self.warps, key=lambda w: w.age)
            greedy = self._greedy
            if greedy is not None and greedy in self.warps:
                ordered.remove(greedy)
                ordered.insert(0, greedy)
            return ordered
        # LRR: rotate the start position each call.
        n = len(self.warps)
        if not n:
            return []
        start = self._lrr_pos % n
        self._lrr_pos += 1
        return self.warps[start:] + self.warps[:start]

    def select(self, cycle: int,
               mem_ok: Callable[[Warp, str], bool],
               compute_ok: Callable[[str], bool],
               warp_gated: Callable[[Warp], bool] = lambda w: True,
               ) -> Optional[Selection]:
        """Pick this scheduler's issue candidate for ``cycle``.

        ``mem_ok(warp, op)`` tells whether a memory instruction from
        that warp's kernel may issue this cycle (LSU space, MIL limit);
        ``compute_ok(op)`` tells whether the relevant execution port is
        free; ``warp_gated`` applies kernel-wide issue gates (SMK's
        warp-instruction quota).

        The first issuable warp in priority order wins.  Warps whose
        memory instruction is gated (``mem_ok`` False) are skipped —
        the scheduler moves on to other warps rather than wasting the
        slot, which is how MIL frees issue bandwidth for compute.
        """
        primary: Optional[Tuple[Warp, str]] = None
        fallback: Optional[Tuple[Warp, str]] = None
        for warp in self._priority_order():
            if not warp.issuable(cycle):
                continue
            if not warp_gated(warp):
                continue
            op = warp.stream.peek()
            if op is None:
                continue
            if op in (OP_ALU, OP_SFU):
                if not compute_ok(op):
                    continue
                if primary is None:
                    return Selection(warp, op)
                # primary is a mem candidate; this is its fallback.
                fallback = (warp, op)
                break
            # memory instruction
            if not mem_ok(warp, op):
                continue
            if primary is None:
                primary = (warp, op)
                # keep scanning for a compute fallback
        if primary is None:
            return None
        warp, op = primary
        if fallback is not None:
            return Selection(warp, op, fallback[0], fallback[1])
        return Selection(warp, op)
