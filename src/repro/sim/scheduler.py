"""Warp schedulers: Greedy-Then-Oldest and Loose Round-Robin.

Each SM has ``schedulers_per_sm`` schedulers, each owning a disjoint
subset of the SM's warps.  Per cycle a scheduler selects at most one
issuable warp:

* **GTO** (Table 1 default): keep issuing from the most recently
  issued warp; when it cannot issue, fall back to the oldest issuable
  warp (launch order).
* **LRR** (§4.3 sensitivity): rotate a start pointer and take the
  first issuable warp after it.

Selection returns both the scheduler's primary pick and — when the
primary pick is a memory instruction — a *fallback* compute warp, so
the SM can still issue useful work when the LSU arbiter awards the
single memory-issue slot to another scheduler.

Hot-loop design (the selection loop dominates whole-simulation cost):

* the owned-warp list is kept sorted by age at insertion time, so GTO
  never sorts inside :meth:`select`; the GTO priority order (greedy
  warp first, then oldest-first) is cached and only rebuilt when
  membership or the greedy warp changes;
* LRR rotation reuses one scratch buffer instead of slicing two new
  lists per cycle;
* a *next-wake* hint skips selection outright while every owned warp
  is provably unissuable (blocked on latency): when a scan finds no
  warp with ``ready_at <= cycle``, the scheduler sleeps until the
  earliest ``ready_at``; warps blocked on MLP (a full complement of
  outstanding loads) wake the scheduler through :meth:`wake_at` when a
  load returns.  The hint only ever skips cycles whose selection would
  provably return ``None``, so simulated behaviour is bit-identical;
  construct with ``fastpath=False`` to force the reference scan every
  cycle (used by the perf suite's equivalence checks).
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, List, Optional

from repro.sim.warp import Warp
from repro.workloads.kernel import OP_ALU, OP_SFU

#: sentinel wake-up cycle for "no warp can wake without an event".
NEVER = (1 << 62)


class Selection:
    """Outcome of one scheduler's selection phase."""

    __slots__ = ("warp", "op", "fallback", "fallback_op", "is_mem")

    def __init__(self, warp: Warp, op: str,
                 fallback: Optional[Warp] = None,
                 fallback_op: Optional[str] = None):
        self.warp = warp
        self.op = op
        self.fallback = fallback
        self.fallback_op = fallback_op
        self.is_mem = not (op is OP_ALU or op is OP_SFU)


class WarpScheduler:
    """One warp scheduler and the warps it owns."""

    __slots__ = ("sched_id", "policy", "warps", "sm", "_greedy", "_lrr_pos",
                 "_is_lrr", "_fastpath", "_next_wake", "_gto_order",
                 "_gto_dirty", "_rot_buf", "_sel", "_auto_warp",
                 "_auto_left", "_auto_stats", "_mem_stalled", "_mem_wake",
                 "_scan")

    def __init__(self, sched_id: int, policy: str, fastpath: bool = True):
        if policy not in ("gto", "lrr"):
            raise ValueError(f"unknown scheduler policy {policy!r}")
        self.sched_id = sched_id
        self.policy = policy
        self.warps: List[Warp] = []
        #: owning SM (set by the SM; None for standalone schedulers).
        #: Wake events propagate here so a sleeping SM resumes ticking.
        self.sm = None
        self._greedy: Optional[Warp] = None
        self._lrr_pos = 0
        self._is_lrr = policy == "lrr"
        self._fastpath = fastpath
        #: earliest cycle at which select() could possibly pick a warp;
        #: 0 forces a scan (used whenever membership changes).
        self._next_wake = 0
        self._gto_order: List[Warp] = []
        self._gto_dirty = True
        self._rot_buf: List[Warp] = []
        #: reusable Selection for the fast path: one live selection per
        #: scheduler per cycle, consumed by the SM before the next call.
        self._sel: Selection = Selection.__new__(Selection)
        #: issue autopilot (fast path, GTO only): after a compute issue
        #: the issuing warp is the greedy warp, and while its stream
        #: head is a run of ALU ops every per-cycle selection provably
        #: re-picks it (greedy is priority[0]; ALU has no port limit;
        #: ready_at advances by 1; outstanding loads only decrease).
        #: The SM burns the run down without calling select() at all.
        self._auto_warp: Optional[Warp] = None
        self._auto_left = 0
        #: the burst warp's KernelStats, cached at arming so each burst
        #: pop skips the per-kernel stats lookup.
        self._auto_stats = None
        #: scan list (GTO fast path): the age-sorted subset of ``warps``
        #: that selection could possibly pick — everything except warps
        #: blocked on the MLP cap (a full complement of outstanding
        #: loads) or drained (stream exhausted, awaiting retirement).
        #: Those two states change only at explicit events (a load
        #: issue, a load return, a stream-emptying pop), so the SM's
        #: issue/completion paths maintain membership exactly via
        #: :meth:`scan_block`/:meth:`scan_unblock` and the hot scan
        #: skips permanently-ineligible warps without touching them.
        #: The reference scan (:meth:`_select_reference`) and LRR keep
        #: iterating ``warps`` — the list this one is proven against.
        self._scan: List[Warp] = []
        #: memory-pipeline-stall memo (fast path, ungated runs): set
        #: when a scan under ``mem_ok=None`` (LSU full) found ready
        #: warps but every one of them holds a memory instruction —
        #: the paper's signature stall.  The verdict cannot change
        #: while the LSU stays full, until ``_mem_wake`` (the earliest
        #: ready_at of a latency-blocked warp, whose head may be
        #: compute) or an invalidating event: an issue (note_issued),
        #: a load return (wake_at), or a membership change.  The SM
        #: skips select() outright while the memo holds.
        self._mem_stalled = False
        self._mem_wake = 0

    # ------------------------------------------------------------------
    def add_warp(self, warp: Warp) -> None:
        # Keep the list age-sorted (launch order); the SM hands warps
        # out with monotonically increasing ages, so this is an append
        # in practice, but insort keeps manual test setups correct too.
        insort(self.warps, warp, key=_age_of)
        # A fresh warp has no outstanding loads and a non-empty stream:
        # always scannable.
        insort(self._scan, warp, key=_age_of)
        warp.sched = self
        self._gto_dirty = True
        self._next_wake = 0
        self._mem_stalled = False
        sm = self.sm
        if sm is not None:
            sm._sleep_until = 0

    def remove_warp(self, warp: Warp) -> None:
        self.warps.remove(warp)
        scan = self._scan
        if warp in scan:
            scan.remove(warp)
        warp.sched = None
        self._mem_stalled = False
        if self._greedy is warp:
            self._greedy = None
        if self._auto_warp is warp:
            # Cannot fire mid-burst in the simulator (a warp with ALU
            # ops left never retires), but manual test setups may.
            self._auto_warp = None
            self._auto_left = 0
        self._gto_dirty = True

    def scan_block(self, warp: Warp) -> None:
        """``warp`` became provably unscannable (MLP-capped or drained):
        drop it from the scan list until :meth:`scan_unblock`.  The
        caller guarantees the warp was scannable (it just issued).

        A clean GTO order is patched in place rather than marked dirty:
        the order invariant (the greedy warp first when present, the
        rest age-sorted) survives removing any one element, so a full
        rebuild on the next select() would produce exactly this list."""
        self._scan.remove(warp)
        if self._gto_dirty:
            return
        self._gto_order.remove(warp)

    def scan_unblock(self, warp: Warp) -> None:
        """A load return dropped ``warp`` below its MLP cap: restore it
        to the scan list (the caller guarantees it was blocked and its
        stream has work left).  Like :meth:`scan_block`, a clean GTO
        order is patched in place: the returning warp goes to the front
        if it is the greedy warp (rebuilds always front the greedy warp
        regardless of age), else into the age-sorted tail."""
        insort(self._scan, warp, key=_age_of)
        if self._gto_dirty:
            return
        order = self._gto_order
        if warp is self._greedy:
            order.insert(0, warp)
            return
        lo = 1 if (order and order[0] is self._greedy) else 0
        hi = len(order)
        age = warp.age
        while lo < hi:
            mid = (lo + hi) >> 1
            if order[mid].age < age:
                lo = mid + 1
            else:
                hi = mid
        order.insert(lo, warp)

    def note_issued(self, warp: Warp) -> None:
        """Record the issuing warp (updates GTO greediness).

        Any issue invalidates the memory-stall memo: the issued
        instruction changes its warp's head op, so a later LSU-full
        scan must re-derive the all-heads-are-memory verdict."""
        self._mem_stalled = False
        if self._greedy is not warp:
            self._greedy = warp
            self._gto_dirty = True

    def wake_at(self, cycle: int) -> None:
        """An external event (a load return) made a warp potentially
        issuable at ``cycle``: lower the sleep hint accordingly, the
        owning SM's whole-tick sleep with it, and post the new wake to
        the engine's event wheel so the cycle leap sees it."""
        # A load return can un-block an MLP-capped warp (or retire a
        # drained one): the memory-stall memo's premise is gone.
        self._mem_stalled = False
        if cycle < self._next_wake:
            self._next_wake = cycle
        sm = self.sm
        if sm is not None and cycle < sm._sleep_until:
            sm._sleep_until = cycle
            wheel = sm._wheel
            if wheel is not None:
                wheel.post(cycle)

    # ------------------------------------------------------------------
    def _priority_order(self) -> List[Warp]:
        """Warps in this cycle's selection priority, computed from
        scratch (the reference loop's path; the fast path consumes the
        same orders from cached structures without re-sorting)."""
        if not self._is_lrr:
            ordered = sorted(self.warps, key=_age_of)
            greedy = self._greedy
            if greedy is not None and greedy in self.warps:
                ordered.remove(greedy)
                ordered.insert(0, greedy)
            return ordered
        # LRR: rotate the start position each call.
        n = len(self.warps)
        if not n:
            return []
        start = self._lrr_pos % n
        self._lrr_pos += 1
        return self.warps[start:] + self.warps[:start]

    def _rebuild_gto_order(self) -> None:
        # C-level copy + remove/insert: greedy changes on most issues in
        # memory-bound phases, so rebuild cost is on the hot path.  The
        # order is built from the scan list — MLP-blocked and drained
        # warps would be skipped by the scan anyway (and stay fully
        # visible to the reference path via ``warps``).
        order = self._gto_order
        order[:] = self._scan
        greedy = self._greedy
        if greedy is not None and greedy in order:
            order.remove(greedy)
            order.insert(0, greedy)
        self._gto_dirty = False

    def select(self, cycle: int,
               mem_ok: Optional[Callable[[Warp, str], bool]],
               compute_ok: Optional[Callable[[str], bool]],
               warp_gated: Optional[Callable[[Warp], bool]] = None,
               ) -> Optional[Selection]:
        """Pick this scheduler's issue candidate for ``cycle``.

        ``mem_ok(warp, op)`` tells whether a memory instruction from
        that warp's kernel may issue this cycle (LSU space, MIL limit);
        ``compute_ok(op)`` tells whether the relevant execution port is
        free; ``warp_gated`` applies kernel-wide issue gates (SMK's
        warp-instruction quota) — ``None`` means ungated.  All three
        must be side-effect-free: the scheduler calls them only for
        candidates that matter.

        The fast path accepts three extra sentinels that let the SM
        pre-resolve per-cycle verdicts: ``mem_ok=None`` means *no*
        memory instruction can issue this cycle (LSU full — the common
        memory-pipeline-stall case this paper studies), ``mem_ok=True``
        means *every* kernel's memory instructions may issue (LSU free,
        no gate, unlimited MIL — the common baseline case), and
        ``compute_ok=None`` means *every* compute port is available.
        All produce exactly the verdicts the callbacks would.

        The first issuable warp in priority order wins.  Warps whose
        memory instruction is gated (``mem_ok`` False) are skipped —
        the scheduler moves on to other warps rather than wasting the
        slot, which is how MIL frees issue bandwidth for compute.

        The returned :class:`Selection` is a per-scheduler scratch
        object, valid until this scheduler's next ``select`` call.
        """
        if not self._fastpath:
            return self._select_reference(cycle, mem_ok, compute_ok,
                                          warp_gated)
        warps = self.warps
        if cycle < self._next_wake:
            # Every warp is blocked on latency until _next_wake: the
            # scan below would return None.  Keep LRR's per-call
            # rotation exactly as the full scan would have (it only
            # advances while the scheduler owns warps).
            if self._is_lrr and warps:
                self._lrr_pos += 1
            return None
        n = len(warps)
        if not n:
            # Nothing to schedule until a warp is added (add_warp
            # resets the hint and wakes the SM).
            self._next_wake = NEVER
            return None

        if self._is_lrr:
            order = self._rot_buf
            order.clear()
            start = self._lrr_pos % n
            self._lrr_pos += 1
            order.extend(warps[start:])
            order.extend(warps[:start])
        else:
            if self._gto_dirty:
                self._rebuild_gto_order()
            order = self._gto_order

        primary_warp: Optional[Warp] = None
        primary_op: Optional[str] = None
        any_ready = False
        wake = NEVER
        alu = OP_ALU
        sfu = OP_SFU
        for warp in order:
            # Inlined Warp.issuable(cycle), tracking the earliest cycle
            # a latency-blocked warp becomes ready.
            if warp.outstanding_loads >= warp.mlp:
                continue  # MLP-blocked: woken by wake_at on load return
            op = warp.stream.next_op
            if op is None:
                continue  # stream drained, warp awaiting retirement
            ready_at = warp.ready_at
            if ready_at > cycle:
                if ready_at < wake:
                    wake = ready_at
                continue
            any_ready = True
            if warp_gated is not None and not warp_gated(warp):
                continue
            if op is alu or op is sfu:
                if compute_ok is not None and not compute_ok(op):
                    continue
                sel = self._sel
                if primary_warp is None:
                    sel.warp = warp
                    sel.op = op
                    sel.fallback = None
                    sel.fallback_op = None
                    sel.is_mem = False
                    return sel
                # primary is a mem candidate; this is its fallback.
                sel.warp = primary_warp
                sel.op = primary_op
                sel.fallback = warp
                sel.fallback_op = op
                sel.is_mem = True
                return sel
            # memory instruction
            if (mem_ok is not None and primary_warp is None
                    and (mem_ok is True or mem_ok(warp, op))):
                primary_warp = warp
                primary_op = op
                # keep scanning for a compute fallback
        if primary_warp is None:
            if not any_ready:
                # Nothing was even latency-ready: sleep until the
                # earliest ready_at (or an external wake_at event).
                self._next_wake = wake
            elif mem_ok is None and compute_ok is None and warp_gated is None:
                # Ready warps exist but none issued, the LSU is full
                # and no port/gate was limiting: every ready warp holds
                # a memory instruction.  That verdict is frozen while
                # the LSU stays full — until a latency-blocked warp
                # (possibly compute-headed) becomes ready at ``wake``,
                # or an invalidating event clears the memo.
                self._mem_stalled = True
                self._mem_wake = wake
            return None
        sel = self._sel
        sel.warp = primary_warp
        sel.op = primary_op
        sel.fallback = None
        sel.fallback_op = None
        sel.is_mem = True
        return sel

    def first_ready(self, cycle: int):
        """Pure introspection for stall attribution (observability).

        Returns ``(warp, op, status)`` for the highest-priority warp
        with work this cycle, where ``status`` is ``"ready"`` (warp is
        latency-ready: the warp the hardware would have issued),
        ``"blocked"`` (warps have work but all are scoreboard-blocked
        on latency or the MLP cap), or ``"empty"`` (no owned warp has
        work left; warp/op are ``None``).

        Unlike :meth:`_priority_order` this never mutates scheduler
        state: it reconstructs the priority order the preceding
        ``select`` call used this cycle (for LRR, ``select`` already
        advanced the rotation, hence the ``- 1``).
        """
        warps = self.warps
        n = len(warps)
        if not n:
            return None, None, "empty"
        if self._is_lrr:
            start = (self._lrr_pos - 1) % n
            order = warps[start:] + warps[:start]
        else:
            order = sorted(warps, key=_age_of)
            greedy = self._greedy
            if greedy is not None and greedy in warps:
                order.remove(greedy)
                order.insert(0, greedy)
        blocked = None
        blocked_op = None
        for warp in order:
            op = warp.stream.next_op
            if op is None:
                continue
            if warp.ready_at <= cycle and warp.outstanding_loads < warp.mlp:
                return warp, op, "ready"
            if blocked is None:
                blocked = warp
                blocked_op = op
        if blocked is None:
            return None, None, "empty"
        return blocked, blocked_op, "blocked"

    def _select_reference(self, cycle: int,
                          mem_ok: Callable[[Warp, str], bool],
                          compute_ok: Callable[[str], bool],
                          warp_gated: Optional[Callable[[Warp], bool]],
                          ) -> Optional[Selection]:
        """Straightforward per-cycle scan (no caching, no sleep hints);
        the baseline the perf suite measures fast paths against, and
        the oracle the equivalence tests compare them to."""
        primary: Optional[Warp] = None
        primary_op: Optional[str] = None
        for warp in self._priority_order():
            if not warp.issuable(cycle):
                continue
            if warp_gated is not None and not warp_gated(warp):
                continue
            op = warp.stream.peek()
            if op in (OP_ALU, OP_SFU):
                if not compute_ok(op):
                    continue
                if primary is None:
                    return Selection(warp, op)
                # primary is a mem candidate; this is its fallback.
                return Selection(primary, primary_op, warp, op)
            # memory instruction
            if primary is None and mem_ok(warp, op):
                primary = warp
                primary_op = op
                # keep scanning for a compute fallback
        if primary is None:
            return None
        return Selection(primary, primary_op)


def _age_of(warp: Warp) -> int:
    return warp.age
