"""Warp schedulers: Greedy-Then-Oldest and Loose Round-Robin.

Each SM has ``schedulers_per_sm`` schedulers, each owning a disjoint
subset of the SM's warps.  Per cycle a scheduler selects at most one
issuable warp:

* **GTO** (Table 1 default): keep issuing from the most recently
  issued warp; when it cannot issue, fall back to the oldest issuable
  warp (launch order).
* **LRR** (§4.3 sensitivity): rotate a start pointer and take the
  first issuable warp after it.

Selection returns both the scheduler's primary pick and — when the
primary pick is a memory instruction — a *fallback* compute warp, so
the SM can still issue useful work when the LSU arbiter awards the
single memory-issue slot to another scheduler.

Hot-loop design (the selection loop dominates whole-simulation cost):

* the owned-warp list is kept sorted by age at insertion time, so GTO
  never sorts inside :meth:`select`; the GTO priority order (greedy
  warp first, then oldest-first) is cached and only rebuilt when
  membership or the greedy warp changes;
* LRR rotation reuses one scratch buffer instead of slicing two new
  lists per cycle;
* a *next-wake* hint skips selection outright while every owned warp
  is provably unissuable (blocked on latency): when a scan finds no
  warp with ``ready_at <= cycle``, the scheduler sleeps until the
  earliest ``ready_at``; warps blocked on MLP (a full complement of
  outstanding loads) wake the scheduler through :meth:`wake_at` when a
  load returns.  The hint only ever skips cycles whose selection would
  provably return ``None``, so simulated behaviour is bit-identical;
  construct with ``fastpath=False`` to force the reference scan every
  cycle (used by the perf suite's equivalence checks).
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, List, Optional

from repro.sim.warp import Warp
from repro.workloads.kernel import OP_ALU, OP_SFU

#: sentinel wake-up cycle for "no warp can wake without an event".
NEVER = (1 << 62)


class Selection:
    """Outcome of one scheduler's selection phase."""

    __slots__ = ("warp", "op", "fallback", "fallback_op", "is_mem")

    def __init__(self, warp: Warp, op: str,
                 fallback: Optional[Warp] = None,
                 fallback_op: Optional[str] = None):
        self.warp = warp
        self.op = op
        self.fallback = fallback
        self.fallback_op = fallback_op
        self.is_mem = not (op is OP_ALU or op is OP_SFU)


class WarpScheduler:
    """One warp scheduler and the warps it owns."""

    __slots__ = ("sched_id", "policy", "warps", "sm", "_greedy", "_lrr_pos",
                 "_is_lrr", "_fastpath", "_next_wake", "_gto_order",
                 "_gto_dirty", "_rot_buf", "_sel")

    def __init__(self, sched_id: int, policy: str, fastpath: bool = True):
        if policy not in ("gto", "lrr"):
            raise ValueError(f"unknown scheduler policy {policy!r}")
        self.sched_id = sched_id
        self.policy = policy
        self.warps: List[Warp] = []
        #: owning SM (set by the SM; None for standalone schedulers).
        #: Wake events propagate here so a sleeping SM resumes ticking.
        self.sm = None
        self._greedy: Optional[Warp] = None
        self._lrr_pos = 0
        self._is_lrr = policy == "lrr"
        self._fastpath = fastpath
        #: earliest cycle at which select() could possibly pick a warp;
        #: 0 forces a scan (used whenever membership changes).
        self._next_wake = 0
        self._gto_order: List[Warp] = []
        self._gto_dirty = True
        self._rot_buf: List[Warp] = []
        #: reusable Selection for the fast path: one live selection per
        #: scheduler per cycle, consumed by the SM before the next call.
        self._sel: Selection = Selection.__new__(Selection)

    # ------------------------------------------------------------------
    def add_warp(self, warp: Warp) -> None:
        # Keep the list age-sorted (launch order); the SM hands warps
        # out with monotonically increasing ages, so this is an append
        # in practice, but insort keeps manual test setups correct too.
        insort(self.warps, warp, key=_age_of)
        warp.sched = self
        self._gto_dirty = True
        self._next_wake = 0
        sm = self.sm
        if sm is not None:
            sm._sleep_until = 0

    def remove_warp(self, warp: Warp) -> None:
        self.warps.remove(warp)
        warp.sched = None
        if self._greedy is warp:
            self._greedy = None
        self._gto_dirty = True

    def note_issued(self, warp: Warp) -> None:
        """Record the issuing warp (updates GTO greediness)."""
        if self._greedy is not warp:
            self._greedy = warp
            self._gto_dirty = True

    def wake_at(self, cycle: int) -> None:
        """An external event (a load return) made a warp potentially
        issuable at ``cycle``: lower the sleep hint accordingly, and
        the owning SM's whole-tick sleep with it."""
        if cycle < self._next_wake:
            self._next_wake = cycle
        sm = self.sm
        if sm is not None and cycle < sm._sleep_until:
            sm._sleep_until = cycle

    # ------------------------------------------------------------------
    def _priority_order(self) -> List[Warp]:
        """Warps in this cycle's selection priority, computed from
        scratch (the reference loop's path; the fast path consumes the
        same orders from cached structures without re-sorting)."""
        if not self._is_lrr:
            ordered = sorted(self.warps, key=_age_of)
            greedy = self._greedy
            if greedy is not None and greedy in self.warps:
                ordered.remove(greedy)
                ordered.insert(0, greedy)
            return ordered
        # LRR: rotate the start position each call.
        n = len(self.warps)
        if not n:
            return []
        start = self._lrr_pos % n
        self._lrr_pos += 1
        return self.warps[start:] + self.warps[:start]

    def _rebuild_gto_order(self) -> None:
        # C-level copy + remove/insert: greedy changes on most issues in
        # memory-bound phases, so rebuild cost is on the hot path.
        order = self._gto_order
        order[:] = self.warps
        greedy = self._greedy
        if greedy is not None:
            order.remove(greedy)
            order.insert(0, greedy)
        self._gto_dirty = False

    def select(self, cycle: int,
               mem_ok: Optional[Callable[[Warp, str], bool]],
               compute_ok: Optional[Callable[[str], bool]],
               warp_gated: Optional[Callable[[Warp], bool]] = None,
               ) -> Optional[Selection]:
        """Pick this scheduler's issue candidate for ``cycle``.

        ``mem_ok(warp, op)`` tells whether a memory instruction from
        that warp's kernel may issue this cycle (LSU space, MIL limit);
        ``compute_ok(op)`` tells whether the relevant execution port is
        free; ``warp_gated`` applies kernel-wide issue gates (SMK's
        warp-instruction quota) — ``None`` means ungated.  All three
        must be side-effect-free: the scheduler calls them only for
        candidates that matter.

        The fast path accepts two extra sentinels that let the SM
        pre-resolve per-cycle verdicts: ``mem_ok=None`` means *no*
        memory instruction can issue this cycle (LSU full — the common
        memory-pipeline-stall case this paper studies), and
        ``compute_ok=None`` means *every* compute port is available.
        Both produce exactly the skips the callbacks would.

        The first issuable warp in priority order wins.  Warps whose
        memory instruction is gated (``mem_ok`` False) are skipped —
        the scheduler moves on to other warps rather than wasting the
        slot, which is how MIL frees issue bandwidth for compute.

        The returned :class:`Selection` is a per-scheduler scratch
        object, valid until this scheduler's next ``select`` call.
        """
        if not self._fastpath:
            return self._select_reference(cycle, mem_ok, compute_ok,
                                          warp_gated)
        warps = self.warps
        if cycle < self._next_wake:
            # Every warp is blocked on latency until _next_wake: the
            # scan below would return None.  Keep LRR's per-call
            # rotation exactly as the full scan would have (it only
            # advances while the scheduler owns warps).
            if self._is_lrr and warps:
                self._lrr_pos += 1
            return None
        n = len(warps)
        if not n:
            # Nothing to schedule until a warp is added (add_warp
            # resets the hint and wakes the SM).
            self._next_wake = NEVER
            return None

        if self._is_lrr:
            order = self._rot_buf
            order.clear()
            start = self._lrr_pos % n
            self._lrr_pos += 1
            order.extend(warps[start:])
            order.extend(warps[:start])
        else:
            if self._gto_dirty:
                self._rebuild_gto_order()
            order = self._gto_order

        primary_warp: Optional[Warp] = None
        primary_op: Optional[str] = None
        any_ready = False
        wake = NEVER
        alu = OP_ALU
        sfu = OP_SFU
        for warp in order:
            # Inlined Warp.issuable(cycle), tracking the earliest cycle
            # a latency-blocked warp becomes ready.
            if warp.outstanding_loads >= warp.mlp:
                continue  # MLP-blocked: woken by wake_at on load return
            op = warp.stream.next_op
            if op is None:
                continue  # stream drained, warp awaiting retirement
            ready_at = warp.ready_at
            if ready_at > cycle:
                if ready_at < wake:
                    wake = ready_at
                continue
            any_ready = True
            if warp_gated is not None and not warp_gated(warp):
                continue
            if op is alu or op is sfu:
                if compute_ok is not None and not compute_ok(op):
                    continue
                sel = self._sel
                if primary_warp is None:
                    sel.warp = warp
                    sel.op = op
                    sel.fallback = None
                    sel.fallback_op = None
                    sel.is_mem = False
                    return sel
                # primary is a mem candidate; this is its fallback.
                sel.warp = primary_warp
                sel.op = primary_op
                sel.fallback = warp
                sel.fallback_op = op
                sel.is_mem = True
                return sel
            # memory instruction
            if (mem_ok is not None and primary_warp is None
                    and mem_ok(warp, op)):
                primary_warp = warp
                primary_op = op
                # keep scanning for a compute fallback
        if primary_warp is None:
            if not any_ready:
                # Nothing was even latency-ready: sleep until the
                # earliest ready_at (or an external wake_at event).
                self._next_wake = wake
            return None
        sel = self._sel
        sel.warp = primary_warp
        sel.op = primary_op
        sel.fallback = None
        sel.fallback_op = None
        sel.is_mem = True
        return sel

    def first_ready(self, cycle: int):
        """Pure introspection for stall attribution (observability).

        Returns ``(warp, op, status)`` for the highest-priority warp
        with work this cycle, where ``status`` is ``"ready"`` (warp is
        latency-ready: the warp the hardware would have issued),
        ``"blocked"`` (warps have work but all are scoreboard-blocked
        on latency or the MLP cap), or ``"empty"`` (no owned warp has
        work left; warp/op are ``None``).

        Unlike :meth:`_priority_order` this never mutates scheduler
        state: it reconstructs the priority order the preceding
        ``select`` call used this cycle (for LRR, ``select`` already
        advanced the rotation, hence the ``- 1``).
        """
        warps = self.warps
        n = len(warps)
        if not n:
            return None, None, "empty"
        if self._is_lrr:
            start = (self._lrr_pos - 1) % n
            order = warps[start:] + warps[:start]
        else:
            order = sorted(warps, key=_age_of)
            greedy = self._greedy
            if greedy is not None and greedy in warps:
                order.remove(greedy)
                order.insert(0, greedy)
        blocked = None
        blocked_op = None
        for warp in order:
            op = warp.stream.next_op
            if op is None:
                continue
            if warp.ready_at <= cycle and warp.outstanding_loads < warp.mlp:
                return warp, op, "ready"
            if blocked is None:
                blocked = warp
                blocked_op = op
        if blocked is None:
            return None, None, "empty"
        return blocked, blocked_op, "blocked"

    def _select_reference(self, cycle: int,
                          mem_ok: Callable[[Warp, str], bool],
                          compute_ok: Callable[[str], bool],
                          warp_gated: Optional[Callable[[Warp], bool]],
                          ) -> Optional[Selection]:
        """Straightforward per-cycle scan (no caching, no sleep hints);
        the baseline the perf suite measures fast paths against, and
        the oracle the equivalence tests compare them to."""
        primary: Optional[Warp] = None
        primary_op: Optional[str] = None
        for warp in self._priority_order():
            if not warp.issuable(cycle):
                continue
            if warp_gated is not None and not warp_gated(warp):
                continue
            op = warp.stream.peek()
            if op in (OP_ALU, OP_SFU):
                if not compute_ok(op):
                    continue
                if primary is None:
                    return Selection(warp, op)
                # primary is a mem candidate; this is its fallback.
                return Selection(primary, primary_op, warp, op)
            # memory instruction
            if primary is None and mem_ok(warp, op):
                primary = warp
                primary_op = op
                # keep scanning for a compute fallback
        if primary is None:
            return None
        return Selection(primary, primary_op)


def _age_of(warp: Warp) -> int:
    return warp.age
