"""Run statistics: per-kernel counters, utilization, and the sampled
timelines used by the paper's Figure 6 and Figure 8.

The metrics mirror the paper's methodology (§2.3/§2.4):

* per-kernel IPC over the measurement window (warp instructions issued
  per cycle, aggregated over all SMs);
* computing-unit utilization (busy slots / available slots);
* LSU stall percentage (cycles the memory pipeline was blocked by a
  reservation failure);
* L1D miss rate and reservation failures per access (``rsfail rate``).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class KernelStats:
    """Counters for one kernel slot, aggregated across SMs."""

    __slots__ = ("warp_insts", "alu_insts", "sfu_insts", "mem_insts",
                 "mem_requests", "tbs_completed", "tbs_launched")

    def __init__(self) -> None:
        self.warp_insts = 0
        self.alu_insts = 0
        self.sfu_insts = 0
        self.mem_insts = 0
        self.mem_requests = 0
        self.tbs_completed = 0
        self.tbs_launched = 0

    def ipc(self, cycles: int) -> float:
        return self.warp_insts / cycles if cycles else 0.0


class TimelineRecorder:
    """Per-interval sample series, e.g. L1D accesses per 1K cycles
    (Figure 6) or warp instructions issued per 1K cycles (Figure 8)."""

    def __init__(self, interval: int = 1000):
        if interval < 1:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.series: Dict[str, Dict[int, List[int]]] = defaultdict(dict)

    def bump(self, series: str, kernel: int, cycle: int, amount: int = 1) -> None:
        bucket = cycle // self.interval
        samples = self.series[series].setdefault(kernel, [])
        gap = bucket + 1 - len(samples)
        if gap > 0:
            # Single C-level extend instead of a per-slot append loop:
            # O(1) amortized even after a long quiet stretch.
            samples.extend([0] * gap)
        samples[bucket] += amount

    def get(self, series: str, kernel: int) -> List[int]:
        return list(self.series.get(series, {}).get(kernel, []))

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form: ``{series: {kernel: [samples...]}}`` plus the
        sampling interval."""
        return {
            "interval": self.interval,
            "series": {series: {kernel: list(samples)
                                for kernel, samples in per_kernel.items()}
                       for series, per_kernel in self.series.items()},
        }


@dataclass
class RunResult:
    """Everything measured in one simulation run."""

    cycles: int
    kernel_names: List[str]
    kernels: Dict[int, KernelStats]
    #: per-kernel L1D rates aggregated over SMs.
    l1d_accesses: Dict[int, int] = field(default_factory=dict)
    l1d_hits: Dict[int, int] = field(default_factory=dict)
    l1d_misses: Dict[int, int] = field(default_factory=dict)
    l1d_rsfails: Dict[int, int] = field(default_factory=dict)
    lsu_stall_cycles: int = 0
    lsu_busy_cycles: int = 0
    alu_busy: int = 0
    sfu_busy: int = 0
    alu_slots: int = 0
    sfu_slots: int = 0
    timeline: Optional[TimelineRecorder] = None
    dram_row_hit_rate: float = 0.0
    num_sms: int = 1
    # backend activity (for the energy model)
    l2_accesses: int = 0
    l2_misses: int = 0
    dram_accesses: int = 0
    icnt_flits: int = 0
    #: observability report (stall taxonomy, counter snapshot, trace
    #: events) when the run was observed; None otherwise.
    obs: Optional[object] = None

    # ------------------------------------------------------------------
    def ipc(self, kernel: int) -> float:
        return self.kernels[kernel].ipc(self.cycles)

    def total_ipc(self) -> float:
        insts = sum(k.warp_insts for k in self.kernels.values())
        return insts / self.cycles if self.cycles else 0.0

    def total_insts(self) -> int:
        return sum(k.warp_insts for k in self.kernels.values())

    def l1d_miss_rate(self, kernel: int) -> float:
        acc = self.l1d_accesses.get(kernel, 0)
        return self.l1d_misses.get(kernel, 0) / acc if acc else 0.0

    def l1d_rsfail_rate(self, kernel: int) -> float:
        acc = self.l1d_accesses.get(kernel, 0)
        return self.l1d_rsfails.get(kernel, 0) / acc if acc else 0.0

    def lsu_stall_pct(self) -> float:
        total = self.cycles * self.num_sms
        return self.lsu_stall_cycles / total if total else 0.0

    def alu_utilization(self) -> float:
        return self.alu_busy / self.alu_slots if self.alu_slots else 0.0

    def sfu_utilization(self) -> float:
        return self.sfu_busy / self.sfu_slots if self.sfu_slots else 0.0

    def compute_utilization(self) -> float:
        slots = self.alu_slots + self.sfu_slots
        return (self.alu_busy + self.sfu_busy) / slots if slots else 0.0

    def summary(self, include_stalls: bool = False) -> Dict[str, object]:
        """Flat dict of headline numbers (used by the reporting layer).

        With ``include_stalls`` and an observed run, the scheduler
        stall-attribution shares (``stall[<reason>]``, fractions of all
        issue slots) are appended."""
        out: Dict[str, object] = {
            "cycles": self.cycles,
            "lsu_stall_pct": self.lsu_stall_pct(),
            "compute_utilization": self.compute_utilization(),
        }
        for slot, name in enumerate(self.kernel_names):
            out[f"ipc[{name}#{slot}]"] = self.ipc(slot)
            out[f"l1d_miss[{name}#{slot}]"] = self.l1d_miss_rate(slot)
            out[f"l1d_rsfail[{name}#{slot}]"] = self.l1d_rsfail_rate(slot)
        if include_stalls and self.obs is not None:
            for reason, share in sorted(self.obs.sched_stall_shares().items()):
                out[f"stall[{reason}]"] = share
        return out
