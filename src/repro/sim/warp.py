"""Warps, thread blocks, and in-flight memory instructions.

A warp executes its :class:`~repro.workloads.kernel.InstructionStream`
one instruction per issue.  Compute instructions are fully pipelined
(the warp is ready again next cycle; SFU ops have a longer initiation
interval).  A load blocks the warp until every coalesced request of
that instruction has returned — the standard GTO-era simplification
that makes memory latency the thing warp switching must hide.

:class:`MemInst` is the unit the paper's MIL scheme counts: an issued
memory instruction stays "in flight" from LSU issue until its last
request completes (loads) or until it is fully expanded (stores).
"""

from __future__ import annotations

from typing import Callable, List

from repro.workloads.kernel import InstructionStream, KernelProfile


class MemInst:
    """One issued (post-coalescing) memory instruction in flight."""

    __slots__ = ("warp", "kernel", "lines", "next_idx", "pending",
                 "is_store", "issued_cycle", "on_complete", "_completed")

    def __init__(self, warp: "Warp", lines: tuple, is_store: bool,
                 issued_cycle: int, on_complete: Callable[["MemInst", int], None]):
        self.warp = warp
        self.kernel = warp.kernel_slot
        self.lines = lines
        self.next_idx = 0
        self.pending = 0
        self.is_store = is_store
        self.issued_cycle = issued_cycle
        self.on_complete = on_complete
        self._completed = False

    @property
    def fully_expanded(self) -> bool:
        return self.next_idx >= len(self.lines)

    def note_request_sent(self, waits_for_data: bool) -> None:
        self.next_idx += 1
        if waits_for_data:
            self.pending += 1

    def request_done(self, cycle: int) -> None:
        """Callback from the memory subsystem when a fill returns."""
        self.pending -= 1
        if self.pending < 0:  # pragma: no cover - defensive
            raise RuntimeError("memory instruction over-completed")
        self.maybe_complete(cycle)

    def maybe_complete(self, cycle: int) -> None:
        if (self._completed or self.pending
                or self.next_idx < len(self.lines)):
            return
        self._completed = True
        self.on_complete(self, cycle)


class Warp:
    """One warp's execution state inside an SM.

    ``mlp`` bounds the warp's outstanding loads (its memory-level
    parallelism): a warp with ``mlp`` loads in flight stalls on the
    data dependence until one returns.  Memory-intensive kernels have
    high MLP (back-to-back independent loads — the reason they swamp
    the MSHRs in the paper), compute-intensive ones low MLP.
    """

    __slots__ = ("warp_id", "kernel_slot", "tb", "stream", "ready_at",
                 "outstanding_loads", "mlp", "age", "sched")

    def __init__(self, warp_id: int, kernel_slot: int, tb: "ThreadBlock",
                 stream: InstructionStream, age: int, mlp: int = 2):
        if mlp < 1:
            raise ValueError("mlp must be >= 1")
        self.warp_id = warp_id
        self.kernel_slot = kernel_slot
        self.tb = tb
        self.stream = stream
        self.ready_at = 0
        self.outstanding_loads = 0
        self.mlp = mlp
        #: monotone launch sequence used for "oldest" in GTO.
        self.age = age
        #: owning scheduler, set by WarpScheduler.add_warp — lets the SM
        #: retire a warp in O(1) instead of scanning every scheduler.
        self.sched = None

    @property
    def done(self) -> bool:
        return self.stream.done

    @property
    def retired(self) -> bool:
        """Stream drained and no load still in flight."""
        return self.stream.done and self.outstanding_loads == 0

    def issuable(self, cycle: int) -> bool:
        return (not self.stream.done
                and self.outstanding_loads < self.mlp
                and self.ready_at <= cycle)

    def note_load_issued(self, cycle: int) -> None:
        self.outstanding_loads += 1
        self.ready_at = cycle + 1

    def note_load_done(self, cycle: int) -> None:
        self.outstanding_loads -= 1
        if self.outstanding_loads < 0:  # pragma: no cover - defensive
            raise RuntimeError("warp load count underflow")
        if self.ready_at <= cycle:
            self.ready_at = cycle + 1


class ThreadBlock:
    """A resident thread block: a set of warps plus static resources."""

    __slots__ = ("tb_id", "kernel_slot", "profile", "warps", "live_warps")

    def __init__(self, tb_id: int, kernel_slot: int, profile: KernelProfile):
        self.tb_id = tb_id
        self.kernel_slot = kernel_slot
        self.profile = profile
        self.warps: List[Warp] = []
        self.live_warps = 0

    @property
    def done(self) -> bool:
        return self.live_warps == 0

    def note_warp_done(self) -> None:
        self.live_warps -= 1
        if self.live_warps < 0:  # pragma: no cover - defensive
            raise RuntimeError("thread block over-completed")
