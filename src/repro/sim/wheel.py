"""The unified global event wheel for the fast cycle loop.

The engine's cycle leap needs one question answered cheaply: *given
that nothing is runnable right now, at which future cycle can anything
happen at all?*  Before this module, answering it meant rescanning
every component — each scheduler's ``_next_wake`` hint, each SM's
``_sleep_until``, the memory event heap, and every DRAM channel's
``busy_until``.  The wheel replaces those scans with one indexed
min-heap that every component posts its future activity cycles into:

* the memory subsystem posts every scheduled event cycle
  (``_schedule``);
* DRAM channels post each service completion (``busy_until``) when
  service starts;
* SMs post their ``_sleep_until`` when they go to sleep, and
  schedulers post lowered wakes (``wake_at``) on load returns;
* MILG / QBMI window boundaries post a next-cycle re-evaluation point
  (see ``StreamingMultiprocessor._note_scheme_window``).

Entries are deduplicated per cycle, so a burst of posts for the same
cycle costs one dict hit each.  Reads are lazy: :meth:`next_after`
discards stale entries (``<= now``) as it goes, which makes the
amortised cost of a leap O(1) heap pops regardless of how many
components exist.

Correctness contract (the bit-identity proof obligation, see
``docs/PERF.md``): entries may be *conservative* — a posted cycle at
which nothing happens after all merely wakes the engine for one inert
tick, which is exactly what the reference loop would have executed —
but an activity cycle may never be *missing*: the engine only leaps
when every SM is asleep and the memory queues are drained, and in that
state every future state change is reachable only through an event one
of the posters above has already registered.
"""

from __future__ import annotations

import heapq
from typing import Dict, List

#: sentinel for "no posted event" (matches the scheduler's NEVER).
NEVER = 1 << 62

# ----------------------------------------------------------------------
# Leap-visible state registry (consumed by the REPRO-W0xx lint family).
#
# These two tables are the machine-readable version of the correctness
# contract above: they enumerate every attribute and queue-method whose
# mutation can move a component's next-activity cycle.  The
# whole-program linter (``repro lint --project``) proves that every
# function which mutates one of these — directly or through a callee —
# also reaches a ``wheel.post(...)`` on the same call path (or lowers
# the horizon to ``0``/the current cycle, which can only wake the
# engine *earlier* and is therefore always leap-safe).  Adding a new
# leap-visible field?  Declare it here first; the linter then holds
# every mutation site to the contract.

#: attribute names whose assignment moves a wake/service horizon.
LEAP_STATE_ATTRS: Dict[str, str] = {
    "busy_until": "DRAM channel service-completion horizon",
    "_sleep_until": "SM sleep horizon consulted by the engine leap",
    "_next_wake": "scheduler wake hint lowered by load returns",
    "_mem_wake": "scheduler pending-memory wake hint",
}

#: method names whose call enqueues future work on a leap-checked
#: queue (DRAM / interconnect / memory event heap).
LEAP_QUEUE_METHODS: Dict[str, str] = {
    "enqueue": "DRAM channel queue push (service may start while idle)",
    "enqueue_read": "DRAM read enqueue via the model",
    "enqueue_write": "DRAM write enqueue via the model",
    "_schedule": "memory subsystem event-heap push",
    "ring_push": "pooled DRAM ring-queue push (service may start while idle)",
    "_schedule_ev": "pooled memory subsystem event-heap push",
}


class EventWheel:
    """Min-indexed set of future activity cycles."""

    __slots__ = ("_heap", "_pending")

    def __init__(self) -> None:
        self._heap: List[int] = []
        # Dedup index: cycle -> True while the cycle is in the heap.
        # (A dict, not a set: the repro lint bans set types near the
        # simulator core, and we never iterate it anyway.)
        self._pending: Dict[int, bool] = {}

    def post(self, cycle: int) -> None:
        """Register ``cycle`` as a potential activity point.

        Posting the same cycle twice is free; posting a cycle that is
        already in the past is harmless (it is lazily discarded).
        """
        pending = self._pending
        if cycle in pending:
            return
        pending[cycle] = True
        heapq.heappush(self._heap, cycle)

    def next_after(self, now: int) -> int:
        """Earliest posted cycle strictly greater than ``now``, or
        :data:`NEVER`.  Entries at or before ``now`` are stale (their
        cycle has already been ticked) and are dropped on the way."""
        heap = self._heap
        pending = self._pending
        while heap:
            top = heap[0]
            if top > now:
                return top
            heapq.heappop(heap)
            del pending[top]
        return NEVER

    def __len__(self) -> int:
        return len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nxt = self._heap[0] if self._heap else None
        return f"<EventWheel n={len(self._heap)} next={nxt}>"
