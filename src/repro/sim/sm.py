"""The Streaming Multiprocessor: issue logic, execution units, TB
residency, and the scheme hooks.

Per cycle each SM:

1. launches at most one pending thread block (respecting the CKE
   layer's per-kernel TB limits and the Table 1 static resources);
2. lets every warp scheduler select a candidate; compute candidates
   issue immediately (per-scheduler ALU port, shared SFU port), memory
   candidates compete for the single LSU issue slot, arbitrated by the
   configured BMI policy and gated by the MIL limiter and the SMK
   quota gate;
3. ticks the LSU (one L1D request, or a stall).

The SM reports all scheme-relevant events (requests, reservation
failures, in-flight counts) to its :class:`~repro.core.SchemeBundle`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import GPUConfig
from repro.core.arbiter import SchemeBundle
from repro.core.mil import NoLimit
from repro.mem.cache import L1DCache
from repro.obs.stalls import (
    ISSUED,
    KERNEL_NONE,
    STALL_BMI_LOSS,
    STALL_EXEC_PORT,
    STALL_LSU_FULL,
    STALL_MIL_CAPPED,
    STALL_NO_WARP,
    STALL_OTHER,
    STALL_SCOREBOARD,
    STALL_SMK_GATE,
)
from repro.sim.lsu import LoadStoreUnit
from repro.sim.scheduler import NEVER, WarpScheduler
from repro.sim.stats import KernelStats, TimelineRecorder
from repro.sim.warp import MemInst, ThreadBlock, Warp
from repro.workloads.kernel import OP_ALU, OP_SFU, OP_STORE


class SMKernelState:
    """Per-SM runtime state for one resident kernel."""

    __slots__ = ("tb_limit", "tb_count", "inflight_minsts", "resident_warps")

    def __init__(self, tb_limit: int):
        self.tb_limit = tb_limit
        self.tb_count = 0
        self.inflight_minsts = 0
        self.resident_warps = 0


class StreamingMultiprocessor:
    """One SM instance."""

    def __init__(self, sm_id: int, config: GPUConfig, l1: L1DCache,
                 launches: List, bundle: SchemeBundle,
                 kernel_stats: Dict[int, KernelStats],
                 timeline: Optional[TimelineRecorder] = None,
                 fastpath: bool = True, obs=None):
        self.sm_id = sm_id
        self.config = config
        self.l1 = l1
        self.launches = launches
        self.bundle = bundle
        self.kernel_stats = kernel_stats
        self.timeline = timeline
        #: observability collector (None = zero-cost sentinel checks).
        self._obs = obs
        #: per-tick scratch for stall attribution: scheduler id ->
        #: issuing kernel, and scheduler id -> kernel that lost the
        #: BMI arbitration without a compute fallback.
        self._obs_issued: Dict[int, int] = {}
        self._obs_lost: Dict[int, int] = {}

        self.lsu = LoadStoreUnit(sm_id, l1, width=config.lsu_width)
        self.lsu._obs = obs
        # The stall-replay memo is a fast-loop trick; the reference
        # loop stays the plain implementation the memo is validated
        # against (bit-identity is asserted in tests/test_fastpath.py).
        self.lsu.use_stall_memo = fastpath
        self.schedulers = [WarpScheduler(i, config.scheduler_policy,
                                         fastpath=fastpath)
                           for i in range(config.schedulers_per_sm)]
        for sched in self.schedulers:
            sched.sm = self
        self.kstate: Dict[int, SMKernelState] = {
            launch.slot: SMKernelState(launch.tb_limits[sm_id])
            for launch in launches
        }
        #: kstate as a list — the slot set is fixed for the whole run,
        #: so per-tick iteration avoids rebuilding a dict view.
        self._kstate_items = list(self.kstate.items())
        self._launch_by_slot = {launch.slot: launch for launch in launches}
        # The bypass set is fixed per run: give the LSU a plain dict
        # instead of a per-request predicate call.
        self.lsu.bypass_by_kernel = {
            launch.slot: bundle.bypasses_l1d(launch.slot)
            for launch in launches
        }

        # Static resource bookkeeping.
        self._used_threads = 0
        self._used_warps = 0
        self._used_regs = 0
        self._used_smem = 0
        self._used_tbs = 0

        self._warp_age = 0
        self._next_tb_id = 0
        self._sched_rr = 0
        self._launch_rr = 0
        self._sfu_used = False
        self.alu_busy = 0
        self.sfu_busy = 0

        # Hot-loop state for the issue callbacks (set per tick) plus
        # bound-method references so tick() allocates no closures.
        # LSU occupancy and MIL verdicts depend only on the kernel slot
        # and on state that is frozen during the selection phase, so
        # the fast path resolves them once per tick into _mem_ok_now
        # instead of re-deriving them per candidate warp.  The SMK gate
        # is NOT frozen — compute issues during the scheduler loop
        # consume quota via note_issue — so gate verdicts are always
        # queried live, exactly as the reference closures do.
        self._fastpath = fastpath
        self._gate = None
        self._lsu_free = True
        self._mem_ok_now: Dict[int, bool] = {}
        # With no SMK gate and an unlimited MIL, the per-kernel verdict
        # collapses to "is the LSU free": keep both constant answer
        # maps prebuilt and just point _mem_ok_now at the right one.
        self._limiter_unlimited = isinstance(bundle.limiter, NoLimit)
        self._ok_all = {launch.slot: True for launch in launches}
        self._ok_none = {launch.slot: False for launch in launches}
        # Scheduler issue orders for each round-robin start, prebuilt.
        nsched = len(self.schedulers)
        self._sched_orders = [
            tuple(self.schedulers[(s + o) % nsched] for o in range(nsched))
            for s in range(nsched)
        ]
        self._mem_ok_cb = self._mem_ok
        self._mem_ok_gated_cb = self._mem_ok_gated
        self._compute_ok_cb = self._compute_ok
        self._warp_gated_cb = self._warp_gated
        #: True while a TB-launch scan is known to be futile; cleared
        #: whenever residency or a TB limit changes.
        self._launch_blocked = False
        #: whole-SM sleep: while ``cycle < _sleep_until`` the entire
        #: tick is provably a no-op and is skipped.  Only eligible
        #: under GTO with no UCP (LRR rotates per-cycle state; UCP
        #: ticks its epoch counter every cycle).
        self._sleep_until = 0
        self._last_tick = -1
        self._sleep_eligible = (fastpath
                                and config.scheduler_policy == "gto"
                                and bundle.ucp is None)

    # ------------------------------------------------------------------
    # thread block launch
    def _fits(self, launch) -> bool:
        cfg = self.config
        profile = launch.profile
        warps = profile.warps_per_tb(cfg.warp_size)
        return (
            self._used_tbs + 1 <= cfg.max_tbs_per_sm
            and self._used_threads + profile.threads_per_tb <= cfg.max_threads_per_sm
            and self._used_warps + warps <= cfg.max_warps_per_sm
            and self._used_regs + profile.regs_per_thread * profile.threads_per_tb
                <= cfg.registers_per_sm
            and self._used_smem + profile.smem_per_tb <= cfg.smem_per_sm
        )

    def try_launch_tb(self, cycle: int) -> None:
        """Launch at most one TB, round-robin over kernels.

        A failed scan is remembered (``_launch_blocked``): launchability
        only changes when a TB retires or a TB limit is reconfigured,
        both of which clear the flag, so blocked cycles skip the scan
        (fast path only; the reference loop always rescans).
        """
        if self._launch_blocked and self._fastpath:
            return
        n = len(self.launches)
        if not n:
            return
        start = self._launch_rr
        for offset in range(n):
            launch = self.launches[(start + offset) % n]
            state = self.kstate[launch.slot]
            if state.tb_count >= state.tb_limit:
                continue
            if not self._fits(launch):
                continue
            self._launch_rr = (start + offset + 1) % n
            self._launch(launch, cycle)
            return
        self._launch_blocked = True

    def _launch(self, launch, cycle: int) -> None:
        cfg = self.config
        profile = launch.profile
        tb = ThreadBlock(self._next_tb_id, launch.slot, profile)
        self._next_tb_id += 1
        warps_per_tb = profile.warps_per_tb(cfg.warp_size)
        for _ in range(warps_per_tb):
            warp_index = launch.next_warp_index()
            stream = launch.new_stream(warp_index)
            warp = Warp(warp_index, launch.slot, tb, stream, self._warp_age,
                        mlp=profile.mlp)
            warp.ready_at = cycle + 1
            self._warp_age += 1
            tb.warps.append(warp)
            tb.live_warps += 1
            # Balance warps across schedulers.
            sched = min(self.schedulers, key=lambda s: len(s.warps))
            sched.add_warp(warp)
        state = self.kstate[launch.slot]
        state.tb_count += 1
        state.resident_warps += warps_per_tb
        self._used_tbs += 1
        self._used_threads += profile.threads_per_tb
        self._used_warps += warps_per_tb
        self._used_regs += profile.regs_per_thread * profile.threads_per_tb
        self._used_smem += profile.smem_per_tb
        self.kernel_stats[launch.slot].tbs_launched += 1

    def _retire_tb(self, tb: ThreadBlock) -> None:
        profile = tb.profile
        warps_per_tb = len(tb.warps)
        state = self.kstate[tb.kernel_slot]
        state.tb_count -= 1
        state.resident_warps -= warps_per_tb
        self._used_tbs -= 1
        self._used_threads -= profile.threads_per_tb
        self._used_warps -= warps_per_tb
        self._used_regs -= profile.regs_per_thread * profile.threads_per_tb
        self._used_smem -= profile.smem_per_tb
        self._launch_blocked = False
        # Freed residency may admit a new TB: resume ticking.
        self._sleep_until = 0
        self.kernel_stats[tb.kernel_slot].tbs_completed += 1

    def _finish_warp(self, warp: Warp) -> None:
        # The owning scheduler is recorded on the warp at add_warp
        # time, so retirement needs no scan over schedulers.
        warp.sched.remove_warp(warp)
        warp.tb.note_warp_done()
        if warp.tb.done:
            self._retire_tb(warp.tb)

    # ------------------------------------------------------------------
    # issue
    def _mem_ok(self, warp: Warp, op: str) -> bool:
        return self._mem_ok_now[warp.kernel_slot]

    def _mem_ok_gated(self, warp: Warp, op: str) -> bool:
        # Gate queried live: quota may have been consumed by an issue
        # earlier in this same cycle's scheduler loop.
        k = warp.kernel_slot
        return self._mem_ok_now[k] and self._gate.can_issue(k)

    def _compute_ok(self, op: str) -> bool:
        return not (op == OP_SFU and self._sfu_used)

    def _warp_gated(self, warp: Warp) -> bool:
        return self._gate.can_issue(warp.kernel_slot)

    def tick(self, cycle: int) -> None:
        if cycle < self._sleep_until:
            # Whole-SM sleep (see __init__): nothing can launch, issue
            # or drain before _sleep_until; external events lower it.
            return
        last = self._last_tick
        self._last_tick = cycle
        if self._fastpath and cycle - last > 1:
            # The scheduler round-robin start advances once per cycle
            # in the reference loop, including cycles a sleeping SM
            # skipped: catch the rotation phase up so arbitration
            # order stays bit-identical.
            self._sched_rr = (self._sched_rr + (cycle - last - 1)) \
                % len(self.schedulers)
        bundle = self.bundle
        if bundle.ucp is not None:
            bundle.ucp.tick(cycle)
        self.try_launch_tb(cycle)
        self._sfu_used = False

        gate = bundle.smk_gate
        self._gate = gate
        lsu = self.lsu
        self._lsu_free = lsu_free = len(lsu.queue) < lsu.queue_depth
        fastpath = self._fastpath
        if fastpath:
            # Resolve the per-kernel can-issue verdicts once: the gate,
            # the limiter and the LSU occupancy are all frozen during
            # the selection phase, and all their predicates are pure.
            # ``mem_ok=None`` is the scheduler's "nothing mem can
            # issue" sentinel — the memory-pipeline-stall case, where
            # per-warp callback dispatch would be pure overhead.
            if gate is None:
                # With no SMK gate every warp is ungated; passing None
                # lets the scheduler skip the per-warp check entirely.
                warp_gated = None
                if not lsu_free:
                    mem_ok = None
                elif self._limiter_unlimited:
                    self._mem_ok_now = self._ok_all
                    mem_ok = self._mem_ok_cb
                else:
                    # The limiter kind is fixed per run, so _mem_ok_now
                    # still points at its own mutable dict here.
                    limiter = bundle.limiter
                    ok = self._mem_ok_now
                    for k, st in self._kstate_items:
                        ok[k] = limiter.can_issue(k, st.inflight_minsts)
                    mem_ok = self._mem_ok_cb
            else:
                warp_gated = self._warp_gated_cb
                if lsu_free:
                    limiter = bundle.limiter
                    ok = self._mem_ok_now
                    for k, st in self._kstate_items:
                        ok[k] = limiter.can_issue(k, st.inflight_minsts)
                    mem_ok = self._mem_ok_gated_cb
                else:
                    mem_ok = None
            compute_ok = self._compute_ok_cb
        else:
            # Reference loop: allocate the callbacks as per-cycle
            # closures, the straightforward implementation the fast
            # path is benchmarked against.
            limiter = bundle.limiter
            lsu_free = self._lsu_free

            def mem_ok(warp: Warp, op: str) -> bool:
                k = warp.kernel_slot
                if gate is not None and not gate.can_issue(k):
                    return False
                return lsu_free and limiter.can_issue(
                    k, self.kstate[k].inflight_minsts)

            def compute_ok(op: str) -> bool:
                return not (op == OP_SFU and self._sfu_used)

            def warp_gated(warp: Warp) -> bool:
                return gate is None or gate.can_issue(warp.kernel_slot)

        mem_proposals = None
        n = len(self.schedulers)
        start = self._sched_rr
        self._sched_rr = (start + 1) % n
        for sched in self._sched_orders[start]:
            if fastpath:
                # compute_ok=None: every port free (no SFU issued yet
                # this cycle) — the scheduler skips the callback.
                sel = sched.select(
                    cycle, mem_ok,
                    compute_ok if self._sfu_used else None, warp_gated)
            else:
                sel = sched.select(cycle, mem_ok, compute_ok, warp_gated)
            if sel is None:
                continue
            if sel.is_mem:
                if mem_proposals is None:
                    mem_proposals = [(sched, sel)]
                else:
                    mem_proposals.append((sched, sel))
            else:
                self._issue_compute(sched, sel.warp, sel.op, cycle)

        if mem_proposals is not None:
            kernels = [sel.warp.kernel_slot for _, sel in mem_proposals]
            winner = bundle.mem_policy.pick(kernels)
            for idx, (sched, sel) in enumerate(mem_proposals):
                if idx == winner:
                    self._issue_mem(sched, sel.warp, sel.op, cycle)
                elif sel.fallback is not None and compute_ok(sel.fallback_op):
                    self._issue_compute(sched, sel.fallback, sel.fallback_op, cycle)
                elif self._obs is not None:
                    self._obs_lost[sched.sched_id] = sel.warp.kernel_slot

        if self._obs is not None:
            self._obs_account(self._obs, cycle)
        self.lsu.tick(cycle, self)

        if gate is not None:
            resident = [k for k, st in self.kstate.items() if st.resident_warps]
            if resident:
                gate.maybe_reset(resident)
        elif (self._sleep_eligible and self._launch_blocked
                and not self.lsu.queue):
            # Every scheduler's latest scan found nothing latency-ready
            # (future hints), no TB can launch and the LSU is drained:
            # the SM provably no-ops until the earliest scheduler wake.
            wake = NEVER
            for sched in self.schedulers:
                nw = sched._next_wake
                if nw < wake:
                    wake = nw
            if wake > cycle + 1:
                self._sleep_until = wake

    def _issue_compute(self, sched: WarpScheduler, warp: Warp, op: str,
                       cycle: int) -> None:
        stream = warp.stream
        stream.pop()
        k = warp.kernel_slot
        stats = self.kernel_stats[k]
        stats.warp_insts += 1
        if op == OP_SFU:
            stats.sfu_insts += 1
            self.sfu_busy += 1
            self._sfu_used = True
            warp.ready_at = cycle + 4
        else:
            stats.alu_insts += 1
            self.alu_busy += 1
            warp.ready_at = cycle + 1
        sched.note_issued(warp)
        gate = self._gate
        if gate is not None:
            gate.note_issue(k)
        if self.timeline is not None:
            self.timeline.bump("insts", k, cycle)
        if self._obs is not None:
            self._obs_issued[sched.sched_id] = k
            self._obs.issue_event(self.sm_id, sched.sched_id, k, op, cycle)
        if stream.next_op is None and not warp.outstanding_loads:
            self._finish_warp(warp)

    def _issue_mem(self, sched: WarpScheduler, warp: Warp, op: str,
                   cycle: int) -> None:
        stream = warp.stream
        stream.pop()
        k = warp.kernel_slot
        is_store = op == OP_STORE
        desc = stream.memory_descriptor(is_store)
        launch = self._launch_by_slot[k]
        base = launch.base_line
        lines = tuple([base + line for line in desc.lines])
        inst = MemInst(warp, lines, is_store, cycle, self._on_meminst_complete)
        state = self.kstate[k]
        state.inflight_minsts += 1
        bundle = self.bundle
        bundle.limiter.observe_inflight(k, state.inflight_minsts)
        bundle.mem_policy.note_mem_inst(k)
        self.lsu.enqueue(inst)

        stats = self.kernel_stats[k]
        stats.warp_insts += 1
        stats.mem_insts += 1
        if is_store:
            warp.ready_at = cycle + 1
        else:
            warp.note_load_issued(cycle)
        sched.note_issued(warp)
        gate = self._gate
        if gate is not None:
            gate.note_issue(k)
        if self.timeline is not None:
            self.timeline.bump("insts", k, cycle)
        if self._obs is not None:
            self._obs_issued[sched.sched_id] = k
            self._obs.issue_event(self.sm_id, sched.sched_id, k, op, cycle)
        if stream.next_op is None and not warp.outstanding_loads:
            self._finish_warp(warp)

    # ------------------------------------------------------------------
    # stall attribution (observability; never reached with obs off)
    def _obs_account(self, obs, cycle: int) -> None:
        """Classify every scheduler's issue-slot outcome this cycle.

        An issuing scheduler counts as ``issued``; a non-issuing one is
        attributed to the reason its highest-priority latency-ready
        warp (the warp the hardware would have issued) could not go —
        see :mod:`repro.obs.stalls` for the taxonomy.  Residual
        same-cycle races (e.g. a gate quota consumed between selection
        and attribution) land in ``other``.

        ``obs`` is the already-guarded sentinel: the caller only
        reaches here under ``if self._obs is not None``.
        """
        table = obs.stalls
        sm_id = self.sm_id
        issued = self._obs_issued
        lost = self._obs_lost
        for sched in self.schedulers:
            sid = sched.sched_id
            k = issued.get(sid)
            if k is not None:
                table.bump_sched(sm_id, sid, k, ISSUED)
                continue
            k = lost.get(sid)
            if k is not None:
                table.bump_sched(sm_id, sid, k, STALL_BMI_LOSS)
                continue
            warp, op, status = sched.first_ready(cycle)
            if status == "empty":
                table.bump_sched(sm_id, sid, KERNEL_NONE, STALL_NO_WARP)
                continue
            k = warp.kernel_slot
            if status == "blocked":
                table.bump_sched(sm_id, sid, k, STALL_SCOREBOARD)
                continue
            # A latency-ready warp had work but nothing issued: pin the
            # denial on the gate, the port, or the memory pipeline.
            gate = self._gate
            if gate is not None and not gate.can_issue(k):
                reason = STALL_SMK_GATE
            elif op == OP_SFU or op == OP_ALU:
                reason = (STALL_EXEC_PORT
                          if op == OP_SFU and self._sfu_used
                          else STALL_OTHER)
            elif not self._lsu_free:
                reason = STALL_LSU_FULL
            elif not self.bundle.limiter.can_issue(
                    k, self.kstate[k].inflight_minsts):
                reason = STALL_MIL_CAPPED
            else:
                reason = STALL_OTHER
            table.bump_sched(sm_id, sid, k, reason)
        issued.clear()
        lost.clear()

    # ------------------------------------------------------------------
    # scheme event hooks (called by the LSU)
    def on_request_issued(self, request, result: str, cycle: int) -> None:
        k = request.kernel
        state = self.kstate[k]
        self.bundle.limiter.note_request(k, state.inflight_minsts)
        self.bundle.mem_policy.note_request(k)
        if self.bundle.ucp is not None and not request.is_write:
            self.bundle.ucp.observe(k, request.line)
        self.kernel_stats[k].mem_requests += 1
        if self.timeline is not None:
            self.timeline.bump("l1d_access", k, cycle)

    def on_rsfail(self, kernel: int, cycle: int) -> None:
        self.bundle.limiter.note_rsfail(kernel)

    def _on_meminst_complete(self, inst: MemInst, cycle: int) -> None:
        state = self.kstate[inst.kernel]
        state.inflight_minsts -= 1
        self.bundle.limiter.observe_inflight(inst.kernel, state.inflight_minsts)
        warp = inst.warp
        if not inst.is_store:
            warp.note_load_done(cycle)
            if warp.stream.next_op is None and not warp.outstanding_loads:
                self._finish_warp(warp)
            else:
                # The returned load may unblock an MLP-capped warp the
                # scheduler's sleep hint knows nothing about.
                warp.sched.wake_at(warp.ready_at)

    # ------------------------------------------------------------------
    def resident_warps(self) -> int:
        return self._used_warps
