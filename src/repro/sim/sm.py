"""The Streaming Multiprocessor: issue logic, execution units, TB
residency, and the scheme hooks.

Per cycle each SM:

1. launches at most one pending thread block (respecting the CKE
   layer's per-kernel TB limits and the Table 1 static resources);
2. lets every warp scheduler select a candidate; compute candidates
   issue immediately (per-scheduler ALU port, shared SFU port), memory
   candidates compete for the single LSU issue slot, arbitrated by the
   configured BMI policy and gated by the MIL limiter and the SMK
   quota gate;
3. ticks the LSU (one L1D request, or a stall).

The SM reports all scheme-relevant events (requests, reservation
failures, in-flight counts) to its :class:`~repro.core.SchemeBundle`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.config import GPUConfig
from repro.core.arbiter import SchemeBundle
from repro.mem.cache import L1DCache
from repro.sim.lsu import LoadStoreUnit
from repro.sim.scheduler import Selection, WarpScheduler
from repro.sim.stats import KernelStats, TimelineRecorder
from repro.sim.warp import MemInst, ThreadBlock, Warp
from repro.workloads.kernel import OP_ALU, OP_SFU, OP_STORE


class SMKernelState:
    """Per-SM runtime state for one resident kernel."""

    __slots__ = ("tb_limit", "tb_count", "inflight_minsts", "resident_warps")

    def __init__(self, tb_limit: int):
        self.tb_limit = tb_limit
        self.tb_count = 0
        self.inflight_minsts = 0
        self.resident_warps = 0


class StreamingMultiprocessor:
    """One SM instance."""

    def __init__(self, sm_id: int, config: GPUConfig, l1: L1DCache,
                 launches: List, bundle: SchemeBundle,
                 kernel_stats: Dict[int, KernelStats],
                 timeline: Optional[TimelineRecorder] = None):
        self.sm_id = sm_id
        self.config = config
        self.l1 = l1
        self.launches = launches
        self.bundle = bundle
        self.kernel_stats = kernel_stats
        self.timeline = timeline

        self.lsu = LoadStoreUnit(sm_id, l1, width=config.lsu_width)
        self.schedulers = [WarpScheduler(i, config.scheduler_policy)
                           for i in range(config.schedulers_per_sm)]
        self.kstate: Dict[int, SMKernelState] = {
            launch.slot: SMKernelState(launch.tb_limits[sm_id])
            for launch in launches
        }
        self._launch_by_slot = {launch.slot: launch for launch in launches}

        # Static resource bookkeeping.
        self._used_threads = 0
        self._used_warps = 0
        self._used_regs = 0
        self._used_smem = 0
        self._used_tbs = 0

        self._warp_age = 0
        self._next_tb_id = 0
        self._sched_rr = 0
        self._launch_rr = 0
        self._sfu_used = False
        self.alu_busy = 0
        self.sfu_busy = 0

    # ------------------------------------------------------------------
    # thread block launch
    def _fits(self, launch) -> bool:
        cfg = self.config
        profile = launch.profile
        warps = profile.warps_per_tb(cfg.warp_size)
        return (
            self._used_tbs + 1 <= cfg.max_tbs_per_sm
            and self._used_threads + profile.threads_per_tb <= cfg.max_threads_per_sm
            and self._used_warps + warps <= cfg.max_warps_per_sm
            and self._used_regs + profile.regs_per_thread * profile.threads_per_tb
                <= cfg.registers_per_sm
            and self._used_smem + profile.smem_per_tb <= cfg.smem_per_sm
        )

    def try_launch_tb(self, cycle: int) -> None:
        """Launch at most one TB, round-robin over kernels."""
        n = len(self.launches)
        if not n:
            return
        start = self._launch_rr
        for offset in range(n):
            launch = self.launches[(start + offset) % n]
            state = self.kstate[launch.slot]
            if state.tb_count >= state.tb_limit:
                continue
            if not self._fits(launch):
                continue
            self._launch_rr = (start + offset + 1) % n
            self._launch(launch, cycle)
            return

    def _launch(self, launch, cycle: int) -> None:
        cfg = self.config
        profile = launch.profile
        tb = ThreadBlock(self._next_tb_id, launch.slot, profile)
        self._next_tb_id += 1
        warps_per_tb = profile.warps_per_tb(cfg.warp_size)
        for _ in range(warps_per_tb):
            warp_index = launch.next_warp_index()
            stream = launch.new_stream(warp_index)
            warp = Warp(warp_index, launch.slot, tb, stream, self._warp_age,
                        mlp=profile.mlp)
            warp.ready_at = cycle + 1
            self._warp_age += 1
            tb.warps.append(warp)
            tb.live_warps += 1
            # Balance warps across schedulers.
            sched = min(self.schedulers, key=lambda s: len(s.warps))
            sched.add_warp(warp)
        state = self.kstate[launch.slot]
        state.tb_count += 1
        state.resident_warps += warps_per_tb
        self._used_tbs += 1
        self._used_threads += profile.threads_per_tb
        self._used_warps += warps_per_tb
        self._used_regs += profile.regs_per_thread * profile.threads_per_tb
        self._used_smem += profile.smem_per_tb
        self.kernel_stats[launch.slot].tbs_launched += 1

    def _retire_tb(self, tb: ThreadBlock) -> None:
        profile = tb.profile
        warps_per_tb = len(tb.warps)
        state = self.kstate[tb.kernel_slot]
        state.tb_count -= 1
        state.resident_warps -= warps_per_tb
        self._used_tbs -= 1
        self._used_threads -= profile.threads_per_tb
        self._used_warps -= warps_per_tb
        self._used_regs -= profile.regs_per_thread * profile.threads_per_tb
        self._used_smem -= profile.smem_per_tb
        self.kernel_stats[tb.kernel_slot].tbs_completed += 1

    def _finish_warp(self, warp: Warp) -> None:
        for sched in self.schedulers:
            if warp in sched.warps:
                sched.remove_warp(warp)
                break
        warp.tb.note_warp_done()
        if warp.tb.done:
            self._retire_tb(warp.tb)

    # ------------------------------------------------------------------
    # issue
    def tick(self, cycle: int) -> None:
        bundle = self.bundle
        if bundle.ucp is not None:
            bundle.ucp.tick(cycle)
        self.try_launch_tb(cycle)
        self._sfu_used = False

        gate = bundle.smk_gate
        limiter = bundle.limiter
        lsu_free = self.lsu.can_accept()

        def mem_ok(warp: Warp, op: str) -> bool:
            k = warp.kernel_slot
            if gate is not None and not gate.can_issue(k):
                return False
            return lsu_free and limiter.can_issue(k, self.kstate[k].inflight_minsts)

        def compute_ok(op: str) -> bool:
            return not (op == OP_SFU and self._sfu_used)

        def warp_gated(warp: Warp) -> bool:
            return gate is None or gate.can_issue(warp.kernel_slot)

        mem_proposals = []
        n = len(self.schedulers)
        start = self._sched_rr
        self._sched_rr = (self._sched_rr + 1) % n
        for offset in range(n):
            sched = self.schedulers[(start + offset) % n]
            sel = sched.select(cycle, mem_ok, compute_ok, warp_gated)
            if sel is None:
                continue
            if sel.is_mem:
                mem_proposals.append((sched, sel))
            else:
                self._issue_compute(sched, sel.warp, sel.op, cycle)

        if mem_proposals:
            kernels = [sel.warp.kernel_slot for _, sel in mem_proposals]
            winner = bundle.mem_policy.pick(kernels)
            for idx, (sched, sel) in enumerate(mem_proposals):
                if idx == winner:
                    self._issue_mem(sched, sel.warp, sel.op, cycle)
                elif sel.fallback is not None and compute_ok(sel.fallback_op):
                    self._issue_compute(sched, sel.fallback, sel.fallback_op, cycle)

        self.lsu.tick(cycle, self)

        if gate is not None:
            resident = [k for k, st in self.kstate.items() if st.resident_warps]
            if resident:
                gate.maybe_reset(resident)

    def _issue_compute(self, sched: WarpScheduler, warp: Warp, op: str,
                       cycle: int) -> None:
        warp.stream.pop()
        k = warp.kernel_slot
        stats = self.kernel_stats[k]
        stats.warp_insts += 1
        if op == OP_SFU:
            stats.sfu_insts += 1
            self.sfu_busy += 1
            self._sfu_used = True
            warp.ready_at = cycle + 4
        else:
            stats.alu_insts += 1
            self.alu_busy += 1
            warp.ready_at = cycle + 1
        sched.note_issued(warp)
        if self.bundle.smk_gate is not None:
            self.bundle.smk_gate.note_issue(k)
        if self.timeline is not None:
            self.timeline.bump("insts", k, cycle)
        if warp.retired:
            self._finish_warp(warp)

    def _issue_mem(self, sched: WarpScheduler, warp: Warp, op: str,
                   cycle: int) -> None:
        warp.stream.pop()
        k = warp.kernel_slot
        is_store = op == OP_STORE
        desc = warp.stream.memory_descriptor(is_store)
        launch = self._launch_by_slot[k]
        lines = tuple(launch.base_line + line for line in desc.lines)
        inst = MemInst(warp, lines, is_store, cycle, self._on_meminst_complete)
        state = self.kstate[k]
        state.inflight_minsts += 1
        self.bundle.limiter.observe_inflight(k, state.inflight_minsts)
        self.bundle.mem_policy.note_mem_inst(k)
        self.lsu.enqueue(inst)

        stats = self.kernel_stats[k]
        stats.warp_insts += 1
        stats.mem_insts += 1
        if is_store:
            warp.ready_at = cycle + 1
        else:
            warp.note_load_issued(cycle)
        sched.note_issued(warp)
        if self.bundle.smk_gate is not None:
            self.bundle.smk_gate.note_issue(k)
        if self.timeline is not None:
            self.timeline.bump("insts", k, cycle)
        if warp.retired:
            self._finish_warp(warp)

    # ------------------------------------------------------------------
    # scheme event hooks (called by the LSU)
    def on_request_issued(self, request, result: str, cycle: int) -> None:
        k = request.kernel
        state = self.kstate[k]
        self.bundle.limiter.note_request(k, state.inflight_minsts)
        self.bundle.mem_policy.note_request(k)
        if self.bundle.ucp is not None and not request.is_write:
            self.bundle.ucp.observe(k, request.line)
        self.kernel_stats[k].mem_requests += 1
        if self.timeline is not None:
            self.timeline.bump("l1d_access", k, cycle)

    def on_rsfail(self, kernel: int, cycle: int) -> None:
        self.bundle.limiter.note_rsfail(kernel)

    def _on_meminst_complete(self, inst: MemInst, cycle: int) -> None:
        state = self.kstate[inst.kernel]
        state.inflight_minsts -= 1
        self.bundle.limiter.observe_inflight(inst.kernel, state.inflight_minsts)
        warp = inst.warp
        if not inst.is_store:
            warp.note_load_done(cycle)
            if warp.retired:
                self._finish_warp(warp)

    # ------------------------------------------------------------------
    def resident_warps(self) -> int:
        return self._used_warps
