"""The Streaming Multiprocessor: issue logic, execution units, TB
residency, and the scheme hooks.

Per cycle each SM:

1. launches at most one pending thread block (respecting the CKE
   layer's per-kernel TB limits and the Table 1 static resources);
2. lets every warp scheduler select a candidate; compute candidates
   issue immediately (per-scheduler ALU port, shared SFU port), memory
   candidates compete for the single LSU issue slot, arbitrated by the
   configured BMI policy and gated by the MIL limiter and the SMK
   quota gate;
3. ticks the LSU (one L1D request, or a stall).

The SM reports all scheme-relevant events (requests, reservation
failures, in-flight counts) to its :class:`~repro.core.SchemeBundle`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import GPUConfig
from repro.core.arbiter import SchemeBundle
from repro.core.bmi import MemIssuePolicy, UnmanagedIssue
from repro.core.mil import MemInstLimiter, NoLimit
from repro.mem.cache import L1DCache
from repro.obs.stalls import (
    ISSUED,
    KERNEL_NONE,
    STALL_BMI_LOSS,
    STALL_EXEC_PORT,
    STALL_LSU_FULL,
    STALL_MIL_CAPPED,
    STALL_NO_WARP,
    STALL_OTHER,
    STALL_SCOREBOARD,
    STALL_SMK_GATE,
)
from repro.sim.lsu import LoadStoreUnit
from repro.sim.scheduler import NEVER, WarpScheduler
from repro.sim.stats import KernelStats, TimelineRecorder
from repro.sim.warp import MemInst, ThreadBlock, Warp
from repro.workloads.kernel import OP_ALU, OP_SFU, OP_STORE


class SMKernelState:
    """Per-SM runtime state for one resident kernel."""

    __slots__ = ("tb_limit", "tb_count", "inflight_minsts", "resident_warps")

    def __init__(self, tb_limit: int):
        self.tb_limit = tb_limit
        self.tb_count = 0
        self.inflight_minsts = 0
        self.resident_warps = 0


class StreamingMultiprocessor:
    """One SM instance."""

    def __init__(self, sm_id: int, config: GPUConfig, l1: L1DCache,
                 launches: List, bundle: SchemeBundle,
                 kernel_stats: Dict[int, KernelStats],
                 timeline: Optional[TimelineRecorder] = None,
                 fastpath: bool = True, obs=None, wheel=None, pool=None):
        self.sm_id = sm_id
        self.config = config
        self.l1 = l1
        self.launches = launches
        self.bundle = bundle
        self.kernel_stats = kernel_stats
        self.timeline = timeline
        #: observability collector (None = zero-cost sentinel checks).
        self._obs = obs
        #: engine event wheel (None for standalone SMs): sleep
        #: decisions and external wakes post their cycles here so the
        #: engine's cycle leap sees a global next-event time.
        self._wheel = wheel
        #: per-tick scratch for stall attribution: scheduler id ->
        #: issuing kernel, and scheduler id -> kernel that lost the
        #: BMI arbitration without a compute fallback.
        self._obs_issued: Dict[int, int] = {}
        self._obs_lost: Dict[int, int] = {}

        self.lsu = LoadStoreUnit(sm_id, l1, width=config.lsu_width)
        self.lsu._obs = obs
        # Shared request pool: selects the LSU's struct-of-arrays tick
        # (``l1`` is then a PooledL1DCache).  None keeps the object path.
        self.lsu.pool = pool
        # Bind the resolved tick implementation once — the per-cycle
        # call in tick() then skips the pool dispatch check.
        self._lsu_tick = (self.lsu._tick_pooled if pool is not None
                          else self.lsu.tick)
        # The stall-replay memo is a fast-loop trick; the reference
        # loop stays the plain implementation the memo is validated
        # against (bit-identity is asserted in tests/test_fastpath.py).
        self.lsu.use_stall_memo = fastpath
        self.schedulers = [WarpScheduler(i, config.scheduler_policy,
                                         fastpath=fastpath)
                           for i in range(config.schedulers_per_sm)]
        for sched in self.schedulers:
            sched.sm = self
        self.kstate: Dict[int, SMKernelState] = {
            launch.slot: SMKernelState(launch.tb_limits[sm_id])
            for launch in launches
        }
        #: kstate as a list — the slot set is fixed for the whole run,
        #: so per-tick iteration avoids rebuilding a dict view.
        self._kstate_items = list(self.kstate.items())
        self._launch_by_slot = {launch.slot: launch for launch in launches}
        # The bypass set is fixed per run: give the LSU a plain dict
        # instead of a per-request predicate call.
        self.lsu.bypass_by_kernel = {
            launch.slot: bundle.bypasses_l1d(launch.slot)
            for launch in launches
        }

        # Static resource bookkeeping.
        self._used_threads = 0
        self._used_warps = 0
        self._used_regs = 0
        self._used_smem = 0
        self._used_tbs = 0

        self._warp_age = 0
        self._next_tb_id = 0
        self._sched_rr = 0
        self._launch_rr = 0
        self._sfu_used = False
        self.alu_busy = 0
        self.sfu_busy = 0

        # Hot-loop state for the issue callbacks (set per tick) plus
        # bound-method references so tick() allocates no closures.
        # LSU occupancy and MIL verdicts depend only on the kernel slot
        # and on state that is frozen during the selection phase, so
        # the fast path resolves them once per tick into _mem_ok_now
        # instead of re-deriving them per candidate warp.  The SMK gate
        # is NOT frozen — compute issues during the scheduler loop
        # consume quota via note_issue — so gate verdicts are always
        # queried live, exactly as the reference closures do.
        self._fastpath = fastpath
        # The SMK gate is fixed for the run; callbacks read it through
        # this alias (kept for the standalone-SM test setups that
        # construct the SM without a bundle gate).
        self._gate = bundle.smk_gate
        self._lsu_free = True
        self._mem_ok_now: Dict[int, bool] = {}
        # With no SMK gate and an unlimited MIL, the per-kernel verdict
        # collapses to "is the LSU free": keep both constant answer
        # maps prebuilt and just point _mem_ok_now at the right one.
        self._limiter_unlimited = isinstance(bundle.limiter, NoLimit)
        # Baseline runs leave every scheme observation hook at its
        # empty base-class implementation; detecting that once lets
        # the per-issue and per-request paths skip the calls outright
        # (a pure no-op either way, so both loops take the same skip).
        lim_cls = type(bundle.limiter)
        pol_cls = type(bundle.mem_policy)
        self._mem_hooks_inert = (
            lim_cls.note_request is MemInstLimiter.note_request
            and lim_cls.note_rsfail is MemInstLimiter.note_rsfail
            and lim_cls.observe_inflight is MemInstLimiter.observe_inflight
            and pol_cls.note_mem_inst is MemIssuePolicy.note_mem_inst
            and pol_cls.note_request is MemIssuePolicy.note_request
            and bundle.ucp is None
        )
        # Everything the pooled LSU tick's per-call checks depend on
        # (hook inertness, timeline, obs) is fixed for the run:
        # resolve them into the LSU once instead of per cycle.
        self.lsu._inline_stats = (
            kernel_stats
            if self._mem_hooks_inert and timeline is None else None)
        self.lsu._defer_ok = obs is None and self._mem_hooks_inert
        #: the baseline policy's pick is pure "first proposer wins":
        #: skip the candidate-list build and the dispatch entirely.
        self._pick_trivial = pol_cls.pick is UnmanagedIssue.pick
        self._ok_all = {launch.slot: True for launch in launches}
        self._ok_none = {launch.slot: False for launch in launches}
        # Scheduler issue orders for each round-robin start, prebuilt.
        nsched = len(self.schedulers)
        self._sched_orders = [
            tuple(self.schedulers[(s + o) % nsched] for o in range(nsched))
            for s in range(nsched)
        ]
        self._mem_ok_cb = self._mem_ok
        self._mem_ok_gated_cb = self._mem_ok_gated
        self._compute_ok_cb = self._compute_ok
        self._warp_gated_cb = self._warp_gated
        #: True while a TB-launch scan is known to be futile; cleared
        #: whenever residency or a TB limit changes.
        self._launch_blocked = False
        #: whole-SM sleep: while ``cycle < _sleep_until`` the entire
        #: tick is provably a no-op and is skipped.  Eligible under
        #: GTO and LRR with no UCP (UCP ticks its epoch counter every
        #: cycle).  LRR's only per-cycle state is the rotation
        #: position, which tick() catches up from the cycle gap —
        #: select() advances it exactly once per call whenever the
        #: scheduler owns warps, so skipped cycles owe one advance
        #: each.
        self._sleep_until = 0
        self._last_tick = -1
        self._sleep_eligible = (fastpath
                                and config.scheduler_policy in ("gto", "lrr")
                                and bundle.ucp is None)
        self._lrr = config.scheduler_policy == "lrr"
        # Run-constant scheme components, hoisted out of tick().
        self._ucp = bundle.ucp
        self._smk_gate = bundle.smk_gate
        self._limiter = bundle.limiter
        #: issue autopilot eligibility (see WarpScheduler._auto_warp):
        #: after a compute issue the greedy warp's run of consecutive
        #: ALU ops is issued one per cycle without re-running select().
        #: Bursts bypass _issue_compute's gate/timeline/obs hooks, so
        #: autopilot only arms when all of those are provably inert,
        #: and only under GTO (the burst relies on the greedy warp
        #: holding priority[0] between issues).
        self._auto_ok = (fastpath
                         and config.scheduler_policy == "gto"
                         and bundle.smk_gate is None
                         and timeline is None
                         and obs is None)
        # Scheme window boundaries (DMIL limit recompute, QBMI quota
        # replenish, Req/Minst refresh) change issue eligibility with
        # no scheduler wake attached: register them as conservative
        # wheel re-evaluation points so the cycle leap can never jump
        # past one.  (Gated warps also keep their SM awake, so these
        # posts are belt-and-braces; a stale post costs at most one
        # inert tick.)
        limiter = bundle.limiter
        milgs = getattr(limiter, "milgs", None)
        if milgs is None:
            shared = getattr(limiter, "shared", None)
            if shared is not None:
                milgs = getattr(shared, "milgs", None)
        if milgs:
            for milg in milgs:
                milg.on_window = self._note_scheme_window
        policy = bundle.mem_policy
        estimators = getattr(policy, "estimators", None)
        if estimators:
            for est in estimators:
                est.on_window = self._note_scheme_window
        if hasattr(policy, "on_window"):
            policy.on_window = self._note_scheme_window

    # ------------------------------------------------------------------
    # thread block launch
    def _fits(self, launch) -> bool:
        cfg = self.config
        profile = launch.profile
        warps = profile.warps_per_tb(cfg.warp_size)
        return (
            self._used_tbs + 1 <= cfg.max_tbs_per_sm
            and self._used_threads + profile.threads_per_tb <= cfg.max_threads_per_sm
            and self._used_warps + warps <= cfg.max_warps_per_sm
            and self._used_regs + profile.regs_per_thread * profile.threads_per_tb
                <= cfg.registers_per_sm
            and self._used_smem + profile.smem_per_tb <= cfg.smem_per_sm
        )

    def try_launch_tb(self, cycle: int) -> None:
        """Launch at most one TB, round-robin over kernels.

        A failed scan is remembered (``_launch_blocked``): launchability
        only changes when a TB retires or a TB limit is reconfigured,
        both of which clear the flag, so blocked cycles skip the scan
        (fast path only; the reference loop always rescans).
        """
        if self._launch_blocked and self._fastpath:
            return
        n = len(self.launches)
        if not n:
            return
        start = self._launch_rr
        for offset in range(n):
            launch = self.launches[(start + offset) % n]
            state = self.kstate[launch.slot]
            if state.tb_count >= state.tb_limit:
                continue
            if not self._fits(launch):
                continue
            self._launch_rr = (start + offset + 1) % n
            self._launch(launch, cycle)
            return
        self._launch_blocked = True

    def _launch(self, launch, cycle: int) -> None:
        cfg = self.config
        profile = launch.profile
        tb = ThreadBlock(self._next_tb_id, launch.slot, profile)
        self._next_tb_id += 1
        warps_per_tb = profile.warps_per_tb(cfg.warp_size)
        for _ in range(warps_per_tb):
            warp_index = launch.next_warp_index()
            stream = launch.new_stream(warp_index)
            warp = Warp(warp_index, launch.slot, tb, stream, self._warp_age,
                        mlp=profile.mlp)
            warp.ready_at = cycle + 1
            self._warp_age += 1
            tb.warps.append(warp)
            tb.live_warps += 1
            # Balance warps across schedulers.
            sched = min(self.schedulers, key=lambda s: len(s.warps))
            sched.add_warp(warp)
        state = self.kstate[launch.slot]
        state.tb_count += 1
        state.resident_warps += warps_per_tb
        self._used_tbs += 1
        self._used_threads += profile.threads_per_tb
        self._used_warps += warps_per_tb
        self._used_regs += profile.regs_per_thread * profile.threads_per_tb
        self._used_smem += profile.smem_per_tb
        self.kernel_stats[launch.slot].tbs_launched += 1

    def _retire_tb(self, tb: ThreadBlock) -> None:
        profile = tb.profile
        warps_per_tb = len(tb.warps)
        state = self.kstate[tb.kernel_slot]
        state.tb_count -= 1
        state.resident_warps -= warps_per_tb
        self._used_tbs -= 1
        self._used_threads -= profile.threads_per_tb
        self._used_warps -= warps_per_tb
        self._used_regs -= profile.regs_per_thread * profile.threads_per_tb
        self._used_smem -= profile.smem_per_tb
        self._launch_blocked = False
        # Freed residency may admit a new TB: resume ticking.
        self._sleep_until = 0
        self.kernel_stats[tb.kernel_slot].tbs_completed += 1

    def _finish_warp(self, warp: Warp) -> None:
        # The owning scheduler is recorded on the warp at add_warp
        # time, so retirement needs no scan over schedulers.
        warp.sched.remove_warp(warp)
        warp.tb.note_warp_done()
        if warp.tb.done:
            self._retire_tb(warp.tb)

    # ------------------------------------------------------------------
    # issue
    def _mem_ok(self, warp: Warp, op: str) -> bool:
        return self._mem_ok_now[warp.kernel_slot]

    def _mem_ok_gated(self, warp: Warp, op: str) -> bool:
        # Gate queried live: quota may have been consumed by an issue
        # earlier in this same cycle's scheduler loop.
        k = warp.kernel_slot
        return self._mem_ok_now[k] and self._gate.can_issue(k)

    def _compute_ok(self, op: str) -> bool:
        return not (op == OP_SFU and self._sfu_used)

    def _warp_gated(self, warp: Warp) -> bool:
        return self._gate.can_issue(warp.kernel_slot)

    def tick(self, cycle: int) -> None:
        if cycle < self._sleep_until:
            # Whole-SM sleep (see __init__): nothing can launch, issue
            # or drain before _sleep_until; external events lower it.
            return
        last = self._last_tick
        self._last_tick = cycle
        if self._fastpath and cycle - last > 1:
            # The scheduler round-robin start advances once per cycle
            # in the reference loop, including cycles a sleeping SM
            # skipped: catch the rotation phase up so arbitration
            # order stays bit-identical.  Under LRR each scheduler's
            # rotation position advances once per select() call while
            # it owns warps — including the sleep-hint early-outs the
            # skipped cycles would have taken — so it owes the same
            # catch-up.
            gap = cycle - last - 1
            self._sched_rr = (self._sched_rr + gap) % len(self.schedulers)
            if self._lrr:
                for sched in self.schedulers:
                    if sched.warps:
                        sched._lrr_pos += gap
            else:
                # Burst sleep catch-up: each slept cycle issued exactly
                # one ALU per mid-burst scheduler (the sleep horizon was
                # capped at every burst's remaining length, and any
                # event that could break a burst early lowers
                # _sleep_until to its own cycle — see
                # _on_meminst_complete — so the premise held for the
                # whole gap).  Pay the deferred per-issue bookkeeping in
                # one batch; the warp's stale ready_at is harmless (the
                # burst step below and note_load_done compare it
                # against ``cycle`` the same way a per-cycle value
                # would).
                for sched in self.schedulers:
                    left = sched._auto_left
                    if left:
                        stats = sched._auto_stats
                        stats.warp_insts += gap
                        stats.alu_insts += gap
                        self.alu_busy += gap
                        sched._auto_left = left - gap
        fastpath = self._fastpath
        if self._ucp is not None:
            self._ucp.tick(cycle)
        if not (self._launch_blocked and fastpath):
            # Inlined try_launch_tb fast-out: a blocked scan stays
            # blocked until residency or a limit changes.
            self.try_launch_tb(cycle)
        self._sfu_used = False

        gate = self._smk_gate
        lsu = self.lsu
        self._lsu_free = lsu_free = len(lsu.queue) < lsu.queue_depth
        if fastpath:
            # Resolve the per-kernel can-issue verdicts once: the gate,
            # the limiter and the LSU occupancy are all frozen during
            # the selection phase, and all their predicates are pure.
            # ``mem_ok=None`` is the scheduler's "nothing mem can
            # issue" sentinel — the memory-pipeline-stall case, where
            # per-warp callback dispatch would be pure overhead.
            if gate is None:
                # With no SMK gate every warp is ungated; passing None
                # lets the scheduler skip the per-warp check entirely.
                warp_gated = None
                if not lsu_free:
                    mem_ok = None
                elif self._limiter_unlimited:
                    # ``mem_ok=True`` sentinel: every kernel may issue
                    # — the scheduler skips callback dispatch entirely.
                    mem_ok = True
                else:
                    # The limiter kind is fixed per run, so _mem_ok_now
                    # still points at its own mutable dict here.
                    limiter = self._limiter
                    ok = self._mem_ok_now
                    for k, st in self._kstate_items:
                        ok[k] = limiter.can_issue(k, st.inflight_minsts)
                    mem_ok = self._mem_ok_cb
            else:
                warp_gated = self._warp_gated_cb
                if lsu_free:
                    limiter = self._limiter
                    ok = self._mem_ok_now
                    for k, st in self._kstate_items:
                        ok[k] = limiter.can_issue(k, st.inflight_minsts)
                    mem_ok = self._mem_ok_gated_cb
                else:
                    mem_ok = None
            compute_ok = self._compute_ok_cb
        else:
            # Reference loop: allocate the callbacks as per-cycle
            # closures, the straightforward implementation the fast
            # path is benchmarked against.
            limiter = self.bundle.limiter
            lsu_free = self._lsu_free

            def mem_ok(warp: Warp, op: str) -> bool:
                k = warp.kernel_slot
                if gate is not None and not gate.can_issue(k):
                    return False
                return lsu_free and limiter.can_issue(
                    k, self.kstate[k].inflight_minsts)

            def compute_ok(op: str) -> bool:
                return not (op == OP_SFU and self._sfu_used)

            def warp_gated(warp: Warp) -> bool:
                return gate is None or gate.can_issue(warp.kernel_slot)

        mem_proposals = None
        n = len(self.schedulers)
        start = self._sched_rr
        self._sched_rr = (start + 1) % n
        for sched in self._sched_orders[start]:
            if sched._auto_left:
                # Issue autopilot: the greedy warp's precompiled run of
                # consecutive ALU ops issues one instruction per cycle
                # without re-running selection — provably what select()
                # would pick (see WarpScheduler._auto_warp).  Armed
                # only when gate/timeline/obs are inert (_auto_ok), so
                # this inlines exactly _issue_compute's live effects.
                warp = sched._auto_warp
                if warp.ready_at <= cycle:
                    # The stream was advanced past the whole run at
                    # arming time, so a burst pop is pure bookkeeping.
                    stats = sched._auto_stats
                    stats.warp_insts += 1
                    stats.alu_insts += 1
                    self.alu_busy += 1
                    warp.ready_at = cycle + 1
                    left = sched._auto_left - 1
                    sched._auto_left = left
                    if not left:
                        sched._auto_warp = None
                        stream = warp.stream
                        if stream.next_op is None:
                            if not warp.outstanding_loads:
                                self._finish_warp(warp)
                            else:
                                sched.scan_block(warp)
                    continue
                # A returned load raised the warp's scoreboard past
                # this cycle (Warp.note_load_done): select() would now
                # skip it and may pick a different warp, so the burst
                # premise is gone — disarm, give the unissued remainder
                # of the pre-advanced run back to the stream, and fall
                # through to the normal selection path.
                sched._auto_warp = None
                warp.stream.rewind_alu(sched._auto_left)
                sched._auto_left = 0
            if fastpath:
                if cycle < sched._next_wake:
                    # select()'s latency-sleep early-out, inlined to
                    # save the call: every warp is blocked until
                    # _next_wake, so select would return None (LRR
                    # still owes its per-call rotation).
                    if self._lrr and sched.warps:
                        sched._lrr_pos += 1
                    continue
                if (mem_ok is None and sched._mem_stalled
                        and cycle < sched._mem_wake):
                    # Memory-pipeline stall memo: the LSU is still
                    # full and every ready warp still holds a memory
                    # instruction (see WarpScheduler._mem_stalled) —
                    # select() would provably return None.  Keep LRR's
                    # once-per-call rotation exactly as that call
                    # would have.
                    if self._lrr and sched.warps:
                        sched._lrr_pos += 1
                    continue
                # compute_ok=None: every port free (no SFU issued yet
                # this cycle) — the scheduler skips the callback.
                sel = sched.select(
                    cycle, mem_ok,
                    compute_ok if self._sfu_used else None, warp_gated)
            else:
                sel = sched.select(cycle, mem_ok, compute_ok, warp_gated)
            if sel is None:
                continue
            if sel.is_mem:
                if mem_proposals is None:
                    mem_proposals = [(sched, sel)]
                else:
                    mem_proposals.append((sched, sel))
            else:
                self._issue_compute(sched, sel.warp, sel.op, cycle)

        if mem_proposals is not None:
            if self._pick_trivial:
                winner = 0
            else:
                kernels = [sel.warp.kernel_slot for _, sel in mem_proposals]
                winner = self.bundle.mem_policy.pick(kernels)
            for idx, (sched, sel) in enumerate(mem_proposals):
                if idx == winner:
                    self._issue_mem(sched, sel.warp, sel.op, cycle)
                elif sel.fallback is not None and compute_ok(sel.fallback_op):
                    self._issue_compute(sched, sel.fallback, sel.fallback_op, cycle)
                elif self._obs is not None:
                    self._obs_lost[sched.sched_id] = sel.warp.kernel_slot

        if self._obs is not None:
            self._obs_account(self._obs, cycle)
        self._lsu_tick(cycle, self)

        if gate is not None:
            resident = [k for k, st in self.kstate.items() if st.resident_warps]
            if resident:
                gate.maybe_reset(resident)
        elif (self._sleep_eligible and self._launch_blocked
                and not self.lsu.queue):
            # Every scheduler is either mid-ALU-burst (autopilot) or its
            # latest scan found nothing latency-ready (future hint), no
            # TB can launch and the LSU is drained: the SM's next ticks
            # are fully determined — each slept cycle issues exactly one
            # ALU per bursting scheduler and nothing else.  Sleep until
            # the earliest of the burst ends and the scheduler wakes;
            # the wake-up tick pays the slept issues in one batch (see
            # the catch-up above).  A load return that would break a
            # burst early lowers _sleep_until to its own cycle
            # (_on_meminst_complete), so the burst premise provably
            # holds for every slept cycle.  (A mid-burst scheduler's
            # _next_wake is <= its arming cycle, so bursts contribute
            # their end cycle here instead.)
            wake = NEVER
            for sched in self.schedulers:
                left = sched._auto_left
                nw = (cycle + left) if left else sched._next_wake
                if nw < wake:
                    wake = nw
            if wake > cycle + 1:
                self._sleep_until = wake
                wheel = self._wheel
                if wheel is not None and wake < NEVER:
                    # Post the wake so the engine's leap target covers
                    # this SM; a NEVER wake needs no entry (only an
                    # external event — which posts its own cycle — can
                    # rouse the SM).
                    wheel.post(wake)

    def _issue_compute(self, sched: WarpScheduler, warp: Warp, op: str,
                       cycle: int) -> None:
        stream = warp.stream
        k = warp.kernel_slot
        stats = self.kernel_stats[k]
        stats.warp_insts += 1
        armed = False
        if op is OP_ALU:
            stats.alu_insts += 1
            self.alu_busy += 1
            warp.ready_at = cycle + 1
            if self._auto_ok:
                # This warp is now the greedy warp; if its (precompiled)
                # stream continues with a run of ALU ops, arm the issue
                # autopilot to burn the run down without reselection.
                # The fused pop advances past the whole run up front
                # (one call instead of one pop per burst cycle); a
                # mid-burst disarm rewinds the unissued remainder.
                # Pre-advancing leaves ``next_op`` pointing past the
                # run for the rest of the burst, so it is only allowed
                # when no in-flight load of this warp could observe
                # that future state through ``_on_meminst_complete`` —
                # i.e. when the warp has no outstanding loads
                # (``allow_end``), or when the run provably leaves more
                # work (``next_op`` non-None), which is all the
                # completion path inspects.
                run = stream.pop_alu_burst(not warp.outstanding_loads)
                if run:
                    sched._auto_warp = warp
                    sched._auto_left = run
                    sched._auto_stats = stats
                    armed = True
            else:
                stream.pop()
        else:
            stream.pop()
            stats.sfu_insts += 1
            self.sfu_busy += 1
            self._sfu_used = True
            warp.ready_at = cycle + 4
        sched.note_issued(warp)
        gate = self._gate
        if gate is not None:
            gate.note_issue(k)
        if self.timeline is not None:
            self.timeline.bump("insts", k, cycle)
        if self._obs is not None:
            self._obs_issued[sched.sched_id] = k
            self._obs.issue_event(self.sm_id, sched.sched_id, k, op, cycle)
        # An armed burst defers the drain check to its last pop (the
        # pre-advanced ``next_op`` may already read as drained).
        if not armed and stream.next_op is None:
            if not warp.outstanding_loads:
                self._finish_warp(warp)
            else:
                # Drained but loads still in flight: off-scan until the
                # last return retires it.
                sched.scan_block(warp)

    def _issue_mem(self, sched: WarpScheduler, warp: Warp, op: str,
                   cycle: int) -> None:
        stream = warp.stream
        k = warp.kernel_slot
        is_store = op == OP_STORE
        # Lines are already rebased into global line space by the
        # stream (see KernelLaunch.new_stream); for replay streams this
        # is a fresh slice, for live streams a fresh pattern list —
        # safe to hand to the MemInst without copying.
        lines = stream.pop_mem(is_store)
        inst = MemInst(warp, lines, is_store, cycle,
                       self._on_meminst_complete)
        state = self.kstate[k]
        state.inflight_minsts += 1
        if not self._mem_hooks_inert:
            bundle = self.bundle
            bundle.limiter.observe_inflight(k, state.inflight_minsts)
            bundle.mem_policy.note_mem_inst(k)
        self.lsu.enqueue(inst)

        stats = self.kernel_stats[k]
        stats.warp_insts += 1
        stats.mem_insts += 1
        # Inlined Warp.note_load_issued (stores just set the scoreboard).
        if not is_store:
            warp.outstanding_loads += 1
        warp.ready_at = cycle + 1
        sched.note_issued(warp)
        gate = self._gate
        if gate is not None:
            gate.note_issue(k)
        if self.timeline is not None:
            self.timeline.bump("insts", k, cycle)
        if self._obs is not None:
            self._obs_issued[sched.sched_id] = k
            self._obs.issue_event(self.sm_id, sched.sched_id, k, op, cycle)
        # Scan-list upkeep (one transition max per issue): a drained
        # warp retires or waits out its loads off-scan; a load that
        # filled the MLP complement blocks the warp until a return
        # (scan_unblock in _on_meminst_complete).
        if stream.next_op is None:
            if not warp.outstanding_loads:
                self._finish_warp(warp)
            else:
                sched.scan_block(warp)
        elif not is_store and warp.outstanding_loads >= warp.mlp:
            sched.scan_block(warp)

    # ------------------------------------------------------------------
    # stall attribution (observability; never reached with obs off)
    def _obs_account(self, obs, cycle: int) -> None:
        """Classify every scheduler's issue-slot outcome this cycle.

        An issuing scheduler counts as ``issued``; a non-issuing one is
        attributed to the reason its highest-priority latency-ready
        warp (the warp the hardware would have issued) could not go —
        see :mod:`repro.obs.stalls` for the taxonomy.  Residual
        same-cycle races (e.g. a gate quota consumed between selection
        and attribution) land in ``other``.

        ``obs`` is the already-guarded sentinel: the caller only
        reaches here under ``if self._obs is not None``.
        """
        table = obs.stalls
        sm_id = self.sm_id
        issued = self._obs_issued
        lost = self._obs_lost
        for sched in self.schedulers:
            sid = sched.sched_id
            k = issued.get(sid)
            if k is not None:
                table.bump_sched(sm_id, sid, k, ISSUED)
                continue
            k = lost.get(sid)
            if k is not None:
                table.bump_sched(sm_id, sid, k, STALL_BMI_LOSS)
                continue
            warp, op, status = sched.first_ready(cycle)
            if status == "empty":
                table.bump_sched(sm_id, sid, KERNEL_NONE, STALL_NO_WARP)
                continue
            k = warp.kernel_slot
            if status == "blocked":
                table.bump_sched(sm_id, sid, k, STALL_SCOREBOARD)
                continue
            # A latency-ready warp had work but nothing issued: pin the
            # denial on the gate, the port, or the memory pipeline.
            gate = self._gate
            if gate is not None and not gate.can_issue(k):
                reason = STALL_SMK_GATE
            elif op == OP_SFU or op == OP_ALU:
                reason = (STALL_EXEC_PORT
                          if op == OP_SFU and self._sfu_used
                          else STALL_OTHER)
            elif not self._lsu_free:
                reason = STALL_LSU_FULL
            elif not self.bundle.limiter.can_issue(
                    k, self.kstate[k].inflight_minsts):
                reason = STALL_MIL_CAPPED
            else:
                reason = STALL_OTHER
            table.bump_sched(sm_id, sid, k, reason)
        issued.clear()
        lost.clear()

    # ------------------------------------------------------------------
    # scheme event hooks (called by the LSU)
    def _note_scheme_window(self) -> None:
        """A scheme window boundary fired (DMIL limit recompute, QBMI
        quota replenish, Req/Minst refresh): post a conservative
        re-evaluation point to the event wheel so the engine's cycle
        leap re-checks issue eligibility on the next cycle.
        ``_last_tick`` never exceeds the current cycle, so the post is
        never late; an early (stale) post costs one inert tick."""
        wheel = self._wheel
        if wheel is not None:
            wheel.post(self._last_tick + 1)

    def on_request_issued(self, request, result: str, cycle: int) -> None:
        self.on_request_issued_values(request.kernel, request.line,
                                      request.is_write, result, cycle)

    def on_request_issued_values(self, kernel: int, line: int,
                                 is_write: bool, result: str,
                                 cycle: int) -> None:
        """:meth:`on_request_issued` over scalars — the pooled LSU path
        already holds the request fields unpacked, so no request object
        (or slot view) needs materialising per issue."""
        k = kernel
        if not self._mem_hooks_inert:
            state = self.kstate[k]
            self.bundle.limiter.note_request(k, state.inflight_minsts)
            self.bundle.mem_policy.note_request(k)
            if self.bundle.ucp is not None and not is_write:
                self.bundle.ucp.observe(k, line)
        self.kernel_stats[k].mem_requests += 1
        if self.timeline is not None:
            self.timeline.bump("l1d_access", k, cycle)

    def on_rsfail(self, kernel: int, cycle: int) -> None:
        if not self._mem_hooks_inert:
            self.bundle.limiter.note_rsfail(kernel)

    def _on_meminst_complete(self, inst: MemInst, cycle: int) -> None:
        state = self.kstate[inst.kernel]
        state.inflight_minsts -= 1
        if not self._mem_hooks_inert:
            self.bundle.limiter.observe_inflight(inst.kernel,
                                                 state.inflight_minsts)
        warp = inst.warp
        if not inst.is_store:
            warp.note_load_done(cycle)
            if warp.stream.next_op is None and not warp.outstanding_loads:
                self._finish_warp(warp)
            else:
                # The returned load may unblock an MLP-capped warp the
                # scheduler's sleep hint knows nothing about.  Crossing
                # back below the MLP cap restores scan-list membership
                # (the exact inverse of the scan_block at issue).
                if (warp.outstanding_loads == warp.mlp - 1
                        and warp.stream.next_op is not None):
                    warp.sched.scan_unblock(warp)
                sched = warp.sched
                sched.wake_at(warp.ready_at)
                if sched._auto_warp is warp and cycle < self._sleep_until:
                    # The return just raised the bursting warp's
                    # scoreboard: the burst disarms THIS cycle and the
                    # freed issue slot may go to another warp, so a
                    # burst-sleeping SM must tick at ``cycle`` itself
                    # (wake_at above only wakes it at ready_at).
                    self._sleep_until = cycle

    # ------------------------------------------------------------------
    def _settle_sleep_debt(self, end: int) -> None:
        """Settle burst-sleep accounting when the run ends mid-sleep.

        A burst-sleeping SM defers its per-cycle issue bookkeeping to
        the wake-up tick's catch-up; if the run's final cycle falls
        inside the sleep window that tick never comes, so result
        collection pays the issues for the slept cycles here (exactly
        the cycles ``last_tick+1 .. min(end, _sleep_until)-1``, each of
        which issued one ALU per mid-burst scheduler).  Idempotent via
        the ``_last_tick`` advance; a no-op for idle sleeps and awake
        SMs (nothing armed, or an empty gap)."""
        horizon = self._sleep_until
        if horizon > end:
            horizon = end
        gap = horizon - self._last_tick - 1
        if gap <= 0:
            return
        for sched in self.schedulers:
            left = sched._auto_left
            if left:
                stats = sched._auto_stats
                stats.warp_insts += gap
                stats.alu_insts += gap
                self.alu_busy += gap
                sched._auto_left = left - gap
                sched._auto_warp.ready_at = horizon
        self._last_tick = horizon - 1

    # ------------------------------------------------------------------
    def resident_warps(self) -> int:
        return self._used_warps
