"""Cycle-level SM core model: warps, GTO/LRR schedulers, execution
units, the LSU memory pipeline, and the top-level GPU engine."""

from repro.sim.stats import KernelStats, RunResult, TimelineRecorder
from repro.sim.warp import MemInst, ThreadBlock, Warp
from repro.sim.scheduler import WarpScheduler
from repro.sim.lsu import LoadStoreUnit
from repro.sim.sm import StreamingMultiprocessor
from repro.sim.engine import GPU, KernelLaunch

__all__ = [
    "KernelStats",
    "RunResult",
    "TimelineRecorder",
    "MemInst",
    "ThreadBlock",
    "Warp",
    "WarpScheduler",
    "LoadStoreUnit",
    "StreamingMultiprocessor",
    "GPU",
    "KernelLaunch",
]
