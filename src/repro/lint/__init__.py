"""repro.lint — AST-based simulator-invariant linter.

The simulator's headline guarantees — fast loop bit-identical to the
reference loop, obs-on bit-identical to obs-off, parallel campaigns
bit-identical to serial — rest on coding invariants no unit test can
watch everywhere: deterministic iteration order, sentinel-guarded
observability hooks, taxonomy-closed stall accounting, picklable
process-boundary classes.  This package machine-checks them:

* :mod:`repro.lint.rules.determinism` — ``REPRO-D001..D004``;
* :mod:`repro.lint.rules.hooks` — ``REPRO-O001``;
* :mod:`repro.lint.rules.stats` — ``REPRO-S001..S003``;
* :mod:`repro.lint.rules.pickles` — ``REPRO-P001``.

Run it as ``python -m repro lint [paths]`` (see
:mod:`repro.lint.cli`), or drive the pieces directly::

    from repro.lint import LintEngine, all_rules
    findings = LintEngine("/repo").lint_paths(["src"])
"""

from repro.lint.baseline import Baseline
from repro.lint.engine import (DEFAULT_EXCLUDE_DIRS, FileContext, LintEngine,
                               PARSE_ERROR_RULE, lint_paths)
from repro.lint.findings import Finding
from repro.lint.output import (format_catalog, format_github, format_json,
                               format_text, render)
from repro.lint.rules import Rule, all_rules, normalize_rule_id, rules_by_id

__all__ = [
    "Baseline",
    "DEFAULT_EXCLUDE_DIRS",
    "FileContext",
    "Finding",
    "LintEngine",
    "PARSE_ERROR_RULE",
    "Rule",
    "all_rules",
    "format_catalog",
    "format_github",
    "format_json",
    "format_text",
    "lint_paths",
    "normalize_rule_id",
    "render",
    "rules_by_id",
]
