"""repro.lint — AST-based simulator-invariant linter.

The simulator's headline guarantees — fast loop bit-identical to the
reference loop, obs-on bit-identical to obs-off, parallel campaigns
bit-identical to serial — rest on coding invariants no unit test can
watch everywhere: deterministic iteration order, sentinel-guarded
observability hooks, taxonomy-closed stall accounting, picklable
process-boundary classes.  This package machine-checks them:

* :mod:`repro.lint.rules.determinism` — ``REPRO-D001..D004``;
* :mod:`repro.lint.rules.hooks` — ``REPRO-O001``;
* :mod:`repro.lint.rules.stats` — ``REPRO-S001..S003``;
* :mod:`repro.lint.rules.pickles` — ``REPRO-P001``.

On top of the per-file rules sits a **two-phase whole-program
analyzer** (``--project``): :mod:`repro.lint.project` distills every
file into a cached module summary and :mod:`repro.lint.callgraph`
resolves a conservative call graph over them, powering the
interprocedural families:

* :mod:`repro.lint.rules.wheel` — ``REPRO-W001/W002`` (event-wheel
  discipline: every leap-visible mutation discharges a wheel post);
* :mod:`repro.lint.rules.shared_state` — ``REPRO-R001/R002``
  (module/class state written worker-side but read parent-side);
* :mod:`repro.lint.rules.drift` — ``REPRO-S004/S005`` (cross-module
  stall-reason resolution + taxonomy drift).

Run it as ``python -m repro lint [paths] [--project]`` (see
:mod:`repro.lint.cli`), or drive the pieces directly::

    from repro.lint import LintEngine, all_rules
    findings = LintEngine("/repo").lint_project(["src"])
"""

from repro.lint.baseline import Baseline
from repro.lint.callgraph import CallGraph
from repro.lint.engine import (DEFAULT_EXCLUDE_DIRS, FileContext, LintEngine,
                               PARSE_ERROR_RULE, ProjectReporter, lint_paths)
from repro.lint.findings import Finding
from repro.lint.output import (format_catalog, format_github, format_json,
                               format_text, render)
from repro.lint.project import (INDEX_VERSION, ProjectContext, ProjectIndex,
                                build_index, default_cache_path,
                                summarize_source)
from repro.lint.rules import (ProjectRule, Rule, all_rules,
                              normalize_rule_id, rules_by_id)
from repro.lint.scope import (SIM_SCOPE, SRC_SCOPE, collect_py_files,
                              path_in_scope, rel_posix)

__all__ = [
    "Baseline",
    "CallGraph",
    "DEFAULT_EXCLUDE_DIRS",
    "FileContext",
    "Finding",
    "INDEX_VERSION",
    "LintEngine",
    "PARSE_ERROR_RULE",
    "ProjectContext",
    "ProjectIndex",
    "ProjectReporter",
    "ProjectRule",
    "Rule",
    "SIM_SCOPE",
    "SRC_SCOPE",
    "all_rules",
    "build_index",
    "collect_py_files",
    "default_cache_path",
    "format_catalog",
    "format_github",
    "format_json",
    "format_text",
    "lint_paths",
    "normalize_rule_id",
    "path_in_scope",
    "rel_posix",
    "render",
    "rules_by_id",
    "summarize_source",
]
