"""REPRO-O0xx — sentinel-hook discipline.

The observability layer's zero-cost contract (PR 2) is that every
instrumentation hook in the simulator hot paths costs exactly one
attribute test when observability is off: hook calls are written

    if self._obs is not None:
        self._obs.issue_event(...)

or through a local alias::

    obs = self._obs
    ...
    if obs is not None:
        obs.lsu_rsfail(...)

**REPRO-O001** enforces that contract structurally: inside the
simulator packages, every *use* of an obs sentinel (an attribute access
or call **through** ``X._obs`` / ``X.obs`` or a local bound to one)
must be dominated by an ``is not None`` guard on that same sentinel.
Bare loads of the sentinel itself — aliasing it into a local, passing
it as an argument, comparing it against ``None`` — are free.

The dominance analysis is a conservative per-function walk that
understands:

* ``if S is not None: ...`` bodies (and ``elif`` arms);
* early exits — ``if S is None: return/raise/continue/break`` guards
  the rest of the block, including ``or``-chains of None-checks;
* ``and``-chains — ``S is not None and S.hook()``;
* conditional expressions — ``S.x() if S is not None else y``;
* truthiness guards (``if S:``) as an accepted spelling;
* alias assignment (``obs = self._obs``) with guard transfer, and
  reassignment of the sentinel clearing its guard.

Anything the analysis cannot prove is reported; restructure so the
guard dominates, or pragma a deliberate exception with
``# repro-lint: disable=REPRO-O001 (reason)``.
"""

from __future__ import annotations

import ast
from typing import Optional, Set, Tuple

from repro.lint.rules import Rule, SIM_SCOPE, expr_key

#: attribute names treated as observability sentinels.
SENTINEL_ATTRS = ("_obs", "obs")

#: statements that terminate a block on every path.
_TERMINATORS = (ast.Return, ast.Raise, ast.Continue, ast.Break)


class UnguardedHookRule(Rule):
    """REPRO-O001: obs hook uses must be sentinel-guarded."""

    id = "REPRO-O001"
    name = "unguarded-obs-hook"
    rationale = (
        "An obs hook call not dominated by an `is not None` check on "
        "its sentinel either crashes with observability off or forces "
        "hot paths to pay for instrumentation unconditionally — both "
        "break the zero-cost-hooks contract the obs-on/obs-off "
        "bit-identity proof relies on.")
    hint = ("guard with `if self._obs is not None:` (or alias "
            "`obs = self._obs` and guard the alias), or pass the "
            "already-guarded sentinel in as a parameter")
    scope = SIM_SCOPE
    bad = "self._obs.issue_event(sm, sched, k, op, cycle)"
    good = ("if self._obs is not None:\n"
            "    self._obs.issue_event(sm, sched, k, op, cycle)")

    def check(self, tree: ast.AST, ctx) -> None:
        # The block walk recurses into nested functions and class
        # bodies itself, so one top-level walk covers the whole module.
        _GuardWalker(ctx).run_block(getattr(tree, "body", []))


class _GuardWalker:
    """One function body's conservative dominance walk."""

    def __init__(self, ctx):
        self.ctx = ctx
        #: local names currently bound to a sentinel.
        self.aliases: Set[str] = set()

    # ------------------------------------------------------------------
    def run(self, fn) -> None:
        self.aliases = set()
        self._block(fn.body, set())

    def run_block(self, body) -> None:
        self.aliases = set()
        self._block(list(body), set())

    # ------------------------------------------------------------------
    # sentinel identification
    def _sentinel_key(self, node: ast.AST) -> Optional[str]:
        """Canonical key when ``node`` *is* a sentinel expression."""
        if isinstance(node, ast.Attribute) and node.attr in SENTINEL_ATTRS:
            return expr_key(node)
        if isinstance(node, ast.Name) and node.id in self.aliases:
            return node.id
        return None

    # ------------------------------------------------------------------
    # guard extraction from a test expression
    def _guards(self, test: ast.AST) -> Tuple[Set[str], Set[str]]:
        """(keys non-None when test is true, keys non-None when false)."""
        pos: Set[str] = set()
        neg: Set[str] = set()
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            left, op, right = test.left, test.ops[0], test.comparators[0]
            operand = None
            if isinstance(right, ast.Constant) and right.value is None:
                operand = left
            elif isinstance(left, ast.Constant) and left.value is None:
                operand = right
            if operand is not None:
                key = self._sentinel_key(operand)
                if key is not None:
                    if isinstance(op, ast.IsNot):
                        pos.add(key)
                    elif isinstance(op, ast.Is):
                        neg.add(key)
        elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            p, n = self._guards(test.operand)
            pos, neg = n, p
        elif isinstance(test, ast.BoolOp):
            parts = [self._guards(value) for value in test.values]
            if isinstance(test.op, ast.And):
                # All conjuncts hold when the test passes.
                for p, _n in parts:
                    pos |= p
            else:
                # `X is None or Y is None` failing proves both non-None.
                for _p, n in parts:
                    neg |= n
        else:
            key = self._sentinel_key(test)
            if key is not None:
                pos.add(key)  # truthiness guard
        return pos, neg

    # ------------------------------------------------------------------
    # statement walk
    def _block(self, stmts, guarded: Set[str]) -> bool:
        """Walk a statement list; returns True when every path through
        it terminates (return/raise/continue/break)."""
        guarded = set(guarded)
        for st in stmts:
            if isinstance(st, _TERMINATORS):
                if isinstance(st, ast.Return) and st.value is not None:
                    self._scan(st.value, guarded)
                if isinstance(st, ast.Raise):
                    if st.exc is not None:
                        self._scan(st.exc, guarded)
                    if st.cause is not None:
                        self._scan(st.cause, guarded)
                return True
            if isinstance(st, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                self._assign(st, guarded)
            elif isinstance(st, ast.If):
                pos, neg = self._guards(st.test)
                self._scan(st.test, guarded)
                body_term = self._block(st.body, guarded | pos)
                else_term = (self._block(st.orelse, guarded | neg)
                             if st.orelse else False)
                if body_term:
                    guarded |= neg
                if st.orelse and else_term:
                    guarded |= pos
                if body_term and st.orelse and else_term:
                    return True
            elif isinstance(st, (ast.While,)):
                pos, _neg = self._guards(st.test)
                self._scan(st.test, guarded)
                self._block(st.body, guarded | pos)
                self._block(st.orelse, guarded)
            elif isinstance(st, ast.For):
                self._scan(st.iter, guarded)
                self._block(st.body, guarded)
                self._block(st.orelse, guarded)
            elif isinstance(st, ast.With):
                for item in st.items:
                    self._scan(item.context_expr, guarded)
                self._block(st.body, guarded)
            elif isinstance(st, ast.Try):
                self._block(st.body, guarded)
                for handler in st.handlers:
                    self._block(handler.body, guarded)
                self._block(st.orelse, guarded)
                self._block(st.finalbody, guarded)
            elif isinstance(st, ast.Expr):
                self._scan(st.value, guarded)
            elif isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _GuardWalker(self.ctx).run(st)
            elif isinstance(st, ast.ClassDef):
                for inner in st.body:
                    if isinstance(inner, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)):
                        _GuardWalker(self.ctx).run(inner)
            elif isinstance(st, (ast.Assert, ast.Delete, ast.Global,
                                 ast.Nonlocal, ast.Import, ast.ImportFrom,
                                 ast.Pass)):
                pass
            else:
                for child in ast.iter_child_nodes(st):
                    if isinstance(child, ast.expr):
                        self._scan(child, guarded)
        return False

    def _assign(self, st, guarded: Set[str]) -> None:
        value = getattr(st, "value", None)
        targets = (st.targets if isinstance(st, ast.Assign)
                   else [st.target])
        if value is not None:
            skey = self._sentinel_key(value)
            if (skey is not None and isinstance(st, ast.Assign)
                    and len(targets) == 1
                    and isinstance(targets[0], ast.Name)):
                # Alias binding: `obs = self._obs`.  The bare sentinel
                # load on the right-hand side is free; guard status
                # transfers to the alias.
                name = targets[0].id
                self.aliases.add(name)
                if skey in guarded:
                    guarded.add(name)
                else:
                    guarded.discard(name)
                return
            self._scan(value, guarded)
        for target in targets:
            if isinstance(target, ast.Name):
                # Rebinding a local kills any alias/guard it carried.
                self.aliases.discard(target.id)
                guarded.discard(target.id)
            elif isinstance(target, ast.Attribute):
                if target.attr in SENTINEL_ATTRS:
                    key = expr_key(target)
                    if key is not None:
                        guarded.discard(key)
                # Target chains (`a.b[c].d = x`) may still *use* a
                # sentinel on the way to the attribute.
                self._scan(target.value, guarded)
            else:
                self._scan(target, guarded)

    # ------------------------------------------------------------------
    # expression scan
    def _scan(self, node: ast.AST, guarded: Set[str]) -> None:
        if node is None:
            return
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
            acc = set(guarded)
            for value in node.values:
                self._scan(value, acc)
                pos, _neg = self._guards(value)
                acc |= pos
            return
        if isinstance(node, ast.IfExp):
            pos, neg = self._guards(node.test)
            self._scan(node.test, guarded)
            self._scan(node.body, guarded | pos)
            self._scan(node.orelse, guarded | neg)
            return
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            key = self._sentinel_key(node.value)
            if key is not None and key not in guarded:
                self.ctx.report(
                    node,
                    f"use of obs sentinel `{key}` (`.{node.attr}`) is not "
                    f"dominated by an `is not None` guard")
        if isinstance(node, ast.Call):
            key = self._sentinel_key(node.func)
            if key is not None and key not in guarded:
                self.ctx.report(
                    node,
                    f"call through obs sentinel `{key}` is not dominated "
                    f"by an `is not None` guard")
        for child in ast.iter_child_nodes(node):
            self._scan(child, guarded)
