"""REPRO-S004/S005 — registry/taxonomy drift (whole-program).

The per-file stat rules (REPRO-S001/S002) can only judge *literals*
against the taxonomy imported at lint time.  Two drift classes escape
them: a reason spelled through a constant defined in another module
(the per-file rule must skip non-literals), and the taxonomy modules
themselves drifting (a membership tuple referencing a constant that no
longer exists, or declaring a leaf twice).  These project rules close
both holes by *proving the chain through the index*:

* **REPRO-S004** — every non-literal ``bump_sched``/``bump_lsu`` reason
  and ``log_adapt`` mechanism argument that resolves (cross-module,
  through imports) to a string constant must resolve to a declared
  taxonomy member.  Unresolvable arguments (parameters, computed
  values) are skipped — the runtime exact-sum tests own those.
* **REPRO-S005** — the declared taxonomy itself must be internally
  consistent (membership-tuple elements resolve, no duplicate leaves),
  and every literal registry leaf bumped under an ``issue.`` /
  ``stall.`` / ``phase.`` / ``adapt.`` segment anywhere in the project
  must be a declared leaf *of the indexed taxonomy source* — so
  deleting a leaf from ``repro.obs.stalls`` immediately flags every
  site still bumping it.

Both rules read the taxonomy out of the indexed
``repro.obs.stalls`` / ``repro.obs.timeline`` sources when those
modules are part of the run (the cross-module proof), falling back to
importing the real modules for partial runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.lint.project import HOLE, ProjectIndex
from repro.lint.rules import SRC_SCOPE, ProjectRule

#: reason-call method -> taxonomy family label.
_METHOD_FAMILY = {
    "bump_sched": "scheduler stall",
    "bump_lsu": "LSU stall",
    "log_adapt": "adaptation mechanism",
}


class _Taxonomy:
    """The declared stall/mechanism/leaf sets, plus where each
    membership tuple lives (for reporting drift inside the taxonomy
    modules themselves)."""

    def __init__(self) -> None:
        self.families: Dict[str, Set[str]] = {}
        #: leaf segment -> allowed leaves (issue/stall/phase/adapt).
        self.segment_leaves: Dict[str, Set[str]] = {}
        #: (rel_path, tuple name, lineno, values-with-None-holes)
        self.tuples: List[Tuple[str, str, int, List[Optional[str]]]] = []
        self.from_index = False


def _tuple_values(index: ProjectIndex, msum: dict, name: str,
                  tax: _Taxonomy) -> List[str]:
    values = index.resolve_tuple_values(msum, name)
    if values is None:
        return []
    tax.tuples.append((msum["rel_path"], name,
                       msum["tuple_constants"][name]["lineno"], values))
    return [v for v in values if v is not None]


def load_taxonomy(index: ProjectIndex) -> _Taxonomy:
    tax = _Taxonomy()
    stalls = index.module("repro.obs.stalls")
    timeline = index.module("repro.obs.timeline")
    if stalls is not None and timeline is not None:
        tax.from_index = True
        sched = set(_tuple_values(index, stalls,
                                  "SCHED_STALL_REASONS", tax))
        issued = stalls["str_constants"].get("ISSUED")
        if issued is not None:
            sched.add(issued)
        lsu = set(_tuple_values(index, stalls, "LSU_STALL_REASONS", tax))
        adapt = set(_tuple_values(index, timeline,
                                  "ADAPT_MECHANISMS", tax))
        phase_leaves = set(_tuple_values(index, timeline,
                                         "PHASE_REGISTRY_LEAVES", tax))
        adapt_leaves = set(_tuple_values(index, timeline,
                                         "ADAPT_REGISTRY_LEAVES", tax))
    else:
        from repro.obs.stalls import (ISSUED, LSU_STALL_REASONS,
                                      SCHED_STALL_REASONS)
        from repro.obs.timeline import (ADAPT_MECHANISMS,
                                        ADAPT_REGISTRY_LEAVES,
                                        PHASE_REGISTRY_LEAVES)
        sched = set(SCHED_STALL_REASONS) | {ISSUED}
        lsu = set(LSU_STALL_REASONS)
        adapt = set(ADAPT_MECHANISMS)
        phase_leaves = set(PHASE_REGISTRY_LEAVES)
        adapt_leaves = set(ADAPT_REGISTRY_LEAVES)
    tax.families = {
        "scheduler stall": sched,
        "LSU stall": lsu,
        "adaptation mechanism": adapt,
    }
    tax.segment_leaves = {
        "issue": sched | lsu,
        "stall": sched | lsu,
        "phase": phase_leaves,
        "adapt": adapt_leaves,
    }
    return tax


class ReasonResolutionRule(ProjectRule):
    """REPRO-S004: constant-valued reasons must resolve into the
    taxonomy."""

    id = "REPRO-S004"
    name = "reason-resolution"
    rationale = (
        "The per-file stall-reason check must skip non-literal "
        "arguments, so a constant defined in another module with an "
        "off-taxonomy value sails through and silently breaks the "
        "exact-sum invariant.  Resolving the constant chain through "
        "the project index closes that hole.")
    hint = ("make the constant's value a declared taxonomy member, or "
            "add the new class to repro.obs.stalls / repro.obs.timeline "
            "and its reports")
    scope = SRC_SCOPE
    bad = ('MY_REASON = "warp_jam"          # not in the taxonomy\n'
           "table.bump_sched(sm, sched, k, MY_REASON)")
    good = "table.bump_sched(sm, sched, k, STALL_SCOREBOARD)"

    def check_project(self, project, reporter) -> None:
        index = project.index
        tax = load_taxonomy(index)
        for rel, msum, fsum in index.functions():
            for method, key, _value, lineno, col in fsum["reason_calls"]:
                if key is None:
                    continue  # literal: the per-file REPRO-S002 owns it
                family = _METHOD_FAMILY[method]
                resolved = index.resolve_str_constant(msum, key)
                if resolved is None:
                    continue  # parameter / computed: runtime tests own it
                allowed = tax.families[family]
                if resolved not in allowed:
                    reporter.report(
                        self, rel, lineno, col,
                        f"{key} resolves to {resolved!r}, which is not "
                        f"a declared {family} class "
                        f"({', '.join(sorted(allowed))})")


class TaxonomyDriftRule(ProjectRule):
    """REPRO-S005: the declared taxonomy must be consistent and every
    bumped leaf declared."""

    id = "REPRO-S005"
    name = "taxonomy-drift"
    rationale = (
        "The membership tuples in repro.obs.stalls / repro.obs.timeline "
        "are the single source of truth for every exact-sum report; an "
        "element that no longer resolves, a duplicated leaf, or a "
        "registry bump of a leaf the taxonomy no longer declares all "
        "mean the reports and the counters have drifted apart.")
    hint = ("keep the membership tuples and the *_REGISTRY_LEAVES in "
            "sync with the constants and every bump site")
    scope = SRC_SCOPE
    bad = ('SCHED_STALL_REASONS = (STALL_SCOREBOARD, STALL_GONE)'
           "  # STALL_GONE deleted")
    good = "SCHED_STALL_REASONS = (STALL_SCOREBOARD, ..., STALL_OTHER)"

    def check_project(self, project, reporter) -> None:
        index = project.index
        tax = load_taxonomy(index)
        # (a) internal consistency — only provable from indexed source
        for rel, name, lineno, values in tax.tuples:
            unresolved = sum(1 for v in values if v is None)
            if unresolved:
                reporter.report(
                    self, rel, lineno, 0,
                    f"{name} has {unresolved} element(s) that do not "
                    f"resolve to a string constant — deleted or renamed "
                    f"taxonomy constant?")
            dupes = sorted({v for v in values
                            if v is not None and values.count(v) > 1})
            if dupes:
                reporter.report(
                    self, rel, lineno, 0,
                    f"{name} declares duplicate leaves: "
                    f"{', '.join(dupes)}")
        # (b) every bumped literal leaf is declared
        for rel, msum, fsum in index.functions():
            for pattern, lineno, col in fsum["leaf_uses"]:
                segments = pattern.split(".")
                if len(segments) < 2 or HOLE in segments[-1]:
                    continue
                allowed = tax.segment_leaves.get(segments[-2])
                if allowed is not None and segments[-1] not in allowed:
                    source = ("indexed taxonomy source" if tax.from_index
                              else "taxonomy")
                    reporter.report(
                        self, rel, lineno, col,
                        f"leaf {segments[-1]!r} under {segments[-2]!r} "
                        f"is not declared by the {source} — removed or "
                        f"renamed leaf still being bumped")


#: rules exported to the registry, catalog order.
DRIFT_RULES: List[type] = [ReasonResolutionRule, TaxonomyDriftRule]
