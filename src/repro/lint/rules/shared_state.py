"""REPRO-R0xx — cross-process shared-state races (whole-program).

``run_jobs`` executes campaign jobs in spawned worker processes.
Spawned workers re-import every module, so *module-level mutable
objects and class-level mutable attributes are per-process copies*: a
write made worker-side never reaches the parent.  Code that writes
such state from a worker-reachable function and reads it parent-side
is therefore silently wrong — serial runs (where parent and "worker"
are the same process) stay green while parallel campaigns read stale
or empty state.  This is the poor-man's race detector for that
pattern:

* **REPRO-R001** — a module-level mutable object written from code
  reachable from a worker entry point (a function handed to
  ``pool.submit``/``pool.map`` or a pool ``initializer=``) and read
  from code that is *not* worker-reachable.
* **REPRO-R002** — the same split for class-level mutable attributes
  (shared through the class object, so equally per-process).

State that crosses the boundary deliberately goes through the
:data:`SHARED_STATE_ALLOWLIST` — the obs registry's snapshot-merge
protocol is the blessed pattern: each worker snapshots its own
registry into the picklable result, and the parent merges snapshots.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lint.rules import SRC_SCOPE, ProjectRule

#: (module, name) -> why cross-process use of this object is sound.
SHARED_STATE_ALLOWLIST: Dict[Tuple[str, str], str] = {
    ("repro.obs.registry", "_PROCESS_REGISTRY"):
        "snapshot-merge protocol: workers snapshot their own registry "
        "into the picklable RunResult and the parent merges snapshots "
        "(CounterRegistry.merge_snapshot); the object itself never "
        "crosses the boundary",
    ("repro.workloads.trace", "_COUNTERS"):
        "alias of the process registry above (trace_cache.* counters "
        "ride the same snapshot-merge protocol)",
}

_GlobalKey = Tuple[str, str]  # (module-or-relpath, object name)


def _module_key(msum: dict) -> str:
    return msum["module"] or msum["rel_path"]


def _resolve_global(index, msum: dict,
                    key: str) -> Optional[Tuple[_GlobalKey, dict, str]]:
    """Resolve a dotted write/load key to a module-level mutable:
    returns ((module, name), defining module summary, name) or None.

    Handles the three spellings: a bare/attributed name in the writing
    module itself (``_TRACES[...]``, ``_HITS.value``), access through
    a module alias (``trace._TRACES``), and a ``from m import X``
    symbol."""
    parts = key.split(".")
    root = parts[0]
    if root in ("self", "cls"):
        return None
    if root in msum["module_mutables"]:
        return (_module_key(msum), root), msum, root
    target = msum["imports"].get(root)
    if target is None:
        return None
    # module alias: trace._TRACES / trace._TRACES.value
    osum = index.module(target)
    if osum is not None and len(parts) >= 2 \
            and parts[1] in osum["module_mutables"]:
        return (_module_key(osum), parts[1]), osum, parts[1]
    # imported symbol: from repro.workloads.trace import _TRACES
    if "." in target:
        mod, _, sym = target.rpartition(".")
        osum = index.module(mod)
        if osum is not None and sym == root \
                and sym in osum["module_mutables"]:
            return (_module_key(osum), sym), osum, sym
    return None


class _SharedStateBase(ProjectRule):
    scope = SRC_SCOPE

    @staticmethod
    def _is_worker(graph, f: str) -> bool:
        return f in graph.worker_reachable()


class ModuleStateRaceRule(_SharedStateBase):
    """REPRO-R001: worker-written, parent-read module globals."""

    id = "REPRO-R001"
    name = "worker-module-state"
    rationale = (
        "Spawned run_jobs workers re-import every module, so a "
        "module-level mutable written worker-side is a per-process "
        "copy: parent-side readers see import-time state.  Serial runs "
        "mask the bug (parent == worker); parallel campaigns read "
        "stale or empty data.")
    hint = ("return the data through the job's picklable result and "
            "merge parent-side (the registry snapshot-merge protocol), "
            "or keep the object strictly worker-local")
    bad = ("_RESULTS = []\n"
           "def _worker(job): _RESULTS.append(run(job))  # worker-side\n"
           "def collect(): return _RESULTS               # parent-side")
    good = ("def _worker(job): return run(job)  # data rides the result\n"
            "def collect(pool): return list(pool.map(_worker, jobs))")

    def check_project(self, project, reporter) -> None:
        graph = project.callgraph()
        index = project.index
        worker = graph.worker_reachable()
        if not worker:
            return  # no pool usage indexed: nothing can race

        # reads of each global from non-worker-reachable functions
        # (module-level statements are import-time, not parent "reads";
        # test/script reads inspect per-process state deliberately, so
        # only shipped src/ code counts as the parent side)
        parent_reads: Dict[_GlobalKey, Tuple[str, str, int]] = {}
        for f, (rel, msum, fsum) in sorted(graph.functions.items()):
            if f in worker or fsum["name"] == "<module>" \
                    or not rel.startswith("src/"):
                continue
            for key, lineno in fsum["loads"]:
                hit = _resolve_global(index, msum, key)
                if hit is not None and hit[0] not in parent_reads:
                    parent_reads[hit[0]] = (fsum["qualname"], rel, lineno)

        for f, (rel, msum, fsum) in sorted(graph.functions.items()):
            if f not in worker:
                continue
            for key, kind, lineno, col in fsum["writes"]:
                hit = _resolve_global(index, msum, key)
                if hit is None:
                    continue
                gkey, _osum, name = hit
                if gkey in SHARED_STATE_ALLOWLIST:
                    continue
                read = parent_reads.get(gkey)
                if read is None:
                    continue
                rq, rrel, rline = read
                reporter.report(
                    self, rel, lineno, col,
                    f"{fsum['qualname']} writes module-level mutable "
                    f"{name!r} (defined in {gkey[0]}) from "
                    f"worker-reachable code, but {rq} ({rrel}:{rline}) "
                    f"reads it parent-side — worker writes never reach "
                    f"the parent process")


class ClassStateRaceRule(_SharedStateBase):
    """REPRO-R002: worker-written, parent-read class attributes."""

    id = "REPRO-R002"
    name = "worker-class-state"
    rationale = (
        "A class-level mutable attribute is shared through the class "
        "object, which spawned workers re-create per process — "
        "mutating it worker-side (cls.X / ClassName.X / self.X on a "
        "class-level container) updates the worker's copy only, while "
        "parent-side readers see the import-time value.")
    hint = ("make it an instance attribute initialised in __init__, or "
            "move the data into the job's picklable result")
    bad = ("class Runner:\n"
           "    seen = []              # class-level container\n"
           "    def work(self): self.seen.append(1)  # worker-side")
    good = ("class Runner:\n"
            "    def __init__(self): self.seen = []  # per-instance")

    def check_project(self, project, reporter) -> None:
        graph = project.callgraph()
        index = project.index
        worker = graph.worker_reachable()
        if not worker:
            return

        # (module, class, attr) -> declaration site; only attrs never
        # shadowed by a self.X = ... assignment anywhere in the class.
        declared: Dict[Tuple[str, str, str], int] = {}
        for rel, msum in index.summaries.items():
            for cname, csum in msum["classes"].items():
                for attr, lineno in csum["mutable_attrs"].items():
                    if attr not in csum["self_assigned"]:
                        declared[(_module_key(msum), cname, attr)] = lineno

        def resolve(msum: dict, fsum: dict,
                    key: str) -> Optional[Tuple[str, str, str]]:
            parts = key.split(".")
            if len(parts) < 2:
                return None
            root, attr = parts[0], parts[1]
            if root in ("self", "cls") and fsum["cls"]:
                ckey = (_module_key(msum), fsum["cls"], attr)
                return ckey if ckey in declared else None
            if root in msum["classes"]:
                ckey = (_module_key(msum), root, attr)
                return ckey if ckey in declared else None
            target = msum["imports"].get(root)
            if target and "." in target:
                mod, _, cname = target.rpartition(".")
                osum = index.module(mod)
                if osum is not None and cname in osum["classes"]:
                    ckey = (_module_key(osum), cname, attr)
                    return ckey if ckey in declared else None
            return None

        parent_reads: Dict[Tuple[str, str, str],
                           Tuple[str, str, int]] = {}
        for f, (rel, msum, fsum) in sorted(graph.functions.items()):
            if f in worker or fsum["name"] == "<module>" \
                    or not rel.startswith("src/"):
                continue
            for key, lineno in fsum["loads"]:
                ckey = resolve(msum, fsum, key)
                if ckey is not None and ckey not in parent_reads:
                    parent_reads[ckey] = (fsum["qualname"], rel, lineno)

        for f, (rel, msum, fsum) in sorted(graph.functions.items()):
            if f not in worker:
                continue
            for key, kind, lineno, col in fsum["writes"]:
                # a plain `self.X = v` rebind is an instance write, not
                # a shared mutation (and such attrs are already opted
                # out via self_assigned)
                if key.split(".")[0] == "self" \
                        and kind in ("assign",):
                    continue
                ckey = resolve(msum, fsum, key)
                if ckey is None:
                    continue
                read = parent_reads.get(ckey)
                if read is None:
                    continue
                rq, rrel, rline = read
                reporter.report(
                    self, rel, lineno, col,
                    f"{fsum['qualname']} mutates class-level attribute "
                    f"{ckey[1]}.{ckey[2]} (defined in {ckey[0]}) from "
                    f"worker-reachable code, but {rq} ({rrel}:{rline}) "
                    f"reads it parent-side — worker writes never reach "
                    f"the parent process")


#: rules exported to the registry, catalog order.
SHARED_STATE_RULES: List[type] = [ModuleStateRaceRule, ClassStateRaceRule]
