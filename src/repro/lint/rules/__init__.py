"""Rule base class, the rule registry, and shared path-scope helpers.

Every rule is a small object with catalog metadata (id, name,
rationale, fix hint, bad/good example) plus a ``check(tree, ctx)``
method that reports findings through the
:class:`~repro.lint.engine.FileContext`.  Rules are *path-scoped*: the
engine only runs a rule on files whose root-relative posix path falls
under one of the rule's ``scope`` prefixes (and under none of its
``exclude`` prefixes).  An empty ``scope`` means "every linted file".
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

# The scope constants and the prefix test live in repro.lint.scope
# (shared with the engine walk and the project indexer); re-exported
# here because every rule module spells them as `from repro.lint.rules
# import SIM_SCOPE, ...`.
from repro.lint.scope import SIM_SCOPE as SIM_SCOPE
from repro.lint.scope import SRC_SCOPE as SRC_SCOPE
from repro.lint.scope import path_in_scope as path_in_scope


class Rule:
    """One lint rule.  Subclasses fill the catalog metadata in and
    implement :meth:`check`."""

    id: str = ""
    name: str = ""
    rationale: str = ""
    hint: str = ""
    #: path prefixes the rule is active under; () = everywhere.
    scope: Tuple[str, ...] = ()
    #: path prefixes exempted even inside ``scope``.
    exclude: Tuple[str, ...] = ()
    #: catalog examples (docs / --list-rules).
    bad: str = ""
    good: str = ""

    def applies_to(self, rel_path: str) -> bool:
        if self.exclude and path_in_scope(rel_path, self.exclude):
            return False
        if not self.scope:
            return True
        return path_in_scope(rel_path, self.scope)

    def check(self, tree: ast.AST, ctx) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.id} {self.name}>"


class ProjectRule(Rule):
    """A whole-program rule: runs once over the project index instead of
    once per file.

    Project rules see the whole :class:`~repro.lint.project.ProjectIndex`
    (module symbol tables, class attribute read/write sets, the call
    graph) and report through a
    :class:`~repro.lint.engine.ProjectReporter`, which routes each
    finding to the right file context so pragmas and baselines behave
    exactly as they do for per-file rules.  ``scope`` still applies —
    it gates which *finding sites* may be reported, not which files are
    indexed (the index always covers every collected file, since a
    violation in scope may only be provable through out-of-scope
    callers)."""

    #: engine dispatch flag: ``lint_file`` skips these, ``lint_project``
    #: runs them after the index is built.
    requires_project = True

    def check(self, tree: ast.AST, ctx) -> None:
        """Per-file entry point — intentionally inert for project rules."""
        return None

    def check_project(self, index, reporter) -> None:  # pragma: no cover
        raise NotImplementedError


# ----------------------------------------------------------------------
# shared AST helpers
def expr_key(node: ast.AST) -> Optional[str]:
    """Dotted-name string for a plain ``Name``/``Attribute`` chain
    (``self._obs``, ``milg._obs``); None for anything more dynamic."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = expr_key(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def iter_scopes(tree: ast.AST) -> Iterable[Tuple[ast.AST, List[ast.stmt]]]:
    """Yield ``(scope_node, body)`` for the module and every function /
    class body, so per-scope analyses (local aliases, local set
    bindings) never leak across scope boundaries."""
    yield tree, list(getattr(tree, "body", []))
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            yield node, list(node.body)


def local_statements(body: Sequence[ast.stmt]) -> Iterable[ast.AST]:
    """Walk every node under ``body`` without descending into nested
    function/class scopes (their bodies are separate scopes)."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue  # nested scope: iter_scopes() visits it separately
        stack.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# registry
def all_rules() -> List[Rule]:
    """One fresh instance of every shipped rule, catalog order.

    Includes the project rules (REPRO-W/R/S004+): they are inert in
    per-file runs (``ProjectRule.check`` is a no-op) and only fire
    under ``repro lint --project``."""
    from repro.lint.rules.determinism import (IdOrderingRule,
                                              SetIterationRule,
                                              UnseededRandomRule,
                                              WallClockRule)
    from repro.lint.rules.drift import (ReasonResolutionRule,
                                        TaxonomyDriftRule)
    from repro.lint.rules.hooks import UnguardedHookRule
    from repro.lint.rules.pickles import ProcessBoundaryRule
    from repro.lint.rules.shared_state import (ClassStateRaceRule,
                                               ModuleStateRaceRule)
    from repro.lint.rules.stats import (CounterNameRule,
                                        ExhaustiveStallChainRule,
                                        StallReasonRule)
    from repro.lint.rules.wheel import (WheelDisciplineRule,
                                        WheelRegistryDriftRule)
    return [
        SetIterationRule(),
        UnseededRandomRule(),
        WallClockRule(),
        IdOrderingRule(),
        UnguardedHookRule(),
        CounterNameRule(),
        StallReasonRule(),
        ExhaustiveStallChainRule(),
        ProcessBoundaryRule(),
        WheelDisciplineRule(),
        WheelRegistryDriftRule(),
        ModuleStateRaceRule(),
        ClassStateRaceRule(),
        ReasonResolutionRule(),
        TaxonomyDriftRule(),
    ]


def rules_by_id(rules: Optional[Iterable[Rule]] = None) -> Dict[str, Rule]:
    return {rule.id: rule for rule in (rules or all_rules())}


def normalize_rule_id(raw: str) -> str:
    """Accept ``REPRO-D001``, ``repro-d001`` and the ``D001`` shorthand."""
    rid = raw.strip().upper()
    if rid and not rid.startswith("REPRO-") and rid != "ALL":
        rid = f"REPRO-{rid}"
    return rid
