"""Rule base class, the rule registry, and shared path-scope helpers.

Every rule is a small object with catalog metadata (id, name,
rationale, fix hint, bad/good example) plus a ``check(tree, ctx)``
method that reports findings through the
:class:`~repro.lint.engine.FileContext`.  Rules are *path-scoped*: the
engine only runs a rule on files whose root-relative posix path falls
under one of the rule's ``scope`` prefixes (and under none of its
``exclude`` prefixes).  An empty ``scope`` means "every linted file".
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: the simulator hot-path packages whose coding invariants back the
#: repo's bit-identity guarantees (fast loop == reference loop,
#: obs-on == obs-off).
SIM_SCOPE: Tuple[str, ...] = (
    "src/repro/sim",
    "src/repro/mem",
    "src/repro/core",
    "src/repro/cke",
)

#: everything shipped as library code (rules that guard repo-wide
#: invariants, e.g. RNG seeding and picklability).
SRC_SCOPE: Tuple[str, ...] = ("src/repro",)


def path_in_scope(rel_path: str, prefixes: Sequence[str]) -> bool:
    """True when ``rel_path`` (posix, root-relative) equals one of the
    ``prefixes`` or lives underneath one of them."""
    for prefix in prefixes:
        if rel_path == prefix or rel_path.startswith(prefix + "/"):
            return True
    return False


class Rule:
    """One lint rule.  Subclasses fill the catalog metadata in and
    implement :meth:`check`."""

    id: str = ""
    name: str = ""
    rationale: str = ""
    hint: str = ""
    #: path prefixes the rule is active under; () = everywhere.
    scope: Tuple[str, ...] = ()
    #: path prefixes exempted even inside ``scope``.
    exclude: Tuple[str, ...] = ()
    #: catalog examples (docs / --list-rules).
    bad: str = ""
    good: str = ""

    def applies_to(self, rel_path: str) -> bool:
        if self.exclude and path_in_scope(rel_path, self.exclude):
            return False
        if not self.scope:
            return True
        return path_in_scope(rel_path, self.scope)

    def check(self, tree: ast.AST, ctx) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.id} {self.name}>"


# ----------------------------------------------------------------------
# shared AST helpers
def expr_key(node: ast.AST) -> Optional[str]:
    """Dotted-name string for a plain ``Name``/``Attribute`` chain
    (``self._obs``, ``milg._obs``); None for anything more dynamic."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = expr_key(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def iter_scopes(tree: ast.AST) -> Iterable[Tuple[ast.AST, List[ast.stmt]]]:
    """Yield ``(scope_node, body)`` for the module and every function /
    class body, so per-scope analyses (local aliases, local set
    bindings) never leak across scope boundaries."""
    yield tree, list(getattr(tree, "body", []))
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            yield node, list(node.body)


def local_statements(body: Sequence[ast.stmt]) -> Iterable[ast.AST]:
    """Walk every node under ``body`` without descending into nested
    function/class scopes (their bodies are separate scopes)."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue  # nested scope: iter_scopes() visits it separately
        stack.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# registry
def all_rules() -> List[Rule]:
    """One fresh instance of every shipped rule, catalog order."""
    from repro.lint.rules.determinism import (IdOrderingRule,
                                              SetIterationRule,
                                              UnseededRandomRule,
                                              WallClockRule)
    from repro.lint.rules.hooks import UnguardedHookRule
    from repro.lint.rules.pickles import ProcessBoundaryRule
    from repro.lint.rules.stats import (CounterNameRule,
                                        ExhaustiveStallChainRule,
                                        StallReasonRule)
    return [
        SetIterationRule(),
        UnseededRandomRule(),
        WallClockRule(),
        IdOrderingRule(),
        UnguardedHookRule(),
        CounterNameRule(),
        StallReasonRule(),
        ExhaustiveStallChainRule(),
        ProcessBoundaryRule(),
    ]


def rules_by_id(rules: Optional[Iterable[Rule]] = None) -> Dict[str, Rule]:
    return {rule.id: rule for rule in (rules or all_rules())}


def normalize_rule_id(raw: str) -> str:
    """Accept ``REPRO-D001``, ``repro-d001`` and the ``D001`` shorthand."""
    rid = raw.strip().upper()
    if rid and not rid.startswith("REPRO-") and rid != "ALL":
        rid = f"REPRO-{rid}"
    return rid
