"""REPRO-P0xx — process-boundary picklability.

Parallel campaigns (PR 1) push jobs and results through a
``ProcessPoolExecutor``: everything listed in :data:`PICKLED_CLASSES`
crosses the worker boundary by pickling.  Lambdas, closures over local
state, and live generators do not pickle — a field holding one turns
into a ``PicklingError`` the first time a campaign runs with
``workers > 1``, which the serial test path never sees.

**REPRO-P001** statically rejects the common ways such a field
appears: a lambda / generator expression assigned at class level, in
a dataclass ``field(default=...)``, or stored on ``self`` inside a
method; and a locally ``def``-ed function (a closure) stored on
``self``.  Lambdas that are *used* transiently — sort keys, map
arguments — are fine; only bindings that persist on the instance are
flagged.
"""

from __future__ import annotations

import ast
from typing import Optional, Set

from repro.lint.rules import Rule, SRC_SCOPE

#: classes whose instances cross the run_jobs process boundary
#: (jobs out, results/heartbeats back).
PICKLED_CLASSES: Set[str] = {
    "IsoJob", "CurveJob", "MixJob", "JobHeartbeat",
    "RunResult", "ObsReport", "IsoRecord", "ScalabilityCurve",
    "WorkloadOutcome", "StallTable", "KernelStats", "TimelineRecorder",
}

_UNPICKLABLE = (ast.Lambda, ast.GeneratorExp)


def _unpicklable_reason(value: ast.AST) -> Optional[str]:
    if isinstance(value, ast.Lambda):
        return "a lambda"
    if isinstance(value, ast.GeneratorExp):
        return "a generator expression"
    if isinstance(value, ast.Call):
        func = value.func
        # dataclass field(default=<lambda>) — default_factory=<lambda> is
        # fine (the factory runs at construction; the *instance* holds
        # its result), but default= stores the lambda itself.
        if isinstance(func, ast.Name) and func.id == "field":
            for kw in value.keywords:
                if kw.arg == "default" and isinstance(kw.value, _UNPICKLABLE):
                    return "a lambda field default"
    return None


class ProcessBoundaryRule(Rule):
    """REPRO-P001: no unpicklable state on process-crossing classes."""

    id = "REPRO-P001"
    name = "process-boundary-pickle"
    rationale = (
        "Instances of the campaign job/result classes are pickled "
        "across the run_jobs worker boundary; a lambda, closure or "
        "generator stored on one raises PicklingError only when "
        "workers > 1, so serial tests stay green while parallel "
        "campaigns crash.")
    hint = ("store plain data (names, tuples, dicts) and rebuild "
            "callables worker-side; use field(default_factory=...) for "
            "mutable defaults")
    scope = SRC_SCOPE
    bad = "self.score = lambda r: r.ipc  # on a MixJob/RunResult"
    good = "self.score_field = \"ipc\"  # resolve worker-side"

    def check(self, tree: ast.AST, ctx) -> None:
        for node in ast.walk(tree):
            if (isinstance(node, ast.ClassDef)
                    and node.name in PICKLED_CLASSES):
                self._check_class(node, ctx)

    # ------------------------------------------------------------------
    def _check_class(self, cls: ast.ClassDef, ctx) -> None:
        for st in cls.body:
            if isinstance(st, (ast.Assign, ast.AnnAssign)):
                value = getattr(st, "value", None)
                if value is not None:
                    reason = _unpicklable_reason(value)
                    if reason is not None:
                        ctx.report(value,
                                   f"class {cls.name} crosses the "
                                   f"run_jobs process boundary but binds "
                                   f"{reason} at class level")
            elif isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_method(cls, st, ctx)

    def _check_method(self, cls: ast.ClassDef, fn, ctx) -> None:
        local_defs: Set[str] = {
            inner.name for inner in ast.walk(fn)
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
            and inner is not fn
        }
        for node in ast.walk(fn):
            if not isinstance(node, (ast.Assign, ast.AnnAssign,
                                     ast.AugAssign)):
                continue
            value = getattr(node, "value", None)
            if value is None:
                continue
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            if not any(self._is_self_attr(t) for t in targets):
                continue
            reason = _unpicklable_reason(value)
            if reason is None and isinstance(value, ast.Name):
                if value.id in local_defs:
                    reason = f"the locally defined closure {value.id!r}"
            if reason is not None:
                ctx.report(value,
                           f"class {cls.name} crosses the run_jobs "
                           f"process boundary but stores {reason} on "
                           f"self in {fn.name}()")

    @staticmethod
    def _is_self_attr(target: ast.AST) -> bool:
        return (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self")
