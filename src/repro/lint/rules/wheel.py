"""REPRO-W0xx — event-wheel discipline (whole-program).

The fast cycle loop leaps over quiescent stretches by asking the
:class:`~repro.sim.wheel.EventWheel` for the next posted activity
cycle.  The wheel's correctness contract says entries may be
conservative but never *missing* — and the one latent bug the repo has
shipped so far (the PR-4 DRAM-enqueue hazard) was exactly a missing
entry: a mutation of leap-visible state with no matching
``wheel.post(...)`` on the same call path, invisible to every
single-file check because the mutation and the post lived in different
functions.

These rules make that bug class un-reintroducible:

* **REPRO-W001** — every function that mutates leap-visible state (the
  attributes/queue methods declared in ``sim/wheel.py``'s
  ``LEAP_STATE_ATTRS`` / ``LEAP_QUEUE_METHODS`` registry) must
  *discharge* the mutation: the function itself (or a transitive
  callee) reaches a ``wheel.post(...)`` / ``next_activity`` recompute,
  or every caller does.  Assigning a literal ``0`` or a bare function
  parameter is exempt — those lowerings can only wake the engine
  earlier, which the leap already tolerates.  Constructors are exempt
  (the wheel does not exist before construction completes).
* **REPRO-W002** — the registry itself must not drift: an entry in
  ``LEAP_STATE_ATTRS`` / ``LEAP_QUEUE_METHODS`` that no indexed code
  ever mutates/calls is stale and silently weakens W001's coverage
  claim.  Active only when the wheel module is part of the index.

Discharge is evaluated over the name-resolved call graph, which
over-approximates callers — so W001 can demand a post from code that
would never actually run, but it can never vouch for a mutation that
lacks one.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.lint.rules import SIM_SCOPE, ProjectRule

#: functions whose leap-state mutations are construction-time
#: (the engine cannot leap before the simulation object graph exists).
_CONSTRUCTOR_NAMES = frozenset(("__init__", "__post_init__", "reset"))

#: recursion cap for the all-callers induction (beyond this the rule
#: gives up and reports — the conservative direction).
_MAX_DEPTH = 16


def _leap_registry(index):
    """(state attrs, queue methods) with reasons — from the indexed
    wheel module when present (so fixture trees can ship their own
    registry), else from the real :mod:`repro.sim.wheel`."""
    for msum in index.summaries.values():
        dicts = msum["dict_constants"]
        if "LEAP_STATE_ATTRS" in dicts and "LEAP_QUEUE_METHODS" in dicts:
            return (msum, dicts["LEAP_STATE_ATTRS"],
                    dicts["LEAP_QUEUE_METHODS"])
    return None, None, None


class WheelDisciplineRule(ProjectRule):
    """REPRO-W001: leap-visible mutations must discharge a wheel post."""

    id = "REPRO-W001"
    name = "wheel-discipline"
    rationale = (
        "The cycle leap only consults the event wheel; a function that "
        "moves a wake/service horizon or enqueues future memory work "
        "without a wheel.post(...) reachable on the same call path "
        "leaves the leap blind to that activity — the exact hazard "
        "class behind the PR-4 DRAM-enqueue bug, and invisible to any "
        "per-file check when mutation and post live in different "
        "functions.")
    hint = ("post the new horizon (wheel.post(cycle + 1) for enqueues: "
            "next_after drops entries <= now), or discharge through the "
            "caller that already posts; declare new leap-visible fields "
            "in sim/wheel.py's registry")
    scope = SIM_SCOPE
    bad = ("def enqueue_idle(self, req):\n"
           "    self.channel.enqueue(req)   # no wheel entry -> leap skips it")
    good = ("def enqueue_idle(self, req, cycle):\n"
            "    self.channel.enqueue(req)\n"
            "    self.wheel.post(cycle + 1)")

    def check_project(self, project, reporter) -> None:
        graph = project.callgraph()
        # posting-down: every function from which a wheel post is
        # reachable through call edges.  Computed as the closure of the
        # directly-posting set under "add every caller of a member"
        # (caller -> member is a call edge, so the caller reaches the
        # post through its callee).
        posting: Set[str] = {
            f for f, (_rel, _m, fsum) in graph.functions.items()
            if fsum["posts_wheel"]}
        frontier = list(posting)
        while frontier:
            f = frontier.pop()
            for caller in graph.callers.get(f, ()):
                if caller not in posting:
                    posting.add(caller)
                    frontier.append(caller)

        discharged: Dict[str, bool] = {}

        def src_callers(f: str) -> List[str]:
            """Callers that are part of the shipped simulator.  Tests
            and scripts call sim functions in isolation (no leap is
            running around them), so they neither discharge a mutation
            nor poison an otherwise-discharged one."""
            return [c for c in graph.callers.get(f, ())
                    if graph.functions[c][0].startswith("src/")]

        def discharged_up(f: str, stack: Set[str], depth: int) -> bool:
            """True when every execution of ``f`` sits under a wheel
            post: ``f`` posts (transitively down), or every caller
            does.  On-stack recursion is optimistic (a cycle whose
            every entry point discharges is fine); unexplored depth is
            pessimistic."""
            if f in posting:
                return True
            memo = discharged.get(f)
            if memo is not None:
                return memo
            if f in stack:
                return True
            if depth > _MAX_DEPTH:
                return False
            callers = src_callers(f)
            if not callers:
                discharged[f] = False
                return False
            stack.add(f)
            ok = all(discharged_up(c, stack, depth + 1) for c in callers)
            stack.discard(f)
            discharged[f] = ok
            return ok

        wheel_msum, state_attrs, queue_methods = _leap_registry(project.index)
        attr_reasons = {}
        if wheel_msum is not None:
            # reasons live as the dict values in the wheel source; the
            # summary only keeps keys, so spell a generic reason.
            attr_reasons = {k: "declared leap-visible"
                           for k in state_attrs["keys"]}

        for f, (rel, _msum, fsum) in sorted(graph.functions.items()):
            if fsum["name"] in _CONSTRUCTOR_NAMES:
                continue
            sites = [(attr, lineno, col)
                     for attr, lineno, col, vkind in fsum["leap_writes"]
                     if vkind == "other"]
            sites += [(f"{method}()", lineno, col)
                      for method, lineno, col in fsum["queue_calls"]]
            if not sites:
                continue
            if discharged_up(f, set(), 0):
                continue
            where = fsum["qualname"]
            for attr, lineno, col in sites:
                kind = ("leap-checked queue push"
                        if attr.endswith("()") else
                        attr_reasons.get(attr, "leap-visible horizon"))
                reporter.report(
                    self, rel, lineno, col,
                    f"{where} mutates {attr} ({kind}) but no wheel.post/"
                    f"next_activity recompute is reachable from it or "
                    f"from every caller — the cycle leap can skip this "
                    f"activity")


class WheelRegistryDriftRule(ProjectRule):
    """REPRO-W002: the leap-state registry must match reality."""

    id = "REPRO-W002"
    name = "wheel-registry-drift"
    rationale = (
        "REPRO-W001's coverage claim is only as good as the registry in "
        "sim/wheel.py: a declared attribute or queue method that no "
        "code ever touches means the registry has drifted from the "
        "simulator (renamed field, removed queue), and the next real "
        "leap-visible field may be missing from it.")
    hint = ("remove the stale entry, or rename it to match the field "
            "the simulator actually mutates")
    scope = ()  # the wheel module itself may live anywhere in a fixture
    bad = 'LEAP_STATE_ATTRS = {"busy_untill": "typo -> never matched"}'
    good = 'LEAP_STATE_ATTRS = {"busy_until": "DRAM service horizon"}'

    def check_project(self, project, reporter) -> None:
        wheel_msum, state_attrs, queue_methods = _leap_registry(project.index)
        if wheel_msum is None:
            return  # wheel module not indexed (partial run): inert
        mutated_attrs: Set[str] = set()
        called_methods: Set[str] = set()
        for _rel, _msum, fsum in project.index.functions():
            for key, _kind, _lineno, _col in fsum["writes"]:
                mutated_attrs.add(key.rsplit(".", 1)[-1])
            for attr, _lineno, _col, _vkind in fsum["leap_writes"]:
                mutated_attrs.add(attr)
            for key, _lineno in fsum["calls"]:
                if "." in key:
                    called_methods.add(key.rsplit(".", 1)[-1])
        rel = wheel_msum["rel_path"]
        for attr in state_attrs["keys"]:
            if attr not in mutated_attrs:
                reporter.report(
                    self, rel, state_attrs["lineno"], 0,
                    f"LEAP_STATE_ATTRS declares {attr!r} but no indexed "
                    f"code ever assigns it — stale registry entry")
        for method in queue_methods["keys"]:
            if method not in called_methods:
                reporter.report(
                    self, rel, queue_methods["lineno"], 0,
                    f"LEAP_QUEUE_METHODS declares {method!r} but no "
                    f"indexed code ever calls it — stale registry entry")


#: rules exported to the registry, catalog order.
WHEEL_RULES: List[type] = [WheelDisciplineRule, WheelRegistryDriftRule]
