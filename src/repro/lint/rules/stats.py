"""REPRO-S0xx — stat hygiene.

PR 2's stall-attribution taxonomy is *exact by construction*: every
scheduler issue slot and every stalled LSU cycle lands in exactly one
class, and the classes sum to the engine totals.  That exactness is
easy to lose through typos — a counter name that doesn't parse, a
stall-reason literal outside the taxonomy, an ``if``/``elif`` chain
that silently drops a class.  These rules machine-check it:

* **REPRO-S001** — every counter/gauge name passed to the obs registry
  as a source literal must parse as a dotted name (f-string
  placeholders count as one segment-safe token), and a literal leaf
  under an ``issue.`` / ``stall.`` segment must belong to the declared
  taxonomy; leaves under ``phase.`` / ``adapt.`` must belong to the
  phase-telemetry registry schema.
* **REPRO-S002** — stall-reason literals passed to
  ``StallTable.bump_sched`` / ``bump_lsu`` must belong to the declared
  scheduler / LSU taxonomy; mechanism literals passed to
  ``PhaseSampler.log_adapt`` must belong to the declared adaptation
  mechanisms.
* **REPRO-S003** — an ``if``/``elif`` chain that classifies into stall
  (or adaptation-mechanism) constants must be exhaustive: it needs a
  final ``else`` (the ``STALL_OTHER`` residual), otherwise
  unclassified slots silently break the exact-sum invariant.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Set

from repro.lint.rules import Rule, SRC_SCOPE, expr_key
from repro.obs.stalls import ISSUED, LSU_STALL_REASONS, SCHED_STALL_REASONS
from repro.obs.timeline import (
    ADAPT_MECHANISMS,
    ADAPT_REGISTRY_LEAVES,
    PHASE_REGISTRY_LEAVES,
)

#: registry methods whose first argument is a dotted metric name.
_REGISTRY_METHODS = frozenset(("counter", "gauge", "bump", "set", "scoped"))

#: placeholder standing in for an f-string interpolation.
_HOLE = "\x00"

_SEGMENT_RE = re.compile(r"[A-Za-z0-9_\x00]+\Z")

#: valid scheduler issue-slot outcomes (taxonomy + the issued class).
SCHED_REASONS: Set[str] = set(SCHED_STALL_REASONS) | {ISSUED}
LSU_REASONS: Set[str] = set(LSU_STALL_REASONS)
ALL_REASONS: Set[str] = SCHED_REASONS | LSU_REASONS
#: adaptation-mechanism labels (phase-telemetry event log taxonomy).
ADAPT_REASONS: Set[str] = set(ADAPT_MECHANISMS)

#: segment -> allowed literal leaves beneath it (None = any leaf from
#: ALL_REASONS; see CounterNameRule.check).
_SEGMENT_LEAVES = {
    "issue": ALL_REASONS,
    "stall": ALL_REASONS,
    "phase": set(PHASE_REGISTRY_LEAVES),
    "adapt": set(ADAPT_REGISTRY_LEAVES),
}

#: names of the taxonomy constants as they appear in source.
TAXONOMY_CONST_NAMES: Set[str] = {"ISSUED", "ADAPT_MIL", "ADAPT_QBMI"} | {
    f"STALL_{reason.upper()}" for reason in SCHED_STALL_REASONS
}

#: string literals that mark a classification chain for REPRO-S003.
CHAIN_LITERALS: Set[str] = ALL_REASONS | ADAPT_REASONS


def _literal_pattern(node: ast.AST) -> Optional[str]:
    """The string a literal produces, with f-string interpolations
    replaced by a placeholder token; None for non-literals."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: List[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            else:
                parts.append(_HOLE)
        return "".join(parts)
    return None


def _dotted_ok(pattern: str) -> bool:
    segments = pattern.split(".")
    return all(seg and _SEGMENT_RE.match(seg) for seg in segments)


class CounterNameRule(Rule):
    """REPRO-S001: registry metric names must be well-formed."""

    id = "REPRO-S001"
    name = "counter-name"
    rationale = (
        "The registry's fnmatch queries, snapshot merging and tree "
        "nesting all key on dotted names; a malformed literal silently "
        "creates an unreachable metric.  Literal leaves under issue./"
        "stall. segments must come from the declared taxonomy (and "
        "under phase./adapt. from the phase-telemetry schema) or the "
        "exact-sum reports miss them.")
    hint = ("use dot-separated [A-Za-z0-9_] segments, e.g. "
            "f\"sm{sm_id}.lsu.stall_cycles\"; spell taxonomy leaves via "
            "the repro.obs.stalls constants")
    scope = SRC_SCOPE
    bad = 'registry.counter("sm0 issue slots!")'
    good = 'registry.counter(f"sm{sm_id}.issue.slots")'

    def check(self, tree: ast.AST, ctx) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (not isinstance(func, ast.Attribute)
                    or func.attr not in _REGISTRY_METHODS or not node.args):
                continue
            receiver = expr_key(func.value) or ""
            if "trace" in receiver.lower():
                # Chrome-trace track names are display strings, not
                # registry metrics.
                continue
            pattern = _literal_pattern(node.args[0])
            if pattern is None:
                continue
            if not _dotted_ok(pattern):
                shown = pattern.replace(_HOLE, "{...}")
                ctx.report(node.args[0],
                           f"metric name {shown!r} is not a dotted name "
                           f"(segments of [A-Za-z0-9_])")
                continue
            segments = pattern.split(".")
            if len(segments) < 2 or _HOLE in segments[-1]:
                continue
            allowed_leaves = _SEGMENT_LEAVES.get(segments[-2])
            if allowed_leaves is not None \
                    and segments[-1] not in allowed_leaves:
                family = ("stall taxonomy"
                          if segments[-2] in ("issue", "stall")
                          else "phase-telemetry registry schema")
                ctx.report(node.args[0],
                           f"leaf {segments[-1]!r} under "
                           f"{segments[-2]!r} is not in the declared "
                           f"{family}")


class StallReasonRule(Rule):
    """REPRO-S002: stall-reason literals must be taxonomy members."""

    id = "REPRO-S002"
    name = "stall-reason"
    rationale = (
        "StallTable accumulates by raw reason string (and the phase "
        "sampler's adaptation log by raw mechanism string); a literal "
        "outside the taxonomy creates a class the reports never "
        "display, breaking the slots-sum-exactly invariant checked by "
        "the stall tests.")
    hint = ("use the constants from repro.obs.stalls (STALL_*, ISSUED, "
            "LSU_STALL_REASONS members) / repro.obs.timeline (ADAPT_*)")
    scope = SRC_SCOPE
    bad = 'table.bump_sched(sm, sched, k, "warp_jam")'
    good = "table.bump_sched(sm, sched, k, STALL_SCOREBOARD)"

    #: method name -> (positional index of the class argument, family).
    _SITES = {
        "bump_sched": (3, "scheduler stall"),
        "bump_lsu": (2, "LSU stall"),
        "log_adapt": (0, "adaptation mechanism"),
    }

    #: family -> (allowed class literals, keyword spelling of the arg).
    _FAMILIES = {
        "scheduler stall": (SCHED_REASONS, "reason"),
        "LSU stall": (LSU_REASONS, "reason"),
        "adaptation mechanism": (ADAPT_REASONS, "mechanism"),
    }

    def check(self, tree: ast.AST, ctx) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            site = self._SITES.get(func.attr)
            if site is None:
                continue
            index, family = site
            allowed, keyword = self._FAMILIES[family]
            reason_arg = None
            if len(node.args) > index:
                reason_arg = node.args[index]
            else:
                for kw in node.keywords:
                    if kw.arg == keyword:
                        reason_arg = kw.value
            if (isinstance(reason_arg, ast.Constant)
                    and isinstance(reason_arg.value, str)
                    and reason_arg.value not in allowed):
                ctx.report(reason_arg,
                           f"{reason_arg.value!r} is not a declared "
                           f"{family} class "
                           f"({', '.join(sorted(allowed))})")


class ExhaustiveStallChainRule(Rule):
    """REPRO-S003: stall-classification chains need an else residual."""

    id = "REPRO-S003"
    name = "stall-chain-else"
    rationale = (
        "A stall-classification if/elif chain with no else drops "
        "same-cycle races on the floor, so the per-reason counts stop "
        "summing to cycles x SMs x schedulers — the taxonomy's "
        "defining invariant.")
    hint = "end the chain with `else: reason = STALL_OTHER` (the residual)"
    scope = SRC_SCOPE
    bad = ("if gated: reason = STALL_SMK_GATE\n"
           "elif full: reason = STALL_LSU_FULL  # no else")
    good = ("if gated: reason = STALL_SMK_GATE\n"
            "elif full: reason = STALL_LSU_FULL\n"
            "else: reason = STALL_OTHER")

    def check(self, tree: ast.AST, ctx) -> None:
        heads = self._chain_heads(tree)
        for head in heads:
            branches, final_else = self._chain(head)
            targets: List[str] = []
            for body in branches:
                target = self._taxonomy_assign_target(body)
                if target is not None:
                    targets.append(target)
            if len(targets) >= 2 and not final_else:
                common = {t for t in targets if targets.count(t) >= 2}
                if common:
                    ctx.report(head,
                               f"if/elif chain assigning stall classes to "
                               f"{sorted(common)[0]!r} has no else: "
                               f"unmatched cases escape the taxonomy")

    @staticmethod
    def _chain_heads(tree: ast.AST) -> List[ast.If]:
        elifs = set()
        for node in ast.walk(tree):
            if (isinstance(node, ast.If) and len(node.orelse) == 1
                    and isinstance(node.orelse[0], ast.If)):
                elifs.add(id(node.orelse[0]))  # repro-lint: disable=REPRO-D004 (intra-walk identity only)
        return [node for node in ast.walk(tree)
                if isinstance(node, ast.If) and id(node) not in elifs]  # repro-lint: disable=REPRO-D004 (intra-walk identity only)

    @staticmethod
    def _chain(head: ast.If):
        branches = []
        node = head
        while True:
            branches.append(node.body)
            if len(node.orelse) == 1 and isinstance(node.orelse[0], ast.If):
                node = node.orelse[0]
                continue
            return branches, bool(node.orelse)

    @staticmethod
    def _taxonomy_assign_target(body) -> Optional[str]:
        for st in body:
            if (isinstance(st, ast.Assign) and len(st.targets) == 1
                    and isinstance(st.targets[0], ast.Name)):
                value = st.value
                if (isinstance(value, ast.Name)
                        and value.id in TAXONOMY_CONST_NAMES):
                    return st.targets[0].id
                if (isinstance(value, ast.Constant)
                        and isinstance(value.value, str)
                        and value.value in CHAIN_LITERALS):
                    return st.targets[0].id
        return None
