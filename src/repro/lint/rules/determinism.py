"""REPRO-D0xx — determinism rules.

The repo's headline guarantees (fast cycle loop bit-identical to the
reference loop; obs-on bit-identical to obs-off; campaign results
bit-identical serial vs parallel) all assume the simulator is a pure
function of its configuration and seed.  These rules machine-check the
coding invariants that assumption rests on:

* **REPRO-D001** — no iteration over unordered collections (``set`` /
  ``frozenset`` literals, ``set()``/``frozenset()`` calls, set
  comprehensions, ``.keys()`` views) in the simulator hot-path
  packages.  Iterate a ``sorted(...)`` wrapper or an ordered container
  instead; membership tests are fine.
* **REPRO-D002** — no shared-global-state RNG (module-level
  ``random.*`` calls, unseeded ``random.Random()``, ``np.random.*``
  globals) anywhere in ``src/repro``.  Construct
  ``random.Random(seed)`` explicitly.
* **REPRO-D003** — no wall-clock reads (``time.time`` /
  ``perf_counter`` / ``monotonic`` / ``datetime.now`` ...) outside the
  harness and the telemetry module: simulated behaviour must never
  observe host time.
* **REPRO-D004** — no ``id()`` in the simulator packages: object
  identity is allocation-order dependent, so ``id()``-keyed maps or
  sort keys are nondeterministic across runs/processes.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

from repro.lint.rules import (Rule, SIM_SCOPE, SRC_SCOPE, iter_scopes,
                              local_statements)

#: builtins whose call consumes its argument in iteration order.
_ORDER_SENSITIVE_CONSUMERS = ("list", "tuple", "enumerate", "iter",
                              "reversed")

#: ``time`` module functions that read the host clock.
_TIME_FNS = frozenset((
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns",
))

#: ``datetime``/``date`` constructors that read the host clock.
_DATETIME_FNS = frozenset(("now", "utcnow", "today"))

#: ``numpy.random`` module-level (global RNG) entry points.
_NP_GLOBAL_FNS = frozenset((
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "seed", "normal", "uniform",
))


def _setlike_reason(node: ast.AST) -> Optional[str]:
    """Why ``node`` evaluates to an unordered collection, or None."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}(...)"
        if isinstance(func, ast.Attribute) and func.attr == "keys":
            return ".keys() view"
    return None


class SetIterationRule(Rule):
    """REPRO-D001: no unordered iteration in simulator hot paths."""

    id = "REPRO-D001"
    name = "set-iteration"
    rationale = (
        "Iterating a set/frozenset (or consuming one in order) makes "
        "warp/request ordering depend on hash seeding and allocation "
        "history, silently breaking the fast-loop and obs-on/off "
        "bit-identity guarantees.")
    hint = ("wrap the collection in sorted(...) before iterating, or "
            "use an insertion-ordered container (list/dict)")
    scope = SIM_SCOPE
    bad = "for sm in {0, 1, 2}: tick(sm)"
    good = "for sm in sorted({0, 1, 2}): tick(sm)"

    def check(self, tree: ast.AST, ctx) -> None:
        for _scope, body in iter_scopes(tree):
            bindings = self._set_bindings(body)
            for node in local_statements(body):
                if isinstance(node, ast.For):
                    self._flag(ctx, node.iter, bindings, "for-loop")
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)):
                    for gen in node.generators:
                        self._flag(ctx, gen.iter, bindings, "comprehension")
                elif isinstance(node, ast.Starred):
                    self._flag(ctx, node.value, bindings, "unpacking")
                elif (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id in _ORDER_SENSITIVE_CONSUMERS
                        and node.args):
                    self._flag(ctx, node.args[0], bindings,
                               f"{node.func.id}(...)")

    @staticmethod
    def _set_bindings(body) -> Dict[str, str]:
        """Local names bound to a set-like value anywhere in scope."""
        bindings: Dict[str, str] = {}
        for node in local_statements(body):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                reason = _setlike_reason(node.value)
                if isinstance(target, ast.Name) and reason is not None:
                    bindings[target.id] = reason
        return bindings

    def _flag(self, ctx, expr: ast.AST, bindings: Dict[str, str],
              where: str) -> None:
        reason = _setlike_reason(expr)
        if reason is None and isinstance(expr, ast.Name):
            reason = bindings.get(expr.id)
            if reason is not None:
                reason = f"{expr.id!r} (bound to {reason})"
        if reason is not None:
            ctx.report(expr, f"{where} iterates {reason}: unordered "
                             f"iteration is nondeterministic")


class UnseededRandomRule(Rule):
    """REPRO-D002: no global-state or unseeded RNG in library code."""

    id = "REPRO-D002"
    name = "unseeded-random"
    rationale = (
        "Module-level random.* calls and unseeded random.Random() draw "
        "from process-global or OS-entropy state, so two runs of the "
        "same experiment diverge — reproducibility of cycle-level "
        "studies requires every RNG to be an explicitly seeded "
        "instance.")
    hint = "construct random.Random(seed) from config/profile seeds"
    scope = SRC_SCOPE
    bad = "delay = random.randint(1, 8)"
    good = "delay = self._rng.randint(1, 8)  # rng = random.Random(seed)"

    def check(self, tree: ast.AST, ctx) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                self._check_call(node, ctx)
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = [a.name for a in node.names if a.name != "Random"]
                if bad:
                    ctx.report(node,
                               f"importing {', '.join(sorted(bad))} from "
                               f"random binds the shared global RNG")

    @staticmethod
    def _check_call(node: ast.Call, ctx) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        value = func.value
        if isinstance(value, ast.Name) and value.id == "random":
            if func.attr == "Random":
                if not node.args and not node.keywords:
                    ctx.report(node, "random.Random() without a seed draws "
                                     "from OS entropy")
            else:
                ctx.report(node, f"random.{func.attr}() uses the shared "
                                 f"global RNG")
        elif (isinstance(value, ast.Attribute) and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in ("np", "numpy")
                and func.attr in _NP_GLOBAL_FNS):
            ctx.report(node, f"{value.value.id}.random.{func.attr}() uses "
                             f"numpy's global RNG")


class WallClockRule(Rule):
    """REPRO-D003: no host-clock reads in simulated code."""

    id = "REPRO-D003"
    name = "wall-clock"
    rationale = (
        "Simulated behaviour that observes host time (time.time, "
        "perf_counter, datetime.now) differs run to run; only the "
        "harness (wall-clock benchmarks) and the telemetry module "
        "(heartbeat timestamps) legitimately read clocks.")
    hint = ("thread the simulated cycle through instead; wall-clock "
            "measurement belongs in repro.harness / repro.obs.telemetry")
    scope = SRC_SCOPE
    exclude = ("src/repro/harness", "src/repro/obs/telemetry.py")
    bad = "t0 = time.perf_counter()"
    good = "started_at_cycle = cycle  # simulated time only"

    def check(self, tree: ast.AST, ctx) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                value = func.value
                if (isinstance(value, ast.Name) and value.id == "time"
                        and func.attr in _TIME_FNS):
                    ctx.report(node, f"time.{func.attr}() reads the host "
                                     f"clock")
                elif func.attr in _DATETIME_FNS and self._is_datetime(value):
                    ctx.report(node, f"datetime {func.attr}() reads the "
                                     f"host clock")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = [a.name for a in node.names if a.name in _TIME_FNS]
                if bad:
                    ctx.report(node, f"importing {', '.join(sorted(bad))} "
                                     f"from time pulls host-clock reads "
                                     f"into simulated code")

    @staticmethod
    def _is_datetime(value: ast.AST) -> bool:
        if isinstance(value, ast.Name):
            return value.id in ("datetime", "date")
        if isinstance(value, ast.Attribute):
            return value.attr in ("datetime", "date")
        return False


class IdOrderingRule(Rule):
    """REPRO-D004: no id()-derived keys or ordering in hot paths."""

    id = "REPRO-D004"
    name = "id-ordering"
    rationale = (
        "id() exposes allocation addresses, which vary across runs, "
        "interpreters and campaign worker processes — any map key or "
        "sort key derived from it is nondeterministic.")
    hint = ("key on a stable field (slot, sm_id, warp age) or attach an "
            "explicit monotonically assigned index")
    scope = SIM_SCOPE
    bad = "order = sorted(warps, key=id)"
    good = "order = sorted(warps, key=lambda w: w.age)"

    def check(self, tree: ast.AST, ctx) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "id":
                ctx.report(node, "id() is allocation-dependent and "
                                 "nondeterministic across runs/processes")
            # `key=id` passes the builtin without calling it.
            for kw in node.keywords:
                if (kw.arg == "key" and isinstance(kw.value, ast.Name)
                        and kw.value.id == "id"):
                    ctx.report(kw.value, "sort/group key=id orders by "
                                         "allocation address")
