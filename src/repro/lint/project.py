"""Phase one of the whole-program linter: the project index.

``repro lint --project`` runs in two phases.  This module is phase
one: every collected file is parsed once and distilled into a small,
JSON-able **module summary** — imports, string/tuple/dict constants,
module-level mutable objects, the class table (bases, methods, mutable
class attributes), and one **function summary** per function/method
(plus a ``<module>`` pseudo-function for module-level statements).
Function summaries record exactly the facts the interprocedural rule
families consume:

* outgoing calls (dotted callee keys) and worker-pool entry-point
  references — the raw material for :mod:`repro.lint.callgraph`;
* leap-visible state mutations and wheel posts (REPRO-W0xx);
* writes/loads of module-level and class-level shared state
  (REPRO-R0xx);
* stall-reason/mechanism arguments and registry-leaf literals
  (REPRO-S004/S005).

Because summaries are plain JSON, the index is **incrementally
cached**: ``--index-cache FILE`` stores each file's summary keyed by
``(mtime, size)``, so a CI run with a warm cache only re-parses files
that actually changed.  The cache is invalidated wholesale whenever
:data:`INDEX_VERSION` changes (bump it when the summary schema grows a
field).

Everything here is an *under-approximation by construction*: an alias
the summarizer cannot follow simply produces no record.  Rules built
on the index therefore never guess — they only act on facts the
summaries prove.
"""

from __future__ import annotations

import ast
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.scope import module_name, rel_posix

#: bump when the summary schema changes; stale caches are discarded.
INDEX_VERSION = 1

#: conventional cache location under the repo root (directory is
#: covered by .gitignore and excluded from lint walks).
DEFAULT_CACHE_RELPATH = os.path.join(".repro_cache", "lint-index.json")

#: method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset((
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "clear", "remove", "discard", "appendleft",
    "popleft", "sort", "reverse",
))

#: pool-ish receiver method names whose first positional argument is a
#: function executed in a worker process.
POOL_DISPATCH_METHODS = frozenset((
    "submit", "map", "imap", "imap_unordered", "apply", "apply_async",
    "starmap", "starmap_async",
))

#: stall/mechanism call sites: method -> (positional index, keyword).
REASON_SITES = {
    "bump_sched": (3, "reason"),
    "bump_lsu": (2, "reason"),
    "log_adapt": (0, "mechanism"),
}

#: registry methods whose first argument is a dotted metric name
#: (mirrors repro.lint.rules.stats._REGISTRY_METHODS).
REGISTRY_METHODS = frozenset(("counter", "gauge", "bump", "set", "scoped"))

#: placeholder standing in for an f-string interpolation in recorded
#: metric-name patterns (same token the per-file rules use).
HOLE = "\x00"


def _expr_key(node: ast.AST) -> Optional[str]:
    """Dotted-name string for a plain Name/Attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _expr_key(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def _literal_pattern(node: ast.AST) -> Optional[str]:
    """String value of a str constant / f-string (interpolations become
    :data:`HOLE`); None otherwise."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: List[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            else:
                parts.append(HOLE)
        return "".join(parts)
    return None


def _is_mutable_value(node: ast.AST) -> bool:
    """Conservatively true for values that denote shared mutable
    objects when bound at module/class level: container displays,
    comprehensions, and constructor calls.  Immutable literals,
    tuples of immutables and arithmetic stay out."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        key = (_expr_key(node.func) or "").rsplit(".", 1)[-1]
        # frozenset/tuple/str/int/... produce immutable objects;
        # everything else constructed at module level is assumed shared
        # mutable state (CounterRegistry(), OrderedDict(), dict(), ...).
        return key not in ("frozenset", "tuple", "str", "int", "float",
                           "bool", "bytes", "namedtuple")
    return False


class _FunctionSummarizer(ast.NodeVisitor):
    """Single pass over one function body (module-level statements are
    treated as the body of a ``<module>`` pseudo-function).

    Nested functions/lambdas are *not* given their own summaries: their
    statements are folded into the enclosing function, which is the
    conservative reading for closures (whoever calls the outer function
    may trigger the inner one)."""

    def __init__(self, name: str, qualname: str, cls: str, lineno: int,
                 params: Sequence[str]):
        self.summary: Dict[str, object] = {
            "name": name, "qualname": qualname, "cls": cls,
            "lineno": lineno, "params": list(params),
            "calls": [], "entry_refs": [], "posts_wheel": False,
            "leap_writes": [], "queue_calls": [], "writes": [],
            "loads": [], "reason_calls": [], "leaf_uses": [],
        }
        self._params = set(params)
        self._locals = set(params)
        self._globals: set = set()
        self._pending_leap: List[Tuple[str, ast.AST]] = []
        # late import: the leap registry lives next to the EventWheel.
        from repro.sim import wheel as _wheel
        self._leap_attrs = set(_wheel.LEAP_STATE_ATTRS)
        self._leap_methods = set(_wheel.LEAP_QUEUE_METHODS)

    # -- local-name bookkeeping ---------------------------------------
    def _bind(self, target: ast.AST) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name) and node.id not in self._globals:
                self._locals.add(node.id)

    def _root(self, key: str) -> str:
        return key.split(".", 1)[0]

    def _is_candidate_root(self, root: str) -> bool:
        """A dotted key rooted here may denote shared state: it is not a
        plain local (params included), or it was declared ``global``."""
        if root in ("self", "cls"):
            return True
        if root in self._globals:
            return True
        return root not in self._locals

    # -- recorded facts ------------------------------------------------
    def _record_write(self, key: str, kind: str, node: ast.AST) -> None:
        if self._is_candidate_root(self._root(key)):
            self.summary["writes"].append(
                [key, kind, node.lineno, node.col_offset])

    def _record_load(self, key: str, node: ast.AST) -> None:
        if self._is_candidate_root(self._root(key)):
            self.summary["loads"].append([key, node.lineno])

    def _record_target(self, target: ast.AST, kind: str) -> None:
        if isinstance(target, ast.Name):
            if target.id in self._globals:
                self._record_write(target.id, kind, target)
            else:
                self._locals.add(target.id)
        elif isinstance(target, ast.Attribute):
            key = _expr_key(target)
            if key is not None:
                self._record_write(key, kind, target)
                attr = target.attr
                if attr in self._leap_attrs:
                    self._pending_leap.append((attr, target))
        elif isinstance(target, ast.Subscript):
            key = _expr_key(target.value)
            if key is not None:
                self._record_write(key, "subscript", target)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_target(elt, kind)

    def _value_kind(self, value: ast.AST) -> str:
        """Leap-safety classification of an assigned horizon value:
        ``zero`` (reset to always-awake) and ``param`` (the caller
        already owns the cycle, so the lowering can only wake the
        engine earlier or exactly on time) are safe; anything else
        (``other``) must discharge through a wheel post."""
        if isinstance(value, ast.Constant) and value.value == 0:
            return "zero"
        if isinstance(value, ast.Name) and value.id in self._params:
            return "param"
        return "other"

    # -- visitors -------------------------------------------------------
    def visit_Global(self, node: ast.Global) -> None:
        self._globals.update(node.names)
        self._locals.difference_update(node.names)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._pending_leap = []
        for target in node.targets:
            self._record_target(target, "assign")
        vkind = self._value_kind(node.value)
        for attr, tnode in self._pending_leap:
            self.summary["leap_writes"].append(
                [attr, tnode.lineno, tnode.col_offset, vkind])
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._pending_leap = []
            self._record_target(node.target, "assign")
            vkind = self._value_kind(node.value)
            for attr, tnode in self._pending_leap:
                self.summary["leap_writes"].append(
                    [attr, tnode.lineno, tnode.col_offset, vkind])
            self.visit(node.value)
        elif isinstance(node.target, ast.Name):
            self._locals.add(node.target.id)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._pending_leap = []
        if isinstance(node.target, ast.Name):
            # += on a bare local is a rebind; on a global, a write.
            if node.target.id in self._globals:
                self._record_write(node.target.id, "augassign", node.target)
        else:
            self._record_target(node.target, "augassign")
        for attr, tnode in self._pending_leap:
            # += always needs discharge: it moves the horizon by an
            # amount the summarizer cannot bound.
            self.summary["leap_writes"].append(
                [attr, tnode.lineno, tnode.col_offset, "other"])
        self.visit(node.value)

    def visit_For(self, node: ast.For) -> None:
        self._bind(node.target)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if item.optional_vars is not None:
                self._bind(item.optional_vars)
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name:
            self._locals.add(node.name)
        self.generic_visit(node)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self._bind(node.target)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._bind(node.target)
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._locals.add(alias.asname or alias.name.split(".")[0])

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            self._locals.add(alias.asname or alias.name)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # nested def: bind the name, fold the body in (closure-conservative)
        self._locals.add(node.name)
        for stmt in node.body:
            self.visit(stmt)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.visit(node.body)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._locals.add(node.name)
        # nested class bodies are rare and not summarized per-function

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._record_load(node.id, node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            key = _expr_key(node)
            if key is not None:
                self._record_load(key, node)
                return
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        key = _expr_key(func)
        if key is not None:
            self.summary["calls"].append([key, node.lineno])
        if isinstance(func, ast.Attribute):
            recv = _expr_key(func.value) or ""
            attr = func.attr
            # wheel discharge: a post on a wheel-ish receiver, or an
            # explicit next-activity recompute.
            if (attr == "post" and "wheel" in recv.lower()) \
                    or attr == "next_activity":
                self.summary["posts_wheel"] = True
            # leap-checked queue pushes
            if attr in self._leap_methods:
                self.summary["queue_calls"].append(
                    [attr, node.lineno, node.col_offset])
            # in-place mutation of a shared root
            if attr in MUTATOR_METHODS and recv:
                self._record_write(recv, "mutcall", node)
            # worker-pool dispatch: first positional arg runs worker-side
            if attr in POOL_DISPATCH_METHODS and node.args:
                low = recv.lower()
                if "pool" in low or "executor" in low:
                    ref = _expr_key(node.args[0])
                    if ref is not None:
                        self.summary["entry_refs"].append(ref)
            # stall-reason / mechanism argument (non-literal only: the
            # per-file REPRO-S002 rule owns literals)
            site = REASON_SITES.get(attr)
            if site is not None:
                index, keyword = site
                arg = None
                if len(node.args) > index:
                    arg = node.args[index]
                else:
                    for kw in node.keywords:
                        if kw.arg == keyword:
                            arg = kw.value
                if arg is not None:
                    akey = _expr_key(arg)
                    aval = arg.value if (isinstance(arg, ast.Constant)
                                         and isinstance(arg.value, str)) \
                        else None
                    if akey is not None \
                            and self._is_candidate_root(self._root(akey)):
                        self.summary["reason_calls"].append(
                            [attr, akey, None, arg.lineno, arg.col_offset])
                    elif aval is not None:
                        self.summary["reason_calls"].append(
                            [attr, None, aval, arg.lineno, arg.col_offset])
            # registry metric names (leaf drift, REPRO-S005)
            if attr in REGISTRY_METHODS and node.args \
                    and "trace" not in recv.lower():
                pattern = _literal_pattern(node.args[0])
                if pattern is not None:
                    self.summary["leaf_uses"].append(
                        [pattern, node.args[0].lineno,
                         node.args[0].col_offset])
        # initializer= kwarg anywhere is a worker entry (pool ctor)
        for kw in node.keywords:
            if kw.arg == "initializer":
                ref = _expr_key(kw.value)
                if ref is not None:
                    self.summary["entry_refs"].append(ref)
        self.generic_visit(node)


def _params_of(node: ast.AST) -> List[str]:
    args = getattr(node, "args", None)
    if args is None:
        return []
    names = [a.arg for a in args.posonlyargs] if args.posonlyargs else []
    names += [a.arg for a in args.args]
    if args.vararg:
        names.append(args.vararg.arg)
    names += [a.arg for a in args.kwonlyargs]
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def summarize_source(source: str, rel_path: str) -> Dict[str, object]:
    """Build one module summary from source text.  Raises SyntaxError
    for unparseable files (callers surface that as REPRO-E000)."""
    tree = ast.parse(source, filename=rel_path)
    summary: Dict[str, object] = {
        "rel_path": rel_path,
        "module": module_name(rel_path),
        "imports": {},
        "str_constants": {},
        "tuple_constants": {},
        "dict_constants": {},
        "module_mutables": {},
        "classes": {},
        "functions": {},
    }
    body = list(tree.body)

    # ---- imports + module-level constants/mutables --------------------
    for stmt in body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    # `import repro.sim.wheel as wheel`
                    summary["imports"][alias.asname] = alias.name
                else:
                    # `import os.path` binds the root package name
                    local = alias.name.split(".")[0]
                    summary["imports"][local] = local
        elif isinstance(stmt, ast.ImportFrom) and stmt.module \
                and stmt.level == 0:
            for alias in stmt.names:
                local = alias.asname or alias.name
                summary["imports"][local] = f"{stmt.module}.{alias.name}"
        elif (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
              and isinstance(stmt.targets[0], ast.Name)) \
                or (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.value is not None):
            if isinstance(stmt, ast.Assign):
                name = stmt.targets[0].id
            else:
                name = stmt.target.id
            value = stmt.value
            if isinstance(value, ast.Constant) \
                    and isinstance(value.value, str):
                summary["str_constants"][name] = value.value
            elif isinstance(value, ast.Tuple):
                elems: List[List[str]] = []
                for elt in value.elts:
                    if isinstance(elt, ast.Constant) \
                            and isinstance(elt.value, str):
                        elems.append(["str", elt.value])
                    else:
                        key = _expr_key(elt)
                        elems.append(["name", key] if key is not None
                                     else ["opaque", ""])
                summary["tuple_constants"][name] = {
                    "elems": elems, "lineno": stmt.lineno}
            elif isinstance(value, ast.Dict):
                keys: List[str] = []
                literal = True
                for k in value.keys:
                    if isinstance(k, ast.Constant) \
                            and isinstance(k.value, str):
                        keys.append(k.value)
                    else:
                        literal = False
                if literal and keys:
                    summary["dict_constants"][name] = {
                        "keys": keys, "lineno": stmt.lineno}
                summary["module_mutables"][name] = stmt.lineno
            elif _is_mutable_value(value):
                if not (name.startswith("__") and name.endswith("__")):
                    summary["module_mutables"][name] = stmt.lineno

    # ---- functions, classes, module-level pseudo-function -------------
    def summarize_fn(node, qualname: str, cls: str) -> Dict[str, object]:
        fs = _FunctionSummarizer(
            getattr(node, "name", "<module>"), qualname, cls,
            getattr(node, "lineno", 1), _params_of(node))
        for stmt in node.body:
            fs.visit(stmt)
        out = fs.summary
        # a load that is merely the receiver of a same-line write
        # (`_TRACES.clear()`, `_HITS.value += 1`) is part of the
        # mutation, not an observation — drop it so the race rules
        # don't count mutation sites as reads.
        write_sites = {(w[0].split(".")[0], w[2]) for w in out["writes"]}
        out["loads"] = [ld for ld in out["loads"]
                        if (ld[0].split(".")[0], ld[1]) not in write_sites]
        return out

    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary["functions"][stmt.name] = summarize_fn(
                stmt, stmt.name, "")
        elif isinstance(stmt, ast.ClassDef):
            cls_name = stmt.name
            bases = [key for key in (_expr_key(b) for b in stmt.bases)
                     if key is not None]
            methods: List[str] = []
            mutable_attrs: Dict[str, int] = {}
            self_assigned: List[str] = []
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    qual = f"{cls_name}.{item.name}"
                    fsum = summarize_fn(item, qual, cls_name)
                    summary["functions"][qual] = fsum
                    methods.append(item.name)
                    for key, kind, _ln, _col in fsum["writes"]:
                        parts = key.split(".")
                        if parts[0] == "self" and len(parts) == 2 \
                                and kind in ("assign", "augassign"):
                            self_assigned.append(parts[1])
                elif isinstance(item, ast.Assign) \
                        and len(item.targets) == 1 \
                        and isinstance(item.targets[0], ast.Name) \
                        and _is_mutable_value(item.value):
                    mutable_attrs[item.targets[0].id] = item.lineno
                elif isinstance(item, ast.AnnAssign) \
                        and isinstance(item.target, ast.Name) \
                        and item.value is not None \
                        and _is_mutable_value(item.value):
                    mutable_attrs[item.target.id] = item.lineno
            summary["classes"][cls_name] = {
                "lineno": stmt.lineno, "bases": bases, "methods": methods,
                "mutable_attrs": mutable_attrs,
                "self_assigned": sorted(set(self_assigned)),
            }

    module_stmts = [stmt for stmt in body
                    if not isinstance(stmt, (ast.FunctionDef,
                                             ast.AsyncFunctionDef,
                                             ast.ClassDef))]
    holder = ast.Module(body=module_stmts, type_ignores=[])
    summary["functions"]["<module>"] = summarize_fn(
        holder, "<module>", "")
    return summary


# ======================================================================
class ProjectIndex:
    """Phase-one output: every module summary plus cross-module lookup.

    ``summaries`` maps root-relative posix paths to module summaries;
    ``by_module`` maps dotted module names (``repro.sim.sm``) back to
    paths for import resolution."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self.summaries: Dict[str, Dict[str, object]] = {}
        self.by_module: Dict[str, str] = {}
        #: rel paths that failed to parse (engine reports E000 for them).
        self.parse_failures: List[str] = []

    def add(self, summary: Dict[str, object]) -> None:
        rel = summary["rel_path"]
        self.summaries[rel] = summary
        mod = summary.get("module") or ""
        if mod:
            self.by_module[mod] = rel

    # -- lookups --------------------------------------------------------
    def module(self, dotted: str) -> Optional[Dict[str, object]]:
        rel = self.by_module.get(dotted)
        return self.summaries.get(rel) if rel else None

    def functions(self):
        """Yield ``(rel_path, module_summary, function_summary)``."""
        for rel in sorted(self.summaries):
            msum = self.summaries[rel]
            for qual in sorted(msum["functions"]):
                yield rel, msum, msum["functions"][qual]

    def resolve_import(self, msum: Dict[str, object],
                       name: str) -> Optional[str]:
        """Dotted target for a local name bound by an import, else
        None."""
        return msum["imports"].get(name)

    def resolve_str_constant(self, msum: Dict[str, object], key: str,
                             _depth: int = 0) -> Optional[str]:
        """Follow ``key`` (a dotted expr in ``msum``'s namespace) to a
        string constant, across imports; None when unresolvable."""
        if _depth > 4:
            return None
        parts = key.split(".")
        head = parts[0]
        if len(parts) == 1:
            if head in msum["str_constants"]:
                return msum["str_constants"][head]
            target = msum["imports"].get(head)
            if target and "." in target:
                mod, _, sym = target.rpartition(".")
                other = self.module(mod)
                if other is not None:
                    return self.resolve_str_constant(other, sym,
                                                     _depth + 1)
            return None
        # dotted: head must be a module alias
        target = msum["imports"].get(head)
        if target is None:
            return None
        other = self.module(target)
        if other is None:
            return None
        return self.resolve_str_constant(other, ".".join(parts[1:]),
                                         _depth + 1)

    def resolve_tuple_values(self, msum: Dict[str, object],
                             name: str) -> Optional[List[Optional[str]]]:
        """Element string values of a module-level tuple constant
        (None entries for unresolvable elements)."""
        entry = msum["tuple_constants"].get(name)
        if entry is None:
            return None
        out: List[Optional[str]] = []
        for kind, val in entry["elems"]:
            if kind == "str":
                out.append(val)
            elif kind == "name":
                out.append(self.resolve_str_constant(msum, val))
            else:
                out.append(None)
        return out


class ProjectContext:
    """What a :class:`~repro.lint.rules.ProjectRule` receives: the
    index plus shared, lazily-built derived structures (the call graph
    is built once and reused across every project rule)."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self._graph = None

    def callgraph(self):
        if self._graph is None:
            from repro.lint.callgraph import CallGraph
            self._graph = CallGraph(self.index)
        return self._graph


# ======================================================================
# incremental cache
def default_cache_path(root: str) -> str:
    return os.path.join(os.path.abspath(root), DEFAULT_CACHE_RELPATH)


def _load_cache(cache_path: str) -> Dict[str, Dict[str, object]]:
    try:
        with open(cache_path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return {}
    if not isinstance(payload, dict) \
            or payload.get("version") != INDEX_VERSION:
        return {}
    files = payload.get("files")
    return files if isinstance(files, dict) else {}


def _save_cache(cache_path: str,
                files: Dict[str, Dict[str, object]]) -> None:
    try:
        os.makedirs(os.path.dirname(cache_path) or ".", exist_ok=True)
        tmp = cache_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump({"version": INDEX_VERSION, "files": files}, fh)
        os.replace(tmp, cache_path)
    except OSError:
        pass  # a cache that cannot be written is just a cold cache


def build_index(root: str, abs_paths: Sequence[str],
                cache_path: Optional[str] = None) -> ProjectIndex:
    """Summarize every file (cache-aware) into a ProjectIndex.

    ``cache_path=None`` disables caching entirely.  Cache entries are
    keyed by ``(mtime, size)``: any touch re-summarizes that file only.
    """
    index = ProjectIndex(root)
    cached = _load_cache(cache_path) if cache_path else {}
    fresh: Dict[str, Dict[str, object]] = {}
    for abs_path in abs_paths:
        rel = rel_posix(abs_path, root)
        try:
            stat = os.stat(abs_path)
            mtime, size = stat.st_mtime, stat.st_size
        except OSError:
            index.parse_failures.append(rel)
            continue
        entry = cached.get(rel)
        if entry is not None and entry.get("mtime") == mtime \
                and entry.get("size") == size:
            summary = entry["summary"]
        else:
            try:
                with open(abs_path, "r", encoding="utf-8") as fh:
                    source = fh.read()
                summary = summarize_source(source, rel)
            except (OSError, SyntaxError):
                index.parse_failures.append(rel)
                continue
        fresh[rel] = {"mtime": mtime, "size": size, "summary": summary}
        index.add(summary)
    if cache_path:
        _save_cache(cache_path, fresh)
    return index
