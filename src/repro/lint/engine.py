"""The lint engine: file collection, pragma handling, rule dispatch.

The engine walks the requested paths, parses each Python file once,
runs every rule whose path scope covers the file, and returns sorted
:class:`~repro.lint.findings.Finding` objects.  Two escape hatches are
honoured:

* an inline pragma suppresses specific rules on one line::

      cold = set(pending)  # repro-lint: disable=REPRO-D001 (membership only)

  The pragma may sit on the offending line or on the line directly
  above it; ``disable=ALL`` suppresses every rule; several ids may be
  comma-separated.  A parenthesised reason is encouraged (docs) but
  not enforced here.

* a checked-in baseline (:mod:`repro.lint.baseline`) grandfathers
  pre-existing findings by ``(rule, path, snippet)`` fingerprint.

Files that do not parse produce a single ``REPRO-E000`` pseudo-finding
(the linter cannot vouch for a file it cannot read), so syntax errors
fail lint runs rather than silently skipping the file.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.rules import ProjectRule, Rule, all_rules
# DEFAULT_EXCLUDE_DIRS now lives in repro.lint.scope (shared with the
# project indexer); re-exported here for callers that import it from
# the engine.
from repro.lint.scope import DEFAULT_EXCLUDE_DIRS as DEFAULT_EXCLUDE_DIRS
from repro.lint.scope import collect_py_files, rel_posix

#: rule id attached to files the engine cannot parse.
PARSE_ERROR_RULE = "REPRO-E000"

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9\-_,\s]+?)\s*(?:\(|$)")


def _pragma_rules(line: str) -> Set[str]:
    """Rule ids disabled by a pragma on ``line`` (empty when none)."""
    match = _PRAGMA_RE.search(line)
    if not match:
        return set()
    return {part.strip().upper()
            for part in match.group(1).split(",") if part.strip()}


class FileContext:
    """Per-file reporting surface handed to each rule's ``check``.

    Carries the relative path and source lines so findings can be
    stamped with their snippet, and applies pragma suppression at
    report time (pragma on the finding's line or the line above).
    """

    def __init__(self, rel_path: str, source_lines: Sequence[str]):
        self.rel_path = rel_path
        self._lines = source_lines
        self._rule: Optional[Rule] = None
        self.findings: List[Finding] = []
        self.suppressed = 0

    def set_rule(self, rule: Rule) -> None:
        self._rule = rule

    def _line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self._lines):
            return self._lines[lineno - 1]
        return ""

    def _is_suppressed(self, rule_id: str, lineno: int) -> bool:
        for text in (self._line_text(lineno), self._line_text(lineno - 1)):
            disabled = _pragma_rules(text)
            if disabled and ("ALL" in disabled or rule_id in disabled):
                return True
        return False

    def report(self, node: ast.AST, message: str) -> None:
        assert self._rule is not None, "report() outside a rule run"
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self._is_suppressed(self._rule.id, line):
            self.suppressed += 1
            return
        self.findings.append(Finding(
            rule=self._rule.id,
            path=self.rel_path,
            line=line,
            col=col,
            message=message,
            hint=self._rule.hint,
            snippet=self._line_text(line).strip(),
        ))


class LintEngine:
    """Run a rule set over files/directories under one root."""

    def __init__(self, root: str, rules: Optional[Sequence[Rule]] = None,
                 exclude_dirs: Optional[Set[str]] = None):
        self.root = os.path.abspath(root)
        self.rules: List[Rule] = list(rules) if rules is not None \
            else all_rules()
        self.exclude_dirs = (set(exclude_dirs) if exclude_dirs is not None
                             else set(DEFAULT_EXCLUDE_DIRS))
        self.suppressed = 0

    # ------------------------------------------------------------------
    # file collection (delegates to repro.lint.scope so the engine, the
    # project indexer and the baseline agree on path semantics)
    def rel_path(self, path: str) -> str:
        return rel_posix(path, self.root)

    def collect_files(self, paths: Sequence[str]) -> List[str]:
        """Expand files/directories into a sorted, de-duplicated list of
        absolute ``.py`` paths.  Directory walks skip
        :attr:`exclude_dirs`; explicitly named files are always taken."""
        return collect_py_files(self.root, paths, self.exclude_dirs)

    # ------------------------------------------------------------------
    # linting
    def lint_file(self, abs_path: str) -> List[Finding]:
        rel = self.rel_path(abs_path)
        try:
            with open(abs_path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            return [Finding(rule=PARSE_ERROR_RULE, path=rel, line=1, col=0,
                            message=f"cannot read file: {exc}",
                            hint="", snippet="")]
        try:
            tree = ast.parse(source, filename=abs_path)
        except SyntaxError as exc:
            return [Finding(
                rule=PARSE_ERROR_RULE, path=rel,
                line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
                hint="fix the syntax error; the linter cannot vouch for "
                     "a file it cannot parse",
                snippet=(exc.text or "").strip(),
            )]
        lines = source.splitlines()
        ctx = FileContext(rel, lines)
        for rule in self.rules:
            if not rule.applies_to(rel):
                continue
            ctx.set_rule(rule)
            rule.check(tree, ctx)
        self.suppressed += ctx.suppressed
        ctx.findings.sort(key=Finding.sort_key)
        return ctx.findings

    def lint_paths(self, paths: Sequence[str]) -> List[Finding]:
        findings: List[Finding] = []
        for abs_path in self.collect_files(paths):
            findings.extend(self.lint_file(abs_path))
        findings.sort(key=Finding.sort_key)
        return findings

    # ------------------------------------------------------------------
    # whole-program mode
    def lint_project(self, paths: Sequence[str],
                     cache_path: Optional[str] = None) -> List[Finding]:
        """Two-phase run: every per-file rule as in :meth:`lint_paths`,
        then the project index is built (incrementally, when
        ``cache_path`` is given) and each :class:`ProjectRule` runs once
        over it.  Project findings route through the same pragma and
        snippet machinery as per-file findings."""
        from repro.lint.project import ProjectContext, build_index

        files = self.collect_files(paths)
        findings: List[Finding] = []
        for abs_path in files:
            findings.extend(self.lint_file(abs_path))
        index = build_index(self.root, files, cache_path)
        # parse failures were already reported as REPRO-E000 above
        project = ProjectContext(index)
        reporter = ProjectReporter(self)
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                rule.check_project(project, reporter)
        findings.extend(reporter.collect())
        self.suppressed += reporter.suppressed()
        findings.sort(key=Finding.sort_key)
        return findings


class ProjectReporter:
    """Reporting surface handed to project rules.

    Routes each finding through a lazily-built per-file
    :class:`FileContext`, so inline pragmas, snippet fingerprints and
    baseline matching behave identically for whole-program findings
    and per-file findings.  Scope is enforced on the *finding site*:
    a project rule may learn facts from any indexed file but only
    report inside its declared scope."""

    class _Site:
        __slots__ = ("lineno", "col_offset")

        def __init__(self, lineno: int, col_offset: int):
            self.lineno = lineno
            self.col_offset = col_offset

    def __init__(self, engine: LintEngine):
        self._engine = engine
        self._contexts: dict = {}

    def _context(self, rel_path: str) -> FileContext:
        ctx = self._contexts.get(rel_path)
        if ctx is None:
            abs_path = os.path.join(self._engine.root, rel_path)
            try:
                with open(abs_path, "r", encoding="utf-8") as fh:
                    lines = fh.read().splitlines()
            except OSError:
                lines = []
            ctx = FileContext(rel_path, lines)
            self._contexts[rel_path] = ctx
        return ctx

    def report(self, rule: Rule, rel_path: str, lineno: int, col: int,
               message: str) -> None:
        if not rule.applies_to(rel_path):
            return
        ctx = self._context(rel_path)
        ctx.set_rule(rule)
        ctx.report(self._Site(lineno, col), message)

    def collect(self) -> List[Finding]:
        findings: List[Finding] = []
        for ctx in self._contexts.values():
            findings.extend(ctx.findings)
        findings.sort(key=Finding.sort_key)
        return findings

    def suppressed(self) -> int:
        return sum(ctx.suppressed for ctx in self._contexts.values())


# ----------------------------------------------------------------------
def lint_paths(paths: Iterable[str], root: str,
               rules: Optional[Sequence[Rule]] = None
               ) -> Tuple[List[Finding], LintEngine]:
    """Convenience wrapper: build an engine, lint, return both."""
    engine = LintEngine(root, rules=rules)
    return engine.lint_paths(list(paths)), engine
