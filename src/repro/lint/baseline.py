"""Checked-in lint baseline: grandfather known findings, block new ones.

The baseline is a small JSON document mapping finding fingerprints —
``(rule, path, snippet)``, deliberately line-number free — to how many
times each fingerprint may occur.  ``--baseline FILE`` filters matched
findings out of the run (up to the recorded count per fingerprint, so
a *second* copy of a baselined violation still fails);
``--write-baseline`` snapshots the current findings so a rule can land
strict-for-new-code before the last legacy sites are fixed.

Matching by snippet instead of line number means unrelated edits that
shift code around do not resurrect baselined findings, while editing
the offending line itself (changing its text) surfaces the finding
again — exactly when a human is already touching that line.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Tuple

from repro.lint.findings import Finding
from repro.lint.scope import norm_rel_path

BASELINE_VERSION = 1

#: conventional baseline filename at the repo root.
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

_Key = Tuple[str, str, str]


class Baseline:
    """An allowance multiset of finding fingerprints."""

    def __init__(self, counts: Dict[_Key, int] = None):
        self.counts: Dict[_Key, int] = dict(counts or {})

    def __len__(self) -> int:
        return sum(self.counts.values())

    # ------------------------------------------------------------------
    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts: Dict[_Key, int] = {}
        for finding in findings:
            key = finding.baseline_key()
            counts[key] = counts.get(key, 0) + 1
        return cls(counts)

    def filter(self, findings: Iterable[Finding]) -> List[Finding]:
        """Findings not covered by the baseline, original order kept."""
        budget = dict(self.counts)
        fresh: List[Finding] = []
        for finding in findings:
            key = finding.baseline_key()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
            else:
                fresh.append(finding)
        return fresh

    # ------------------------------------------------------------------
    # persistence
    def to_payload(self) -> Dict[str, object]:
        entries = [
            {"rule": rule, "path": path, "snippet": snippet, "count": count}
            for (rule, path, snippet), count in sorted(self.counts.items())
        ]
        return {"version": BASELINE_VERSION, "entries": entries}

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "Baseline":
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} "
                f"(expected {BASELINE_VERSION})")
        counts: Dict[_Key, int] = {}
        for entry in payload.get("entries", []):
            # entry paths are normalised through the shared scope helper
            # so a baseline written on Windows matches the posix-style
            # rel paths the engine stamps on findings.
            key = (str(entry["rule"]), norm_rel_path(str(entry["path"])),
                   str(entry.get("snippet", "")))
            counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
        return cls(counts)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_payload(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "Baseline":
        if not os.path.exists(path):
            return cls()
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        if not isinstance(payload, dict):
            raise ValueError("baseline file must hold a JSON object")
        return cls.from_payload(payload)
