"""Call graph over the project index, with conservative method
resolution.

Nodes are function ids of the form ``"<rel_path>::<qualname>"`` (one
per function summary, including each module's ``<module>``
pseudo-function).  Edges come from the recorded dotted callee keys,
resolved name-wise:

* ``foo(...)`` — the same-module function ``foo``, or the function an
  ``import``/``from``-import binds that name to;
* ``self.foo(...)`` / ``cls.foo(...)`` — ``foo`` up the enclosing
  class's known base-class chain; if the hierarchy doesn't declare it
  (an unindexed base), *every* indexed method named ``foo``;
* ``obj.foo(...)`` — every indexed method named ``foo`` (plus the
  module function when ``obj`` is a module alias) — classic
  class-hierarchy-analysis conservatism;
* ``ClassName(...)`` — the class's ``__init__``.

Worker-pool entry references (``pool.submit(f, ...)``,
``initializer=f``) are deliberately **not** call edges — the parent
never runs ``f`` — they seed :meth:`CallGraph.worker_reachable`
instead, which is the read/write-side split the REPRO-R0xx race rules
key on.

Resolution is name-based, so the graph *over*-approximates edges
(extra callers can only make the wheel-discipline discharge check more
demanding, never less) while reachability from worker entries
*over*-approximates the worker side (extra worker functions can only
shrink the parent-only read set).  Both directions err toward
reporting less, never toward vouching for code falsely — except the
wheel family, where extra callers err toward reporting *more*, which
is the direction a leap-hazard guard should fail in.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.project import ProjectIndex


def fid(rel_path: str, qualname: str) -> str:
    return f"{rel_path}::{qualname}"


class CallGraph:
    """Phase-one-and-a-half: edges + reachability over the index."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        #: fid -> (rel_path, module summary, function summary)
        self.functions: Dict[str, Tuple[str, dict, dict]] = {}
        #: method name -> fids of every method with that name
        self._methods_by_name: Dict[str, List[str]] = {}
        #: (rel_path, class name) -> class summary
        self._classes: Dict[Tuple[str, str], dict] = {}
        #: module-level function name -> fid, per rel_path
        self._module_funcs: Dict[str, Dict[str, str]] = {}
        self.edges: Dict[str, List[str]] = {}
        self.callers: Dict[str, List[str]] = {}
        self._worker_entries: Optional[List[str]] = None
        self._worker_reachable: Optional[Set[str]] = None
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        for rel, msum, fsum in self.index.functions():
            f = fid(rel, fsum["qualname"])
            self.functions[f] = (rel, msum, fsum)
            cls = fsum["cls"]
            if cls:
                self._methods_by_name.setdefault(
                    fsum["name"], []).append(f)
            else:
                self._module_funcs.setdefault(rel, {})[fsum["name"]] = f
        for rel, msum in self.index.summaries.items():
            for cname, csum in msum["classes"].items():
                self._classes[(rel, cname)] = csum
        for f, (rel, msum, fsum) in self.functions.items():
            out: List[str] = []
            for key, _lineno in fsum["calls"]:
                out.extend(self._resolve_call(rel, msum, fsum, key))
            # de-dup, stable order
            seen: Dict[str, bool] = {}
            uniq: List[str] = []
            for t in out:
                if t not in seen:
                    seen[t] = True
                    uniq.append(t)
            self.edges[f] = uniq
            for t in uniq:
                self.callers.setdefault(t, []).append(f)

    # -- resolution -----------------------------------------------------
    def _class_chain(self, rel: str, msum: dict,
                     cname: str) -> List[Tuple[str, str, dict]]:
        """The class plus every resolvable base, MRO-ish order."""
        out: List[Tuple[str, str, dict]] = []
        pending: List[Tuple[str, dict, str]] = [(rel, msum, cname)]
        seen: Dict[Tuple[str, str], bool] = {}
        while pending:
            crel, cmsum, name = pending.pop(0)
            csum = self._classes.get((crel, name))
            if csum is None or (crel, name) in seen:
                continue
            seen[(crel, name)] = True
            out.append((crel, name, csum))
            for base in csum["bases"]:
                target = self._resolve_class_ref(crel, cmsum, base)
                if target is not None:
                    pending.append(target)
        return out

    def _resolve_class_ref(self, rel: str, msum: dict, key: str
                           ) -> Optional[Tuple[str, dict, str]]:
        """``key`` names a class: same module, or via imports."""
        parts = key.split(".")
        if len(parts) == 1:
            if (rel, key) in self._classes:
                return rel, msum, key
            target = msum["imports"].get(key)
            if target and "." in target:
                mod, _, cname = target.rpartition(".")
                osum = self.index.module(mod)
                if osum is not None and cname in osum["classes"]:
                    return osum["rel_path"], osum, cname
            return None
        # module_alias.ClassName
        target = msum["imports"].get(parts[0])
        if target is None or len(parts) != 2:
            return None
        osum = self.index.module(target)
        if osum is not None and parts[1] in osum["classes"]:
            return osum["rel_path"], osum, parts[1]
        return None

    def _method_in_chain(self, rel: str, msum: dict, cname: str,
                         method: str) -> List[str]:
        for crel, cls_name, csum in self._class_chain(rel, msum, cname):
            if method in csum["methods"]:
                return [fid(crel, f"{cls_name}.{method}")]
        return []

    def resolve_name(self, rel: str, msum: dict, name: str
                     ) -> List[str]:
        """Function fids a bare name refers to in ``msum``'s namespace
        (same-module function, imported function, or a class's
        ``__init__``)."""
        local = self._module_funcs.get(rel, {})
        if name in local:
            return [local[name]]
        if (rel, name) in self._classes:
            return self._method_in_chain(rel, msum, name, "__init__")
        target = msum["imports"].get(name)
        if target and "." in target:
            mod, _, sym = target.rpartition(".")
            osum = self.index.module(mod)
            if osum is not None:
                return self.resolve_name(osum["rel_path"], osum, sym)
        return []

    def _resolve_call(self, rel: str, msum: dict, fsum: dict,
                      key: str) -> List[str]:
        parts = key.split(".")
        if len(parts) == 1:
            return self.resolve_name(rel, msum, key)
        root, method = parts[0], parts[-1]
        if root in ("self", "cls") and fsum["cls"] and len(parts) == 2:
            hit = self._method_in_chain(rel, msum, fsum["cls"], method)
            if hit:
                return hit
            # unindexed base: fall through to any-method resolution
        if len(parts) == 2:
            # module_alias.func / module_alias.ClassName
            target = msum["imports"].get(root)
            if target is not None:
                osum = self.index.module(target)
                if osum is not None:
                    hit = self.resolve_name(osum["rel_path"], osum, method)
                    if hit:
                        return hit
        # obj.method: every indexed method with that name
        return list(self._methods_by_name.get(method, []))

    # -- reachability ---------------------------------------------------
    def worker_entries(self) -> List[str]:
        """Functions handed to the process pool (submit/map first args,
        pool ``initializer=`` kwargs), resolved to fids."""
        if self._worker_entries is None:
            out: List[str] = []
            for f, (rel, msum, fsum) in sorted(self.functions.items()):
                for ref in fsum["entry_refs"]:
                    for target in self._resolve_call(rel, msum, fsum, ref) \
                            if "." in ref \
                            else self.resolve_name(rel, msum, ref):
                        if target not in out:
                            out.append(target)
            self._worker_entries = out
        return self._worker_entries

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        seen: Set[str] = set()
        stack = [r for r in roots]
        while stack:
            f = stack.pop()
            if f in seen:
                continue
            seen.add(f)
            stack.extend(self.edges.get(f, ()))
        return seen

    def worker_reachable(self) -> Set[str]:
        """Every function the pool's worker processes may execute."""
        if self._worker_reachable is None:
            self._worker_reachable = self.reachable_from(
                self.worker_entries())
        return self._worker_reachable
