"""Lint findings: the one record every layer of the linter exchanges.

A :class:`Finding` pins a rule violation to ``path:line:col`` and
carries the human-facing message, the rule's fix hint, and the stripped
source line (``snippet``).  The snippet doubles as the baseline
fingerprint: grandfathered findings are matched by
``(rule, path, snippet)`` rather than by line number, so unrelated
edits that shift lines do not resurrect baselined findings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str       #: rule id, e.g. ``"REPRO-D001"``
    path: str       #: posix-style path relative to the lint root
    line: int       #: 1-based line of the offending node
    col: int        #: 0-based column of the offending node
    message: str    #: what is wrong, concretely
    hint: str = ""  #: how to fix it (rule-level guidance)
    snippet: str = ""  #: stripped source line (baseline fingerprint)

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity used for baseline matching (line-number free)."""
        return (self.rule, self.path, self.snippet)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "snippet": self.snippet,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Finding":
        return cls(
            rule=str(payload["rule"]),
            path=str(payload["path"]),
            line=int(payload.get("line", 0)),
            col=int(payload.get("col", 0)),
            message=str(payload.get("message", "")),
            hint=str(payload.get("hint", "")),
            snippet=str(payload.get("snippet", "")),
        )
