"""Finding renderers: text (humans), json (tools), github (CI
annotations), plus the ``--list-rules`` catalog."""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.lint.findings import Finding
from repro.lint.rules import Rule

FORMATS = ("text", "json", "github")


def format_text(findings: Sequence[Finding]) -> str:
    """Human-facing report: one ``path:line:col`` block per finding."""
    lines: List[str] = []
    for finding in findings:
        lines.append(f"{finding.path}:{finding.line}:{finding.col + 1}: "
                     f"{finding.rule}: {finding.message}")
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    count = len(findings)
    if count:
        noun = "finding" if count == 1 else "findings"
        lines.append(f"{count} {noun}")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def format_json(findings: Sequence[Finding]) -> str:
    """Stable machine-readable report (sorted findings, count)."""
    payload = {
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _annotation_escape(text: str) -> str:
    """GitHub workflow-command escaping for annotation messages."""
    return (text.replace("%", "%25").replace("\r", "%0D")
            .replace("\n", "%0A"))


def format_github(findings: Sequence[Finding]) -> str:
    """``::error`` workflow annotations, one per finding — renders
    inline on the PR diff when emitted from an Actions job."""
    lines: List[str] = []
    for finding in findings:
        message = finding.message
        if finding.hint:
            message = f"{message} — hint: {finding.hint}"
        lines.append(
            f"::error file={finding.path},line={finding.line},"
            f"col={finding.col + 1},title={finding.rule}::"
            f"{_annotation_escape(message)}")
    return "\n".join(lines)


def render(findings: Sequence[Finding], fmt: str) -> str:
    if fmt == "json":
        return format_json(findings)
    if fmt == "github":
        return format_github(findings)
    return format_text(findings)


# ----------------------------------------------------------------------
def format_catalog(rules: Sequence[Rule]) -> str:
    """The ``--list-rules`` catalog: id, scope, rationale, examples."""
    blocks: List[str] = []
    for rule in rules:
        lines = [f"{rule.id}  {rule.name}"]
        scope = ", ".join(rule.scope) if rule.scope else "all linted files"
        lines.append(f"  scope: {scope}")
        if rule.exclude:
            lines.append(f"  except: {', '.join(rule.exclude)}")
        lines.append(f"  why: {rule.rationale}")
        if rule.bad:
            for i, text in enumerate(rule.bad.splitlines()):
                lines.append(f"  bad:  {text}" if i == 0 else f"        {text}")
        if rule.good:
            for i, text in enumerate(rule.good.splitlines()):
                lines.append(f"  good: {text}" if i == 0 else f"        {text}")
        if rule.hint:
            lines.append(f"  fix: {rule.hint}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
