"""``python -m repro lint`` — the linter's command-line surface.

Exit codes follow the CI contract:

* ``0`` — clean (no findings after baseline filtering), or a
  successful ``--list-rules`` / ``--write-baseline``;
* ``1`` — findings reported;
* ``2`` — usage error (unknown rule id, missing path, bad baseline),
  reported as ``error: ...`` on stderr like the other subcommands.
"""

from __future__ import annotations

import os
import sys
from typing import List, Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.engine import LintEngine
from repro.lint.output import FORMATS, format_catalog, render
from repro.lint.rules import Rule, all_rules, normalize_rule_id, rules_by_id

#: fallback lint targets when no paths are given.
DEFAULT_PATHS = ("src", "tests")


def _usage_error(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 2


def _select_rules(selectors: Sequence[str]) -> List[Rule]:
    """Resolve ``--select`` values against the catalog (order kept).

    A selector is a full rule id (``REPRO-D001``, shorthand ``D001``)
    or a family prefix (``REPRO-D``, shorthand ``D``, also ``REPRO-W0``)
    selecting every rule whose id starts with it.  A selector matching
    nothing raises ValueError (exit code 2)."""
    catalog = all_rules()
    by_id = rules_by_id(catalog)
    wanted = set()
    for raw in selectors:
        for part in raw.split(","):
            part = part.strip()
            if not part:
                continue
            rid = normalize_rule_id(part)
            if rid == "ALL":
                wanted.update(by_id)
                continue
            matched = [known for known in by_id
                       if known == rid or known.startswith(rid)]
            if not matched:
                known = ", ".join(sorted(by_id))
                raise ValueError(
                    f"unknown rule id or family prefix {part!r} "
                    f"(known: {known})")
            wanted.update(matched)
    return [rule for rule in catalog if rule.id in wanted]


def _resolve_paths(root: str, raw_paths: Sequence[str]) -> List[str]:
    """Validate requested paths (default: ``src tests`` under root)."""
    if raw_paths:
        for path in raw_paths:
            abs_path = path if os.path.isabs(path) \
                else os.path.join(root, path)
            if not os.path.exists(abs_path):
                raise ValueError(f"path does not exist: {path}")
        return list(raw_paths)
    defaults = [p for p in DEFAULT_PATHS
                if os.path.isdir(os.path.join(root, p))]
    if not defaults:
        raise ValueError(
            f"no paths given and no {'/'.join(DEFAULT_PATHS)} "
            f"directories under {root}")
    return defaults


def run_lint_command(paths: Sequence[str], fmt: str = "text",
                     baseline_path: Optional[str] = None,
                     write_baseline: bool = False,
                     select: Sequence[str] = (),
                     list_rules: bool = False,
                     root: Optional[str] = None,
                     project: bool = False,
                     index_cache: Optional[str] = None,
                     no_index_cache: bool = False) -> int:
    """Execute one lint run; returns the process exit code.

    ``project=True`` enables the whole-program phase (REPRO-W/R and the
    cross-module REPRO-S rules) on top of the per-file rules, with an
    incremental index cache at ``index_cache`` (default
    ``.repro_cache/lint-index.json`` under the root; disable with
    ``no_index_cache``)."""
    if list_rules:
        print(format_catalog(all_rules()))
        return 0

    if fmt not in FORMATS:
        return _usage_error(
            f"unknown format {fmt!r} (choose from {', '.join(FORMATS)})")

    if index_cache and not project:
        return _usage_error("--index-cache requires --project")

    try:
        rules = _select_rules(select) if select else all_rules()
    except ValueError as exc:
        return _usage_error(str(exc))

    root = os.path.abspath(root or os.getcwd())
    try:
        targets = _resolve_paths(root, list(paths))
    except ValueError as exc:
        return _usage_error(str(exc))

    engine = LintEngine(root, rules=rules)
    if project:
        from repro.lint.project import default_cache_path
        cache_path = None if no_index_cache \
            else (index_cache or default_cache_path(root))
        findings = engine.lint_project(targets, cache_path=cache_path)
    else:
        findings = engine.lint_paths(targets)

    if write_baseline:
        dest = baseline_path or os.path.join(root, ".repro-lint-baseline.json")
        Baseline.from_findings(findings).save(dest)
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"baseline written: {dest} ({len(findings)} {noun})")
        return 0

    if baseline_path:
        if not os.path.exists(baseline_path):
            return _usage_error(
                f"baseline file does not exist: {baseline_path}")
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, KeyError) as exc:
            return _usage_error(f"invalid baseline file: {exc}")
        findings = baseline.filter(findings)

    print(render(findings, fmt))
    return 1 if findings else 0
