"""Shared path-scoping helpers for the linter.

Every layer of the linter needs the same three path answers — "what is
this file's root-relative posix path?", "does that path fall under a
scope prefix?", and "which ``.py`` files does a target expand to?" —
and before this module each layer carried its own copy (the engine's
walk, the rule base class's prefix test, the baseline's path keys).
One helper module keeps the answers identical everywhere: a rule scope,
a baseline fingerprint and an engine walk can never disagree about what
a path means.
"""

from __future__ import annotations

import os
from typing import List, Sequence, Set, Tuple

#: directory names never descended into during directory walks.
#: (Explicitly named files bypass this — the fixture tests rely on it.)
DEFAULT_EXCLUDE_DIRS: Set[str] = {
    "__pycache__", ".git", ".repro_cache", ".pytest_cache",
    ".ruff_cache", "build", "dist", ".venv", "venv", "lint_fixtures",
}

#: the simulator hot-path packages whose coding invariants back the
#: repo's bit-identity guarantees (fast loop == reference loop,
#: obs-on == obs-off).
SIM_SCOPE: Tuple[str, ...] = (
    "src/repro/sim",
    "src/repro/mem",
    "src/repro/core",
    "src/repro/cke",
)

#: everything shipped as library code (rules that guard repo-wide
#: invariants, e.g. RNG seeding and picklability).
SRC_SCOPE: Tuple[str, ...] = ("src/repro",)


def norm_rel_path(path: str) -> str:
    """Normalise a relative path to posix separators (baseline entries
    and scope prefixes are stored posix-style regardless of host OS)."""
    return path.replace(os.sep, "/")


def rel_posix(abs_path: str, root: str) -> str:
    """``abs_path`` relative to ``root``, posix separators."""
    return norm_rel_path(os.path.relpath(os.path.abspath(abs_path),
                                         os.path.abspath(root)))


def path_in_scope(rel_path: str, prefixes: Sequence[str]) -> bool:
    """True when ``rel_path`` (posix, root-relative) equals one of the
    ``prefixes`` or lives underneath one of them."""
    for prefix in prefixes:
        if rel_path == prefix or rel_path.startswith(prefix + "/"):
            return True
    return False


def module_name(rel_path: str) -> str:
    """Dotted import name for a root-relative source path, or ``""``
    when the path does not denote an importable project module.

    The repo keeps its package under ``src/`` (``src/repro/sim/sm.py``
    imports as ``repro.sim.sm``); the lint fixture tree mirrors that
    layout on purpose so fixture modules land in the same namespace."""
    if not rel_path.startswith("src/") or not rel_path.endswith(".py"):
        return ""
    dotted = rel_path[len("src/"):-len(".py")]
    if dotted.endswith("/__init__"):
        dotted = dotted[:-len("/__init__")]
    return dotted.replace("/", ".")


def collect_py_files(root: str, paths: Sequence[str],
                     exclude_dirs: Set[str]) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated list of
    absolute ``.py`` paths.  Directory walks skip ``exclude_dirs``;
    explicitly named files are always taken."""
    seen: Set[str] = set()
    out: List[str] = []

    def add(abs_path: str) -> None:
        if abs_path not in seen:
            seen.add(abs_path)
            out.append(abs_path)

    for path in paths:
        abs_path = os.path.abspath(
            path if os.path.isabs(path) else os.path.join(root, path))
        if os.path.isfile(abs_path):
            add(abs_path)
            continue
        for dirpath, dirnames, filenames in os.walk(abs_path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in exclude_dirs)
            for name in sorted(filenames):
                if name.endswith(".py"):
                    add(os.path.join(dirpath, name))
    out.sort()
    return out
