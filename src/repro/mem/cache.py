"""Set-associative cache tag store and the L1 data cache controller.

The L1D follows the paper's Table 1 policies: xor-set-indexing,
allocate-on-miss, LRU replacement, write-evict/write-no-allocate
(WEWN).  A read miss must secure *three* resources — a line slot (the
allocate-on-miss reservation), an MSHR entry, and a miss-queue entry —
and failure to secure any of them is a **reservation failure** that
stalls the memory pipeline (§2.1).  The controller reports which
resource failed, which the stats layer and DMIL use.

The same tag store is reused by the L2 controller in
:mod:`repro.mem.subsystem` and by the UCP shadow tags in
:mod:`repro.core.cache_partition`.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.config import CacheConfig
from repro.mem.mshr import MSHRFile


class AccessResult:
    """Outcome labels for one cache access attempt."""

    HIT = "hit"
    MISS = "miss"                      # primary miss, resources secured
    MISS_MERGED = "miss_merged"        # secondary miss, merged into MSHR
    RSFAIL_LINE = "rsfail_line"        # no evictable line slot in set
    RSFAIL_MSHR = "rsfail_mshr"        # MSHR file full
    RSFAIL_MERGE = "rsfail_merge"      # MSHR merge list full
    RSFAIL_MISSQ = "rsfail_missq"      # miss queue full

    RSFAILS = frozenset((RSFAIL_LINE, RSFAIL_MSHR, RSFAIL_MERGE, RSFAIL_MISSQ))


class _Line:
    __slots__ = ("tag", "valid", "reserved", "dirty", "kernel", "last_use")

    def __init__(self) -> None:
        self.tag = -1
        self.valid = False
        self.reserved = False
        self.dirty = False
        self.kernel = -1
        self.last_use = 0


class CacheStats:
    """Per-kernel access counters for one cache instance."""

    def __init__(self) -> None:
        self.accesses: Dict[int, int] = defaultdict(int)
        self.hits: Dict[int, int] = defaultdict(int)
        self.misses: Dict[int, int] = defaultdict(int)
        self.rsfails: Dict[int, int] = defaultdict(int)
        self.rsfail_reasons: Dict[str, int] = defaultdict(int)
        self.writes: Dict[int, int] = defaultdict(int)
        self.bypasses: Dict[int, int] = defaultdict(int)

    def miss_rate(self, kernel: int) -> float:
        acc = self.accesses[kernel]
        return self.misses[kernel] / acc if acc else 0.0

    def rsfail_rate(self, kernel: int) -> float:
        acc = (self.accesses[kernel] + self.writes[kernel]
               + self.bypasses[kernel])
        return self.rsfails[kernel] / acc if acc else 0.0


class SetAssocCache:
    """Tag store with LRU replacement, reservation (allocate-on-miss)
    support, and optional per-kernel way partitioning (UCP)."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.num_sets = config.num_sets
        self.assoc = config.assoc
        self._xor = config.xor_index
        self._sets: List[List[_Line]] = [
            [_Line() for _ in range(self.assoc)] for _ in range(self.num_sets)
        ]
        self._use_clock = 0
        #: kernel -> allotted ways; None disables partitioning.
        self.partition: Optional[Dict[int, int]] = None

    def set_index(self, line_addr: int) -> int:
        sets = self.num_sets
        if self._xor:
            return (line_addr ^ (line_addr // sets)) % sets
        return line_addr % sets

    def _touch(self, line: _Line) -> None:
        self._use_clock += 1
        line.last_use = self._use_clock

    def probe(self, line_addr: int) -> Optional[_Line]:
        """Find the line without updating LRU state."""
        sets = self.num_sets
        if self._xor:
            idx = (line_addr ^ (line_addr // sets)) % sets
        else:
            idx = line_addr % sets
        for line in self._sets[idx]:
            if line.tag == line_addr and (line.valid or line.reserved):
                return line
        return None

    def lookup(self, line_addr: int) -> Optional[_Line]:
        """Find the line and mark it most-recently-used if valid."""
        sets = self.num_sets
        if self._xor:
            idx = (line_addr ^ (line_addr // sets)) % sets
        else:
            idx = line_addr % sets
        for line in self._sets[idx]:
            if line.tag == line_addr and (line.valid or line.reserved):
                if line.valid:
                    self._use_clock += 1
                    line.last_use = self._use_clock
                return line
        return None

    def _candidate_victims(self, target_set: List[_Line], kernel: int) -> List[_Line]:
        free = [ln for ln in target_set if not ln.valid and not ln.reserved]
        if self.partition is None:
            if free:
                return free
            return [ln for ln in target_set if not ln.reserved]
        # UCP enforcement: a kernel at or over its allocation may only
        # evict its own lines; under-allocated kernels prefer invalid
        # slots, then lines of kernels exceeding their own allocation.
        quota = self.partition.get(kernel, self.assoc)
        mine = sum(1 for ln in target_set
                   if (ln.valid or ln.reserved) and ln.kernel == kernel)
        if mine >= quota:
            return [ln for ln in target_set
                    if ln.valid and not ln.reserved and ln.kernel == kernel]
        if free:
            return free
        counts: Dict[int, int] = defaultdict(int)
        for ln in target_set:
            if ln.valid or ln.reserved:
                counts[ln.kernel] += 1
        over = [ln for ln in target_set
                if ln.valid and not ln.reserved
                and counts[ln.kernel] > self.partition.get(ln.kernel, self.assoc)]
        if over:
            return over
        return [ln for ln in target_set if ln.valid and not ln.reserved]

    def reserve(self, line_addr: int, kernel: int) -> Tuple[bool, bool, int]:
        """Allocate-on-miss: reserve a slot for an outstanding fill.

        Returns ``(ok, evicted_dirty, evicted_tag)``; ``ok`` False means
        no evictable slot exists (a line reservation failure).
        """
        target_set = self._sets[self.set_index(line_addr)]
        if self.partition is None:
            # Fused victim scan (the common, unpartitioned case): the
            # LRU free slot if any, else the LRU unreserved line.  The
            # strict ``<`` keeps first-wins tie-breaking, matching
            # ``min`` over the candidate list.
            victim = None
            best_free = None
            best_any = None
            for ln in target_set:
                if ln.reserved:
                    continue
                lu = ln.last_use
                if not ln.valid and (best_free is None
                                     or lu < best_free.last_use):
                    best_free = ln
                if best_any is None or lu < best_any.last_use:
                    best_any = ln
            victim = best_free if best_free is not None else best_any
            if victim is None:
                return False, False, -1
        else:
            victims = self._candidate_victims(target_set, kernel)
            if not victims:
                return False, False, -1
            victim = min(victims, key=lambda ln: ln.last_use)
        evicted_dirty = victim.valid and victim.dirty
        evicted_tag = victim.tag
        victim.tag = line_addr
        victim.valid = False
        victim.reserved = True
        victim.dirty = False
        victim.kernel = kernel
        self._touch(victim)
        return True, evicted_dirty, evicted_tag

    def fill(self, line_addr: int) -> None:
        """Complete an outstanding reservation (the fill arrived)."""
        line = self.probe(line_addr)
        if line is None or not line.reserved:
            # The reservation may have been made under a different
            # partition configuration; insert fresh if possible.
            ok, _, _ = self.reserve(line_addr, kernel=-1)
            if not ok:
                return
            line = self.probe(line_addr)
            assert line is not None
        line.reserved = False
        line.valid = True
        self._touch(line)

    def invalidate(self, line_addr: int) -> None:
        line = self.probe(line_addr)
        if line is not None and line.valid:
            line.valid = False
            line.tag = -1
            line.dirty = False

    def occupancy_by_kernel(self) -> Dict[int, int]:
        out: Dict[int, int] = defaultdict(int)
        for target_set in self._sets:
            for line in target_set:
                if line.valid or line.reserved:
                    out[line.kernel] += 1
        return dict(out)


class L1DCache:
    """Per-SM L1 data cache controller (tag store + MSHRs + miss queue).

    ``access`` performs one request's lookup.  On a primary miss the
    controller secures a line slot, an MSHR, and a miss-queue entry
    before accepting; the miss queue is drained into the interconnect
    by :class:`repro.mem.subsystem.MemorySubsystem`.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.tags = SetAssocCache(config)
        self.mshrs = MSHRFile(config.mshrs, config.mshr_merge)
        self.miss_queue: Deque[object] = deque()
        self.stats = CacheStats()
        #: bumped whenever a resource an ``access`` outcome depends on
        #: is released *outside* ``access`` itself (a fill freeing the
        #: line + MSHR, the subsystem draining a miss-queue slot).  The
        #: LSU uses it to memoise a stalled request's replay verdict:
        #: same request + same version (+ same way partition) must fail
        #: the same way, so only the stats bumps need replaying.
        self.version = 0

    @property
    def miss_queue_full(self) -> bool:
        return len(self.miss_queue) >= self.config.miss_queue

    def access(self, request, cycle: int) -> str:
        """Attempt one request; returns an :class:`AccessResult` label.

        Reservation failures leave all state untouched so the LSU can
        replay the request next cycle (the paper's stall semantics).
        """
        kernel = request.kernel
        line_addr = request.line
        stats = self.stats

        if request.bypass and not request.is_write:
            # Cache bypassing (§4.5): skip lookup and allocation — the
            # request only needs a miss-queue slot to travel to L2.  It
            # relieves L1 contention but offloads every transaction to
            # the lower levels.
            if self.miss_queue_full:
                stats.rsfails[kernel] += 1
                stats.rsfail_reasons[AccessResult.RSFAIL_MISSQ] += 1
                return AccessResult.RSFAIL_MISSQ
            stats.bypasses[kernel] += 1
            self.miss_queue.append(request)
            return AccessResult.MISS

        if request.is_write:
            # WEWN: write-evict + write-no-allocate.  The write needs a
            # miss-queue slot to travel to L2; it never allocates and
            # never uses an MSHR.
            if self.miss_queue_full:
                stats.rsfails[kernel] += 1
                stats.rsfail_reasons[AccessResult.RSFAIL_MISSQ] += 1
                return AccessResult.RSFAIL_MISSQ
            stats.writes[kernel] += 1
            self.tags.invalidate(line_addr)
            self.miss_queue.append(request)
            return AccessResult.MISS

        stats.accesses[kernel] += 1
        line = self.tags.lookup(line_addr)
        if line is not None:
            if line.valid:
                stats.hits[kernel] += 1
                return AccessResult.HIT
            # Secondary miss (reserved line): merge into the MSHR.
            if not self.mshrs.try_merge(line_addr, request):
                stats.accesses[kernel] -= 1
                stats.rsfails[kernel] += 1
                stats.rsfail_reasons[AccessResult.RSFAIL_MERGE] += 1
                return AccessResult.RSFAIL_MERGE
            stats.misses[kernel] += 1
            return AccessResult.MISS_MERGED

        # Primary miss: need line slot + MSHR + miss-queue entry.
        failure = None
        if not self.mshrs.can_allocate():
            failure = AccessResult.RSFAIL_MSHR
        elif self.miss_queue_full:
            failure = AccessResult.RSFAIL_MISSQ
        if failure is None:
            ok, _, _ = self.tags.reserve(line_addr, kernel)
            if not ok:
                failure = AccessResult.RSFAIL_LINE
        if failure is not None:
            stats.accesses[kernel] -= 1
            stats.rsfails[kernel] += 1
            stats.rsfail_reasons[failure] += 1
            return failure

        self.mshrs.allocate(line_addr, kernel, request)
        self.miss_queue.append(request)
        stats.misses[kernel] += 1
        return AccessResult.MISS

    def fill(self, line_addr: int) -> List[object]:
        """A fill returned from L2: complete the line and release the
        MSHR.  Returns the requests waiting on this line."""
        self.version += 1
        self.tags.fill(line_addr)
        entry = self.mshrs.release(line_addr)
        return entry.waiters


class PooledL1DCache:
    """Allocation-free twin of :class:`L1DCache` for the pooled memory
    path: an :class:`~repro.mem.pool.ArrayTagStore` tag store, an
    :class:`~repro.mem.pool.ArrayMSHRFile`, and a miss queue of
    :class:`~repro.mem.pool.RequestPool` slot ids.

    ``access_slot`` is ``L1DCache.access`` with the request fields
    passed as scalars (the LSU already holds them) — every stats bump,
    LRU touch and resource check happens in the same order, so the two
    controllers are bit-identical (asserted per benchmark run and
    fuzzed in tests/test_pooled_identity.py).
    """

    __slots__ = ("config", "pool", "tags", "mshrs", "miss_queue", "stats",
                 "version", "_mq_pending", "_miss_queue_cap")

    def __init__(self, config: CacheConfig, pool, mq_pending=None):
        # Imported here: repro.mem.pool imports nothing from this
        # module's consumers, but keeping cache.py's import graph
        # object-path-only preserves the reference path's independence.
        from repro.mem.pool import ArrayMSHRFile, ArrayTagStore
        self.config = config
        self.pool = pool
        self.tags = ArrayTagStore(config)
        self.mshrs = ArrayMSHRFile(config.mshrs, config.mshr_merge)
        self.miss_queue: Deque[int] = deque()
        self.stats = CacheStats()
        #: same replay-memo contract as :attr:`L1DCache.version`.
        self.version = 0
        #: shared one-cell counter of queued miss entries across all
        #: L1s (owned by the pooled subsystem; gives its idle check and
        #: leap gate an O(1) "any miss queue non-empty" answer).
        self._mq_pending = mq_pending if mq_pending is not None else [0]
        self._miss_queue_cap = config.miss_queue

    @property
    def miss_queue_full(self) -> bool:
        return len(self.miss_queue) >= self._miss_queue_cap

    def access_slot(self, slot: int, line_addr: int, kernel: int,
                    is_write: bool, bypass: bool) -> str:
        """``L1DCache.access`` over a pool slot; same result labels,
        same stats/LRU mutation order, reservation failures leave all
        state untouched."""
        stats = self.stats
        miss_queue = self.miss_queue

        if bypass and not is_write:
            if len(miss_queue) >= self._miss_queue_cap:
                stats.rsfails[kernel] += 1
                stats.rsfail_reasons[AccessResult.RSFAIL_MISSQ] += 1
                return AccessResult.RSFAIL_MISSQ
            stats.bypasses[kernel] += 1
            miss_queue.append(slot)
            self._mq_pending[0] += 1
            return AccessResult.MISS

        if is_write:
            if len(miss_queue) >= self._miss_queue_cap:
                stats.rsfails[kernel] += 1
                stats.rsfail_reasons[AccessResult.RSFAIL_MISSQ] += 1
                return AccessResult.RSFAIL_MISSQ
            stats.writes[kernel] += 1
            self.tags.invalidate(line_addr)
            miss_queue.append(slot)
            self._mq_pending[0] += 1
            return AccessResult.MISS

        stats.accesses[kernel] += 1
        tags = self.tags
        way = tags.find(line_addr)
        if way >= 0:
            if tags.valid[way]:
                tags.touch(way)  # the lookup's LRU bump
                stats.hits[kernel] += 1
                return AccessResult.HIT
            # Secondary miss (reserved line): merge into the MSHR.
            if not self.mshrs.try_merge(line_addr, slot):
                stats.accesses[kernel] -= 1
                stats.rsfails[kernel] += 1
                stats.rsfail_reasons[AccessResult.RSFAIL_MERGE] += 1
                return AccessResult.RSFAIL_MERGE
            stats.misses[kernel] += 1
            return AccessResult.MISS_MERGED

        # Primary miss: need line slot + MSHR + miss-queue entry.
        failure = None
        if not self.mshrs.can_allocate():
            failure = AccessResult.RSFAIL_MSHR
        elif len(miss_queue) >= self._miss_queue_cap:
            failure = AccessResult.RSFAIL_MISSQ
        if failure is None:
            ok, _, _ = tags.reserve(line_addr, kernel)
            if not ok:
                failure = AccessResult.RSFAIL_LINE
        if failure is not None:
            stats.accesses[kernel] -= 1
            stats.rsfails[kernel] += 1
            stats.rsfail_reasons[failure] += 1
            return failure

        self.mshrs.allocate(line_addr, kernel, slot)
        miss_queue.append(slot)
        self._mq_pending[0] += 1
        stats.misses[kernel] += 1
        return AccessResult.MISS

    def fill(self, line_addr: int) -> List[int]:
        """A fill returned from L2: returns the waiting slot ids (the
        recycled list is valid until the MSHR entry is re-allocated)."""
        self.version += 1
        self.tags.fill(line_addr)
        return self.mshrs.release(line_addr)
