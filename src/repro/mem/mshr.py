"""Miss Status Handling Registers.

An MSHR entry tracks one outstanding missed cache line.  A *primary*
miss allocates a new entry (and is the access that travels to the next
level); *secondary* misses to the same line merge into the existing
entry up to ``merge_limit`` waiters.  The entry is released when the
fill returns — exactly the paper's §2.1 description ("the allocated
MSHR is reserved until the data is fetched from the L2 cache/off-chip
memory").

Running out of entries (or of merge slots) is one of the reservation-
failure causes that stall the memory pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class MSHREntry:
    __slots__ = ("line_addr", "kernel", "waiters")

    def __init__(self, line_addr: int, kernel: int):
        self.line_addr = line_addr
        self.kernel = kernel
        self.waiters: List[object] = []


class MSHRFile:
    """A fixed-capacity pool of MSHR entries keyed by line address."""

    def __init__(self, capacity: int, merge_limit: int = 8):
        if capacity < 1:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self.merge_limit = merge_limit
        self._entries: Dict[int, MSHREntry] = {}
        #: high-water mark of simultaneously allocated entries.
        self.peak_used = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, line_addr: int) -> Optional[MSHREntry]:
        return self._entries.get(line_addr)

    def can_allocate(self) -> bool:
        return len(self._entries) < self.capacity

    def can_merge(self, line_addr: int) -> bool:
        entry = self._entries.get(line_addr)
        return entry is not None and len(entry.waiters) < self.merge_limit

    def try_merge(self, line_addr: int, waiter: object) -> bool:
        """Fused :meth:`can_merge` + :meth:`merge` (one entry lookup):
        attach ``waiter`` if the entry exists and has a merge slot."""
        entry = self._entries.get(line_addr)
        if entry is None:
            return False
        waiters = entry.waiters
        if len(waiters) >= self.merge_limit:
            return False
        waiters.append(waiter)
        return True

    def allocate(self, line_addr: int, kernel: int, waiter: object) -> MSHREntry:
        """Allocate an entry for a primary miss."""
        entries = self._entries
        if line_addr in entries:
            raise RuntimeError(f"MSHR for line {line_addr:#x} already allocated")
        used = len(entries)
        if used >= self.capacity:
            raise RuntimeError("MSHR file full")
        entry = MSHREntry(line_addr, kernel)
        entry.waiters.append(waiter)
        entries[line_addr] = entry
        if used >= self.peak_used:
            self.peak_used = used + 1
        return entry

    def merge(self, line_addr: int, waiter: object) -> MSHREntry:
        """Attach a secondary miss to an outstanding entry."""
        entry = self._entries[line_addr]
        if len(entry.waiters) >= self.merge_limit:
            raise RuntimeError("MSHR merge limit exceeded")
        entry.waiters.append(waiter)
        return entry

    def release(self, line_addr: int) -> MSHREntry:
        """Free the entry when its fill returns; the caller notifies
        the returned waiters."""
        try:
            return self._entries.pop(line_addr)
        except KeyError:
            raise RuntimeError(f"no MSHR outstanding for line {line_addr:#x}") from None

    def occupancy_by_kernel(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for entry in self._entries.values():
            out[entry.kernel] = out.get(entry.kernel, 0) + 1
        return out
