"""Memory hierarchy substrate: L1D/L2 caches with MSHRs and miss
queues (including the reservation-failure semantics the paper's DMIL
scheme keys on), a crossbar interconnect, and FR-FCFS-like DRAM
channels."""

from repro.mem.mshr import MSHRFile
from repro.mem.cache import AccessResult, CacheStats, L1DCache, SetAssocCache
from repro.mem.interconnect import Interconnect
from repro.mem.dram import DRAMChannel, DRAMModel
from repro.mem.subsystem import MemRequest, MemorySubsystem

__all__ = [
    "MSHRFile",
    "AccessResult",
    "CacheStats",
    "SetAssocCache",
    "L1DCache",
    "Interconnect",
    "DRAMChannel",
    "DRAMModel",
    "MemRequest",
    "MemorySubsystem",
]
