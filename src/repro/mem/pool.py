"""Struct-of-arrays backing stores for the allocation-free memory path.

The reference memory pipeline carries a :class:`~repro.mem.subsystem
.MemRequest` object per coalesced line and walks object-per-line tag
stores and dict-of-entry MSHRs.  On memory-bound workloads that makes
the interpreter's allocator and attribute machinery the dominant
simulation cost.  This module provides the flat-array equivalents the
pooled fast path (``GPU(pooled=True)``, the default for the fast cycle
loop) runs on:

* :class:`RequestPool` — a preallocated, free-list-recycled slot pool
  holding every in-flight request's fields in parallel arrays; the
  pipeline passes integer slot ids instead of objects.
* :class:`PoolSlotView` — an ephemeral object facade over one slot,
  presenting the exact ``MemRequest`` attribute surface so the
  observability hooks read (and write ``trace_id`` on) pool slots
  through their existing interface.
* :class:`ArrayTagStore` — a :class:`~repro.mem.cache.SetAssocCache`
  rewritten over flat per-way arrays (one int/bool list each for tag /
  valid / reserved / dirty / kernel / last_use), replicating the LRU
  clock, reservation, partitioned-victim and fill semantics bump for
  bump.
* :class:`ArrayMSHRFile` — a :class:`~repro.mem.mshr.MSHRFile` over a
  fixed entry pool with recycled waiter lists; waiters are pool slot
  ids.

Every class here is proven bit-identical to its object twin: the perf
suite asserts ``result_signature`` equality between the pooled and the
reference path on every benchmark run, and tests/test_pooled_identity
.py fuzzes the matrix across schemes and randomized mixes (the same
proof obligation the fast cycle loop discharges, see docs/PERF.md).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from repro.config import CacheConfig

#: initial slot capacity; the pool doubles deterministically when the
#: in-flight population outgrows it (allocation order is a pure
#: function of the simulation, so growth points are reproducible).
DEFAULT_POOL_CAPACITY = 256


class RequestPool:
    """Free-list-recycled struct-of-arrays store for in-flight memory
    requests.

    ``alloc`` hands out the lowest-recently-freed slot id and stamps
    the request fields into the parallel arrays; ``free`` recycles the
    slot once the request's lifetime ends (L1 hit, write reaching the
    L2 boundary, or fill delivery).  ``live`` guards against the one
    bug class pooling introduces: freeing a slot that is still
    travelling would alias two requests onto one set of fields.
    """

    __slots__ = ("capacity", "line", "kernel", "sm_id", "is_write",
                 "bypass", "meminst", "issued_cycle", "trace_id", "live",
                 "_free", "grows")

    def __init__(self, capacity: int = DEFAULT_POOL_CAPACITY):
        if capacity < 1:
            raise ValueError("pool capacity must be positive")
        self.capacity = capacity
        self.line: List[int] = [0] * capacity
        self.kernel: List[int] = [-1] * capacity
        self.sm_id: List[int] = [-1] * capacity
        self.is_write: List[bool] = [False] * capacity
        self.bypass: List[bool] = [False] * capacity
        self.meminst: List[object] = [None] * capacity
        self.issued_cycle: List[int] = [0] * capacity
        self.trace_id: List[Optional[int]] = [None] * capacity
        self.live: List[bool] = [False] * capacity
        # Reversed so pop() hands out slot 0, 1, 2, ... in order.
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        #: times the pool doubled (deterministic; perf introspection).
        self.grows = 0

    def alloc(self, line: int, kernel: int, sm_id: int, is_write: bool,
              meminst, issued_cycle: int, bypass: bool) -> int:
        """Claim a slot and stamp the request fields; returns the id."""
        free = self._free
        if not free:
            self._grow()
            free = self._free
        slot = free.pop()
        self.line[slot] = line
        self.kernel[slot] = kernel
        self.sm_id[slot] = sm_id
        self.is_write[slot] = is_write
        self.bypass[slot] = bypass
        self.meminst[slot] = meminst
        self.issued_cycle[slot] = issued_cycle
        self.trace_id[slot] = None
        self.live[slot] = True
        return slot

    def _grow(self) -> None:
        old = self.capacity
        grow = old  # double
        self.line.extend([0] * grow)
        self.kernel.extend([-1] * grow)
        self.sm_id.extend([-1] * grow)
        self.is_write.extend([False] * grow)
        self.bypass.extend([False] * grow)
        self.meminst.extend([None] * grow)
        self.issued_cycle.extend([0] * grow)
        self.trace_id.extend([None] * grow)
        self.live.extend([False] * grow)
        # Reversed again: the next allocations are old, old+1, ... —
        # growth changes capacity, never the slot-id sequence.
        self._free.extend(range(old + grow - 1, old - 1, -1))
        self.capacity = old + grow
        self.grows += 1

    def free(self, slot: int) -> None:
        """Recycle a slot whose request's lifetime ended."""
        if not self.live[slot]:
            raise RuntimeError(f"double free of pool slot {slot}")
        self.live[slot] = False
        self.meminst[slot] = None  # drop the MemInst reference promptly
        self._free.append(slot)

    def live_count(self) -> int:
        return self.capacity - len(self._free)

    def view(self, slot: int) -> "PoolSlotView":
        """An ephemeral ``MemRequest``-shaped facade over ``slot`` for
        the observability hooks (never retained by the collector)."""
        return PoolSlotView(self, slot)


class PoolSlotView:
    """Read/write facade presenting one pool slot with the
    :class:`~repro.mem.subsystem.MemRequest` attribute surface.

    Obs hooks address requests through exactly the attributes below;
    ``trace_id`` is the one they also assign, so its setter writes
    through to the pool array (the trace id must survive across hook
    calls while the slot is in flight)."""

    __slots__ = ("_pool", "slot")

    def __init__(self, pool: RequestPool, slot: int):
        self._pool = pool
        self.slot = slot

    @property
    def line(self) -> int:
        return self._pool.line[self.slot]

    @property
    def kernel(self) -> int:
        return self._pool.kernel[self.slot]

    @property
    def sm_id(self) -> int:
        return self._pool.sm_id[self.slot]

    @property
    def is_write(self) -> bool:
        return self._pool.is_write[self.slot]

    @property
    def bypass(self) -> bool:
        return self._pool.bypass[self.slot]

    @property
    def meminst(self):
        return self._pool.meminst[self.slot]

    @property
    def issued_cycle(self) -> int:
        return self._pool.issued_cycle[self.slot]

    @property
    def trace_id(self) -> Optional[int]:
        return self._pool.trace_id[self.slot]

    @trace_id.setter
    def trace_id(self, value: Optional[int]) -> None:
        self._pool.trace_id[self.slot] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "W" if self.is_write else "R"
        return (f"<PoolSlotView #{self.slot} {kind} line={self.line:#x} "
                f"k{self.kernel} sm{self.sm_id}>")


class ArrayTagStore:
    """Flat-array twin of :class:`~repro.mem.cache.SetAssocCache`.

    Ways are stored as parallel lists indexed ``set * assoc + way``.
    Every LRU-clock bump happens at the same logical operation as in
    the object store (lookup-touch on valid hit, victim-touch on
    reserve, fill-touch — twice on the fallback re-reserve path), so
    replacement decisions are bit-identical.  Exposes ``config`` /
    ``assoc`` / ``partition`` so UCP drives it exactly like the object
    store.
    """

    __slots__ = ("config", "num_sets", "assoc", "_xor", "tag", "valid",
                 "reserved", "dirty", "kernel", "last_use", "use_clock",
                 "partition", "_where")

    def __init__(self, config: CacheConfig):
        self.config = config
        self.num_sets = config.num_sets
        self.assoc = config.assoc
        self._xor = config.xor_index
        size = self.num_sets * self.assoc
        self.tag: List[int] = [-1] * size
        self.valid: List[bool] = [False] * size
        self.reserved: List[bool] = [False] * size
        self.dirty: List[bool] = [False] * size
        self.kernel: List[int] = [-1] * size
        self.last_use: List[int] = [0] * size
        self.use_clock = 0
        #: kernel -> allotted ways; None disables partitioning (same
        #: object-identity memo contract as the object store).
        self.partition: Optional[Dict[int, int]] = None
        #: line addr -> flat way index of every resident (valid or
        #: reserved) line: O(1) ``find``.  Maintained at the three
        #: mutation sites (reserve, invalidate, and reserve's victim
        #: eviction); a line maps to exactly one set, so keys never
        #: collide.
        self._where: Dict[int, int] = {}

    def set_index(self, line_addr: int) -> int:
        sets = self.num_sets
        if self._xor:
            return (line_addr ^ (line_addr // sets)) % sets
        return line_addr % sets

    def find(self, line_addr: int) -> int:
        """Way index of the line (valid or reserved), or -1.  The array
        analogue of ``probe`` — no LRU update.  One dict lookup: the
        ``_where`` index tracks every resident tag, so no way scan."""
        return self._where.get(line_addr, -1)

    def touch(self, i: int) -> None:
        """Mark way ``i`` most-recently-used (the ``lookup`` LRU bump;
        callers apply it only to valid ways, as the object store does)."""
        self.use_clock += 1
        self.last_use[i] = self.use_clock

    def _partitioned_victim(self, base: int, kernel: int) -> int:
        # Mirrors SetAssocCache._candidate_victims + min(key=last_use)
        # (first-wins tie-break follows from the scan order).
        assoc = self.assoc
        valid = self.valid
        reserved = self.reserved
        kern = self.kernel
        last_use = self.last_use
        part = self.partition
        ways = range(base, base + assoc)
        free = [i for i in ways if not valid[i] and not reserved[i]]
        quota = part.get(kernel, assoc)
        mine = sum(1 for i in ways
                   if (valid[i] or reserved[i]) and kern[i] == kernel)
        if mine >= quota:
            cands = [i for i in ways
                     if valid[i] and not reserved[i] and kern[i] == kernel]
        elif free:
            cands = free
        else:
            counts: Dict[int, int] = defaultdict(int)
            for i in ways:
                if valid[i] or reserved[i]:
                    counts[kern[i]] += 1
            cands = [i for i in ways if valid[i] and not reserved[i]
                     and counts[kern[i]] > part.get(kern[i], assoc)]
            if not cands:
                cands = [i for i in ways if valid[i] and not reserved[i]]
        if not cands:
            return -1
        best = cands[0]
        for i in cands[1:]:
            if last_use[i] < last_use[best]:
                best = i
        return best

    def reserve(self, line_addr: int, kernel: int):
        """Allocate-on-miss; returns ``(ok, evicted_dirty, evicted_tag)``
        exactly like the object store."""
        assoc = self.assoc
        base = self.set_index(line_addr) * assoc
        valid = self.valid
        reserved = self.reserved
        last_use = self.last_use
        if self.partition is None:
            # Fused victim scan, strict < = first-wins tie-breaking.
            best_free = -1
            best_free_lu = 0
            best_any = -1
            best_any_lu = 0
            for i in range(base, base + assoc):
                if reserved[i]:
                    continue
                lu = last_use[i]
                if not valid[i] and (best_free < 0 or lu < best_free_lu):
                    best_free = i
                    best_free_lu = lu
                if best_any < 0 or lu < best_any_lu:
                    best_any = i
                    best_any_lu = lu
            victim = best_free if best_free >= 0 else best_any
            if victim < 0:
                return False, False, -1
        else:
            victim = self._partitioned_victim(base, kernel)
            if victim < 0:
                return False, False, -1
        tag = self.tag
        dirty = self.dirty
        evicted_dirty = valid[victim] and dirty[victim]
        evicted_tag = tag[victim]
        where = self._where
        if evicted_tag >= 0:
            del where[evicted_tag]
        where[line_addr] = victim
        tag[victim] = line_addr
        valid[victim] = False
        reserved[victim] = True
        dirty[victim] = False
        self.kernel[victim] = kernel
        self.use_clock += 1
        last_use[victim] = self.use_clock
        return True, evicted_dirty, evicted_tag

    def fill(self, line_addr: int) -> None:
        """Complete an outstanding reservation (the fill arrived)."""
        i = self.find(line_addr)
        if i < 0 or not self.reserved[i]:
            # Reservation made under a different partition config:
            # insert fresh if possible (double-touch path, matching the
            # object store's reserve-then-fill clock sequence).
            ok, _, _ = self.reserve(line_addr, kernel=-1)
            if not ok:
                return
            i = self.find(line_addr)
            assert i >= 0
        self.reserved[i] = False
        self.valid[i] = True
        self.use_clock += 1
        self.last_use[i] = self.use_clock

    def invalidate(self, line_addr: int) -> None:
        i = self._where.get(line_addr, -1)
        if i >= 0 and self.valid[i]:
            del self._where[line_addr]
            self.valid[i] = False
            self.tag[i] = -1
            self.dirty[i] = False

    def occupancy_by_kernel(self) -> Dict[int, int]:
        out: Dict[int, int] = defaultdict(int)
        valid = self.valid
        reserved = self.reserved
        kernel = self.kernel
        for i in range(len(valid)):
            if valid[i] or reserved[i]:
                out[kernel[i]] += 1
        return dict(out)


class ArrayMSHRFile:
    """Entry-pooled twin of :class:`~repro.mem.mshr.MSHRFile`; waiters
    are :class:`RequestPool` slot ids.

    Waiter lists are recycled with their entry: ``release`` returns the
    live list for the caller to fan out, and the list is only cleared
    when its entry index is next allocated — valid because no fill
    fan-out can allocate an L1/L2 MSHR before it finishes iterating
    (completions never issue new cache accesses inline).
    """

    __slots__ = ("capacity", "merge_limit", "_index", "_kernel",
                 "_waiters", "_free", "peak_used")

    def __init__(self, capacity: int, merge_limit: int = 8):
        if capacity < 1:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self.merge_limit = merge_limit
        #: line addr -> entry index.
        self._index: Dict[int, int] = {}
        self._kernel: List[int] = [-1] * capacity
        self._waiters: List[List[int]] = [[] for _ in range(capacity)]
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        #: high-water mark of simultaneously allocated entries.
        self.peak_used = 0

    def __len__(self) -> int:
        return len(self._index)

    @property
    def full(self) -> bool:
        return len(self._index) >= self.capacity

    def lookup(self, line_addr: int) -> Optional[int]:
        return self._index.get(line_addr)

    def can_allocate(self) -> bool:
        return len(self._index) < self.capacity

    def can_merge(self, line_addr: int) -> bool:
        entry = self._index.get(line_addr)
        return (entry is not None
                and len(self._waiters[entry]) < self.merge_limit)

    def try_merge(self, line_addr: int, waiter: int) -> bool:
        """Fused ``can_merge`` + ``merge`` (one index lookup)."""
        entry = self._index.get(line_addr)
        if entry is None:
            return False
        waiters = self._waiters[entry]
        if len(waiters) >= self.merge_limit:
            return False
        waiters.append(waiter)
        return True

    def allocate(self, line_addr: int, kernel: int, waiter: int) -> int:
        """Allocate an entry for a primary miss; returns its index."""
        index = self._index
        if line_addr in index:
            raise RuntimeError(
                f"MSHR for line {line_addr:#x} already allocated")
        used = len(index)
        if used >= self.capacity:
            raise RuntimeError("MSHR file full")
        entry = self._free.pop()
        index[line_addr] = entry
        self._kernel[entry] = kernel
        waiters = self._waiters[entry]
        waiters.clear()
        waiters.append(waiter)
        if used >= self.peak_used:
            self.peak_used = used + 1
        return entry

    def merge(self, line_addr: int, waiter: int) -> int:
        """Attach a secondary miss to an outstanding entry."""
        entry = self._index[line_addr]
        waiters = self._waiters[entry]
        if len(waiters) >= self.merge_limit:
            raise RuntimeError("MSHR merge limit exceeded")
        waiters.append(waiter)
        return entry

    def release(self, line_addr: int) -> List[int]:
        """Free the entry when its fill returns; the caller fans out
        the returned waiter list *before* the entry can be reused."""
        try:
            entry = self._index.pop(line_addr)
        except KeyError:
            raise RuntimeError(
                f"no MSHR outstanding for line {line_addr:#x}") from None
        self._free.append(entry)
        return self._waiters[entry]

    def occupancy_by_kernel(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        kernel = self._kernel
        for entry in self._index.values():
            k = kernel[entry]
            out[k] = out.get(k, 0) + 1
        return out
