"""SM↔L2 crossbar interconnect model.

Table 1's machine uses a 16x16 crossbar with 32-byte flits clocked at
core frequency.  We model the two directions (request: SM→L2,
response: L2→SM) as independent token-bucket bandwidth pools plus a
fixed traversal latency; transfers are delivered through a time-ordered
event heap owned by the caller.

A read request costs one flit; anything carrying a 128B line (a
response fill or a write-through) costs ``line_size/flit_size`` flits.
"""

from __future__ import annotations

from repro.config import GPUConfig

FLIT_BYTES = 32


class Interconnect:
    """Dual token-bucket bandwidth model with fixed latency."""

    def __init__(self, config: GPUConfig):
        self.latency = config.icnt_latency
        rate = float(config.icnt_flits_per_cycle)
        # Allow short bursts: a full line transfer can be buffered even
        # when the per-cycle rate is below the line cost.
        burst_cap = max(rate * 4, self.line_flits(config) * 2.0)
        # Integral rates (every committed config) run the buckets on
        # ints: int arithmetic is faster than float on the hot path and
        # bit-identical here, since floats represent these small
        # integers exactly (all values stay far below 2**53).
        if rate.is_integer() and burst_cap.is_integer():
            rate = int(rate)
            burst_cap = int(burst_cap)
        self.rate = rate
        self.burst_cap = burst_cap
        self._req_tokens = self.burst_cap
        self._rsp_tokens = self.burst_cap
        self.req_flits_sent = 0
        self.rsp_flits_sent = 0

    @staticmethod
    def line_flits(config: GPUConfig) -> int:
        return max(1, config.l1d.line_size // FLIT_BYTES)

    def begin_cycle(self, cycles: int = 1) -> None:
        """Refill both token buckets for ``cycles`` elapsed cycles.

        Refill is linear and capped, so one call with ``cycles=k`` is
        exactly equivalent to ``k`` single-cycle calls — the memory
        subsystem uses this to catch up after idle-skipped cycles.
        """
        rate = self.rate * cycles
        cap = self.burst_cap
        req = self._req_tokens + rate
        rsp = self._rsp_tokens + rate
        self._req_tokens = cap if req > cap else req
        self._rsp_tokens = cap if rsp > cap else rsp

    def try_send_request(self, flits: int) -> bool:
        if self._req_tokens < flits:
            return False
        self._req_tokens -= flits
        self.req_flits_sent += flits
        return True

    def try_send_response(self, flits: int) -> bool:
        if self._rsp_tokens < flits:
            return False
        self._rsp_tokens -= flits
        self.rsp_flits_sent += flits
        return True
