"""DRAM channel model with FR-FCFS-style row-buffer scheduling.

Each channel keeps an open-row register and a bounded request queue.
The scheduler approximates FR-FCFS (First-Ready, First-Come-First-
Served, Table 1) by searching a small window at the queue head for a
request that hits the open row before falling back to the oldest
request.  Service occupies the channel for ``row_hit_cycles`` or
``row_miss_cycles``; read data becomes available ``dram_latency``
cycles after service completes (the fixed access-latency component).

Completions are reported through a callback so the memory subsystem
can schedule L2 fills on its event heap.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.config import GPUConfig

#: FR-FCFS reorder window (entries scanned for a row hit).
FRFCFS_WINDOW = 8


class DRAMChannel:
    """One memory channel: bounded queue + open-row state."""

    def __init__(self, config: GPUConfig, capacity: int = 64, wheel=None):
        self.config = config
        self.capacity = capacity
        self.queue: Deque[Tuple[int, bool, object]] = deque()  # (row, is_write, payload)
        self.busy_until = 0
        self.open_row: Optional[int] = None
        self.serviced = 0
        self.row_hits = 0
        #: engine event wheel (may be None for standalone channels):
        #: each service start posts its completion cycle so the
        #: engine's leap never jumps past a channel freeing up.
        self.wheel = wheel

    @property
    def full(self) -> bool:
        return len(self.queue) >= self.capacity

    def enqueue(self, row: int, is_write: bool, payload: object) -> None:
        if self.full:
            raise RuntimeError("DRAM channel queue full")
        self.queue.append((row, is_write, payload))

    def _select(self) -> int:
        """Index of the next request to service (FR-FCFS window)."""
        for idx, (row, _, _) in enumerate(self.queue):
            if idx >= FRFCFS_WINDOW:
                break
            if row == self.open_row:
                return idx
        return 0

    def tick(self, cycle: int, on_read_done: Callable[[object, int], None]) -> None:
        cfg = self.config
        while self.queue and self.busy_until <= cycle:
            idx = self._select()
            row, is_write, payload = self.queue[idx]
            del self.queue[idx]
            if row == self.open_row:
                service = cfg.dram_row_hit_cycles
                self.row_hits += 1
            else:
                service = cfg.dram_row_miss_cycles
                self.open_row = row
            start = max(self.busy_until, cycle)
            self.busy_until = start + service
            self.serviced += 1
            if self.wheel is not None:
                self.wheel.post(self.busy_until)
            if not is_write:
                on_read_done(payload, self.busy_until + cfg.dram_latency)


class RingDRAMChannel:
    """Allocation-free twin of :class:`DRAMChannel`: the bounded queue
    is three parallel lists (row / is_write / payload) behind a head
    index instead of a deque of tuples.

    Mid-window removal (an FR-FCFS row hit behind the head) shifts the
    at-most-``FRFCFS_WINDOW - 1`` entries before it up one place —
    the common in-order case is a pure head bump.  Service timing,
    open-row state and the wheel-posting discipline replicate
    :meth:`DRAMChannel.tick` exactly.
    """

    #: consumed entries tolerated at the array front before compaction.
    COMPACT_THRESHOLD = 64

    __slots__ = ("config", "capacity", "_rows", "_wr", "_pay", "_head",
                 "busy_until", "open_row", "serviced", "row_hits", "wheel")

    def __init__(self, config: GPUConfig, capacity: int = 64, wheel=None):
        self.config = config
        self.capacity = capacity
        self._rows: List[int] = []
        self._wr: List[bool] = []
        self._pay: List[object] = []
        self._head = 0
        self.busy_until = 0
        self.open_row: Optional[int] = None
        self.serviced = 0
        self.row_hits = 0
        self.wheel = wheel

    def size(self) -> int:
        return len(self._rows) - self._head

    @property
    def full(self) -> bool:
        return len(self._rows) - self._head >= self.capacity

    @property
    def queue(self) -> List[Tuple[int, bool, object]]:
        """Pending entries as (row, is_write, payload) tuples — the
        :class:`DRAMChannel` queue surface for oracles and tests (off
        the hot path)."""
        head = self._head
        return [(self._rows[i], self._wr[i], self._pay[i])
                for i in range(head, len(self._rows))]

    def ring_push(self, row: int, is_write: bool, payload: object) -> None:
        if len(self._rows) - self._head >= self.capacity:
            raise RuntimeError("DRAM channel queue full")
        self._rows.append(row)
        self._wr.append(is_write)
        self._pay.append(payload)

    def tick(self, cycle: int, on_read_done: Callable[[object, int], None]) -> None:
        if self.busy_until > cycle:
            # Mid-service: nothing can be selected before busy_until
            # (and compaction only ever becomes due after a service).
            return
        cfg = self.config
        rows = self._rows
        wr = self._wr
        pay = self._pay
        size = len(rows)
        while size > self._head and self.busy_until <= cycle:
            head = self._head
            # FR-FCFS window scan: first open-row hit, else the oldest.
            open_row = self.open_row
            limit = head + FRFCFS_WINDOW
            if limit > size:
                limit = size
            sel = head
            for i in range(head, limit):
                if rows[i] == open_row:
                    sel = i
                    break
            row = rows[sel]
            is_write = wr[sel]
            payload = pay[sel]
            if sel != head:
                # Shift the entries ahead of sel up one place; their
                # relative order is preserved (matches deque del).
                rows[head + 1:sel + 1] = rows[head:sel]
                wr[head + 1:sel + 1] = wr[head:sel]
                pay[head + 1:sel + 1] = pay[head:sel]
            pay[head] = None  # drop the payload reference
            self._head = head + 1
            if row == open_row:
                service = cfg.dram_row_hit_cycles
                self.row_hits += 1
            else:
                service = cfg.dram_row_miss_cycles
                self.open_row = row
            start = max(self.busy_until, cycle)
            self.busy_until = start + service
            self.serviced += 1
            if self.wheel is not None:
                self.wheel.post(self.busy_until)
            if not is_write:
                on_read_done(payload, self.busy_until + cfg.dram_latency)
        if self._head >= self.COMPACT_THRESHOLD:
            head = self._head
            del rows[:head]
            del wr[:head]
            del pay[:head]
            self._head = 0


class DRAMModel:
    """All channels; line addresses are interleaved across channels."""

    def __init__(self, config: GPUConfig, queue_capacity: int = 64, wheel=None):
        self.config = config
        self.channels: List[DRAMChannel] = [
            DRAMChannel(config, queue_capacity, wheel=wheel)
            for _ in range(config.dram_channels)
        ]
        self.dropped_writes = 0
        #: total queued requests across channels (idle fast-path check).
        self.queued = 0

    def channel_for(self, line_addr: int) -> DRAMChannel:
        # Interleave channels at DRAM-row granularity so sequential
        # (streaming) lines enjoy row-buffer locality within a channel.
        return self.channels[self.row_of(line_addr) % len(self.channels)]

    def row_of(self, line_addr: int) -> int:
        return line_addr // self.config.dram_row_lines

    def can_accept(self, line_addr: int) -> bool:
        return not self.channel_for(line_addr).full

    def enqueue_read(self, line_addr: int, payload: object) -> None:
        self.channel_for(line_addr).enqueue(self.row_of(line_addr), False, payload)
        self.queued += 1

    def enqueue_write(self, line_addr: int) -> bool:
        """Best-effort write (write-through / writeback traffic).  A
        full queue drops the write and records it — writes carry no
        dependence in this model, only bandwidth."""
        channel = self.channel_for(line_addr)
        if channel.full:
            self.dropped_writes += 1
            return False
        channel.enqueue(self.row_of(line_addr), True, None)
        self.queued += 1
        return True

    def tick(self, cycle: int, on_read_done: Callable[[object, int], None]) -> None:
        if not self.queued:
            return
        for channel in self.channels:
            queue = channel.queue
            if not queue:
                continue
            before = len(queue)
            channel.tick(cycle, on_read_done)
            self.queued -= before - len(queue)

    def total_serviced(self) -> int:
        return sum(c.serviced for c in self.channels)

    def row_hit_rate(self) -> float:
        serviced = self.total_serviced()
        if not serviced:
            return 0.0
        return sum(c.row_hits for c in self.channels) / serviced


class RingDRAMModel(DRAMModel):
    """:class:`DRAMModel` over :class:`RingDRAMChannel` ring queues
    (the pooled memory path's backend)."""

    def __init__(self, config: GPUConfig, queue_capacity: int = 64,
                 wheel=None):
        super().__init__(config, queue_capacity, wheel=wheel)
        self.channels = [RingDRAMChannel(config, queue_capacity, wheel=wheel)
                         for _ in range(config.dram_channels)]

    def enqueue_read(self, line_addr: int, payload: object) -> None:
        self.channel_for(line_addr).ring_push(self.row_of(line_addr),
                                              False, payload)
        self.queued += 1

    def enqueue_write(self, line_addr: int) -> bool:
        channel = self.channel_for(line_addr)
        if channel.full:
            self.dropped_writes += 1
            return False
        channel.ring_push(self.row_of(line_addr), True, None)
        self.queued += 1
        return True

    def tick(self, cycle: int, on_read_done: Callable[[object, int], None]) -> None:
        if not self.queued:
            return
        for channel in self.channels:
            # channel.size(), inlined twice: this loop runs every
            # non-idle memory cycle over every channel.
            before = len(channel._rows) - channel._head
            if not before:
                continue
            channel.tick(cycle, on_read_done)
            self.queued -= before - (len(channel._rows) - channel._head)
