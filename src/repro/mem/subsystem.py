"""The memory backend: L1 miss queues → interconnect → L2 → DRAM → back.

This module glues the per-SM L1Ds to the shared L2 and DRAM, carrying
:class:`MemRequest` objects through a time-ordered event heap.  The key
behaviour the paper depends on is **backpressure**: when the L2 input
queue, L2 MSHRs or DRAM queues saturate, L1 miss queues stop draining,
L1 MSHRs stay occupied, and the SM-side memory pipeline starts taking
reservation failures — which is exactly the congestion signal DMIL
throttles on (§3.3) and why enlarging one resource merely moves the
bottleneck (§4.3).

L2 policies follow Table 1 (xor-indexed, LRU, allocate-on-miss for
reads).  Writes are modelled as write-through-to-DRAM at the L2
boundary rather than full WBWA; writes carry no dependences in this
model, only bandwidth, so this simplification does not affect any
studied mechanism (see DESIGN.md).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Tuple

from repro.config import GPUConfig
from repro.mem.cache import (AccessResult, CacheStats, L1DCache,
                             PooledL1DCache, SetAssocCache)
from repro.mem.dram import DRAMModel, RingDRAMModel
from repro.mem.interconnect import Interconnect
from repro.mem.mshr import MSHRFile

#: L2 lookups performed per cycle.
L2_PORTS = 2
#: L2 input queue capacity (credit-based, includes in-flight requests).
L2_IN_CAPACITY = 64


class MemRequest:
    """One coalesced line request travelling through the hierarchy."""

    __slots__ = ("line", "kernel", "sm_id", "is_write", "meminst",
                 "issued_cycle", "bypass", "trace_id")

    def __init__(self, line: int, kernel: int, sm_id: int, is_write: bool,
                 meminst=None, issued_cycle: int = 0, bypass: bool = False):
        self.line = line
        self.kernel = kernel
        self.sm_id = sm_id
        self.is_write = is_write
        #: owning in-flight memory instruction (None for stores).
        self.meminst = meminst
        self.issued_cycle = issued_cycle
        #: L1D-bypassed read: no L1 lookup/allocation/MSHR; the fill is
        #: delivered straight to the owning memory instruction (§4.5).
        self.bypass = bypass
        #: Chrome-trace async-slice id while this request's lifetime is
        #: being traced (observability; None = untraced).
        self.trace_id = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "W" if self.is_write else "R"
        return f"<MemRequest {kind} line={self.line:#x} k{self.kernel} sm{self.sm_id}>"


class MemorySubsystem:
    """Shared backend for all SMs: interconnect + L2 + DRAM."""

    def __init__(self, config: GPUConfig, fastpath: bool = True, obs=None,
                 wheel=None):
        self.config = config
        #: observability collector (None = zero-cost sentinel checks).
        self._obs = obs
        #: the engine's unified event wheel: every scheduled event and
        #: every DRAM service completion is posted so the engine's
        #: cycle leap sees backend activity without scanning the heap
        #: and channels.  Standalone subsystems get a private wheel.
        if wheel is None:
            # Imported lazily: repro.sim.lsu imports this module, so a
            # top-level import of repro.sim.wheel would be circular.
            from repro.sim.wheel import EventWheel
            wheel = EventWheel()
        self.wheel = wheel
        # The four stores below are built through overridable factories
        # so the pooled subclass swaps in its array-backed twins without
        # double construction.
        self.l1s: List[L1DCache] = self._build_l1s(config)
        self.icnt = Interconnect(config)
        self.l2_tags = self._build_l2_tags(config)
        self.l2_mshrs = self._build_l2_mshrs(config)
        self.l2_stats = CacheStats()
        self.l2_in: Deque[MemRequest] = deque()
        self.dram = self._build_dram(config, wheel)
        self._line_flits = Interconnect.line_flits(config)
        self._l2_hit_latency = config.l2.hit_latency
        self._icnt_latency = config.icnt_latency
        # Pending events, bucketed by cycle: a dict of per-cycle lists
        # plus a min-heap of bucket cycles.  Events at the same cycle
        # run in insertion order, exactly like the classic
        # (cycle, seq) heap but with one heap op per *cycle* instead of
        # one per event.
        self._events: Dict[int, List[Tuple[str, object]]] = {}
        self._event_heap: List[int] = []
        self._rsp_queue: Deque[MemRequest] = deque()
        self._inflight_to_l2 = 0
        self._drain_rr = 0
        self.l2_head_stall_cycles = 0
        #: enable the idle fast path (False = reference loop).
        self.fastpath = fastpath
        self._miss_queues = [l1.miss_queue for l1 in self.l1s]
        #: idle cycles whose token refills are still owed to the icnt.
        self._skipped_refills = 0
        #: count of idle-skipped backend cycles (perf introspection).
        self.idle_cycles = 0

    # ------------------------------------------------------------------
    # store factories (overridden by the pooled subclass)
    def _build_l1s(self, config: GPUConfig) -> List[L1DCache]:
        return [L1DCache(config.l1d) for _ in range(config.num_sms)]

    def _build_l2_tags(self, config: GPUConfig):
        return SetAssocCache(config.l2)

    def _build_l2_mshrs(self, config: GPUConfig):
        return MSHRFile(config.l2.mshrs, merge_limit=16)

    def _build_dram(self, config: GPUConfig, wheel):
        return DRAMModel(config, wheel=wheel)

    # ------------------------------------------------------------------
    # event plumbing
    def _schedule(self, cycle: int, kind: str, payload: object) -> None:
        bucket = self._events.get(cycle)
        if bucket is None:
            self._events[cycle] = [(kind, payload)]
            heapq.heappush(self._event_heap, cycle)
            self.wheel.post(cycle)
        else:
            bucket.append((kind, payload))

    def _l2_in_has_credit(self) -> bool:
        return len(self.l2_in) + self._inflight_to_l2 < L2_IN_CAPACITY

    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        """Advance the backend by one core cycle.

        The fast path guards every phase with its queue state and skips
        quiet cycles entirely — including *latency-shadow* cycles where
        events exist but none is due yet.  A skipped cycle's only
        observable work would have been the interconnect token refill
        (batched into the next active cycle via an exactly-equivalent
        catch-up call) and the drain round-robin pointer (advanced in
        place).  The reference path runs every phase unconditionally.
        """
        if not self.fastpath:
            self.icnt.begin_cycle()
            self._process_events(cycle)
            self.dram.tick(cycle, self._on_dram_read_done)
            self._l2_process(cycle)
            self._send_responses(cycle)
            self._drain_l1_miss_queues(cycle)
            return False
        heap = self._event_heap
        events_due = bool(heap) and heap[0] <= cycle
        if (not events_due and not self.l2_in and not self._rsp_queue
                and not self.dram.queued):
            for queue in self._miss_queues:
                if queue:
                    break
            else:
                self._skipped_refills += 1
                self.idle_cycles += 1
                self._drain_rr = (self._drain_rr + 1) % len(self.l1s)
                # Tell the engine this cycle was inert: if the SMs are
                # all asleep too it may leap over the latency shadow.
                return True
        self.icnt.begin_cycle(1 + self._skipped_refills)
        self._skipped_refills = 0
        if events_due:
            self._process_events(cycle)
        if self.dram.queued:
            self.dram.tick(cycle, self._on_dram_read_done)
        if self.l2_in:
            self._l2_process(cycle)
        if self._rsp_queue:
            self._send_responses(cycle)
        self._drain_l1_miss_queues(cycle)
        return False

    def leapable(self) -> bool:
        """True when no backend queue holds retrying work — the
        precondition for the engine's cycle leap.  With the queues
        drained, every future backend state change is reachable only
        through a scheduled event or a DRAM service completion, both of
        which were posted to the engine's event wheel when created; the
        wheel therefore bounds the leap.  (``next_activity`` below is
        the scan-based oracle this is validated against in tests.)"""
        if self.l2_in or self._rsp_queue:
            return False
        for queue in self._miss_queues:
            if queue:
                return False
        return True

    def next_activity(self, cycle: int) -> int:
        """Earliest future cycle at which the backend can make progress,
        assuming no new requests arrive.  ``cycle + 1`` when queued work
        is retrying (bandwidth/credit stalls); otherwise the earliest of
        the next due event and the first DRAM channel service-completion
        (post-tick, every non-empty channel is busy past ``cycle``).
        Cycles strictly before the returned one are provably no-ops for
        the backend, which is what lets the engine leap over them.

        Since the event wheel took over the engine's leap this scan is
        off the hot path; it remains as the oracle the wheel-driven
        leap is tested against (the wheel may only ever be
        *conservative* — wake earlier than this, never later)."""
        if self.l2_in or self._rsp_queue:
            return cycle + 1
        for queue in self._miss_queues:
            if queue:
                return cycle + 1
        heap = self._event_heap
        nxt = heap[0] if heap else (1 << 62)
        if self.dram.queued:
            for channel in self.dram.channels:
                if channel.queue and channel.busy_until < nxt:
                    nxt = channel.busy_until
            # An enqueued-but-unserved entry (stale busy_until) makes
            # progress on the very next DRAM tick.
            if nxt <= cycle:
                nxt = cycle + 1
        return nxt

    def skip_cycles(self, count: int) -> None:
        """Account for ``count`` cycles the engine leapt over while the
        backend was provably inert (no queued work anywhere and no event
        due).  Equivalent to ``count`` idle ticks: the owed interconnect
        refills batch up and the drain round-robin pointer advances."""
        self._skipped_refills += count
        self.idle_cycles += count
        self._drain_rr = (self._drain_rr + count) % len(self.l1s)

    def _process_events(self, cycle: int) -> None:
        heap = self._event_heap
        buckets = self._events
        while heap and heap[0] <= cycle:
            due = heapq.heappop(heap)
            for kind, payload in buckets.pop(due):
                if kind == "l2_arrive":
                    self._inflight_to_l2 -= 1
                    self.l2_in.append(payload)  # credit reserved at send
                elif kind == "rsp_ready":
                    self._rsp_queue.append(payload)
                elif kind == "l1_fill":
                    self._deliver_fill(payload, cycle)
                else:  # pragma: no cover - defensive
                    raise RuntimeError(f"unknown event kind {kind!r}")

    def _on_dram_read_done(self, line_addr, done_cycle: int) -> None:
        self._schedule(done_cycle, "rsp_ready", ("dram_fill", line_addr))

    # ------------------------------------------------------------------
    # L2 controller
    def _l2_process(self, cycle: int) -> None:
        for _ in range(L2_PORTS):
            if not self.l2_in:
                return
            request = self.l2_in[0]
            if request.is_write:
                self._l2_write(request, cycle)
                self.l2_in.popleft()
                if self._obs is not None:
                    # WEWN stores carry no dependence: the lifetime
                    # ends once the write reaches the L2 boundary.
                    self._obs.mem_request_done(request, cycle)
                continue
            if not self._l2_read(request, cycle):
                self.l2_head_stall_cycles += 1
                return
            self.l2_in.popleft()

    def _l2_write(self, request: MemRequest, cycle: int) -> None:
        self.l2_stats.writes[request.kernel] += 1
        line = self.l2_tags.lookup(request.line)
        if line is not None and line.valid:
            line.dirty = True
        else:
            if (self.dram.enqueue_write(request.line)
                    and self.dram.channel_for(request.line).busy_until
                    <= cycle):
                # Same wheel obligation as reads: the write's service
                # (which the DRAM counters in the result signature see)
                # must not be leapt over before it starts.
                self.wheel.post(cycle + 1)

    def _l2_read(self, request: MemRequest, cycle: int) -> bool:
        """Returns False when the head must stall (resource shortage)."""
        stats = self.l2_stats
        line_addr = request.line
        kernel = request.kernel
        line = self.l2_tags.probe(line_addr)
        if line is not None and line.valid:
            self.l2_tags.lookup(line_addr)  # LRU update
            stats.accesses[kernel] += 1
            stats.hits[kernel] += 1
            self._schedule(cycle + self._l2_hit_latency, "rsp_ready", request)
            if self._obs is not None:
                self._obs.mem_request_stage(request, "l2:hit", cycle)
            return True
        if line is not None and line.reserved:
            if not self.l2_mshrs.can_merge(line_addr):
                stats.rsfails[kernel] += 1
                stats.rsfail_reasons[AccessResult.RSFAIL_MERGE] += 1
                return False
            self.l2_mshrs.merge(line_addr, request)
            stats.accesses[kernel] += 1
            stats.misses[kernel] += 1
            if self._obs is not None:
                self._obs.mem_request_stage(request, "l2:miss_merged", cycle)
            return True
        # Primary L2 miss: MSHR + DRAM queue space + line reservation.
        if not self.l2_mshrs.can_allocate():
            stats.rsfails[kernel] += 1
            stats.rsfail_reasons[AccessResult.RSFAIL_MSHR] += 1
            return False
        if not self.dram.can_accept(line_addr):
            stats.rsfails[kernel] += 1
            stats.rsfail_reasons[AccessResult.RSFAIL_MISSQ] += 1
            return False
        ok, evicted_dirty, evicted_tag = self.l2_tags.reserve(line_addr, kernel)
        if not ok:
            stats.rsfails[kernel] += 1
            stats.rsfail_reasons[AccessResult.RSFAIL_LINE] += 1
            return False
        self.l2_mshrs.allocate(line_addr, kernel, request)
        self.dram.enqueue_read(line_addr, line_addr)
        # An *idle* channel won't start service until the next DRAM
        # tick and only posts its busy_until then — between enqueue
        # and that tick the wheel would otherwise hold no entry for
        # this read, and a fully-asleep engine could leap straight
        # past it.  Pin the next cycle (conservative: at worst one
        # inert wake tick).  A *busy* channel is already chained in
        # the wheel: its current busy_until was posted at service
        # start, and the tick at that cycle pops this entry and posts
        # the next link.
        if self.dram.channel_for(line_addr).busy_until <= cycle:
            self.wheel.post(cycle + 1)
        if evicted_dirty:
            # Best-effort: the writeback may be dropped if its channel
            # is saturated (bandwidth-only traffic).  Same idle-channel
            # wheel obligation as above (the writeback may land on a
            # different channel than the read).
            if (self.dram.enqueue_write(evicted_tag)
                    and self.dram.channel_for(evicted_tag).busy_until
                    <= cycle):
                self.wheel.post(cycle + 1)
        stats.accesses[kernel] += 1
        stats.misses[kernel] += 1
        if self._obs is not None:
            self._obs.mem_request_stage(request, "l2:miss->dram", cycle)
        return True

    # ------------------------------------------------------------------
    # response path
    def _send_responses(self, cycle: int) -> None:
        rsp = self._rsp_queue
        while rsp:
            head = rsp[0]
            if isinstance(head, tuple) and head[0] == "dram_fill":
                # A DRAM fill completes the L2 line and fans out to all
                # merged waiters before any bandwidth is consumed.
                _, line_addr = head
                rsp.popleft()
                self.l2_tags.fill(line_addr)
                entry = self.l2_mshrs.release(line_addr)
                for waiter in entry.waiters:
                    rsp.append(waiter)
                continue
            if not self.icnt.try_send_response(self._line_flits):
                return
            rsp.popleft()
            self._schedule(cycle + self._icnt_latency, "l1_fill", head)

    def _deliver_fill(self, request: MemRequest, cycle: int) -> None:
        obs = self._obs
        if request.bypass:
            # Bypassed reads never allocated in the L1D: complete the
            # owning instruction directly.
            if request.meminst is not None:
                request.meminst.request_done(cycle)
            if obs is not None:
                obs.mem_request_done(request, cycle)
            return
        waiters = self.l1s[request.sm_id].fill(request.line)
        for waiter in waiters:
            if waiter.meminst is not None:
                waiter.meminst.request_done(cycle)
            if obs is not None:
                obs.mem_request_done(waiter, cycle)

    # ------------------------------------------------------------------
    # L1 miss queue drain (round-robin across SMs)
    def _drain_l1_miss_queues(self, cycle: int) -> None:
        num = len(self.l1s)
        start = self._drain_rr
        self._drain_rr = (start + 1) % num
        l1s = self.l1s
        icnt = self.icnt
        for offset in range(num):
            l1 = l1s[(start + offset) % num]
            queue = l1.miss_queue
            if not queue:
                continue
            request = queue[0]
            flits = self._line_flits if request.is_write else 1
            if len(self.l2_in) + self._inflight_to_l2 >= L2_IN_CAPACITY:
                return
            if not icnt.try_send_request(flits):
                return
            queue.popleft()
            l1.version += 1
            self._inflight_to_l2 += 1
            self._schedule(cycle + self._icnt_latency, "l2_arrive", request)
            if self._obs is not None:
                self._obs.mem_request_stage(request, "icnt:to_l2", cycle)

    # ------------------------------------------------------------------
    def quiescent(self) -> bool:
        """True when no request is anywhere in flight (test hook)."""
        return (not self._events and not self.l2_in and not self._rsp_queue
                and not any(l1.miss_queue for l1 in self.l1s)
                and not any(ch.queue for ch in self.dram.channels)
                and len(self.l2_mshrs) == 0
                and all(len(l1.mshrs) == 0 for l1 in self.l1s))


# ----------------------------------------------------------------------
# the pooled (allocation-free) backend
#: event kinds packed into the low two bits of an integer event word
#: (``ev = payload << 2 | kind``); payloads are pool slot ids except
#: for EV_DRAM_FILL, which carries the filled line address.
EV_L2_ARRIVE = 0
EV_RSP_SLOT = 1
EV_L1_FILL = 2
EV_DRAM_FILL = 3


class PooledMemorySubsystem(MemorySubsystem):
    """:class:`MemorySubsystem` on the struct-of-arrays fast path.

    Requests live in a :class:`~repro.mem.pool.RequestPool` and travel
    as integer slot ids; the tag stores, MSHR files and DRAM queues are
    the array twins from :mod:`repro.mem.pool` / :mod:`repro.mem.dram`.
    Scheduled events pack ``(kind, payload)`` into one int (see the
    ``EV_*`` constants), and response-queue entries are slot ids with
    DRAM fills encoded as ``-1 - line_addr``.

    Every override below is its base-class method with the object
    dereferences replaced by pool-array reads *in the same order* —
    the bit-identity proof obligation is exactly the one the fast
    cycle loop discharges (asserted per bench run, fuzzed across the
    scheme matrix in tests/test_pooled_identity.py).  Obs hooks receive
    :class:`~repro.mem.pool.PoolSlotView` facades, so the sentinel
    interface is unchanged.
    """

    def __init__(self, config: GPUConfig, fastpath: bool = True, obs=None,
                 wheel=None):
        # The pool and the shared miss-queue counter must exist before
        # the base constructor calls the _build_* factories.
        from repro.mem.pool import RequestPool
        self.pool = RequestPool()
        #: one-cell count of queued L1 miss entries across all SMs:
        #: O(1) idle/leap checks instead of a 16-queue scan.
        self._mq_pending = [0]
        super().__init__(config, fastpath=fastpath, obs=obs, wheel=wheel)

    # -- store factories ------------------------------------------------
    def _build_l1s(self, config: GPUConfig) -> List[PooledL1DCache]:
        return [PooledL1DCache(config.l1d, self.pool, self._mq_pending)
                for _ in range(config.num_sms)]

    def _build_l2_tags(self, config: GPUConfig):
        from repro.mem.pool import ArrayTagStore
        return ArrayTagStore(config.l2)

    def _build_l2_mshrs(self, config: GPUConfig):
        from repro.mem.pool import ArrayMSHRFile
        return ArrayMSHRFile(config.l2.mshrs, merge_limit=16)

    def _build_dram(self, config: GPUConfig, wheel):
        return RingDRAMModel(config, wheel=wheel)

    # -- event plumbing -------------------------------------------------
    def _schedule_ev(self, cycle: int, ev: int) -> None:
        """Int-event twin of :meth:`MemorySubsystem._schedule` (same
        bucket structure, same wheel post on a new bucket)."""
        bucket = self._events.get(cycle)
        if bucket is None:
            self._events[cycle] = [ev]
            heapq.heappush(self._event_heap, cycle)
            self.wheel.post(cycle)
        else:
            bucket.append(ev)

    def _process_events(self, cycle: int) -> None:
        heap = self._event_heap
        buckets = self._events
        l2_in = self.l2_in
        rsp = self._rsp_queue
        while heap and heap[0] <= cycle:
            due = heapq.heappop(heap)
            for ev in buckets.pop(due):
                kind = ev & 3
                payload = ev >> 2
                if kind == EV_L2_ARRIVE:
                    self._inflight_to_l2 -= 1
                    l2_in.append(payload)  # credit reserved at send
                elif kind == EV_RSP_SLOT:
                    rsp.append(payload)
                elif kind == EV_L1_FILL:
                    self._deliver_fill(payload, cycle)
                else:  # EV_DRAM_FILL
                    rsp.append(-1 - payload)

    def _on_dram_read_done(self, line_addr, done_cycle: int) -> None:
        self._schedule_ev(done_cycle, (line_addr << 2) | EV_DRAM_FILL)

    # -- per-cycle tick (O(1) idle check via the miss-queue counter) ----
    def tick(self, cycle: int) -> None:
        if not self.fastpath:
            self.icnt.begin_cycle()
            self._process_events(cycle)
            self.dram.tick(cycle, self._on_dram_read_done)
            self._l2_process(cycle)
            self._send_responses(cycle)
            self._drain_l1_miss_queues(cycle)
            return False
        heap = self._event_heap
        events_due = bool(heap) and heap[0] <= cycle
        if (not events_due and not self.l2_in and not self._rsp_queue
                and not self.dram.queued and not self._mq_pending[0]):
            self._skipped_refills += 1
            self.idle_cycles += 1
            self._drain_rr = (self._drain_rr + 1) % len(self.l1s)
            return True
        self.icnt.begin_cycle(1 + self._skipped_refills)
        self._skipped_refills = 0
        if events_due:
            self._process_events(cycle)
        if self.dram.queued:
            self.dram.tick(cycle, self._on_dram_read_done)
        if self.l2_in:
            self._l2_process(cycle)
        if self._rsp_queue:
            self._send_responses(cycle)
        if self._mq_pending[0]:
            self._drain_l1_miss_queues(cycle)
        else:
            # The drain's round-robin pointer advances every cycle even
            # when all queues are empty (as the base drain does).
            self._drain_rr = (self._drain_rr + 1) % len(self.l1s)
        return False

    def leapable(self) -> bool:
        return not (self.l2_in or self._rsp_queue or self._mq_pending[0])

    # -- L2 controller --------------------------------------------------
    def _l2_process(self, cycle: int) -> None:
        pool = self.pool
        l2_in = self.l2_in
        is_write = pool.is_write
        for _ in range(L2_PORTS):
            if not l2_in:
                return
            slot = l2_in[0]
            if is_write[slot]:
                self._l2_write(slot, cycle)
                l2_in.popleft()
                if self._obs is not None:
                    # WEWN stores carry no dependence: the lifetime
                    # ends once the write reaches the L2 boundary.
                    self._obs.mem_request_done(pool.view(slot), cycle)
                pool.free(slot)
                continue
            if not self._l2_read(slot, cycle):
                self.l2_head_stall_cycles += 1
                return
            l2_in.popleft()

    def _l2_write(self, slot: int, cycle: int) -> None:
        pool = self.pool
        line_addr = pool.line[slot]
        self.l2_stats.writes[pool.kernel[slot]] += 1
        tags = self.l2_tags
        way = tags.find(line_addr)
        if way >= 0 and tags.valid[way]:
            tags.touch(way)  # the lookup's LRU bump (valid hit only)
            tags.dirty[way] = True
        else:
            if (self.dram.enqueue_write(line_addr)
                    and self.dram.channel_for(line_addr).busy_until
                    <= cycle):
                # Same wheel obligation as reads: the write's service
                # (which the DRAM counters in the result signature see)
                # must not be leapt over before it starts.
                self.wheel.post(cycle + 1)

    def _l2_read(self, slot: int, cycle: int) -> bool:
        """Returns False when the head must stall (resource shortage)."""
        stats = self.l2_stats
        pool = self.pool
        line_addr = pool.line[slot]
        kernel = pool.kernel[slot]
        tags = self.l2_tags
        way = tags.find(line_addr)
        if way >= 0 and tags.valid[way]:
            tags.touch(way)  # LRU update
            stats.accesses[kernel] += 1
            stats.hits[kernel] += 1
            self._schedule_ev(cycle + self._l2_hit_latency,
                              (slot << 2) | EV_RSP_SLOT)
            if self._obs is not None:
                self._obs.mem_request_stage(pool.view(slot), "l2:hit", cycle)
            return True
        if way >= 0:  # reserved: secondary miss
            if not self.l2_mshrs.can_merge(line_addr):
                stats.rsfails[kernel] += 1
                stats.rsfail_reasons[AccessResult.RSFAIL_MERGE] += 1
                return False
            self.l2_mshrs.merge(line_addr, slot)
            stats.accesses[kernel] += 1
            stats.misses[kernel] += 1
            if self._obs is not None:
                self._obs.mem_request_stage(pool.view(slot),
                                            "l2:miss_merged", cycle)
            return True
        # Primary L2 miss: MSHR + DRAM queue space + line reservation.
        if not self.l2_mshrs.can_allocate():
            stats.rsfails[kernel] += 1
            stats.rsfail_reasons[AccessResult.RSFAIL_MSHR] += 1
            return False
        if not self.dram.can_accept(line_addr):
            stats.rsfails[kernel] += 1
            stats.rsfail_reasons[AccessResult.RSFAIL_MISSQ] += 1
            return False
        ok, evicted_dirty, evicted_tag = tags.reserve(line_addr, kernel)
        if not ok:
            stats.rsfails[kernel] += 1
            stats.rsfail_reasons[AccessResult.RSFAIL_LINE] += 1
            return False
        self.l2_mshrs.allocate(line_addr, kernel, slot)
        self.dram.enqueue_read(line_addr, line_addr)
        # Idle-channel wheel pin: same obligation and comment as the
        # base class (see MemorySubsystem._l2_read).
        if self.dram.channel_for(line_addr).busy_until <= cycle:
            self.wheel.post(cycle + 1)
        if evicted_dirty:
            if (self.dram.enqueue_write(evicted_tag)
                    and self.dram.channel_for(evicted_tag).busy_until
                    <= cycle):
                self.wheel.post(cycle + 1)
        stats.accesses[kernel] += 1
        stats.misses[kernel] += 1
        if self._obs is not None:
            self._obs.mem_request_stage(pool.view(slot), "l2:miss->dram",
                                        cycle)
        return True

    # -- response path --------------------------------------------------
    def _send_responses(self, cycle: int) -> None:
        rsp = self._rsp_queue
        icnt = self.icnt
        line_flits = self._line_flits
        lat = self._icnt_latency
        while rsp:
            head = rsp[0]
            if head < 0:
                # A DRAM fill completes the L2 line and fans out to all
                # merged waiters before any bandwidth is consumed.
                line_addr = -1 - head
                rsp.popleft()
                self.l2_tags.fill(line_addr)
                for waiter in self.l2_mshrs.release(line_addr):
                    rsp.append(waiter)
                continue
            if not icnt.try_send_response(line_flits):
                return
            rsp.popleft()
            self._schedule_ev(cycle + lat, (head << 2) | EV_L1_FILL)

    def _deliver_fill(self, slot: int, cycle: int) -> None:
        obs = self._obs
        pool = self.pool
        if pool.bypass[slot]:
            # Bypassed reads never allocated in the L1D: complete the
            # owning instruction directly.
            meminst = pool.meminst[slot]
            if meminst is not None:
                meminst.request_done(cycle)
            if obs is not None:
                obs.mem_request_done(pool.view(slot), cycle)
            pool.free(slot)
            return
        waiters = self.l1s[pool.sm_id[slot]].fill(pool.line[slot])
        meminsts = pool.meminst
        for waiter in waiters:
            meminst = meminsts[waiter]
            if meminst is not None:
                meminst.request_done(cycle)
            if obs is not None:
                obs.mem_request_done(pool.view(waiter), cycle)
            pool.free(waiter)

    # -- L1 miss queue drain (round-robin across SMs) -------------------
    def _drain_l1_miss_queues(self, cycle: int) -> None:
        num = len(self.l1s)
        start = self._drain_rr
        self._drain_rr = (start + 1) % num
        l1s = self.l1s
        icnt = self.icnt
        pool = self.pool
        pending = self._mq_pending
        is_write = pool.is_write
        line_flits = self._line_flits
        lat = self._icnt_latency
        for offset in range(num):
            l1 = l1s[(start + offset) % num]
            queue = l1.miss_queue
            if not queue:
                continue
            slot = queue[0]
            flits = line_flits if is_write[slot] else 1
            if len(self.l2_in) + self._inflight_to_l2 >= L2_IN_CAPACITY:
                return
            if not icnt.try_send_request(flits):
                return
            queue.popleft()
            pending[0] -= 1
            l1.version += 1
            self._inflight_to_l2 += 1
            self._schedule_ev(cycle + lat, (slot << 2) | EV_L2_ARRIVE)
            if self._obs is not None:
                self._obs.mem_request_stage(pool.view(slot), "icnt:to_l2",
                                            cycle)
