"""CI perf smoke: a seconds-long slice of the cycle-loop benchmark.

Runs three workloads on the scaled-down config — two compute-leaning
plus one memory-bound (``st+sv-even``, exercising the slot-pooled
memory path end to end) — and asserts the properties that must hold
on any machine, however noisy:

* the fast loop is bit-identical to the reference loop (this is the
  real gate — ``bench_cycle_loop`` raises on divergence; the fast leg
  runs the pooled memory path, so this also pins pooled == reference);
* the fast loop is at least as fast as the reference loop (a sanity
  floor far below the committed >=1.5x threshold, which only the
  manually-dispatched full perf job enforces);
* on the memory-bound leg, the pooled and object substrates of the
  fast loop agree bit for bit (``GPU(pooled=...)`` both ways).
"""

import sys

from repro.config import scaled_config
from repro.core.arbiter import SchemeConfig
from repro.harness.perfbench import bench_cycle_loop, result_signature
from repro.sim.engine import GPU, make_launches
from repro.workloads.profiles import get_profile


def pooled_identity_check(config) -> bool:
    """Fast-loop object path vs fast-loop pooled path on the
    memory-bound mix: one run each, signatures must match."""
    signatures = []
    for pooled in (False, True):
        profiles = [get_profile("st"), get_profile("sv")]
        launches = make_launches(profiles, [4, 4], config, seed=3)
        gpu = GPU(config, launches, SchemeConfig(), pooled=pooled)
        signatures.append(result_signature(gpu.run(2000)))
    return signatures[0] == signatures[1]


def main() -> int:
    config = scaled_config()
    report = bench_cycle_loop(
        cycles=2000,
        reps=2,
        config=config,
        out_path="perf_smoke.json",
        workload_names=["bp-iso", "cd-iso", "st+sv-even"],
    )
    for workload in report["workloads"]:
        name = workload["workload"]
        if not workload["identical"]:  # pragma: no cover - bench raises first
            print(f"FAIL {name}: fast loop diverged from reference")
            return 1
        speedup = workload["speedup"]
        kind = "memory-bound, " if workload["memory_bound"] else ""
        print(f"ok {name}: {kind}identical, "
              f"fast/reference = {speedup:.2f}x")
        if speedup < 1.0:
            print(f"FAIL {name}: fast loop slower than reference "
                  f"({speedup:.2f}x)")
            return 1
    if not pooled_identity_check(config):
        print("FAIL st+sv: pooled memory path diverged from object path")
        return 1
    print("ok st+sv: pooled == object on the fast loop")
    return 0


if __name__ == "__main__":
    sys.exit(main())
