"""CI perf smoke: a seconds-long slice of the cycle-loop benchmark.

Runs two workloads on the scaled-down config and asserts the two
properties that must hold on any machine, however noisy:

* the fast loop is bit-identical to the reference loop (this is the
  real gate — ``bench_cycle_loop`` raises on divergence);
* the fast loop is at least as fast as the reference loop (a sanity
  floor far below the committed >=1.5x threshold, which only the
  manually-dispatched full perf job enforces).
"""

import sys

from repro.config import scaled_config
from repro.harness.perfbench import bench_cycle_loop


def main() -> int:
    report = bench_cycle_loop(
        cycles=2000,
        reps=2,
        config=scaled_config(),
        out_path="perf_smoke.json",
        workload_names=["bp-iso", "cd-iso"],
    )
    for workload in report["workloads"]:
        name = workload["workload"]
        if not workload["identical"]:  # pragma: no cover - bench raises first
            print(f"FAIL {name}: fast loop diverged from reference")
            return 1
        speedup = workload["speedup"]
        print(f"ok {name}: identical, fast/reference = {speedup:.2f}x")
        if speedup < 1.0:
            print(f"FAIL {name}: fast loop slower than reference "
                  f"({speedup:.2f}x)")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
