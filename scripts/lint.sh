#!/usr/bin/env bash
# Static analysis: ruff (style/imports) + the repro linter (simulator
# invariants: determinism, sentinel hooks, stat hygiene, picklability)
# in both per-file and whole-program (--project) modes.
# Mirrors the CI `lint` job; run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== ruff =="
ruff check src tests scripts

echo "== repro lint =="
PYTHONPATH=src python -m repro lint src tests \
    --baseline .repro-lint-baseline.json "$@"

echo "== repro lint --project =="
PYTHONPATH=src python -m repro lint src tests scripts --project \
    --baseline .repro-lint-baseline.json "$@"
