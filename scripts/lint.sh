#!/usr/bin/env bash
# Static analysis: ruff (style/imports) + the repro linter (simulator
# invariants: determinism, sentinel hooks, stat hygiene, picklability).
# Mirrors the CI `lint` job; run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== ruff =="
ruff check src tests scripts

echo "== repro lint =="
PYTHONPATH=src python -m repro lint src tests \
    --baseline .repro-lint-baseline.json "$@"
