#!/usr/bin/env sh
# Run the wall-clock perf benchmarks: enforces the speedup floors
# (>=1.5x cycle loop single-thread, >=2x campaign end-to-end) and
# refreshes BENCH_cycle_loop.json / BENCH_campaign.json at the repo
# root.  For measurements without the assertions, use:
#     PYTHONPATH=src python -m repro bench [--which ...] [--workers N]
#
# Usage: scripts/bench.sh [pytest-args...]
#        scripts/bench.sh --check [bench-args...]
#
# --check re-measures the cycle loop against the committed
# BENCH_cycle_loop.json and exits 1 on a >10% geomean regression
# (the report's "baseline" block carries the per-workload ratios).
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$root"

if [ "${1:-}" = "--check" ]; then
    shift
    # Measure into a scratch report so the committed baseline file is
    # left untouched for future diffs.
    tmp=$(mktemp -t bench_check.XXXXXX)
    trap 'rm -f "$tmp"' EXIT INT TERM
    env PYTHONPATH="$root/src" python -m repro bench \
        --which cycle-loop --check --out "$tmp" "$@"
    exit $?
fi

PYTHONPATH="$root/src" python -m pytest benchmarks/perf -m perf -q "$@"
