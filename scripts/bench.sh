#!/usr/bin/env sh
# Run the wall-clock perf benchmarks: enforces the speedup floors
# (>=1.5x cycle loop single-thread, >=2x campaign end-to-end) and
# refreshes BENCH_cycle_loop.json / BENCH_campaign.json at the repo
# root.  For measurements without the assertions, use:
#     PYTHONPATH=src python -m repro bench [--which ...] [--workers N]
#
# Usage: scripts/bench.sh [pytest-args...]
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$root"

PYTHONPATH="$root/src" python -m pytest benchmarks/perf -m perf -q "$@"
