#!/usr/bin/env python3
"""Characterise the benchmark suite the way the paper's §2.4 does:
run every kernel in isolation, measure utilization / LSU stalls / L1D
behaviour, and classify kernels as compute- or memory-intensive.

This regenerates the data behind Table 2 and Figure 2 and prints the
classification rule in action.

Usage::

    python examples/characterize_workloads.py [bench ...]
"""

import sys

from repro import scaled_config
from repro.harness import ExperimentRunner, format_table
from repro.workloads.profiles import ALL_PROFILES, get_profile


def main() -> None:
    names = sys.argv[1:]
    profiles = ([get_profile(n) for n in names] if names else ALL_PROFILES)

    runner = ExperimentRunner(scaled_config())
    rows = []
    for profile in profiles:
        iso = runner.isolated(profile)
        measured_kind = "M" if iso.lsu_stall_pct > 0.20 else "C"
        rows.append([
            profile.name, profile.full_name, profile.suite,
            iso.ipc, iso.alu_utilization, iso.sfu_utilization,
            iso.lsu_stall_pct, iso.l1d_miss_rate, iso.l1d_rsfail_rate,
            measured_kind, profile.paper["type"],
        ])
    rows.sort(key=lambda r: -r[4])  # decreasing ALU utilization, as Fig. 2

    print("Isolated characterisation (sorted by ALU utilization):")
    print(format_table(
        ["bench", "application", "suite", "IPC", "ALU", "SFU",
         "LSU_stall", "L1D_miss", "L1D_rsfail", "type", "paper"],
        rows, precision=2))

    print("\nClassification rule (paper §2.4): LSU stalls > 20% => "
          "memory-intensive (M).")
    mism = [r[0] for r in rows if r[-2] != r[-1]]
    if mism:
        print(f"disagreements with the paper: {mism}")
    else:
        print("classification matches the paper for every kernel.")


if __name__ == "__main__":
    main()
