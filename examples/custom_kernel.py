#!/usr/bin/env python3
"""Define a *new* synthetic kernel and study it under CKE.

The library's kernels are calibrated stand-ins for the paper's
benchmarks, but :class:`~repro.workloads.kernel.KernelProfile` is a
public extension point: describe any workload by its instruction mix,
coalescing degree, footprint and MLP, and every scheme in the library
applies to it unchanged.

Here we model a graph-analytics kernel ("pagerank-like"): poorly
coalesced gather reads with a small hot vertex set, and co-run it with
the library's ``hs`` (hotspot).
"""

from repro import scaled_config
from repro.harness import ExperimentRunner
from repro.workloads.address import MixPattern
from repro.workloads.coalescer import ThreadAddressPattern, strided
from repro.workloads.kernel import KernelProfile
from repro.workloads.mixes import WorkloadMix
from repro.workloads.profiles import get_profile


def make_pagerank_like() -> KernelProfile:
    return KernelProfile(
        name="pr", full_name="pagerank-like", suite="custom", kind="M",
        # a gather per edge with little arithmetic, 8 lines per warp
        # access (poor coalescing), deep MLP.
        cinst_per_minst=2, reqs_per_minst=8, sfu_frac=0.0, write_frac=0.05,
        mlp=4,
        threads_per_tb=64, regs_per_thread=24, smem_per_tb=0,
        # hot vertices (reused) + cold edge lists (streamed)
        pattern_factory=lambda: MixPattern(32, 0.40),
        iters_per_warp=120,
    )


def make_strided_copy() -> KernelProfile:
    """Alternatively, describe accesses per *thread* and let the
    coalescer derive the transaction count: a stride-8 copy kernel
    coalesces each warp access into 8 line transactions."""
    pattern = ThreadAddressPattern(strided(8))
    measured = pattern.measured_req_per_minst()
    return KernelProfile(
        name="sc", full_name="strided-copy", suite="custom", kind="M",
        cinst_per_minst=1, reqs_per_minst=round(measured), mlp=4,
        threads_per_tb=32, regs_per_thread=16,
        pattern_factory=lambda: ThreadAddressPattern(strided(8)),
        iters_per_warp=80,
    )


def main() -> None:
    runner = ExperimentRunner(scaled_config())
    pr = make_pagerank_like()
    hs = get_profile("hs")

    iso = runner.isolated(pr)
    kind = "M" if iso.lsu_stall_pct > 0.20 else "C"
    print(f"custom kernel '{pr.name}': IPC {iso.ipc:.2f}, "
          f"L1D miss {iso.l1d_miss_rate:.2f}, "
          f"rsfail/access {iso.l1d_rsfail_rate:.2f}, "
          f"LSU stalls {iso.lsu_stall_pct:.0%} -> classified {kind}")

    workload = WorkloadMix((hs, pr))
    print(f"\nco-running with '{hs.name}' ({workload.mix_class}):")
    for scheme in ("ws", "ws-qbmi", "ws-dmil"):
        out = runner.run_mix(workload, scheme)
        print(f"  {scheme:8s} TBs/SM {out.partition}  "
              f"WS {out.weighted_speedup:.2f}  ANTT {out.antt:.2f}  "
              f"norm IPC hs={out.norm_ipcs[0]:.2f} pr={out.norm_ipcs[1]:.2f}")

    sc = make_strided_copy()
    iso_sc = runner.isolated(sc)
    print(f"\ncoalescer-derived kernel '{sc.name}' "
          f"(Req/Minst measured = {sc.reqs_per_minst}): "
          f"IPC {iso_sc.ipc:.2f}, LSU stalls {iso_sc.lsu_stall_pct:.0%}")


if __name__ == "__main__":
    main()
