#!/usr/bin/env python3
"""Offline SMIL tuning vs online DMIL (paper §3.3).

Sweeps static in-flight memory-instruction limits for a 2-kernel
workload (the Figure 9 experiment), reports the best static point, and
compares it with what DMIL reaches adaptively — the trade-off the
paper uses to motivate the dynamic scheme.

Usage::

    python examples/smil_tuning.py [kernel_a] [kernel_b]
"""

import sys

from repro import scaled_config
from repro.harness import ExperimentRunner, format_table
from repro.workloads.mixes import mix

LIMITS = (1, 2, 4, 8, None)


def spec(la, lb) -> str:
    fmt = lambda v: "inf" if v is None else str(v)
    return f"ws-smil:{fmt(la)},{fmt(lb)}"


def main() -> None:
    a = sys.argv[1] if len(sys.argv) > 1 else "sv"
    b = sys.argv[2] if len(sys.argv) > 2 else "ks"
    runner = ExperimentRunner(scaled_config())
    workload = mix(a, b)
    print(f"SMIL sweep for {workload.name} ({workload.mix_class}); "
          f"values are weighted speedup\n")

    surface = {}
    for la in LIMITS:
        for lb in LIMITS:
            out = runner.run_mix(workload, spec(la, lb))
            surface[(la, lb)] = out

    header = ["Limit_k0 \\ k1"] + [str(l or "Inf") for l in LIMITS]
    rows = [[str(la or "Inf")] + [surface[(la, lb)].weighted_speedup
                                  for lb in LIMITS]
            for la in LIMITS]
    print(format_table(header, rows, precision=2))

    best_key = max(surface, key=lambda k: surface[k].weighted_speedup)
    best = surface[best_key]
    base = surface[(None, None)]
    dmil = runner.run_mix(workload, "ws-dmil")
    print(f"\nno limiting:      WS {base.weighted_speedup:.2f}  "
          f"ANTT {base.antt:.2f}  fairness {base.fairness:.2f}")
    print(f"best static point {tuple('Inf' if k is None else k for k in best_key)}: "
          f"WS {best.weighted_speedup:.2f}  ANTT {best.antt:.2f}  "
          f"fairness {best.fairness:.2f}")
    print(f"DMIL (adaptive):  WS {dmil.weighted_speedup:.2f}  "
          f"ANTT {dmil.antt:.2f}  fairness {dmil.fairness:.2f}")
    print("\nSMIL needs this offline sweep for every workload/input/"
          "architecture change; DMIL gets close without any profiling "
          "(paper §3.3.2).")


if __name__ == "__main__":
    main()
