#!/usr/bin/env python3
"""Scenario: a shared GPU runs a latency-sensitive compute-heavy
service (modelled by ``bp``) next to a bandwidth-hungry batch
analytics job (modelled by ``ks``) — the consolidation problem that
motivates the paper's introduction.

The operator cares about the service's slowdown (its normalized
turnaround), while keeping batch throughput reasonable.  This example
walks the scheme stack from the naive left-over policy to WS-DMIL and
reports, for each, the service-level picture.
"""

from repro import scaled_config
from repro.harness import ExperimentRunner, format_table
from repro.workloads.mixes import mix

SERVICE, BATCH = "bp", "ks"
SCHEMES = [
    ("leftover", "naive left-over (Hyper-Q style)"),
    ("spatial", "spatial multitasking (SM split)"),
    ("ws", "intra-SM sharing (Warped-Slicer)"),
    ("ws-qbmi", "  + balanced memory issuing"),
    ("ws-dmil", "  + dynamic memory instruction limiting"),
]


def main() -> None:
    runner = ExperimentRunner(scaled_config())
    workload = mix(SERVICE, BATCH)
    print(f"consolidating service '{SERVICE}' with batch job '{BATCH}'\n")

    rows = []
    for scheme, label in SCHEMES:
        out = runner.run_mix(workload, scheme)
        service_slowdown = 1.0 / out.norm_ipcs[0] if out.norm_ipcs[0] else float("inf")
        rows.append([
            label, str(out.partition),
            out.norm_ipcs[0], service_slowdown,
            out.norm_ipcs[1], out.weighted_speedup, out.fairness,
        ])
    print(format_table(
        ["scheme", "TBs/SM", "service perf", "service slowdown",
         "batch perf", "weighted speedup", "fairness"],
        rows, precision=2))

    best = min(rows[2:], key=lambda r: r[3])
    print(f"\nbest intra-SM option for the service: {best[0].strip()} "
          f"(slowdown {best[3]:.1f}x vs {rows[2][3]:.1f}x under plain sharing)")
    print("note how memory-instruction throttling protects the compute-"
          "bound service from the batch job's memory pipeline stalls.")


if __name__ == "__main__":
    main()
