#!/usr/bin/env python3
"""Quickstart: run two kernels concurrently on one GPU and compare the
baseline intra-SM sharing (Warped-Slicer) against the paper's DMIL.

Usage::

    python examples/quickstart.py [kernel_a] [kernel_b]

Defaults to the paper's running example bp (backprop, compute-
intensive) + sv (spmv, memory-intensive).
"""

import sys

from repro import scaled_config
from repro.harness import ExperimentRunner
from repro.workloads.mixes import mix


def main() -> None:
    a = sys.argv[1] if len(sys.argv) > 1 else "bp"
    b = sys.argv[2] if len(sys.argv) > 2 else "sv"

    runner = ExperimentRunner(scaled_config())
    workload = mix(a, b)
    print(f"workload: {workload.name} (class {workload.mix_class})")

    for name in (a, b):
        profile = workload.profiles[0] if name == a else workload.profiles[1]
        iso = runner.isolated(profile)
        print(f"  {name}: isolated IPC {iso.ipc:.2f}, "
              f"L1D miss {iso.l1d_miss_rate:.2f}, "
              f"LSU stalls {iso.lsu_stall_pct:.0%}")

    print("\nscheme comparison (normalized IPC per kernel):")
    for scheme in ("spatial", "ws", "ws-qbmi", "ws-dmil"):
        out = runner.run_mix(workload, scheme)
        norms = ", ".join(f"{k}={n:.2f}"
                          for k, n in zip((a, b), out.norm_ipcs))
        print(f"  {scheme:10s} TBs/SM {out.partition}  "
              f"weighted speedup {out.weighted_speedup:.2f}  "
              f"ANTT {out.antt:.2f}  fairness {out.fairness:.2f}  ({norms})")

    base = runner.run_mix(workload, "ws")
    dmil = runner.run_mix(workload, "ws-dmil")
    print(f"\nDMIL vs plain Warped-Slicer: "
          f"ANTT {base.antt:.2f} -> {dmil.antt:.2f}, "
          f"fairness {base.fairness:.2f} -> {dmil.fairness:.2f}")


if __name__ == "__main__":
    main()
