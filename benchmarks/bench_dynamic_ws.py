"""Dynamic vs static Warped-Slicer (paper §2.5 / Figure 4 context).

The paper's dynamic Warped-Slicer profiles scalability curves during
concurrent execution — which bakes cross-SM memory-system interference
into the curves.  This bench compares the static (isolated profiling)
and dynamic variants, with and without DMIL stacked on top.
"""

from conftest import run_once

from repro.harness.reporting import format_table
from repro.workloads.mixes import mix

PAIRS = [("bp", "sv"), ("bp", "ks"), ("pf", "bp")]
SCHEMES = ("ws", "dws", "ws-dmil", "dws-dmil")


def bench_dynamic_ws(benchmark, runner):
    def driver():
        out = {}
        for a, b in PAIRS:
            for scheme in SCHEMES:
                out[(f"{a}+{b}", scheme)] = runner.run_mix(mix(a, b), scheme)
        return out

    data = run_once(benchmark, driver)
    rows = []
    for (name, scheme), outcome in data.items():
        rows.append([name, scheme, str(outcome.partition),
                     outcome.weighted_speedup, outcome.antt,
                     outcome.fairness])
    print("\nDynamic vs static Warped-Slicer")
    print(format_table(["mix", "scheme", "TBs/SM", "WS", "ANTT", "fairness"],
                       rows, precision=3))

    for a, b in PAIRS:
        name = f"{a}+{b}"
        static = data[(name, "ws")]
        dynamic = data[(name, "dws")]
        # both must produce valid partitions; dynamic profiling should
        # land in the same performance neighbourhood as static
        assert all(t >= 1 for t in dynamic.partition)
        assert dynamic.weighted_speedup > 0.7 * static.weighted_speedup
    # stacking DMIL on dynamic WS must not break anything and should
    # keep its turnaround benefit on the memory-heavy pair
    assert data[("bp+ks", "dws-dmil")].antt \
        < data[("bp+ks", "dws")].antt * 1.10
