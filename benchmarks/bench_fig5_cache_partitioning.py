"""Figure 5 — UCP L1D cache partitioning does not help (negative
result, §3.1).

Regenerates weighted speedup plus per-kernel miss and rsfail rates for
WS vs WS-L1D-Partition on the six case-study pairs.
"""

from conftest import run_once

from repro.harness.experiments import figure5_cache_partitioning
from repro.harness.reporting import format_table


def bench_fig5(benchmark, runner):
    sweep = run_once(benchmark, figure5_cache_partitioning, runner)
    rows = []
    for name in sweep.mixes():
        base = sweep.outcome(name, "ws")
        ucp = sweep.outcome(name, "ws-ucp")
        rows.append([
            name, sweep.class_of(name),
            base.weighted_speedup, ucp.weighted_speedup,
            base.result.l1d_miss_rate(0), ucp.result.l1d_miss_rate(0),
            base.result.l1d_miss_rate(1), ucp.result.l1d_miss_rate(1),
            base.result.l1d_rsfail_rate(0), ucp.result.l1d_rsfail_rate(0),
            base.result.l1d_rsfail_rate(1), ucp.result.l1d_rsfail_rate(1),
        ])
    print("\nFigure 5 — effectiveness of L1D cache partitioning (UCP)")
    print(format_table(
        ["mix", "class", "WS", "WS-L1DPart",
         "miss_k0", "miss_k0'", "miss_k1", "miss_k1'",
         "rsf_k0", "rsf_k0'", "rsf_k1", "rsf_k1'"],
        rows, precision=2,
    ))
    mean_base = sweep.mean_metric("ws", "weighted_speedup")
    mean_ucp = sweep.mean_metric("ws-ucp", "weighted_speedup")
    print(f"geomean weighted speedup: WS {mean_base:.3f}  "
          f"WS-L1DPartition {mean_ucp:.3f}")
    # the negative result: no average improvement from partitioning
    assert mean_ucp <= mean_base * 1.03
