"""Figure 14 — 3-kernel concurrent execution (§4.2).

WS / WS-QBMI / WS-DMIL on 3-kernel mixes per class.  Paper shape: the
schemes scale beyond 2 kernels; DMIL keeps improving turnaround for
classes containing memory-intensive kernels.
"""

from conftest import run_once

from repro.harness.experiments import figure14_three_kernels
from repro.harness.reporting import format_table

SCHEMES = ("ws", "ws-qbmi", "ws-dmil")


def bench_fig14(benchmark, runner):
    sweep = run_once(benchmark, figure14_three_kernels, runner)
    rows = []
    for name in sweep.mixes():
        for scheme in SCHEMES:
            out = sweep.outcome(name, scheme)
            rows.append([name, out.mix_class, scheme, out.weighted_speedup,
                         out.antt, out.fairness])
    print("\nFigure 14 — 3-kernel workloads")
    print(format_table(["mix", "class", "scheme", "WS", "ANTT", "fairness"],
                       rows, precision=3))
    for scheme in SCHEMES:
        print(f"geomean {scheme}: WS "
              f"{sweep.mean_metric(scheme, 'weighted_speedup'):.3f} "
              f"ANTT {sweep.mean_metric(scheme, 'antt'):.3f}")

    # mixes with a memory-intensive kernel benefit in turnaround
    mixed = [name for name in sweep.mixes() if "M" in sweep.class_of(name)]
    base = sum(sweep.outcome(n, "ws").antt for n in mixed)
    dmil = sum(sweep.outcome(n, "ws-dmil").antt for n in mixed)
    print(f"sum ANTT over M-containing mixes: ws {base:.2f} -> dmil {dmil:.2f}")
    assert dmil < base * 1.05
