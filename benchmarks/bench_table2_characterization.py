"""Table 2 — benchmark characteristics on the scaled machine.

Regenerates occupancy, instruction mix, L1D miss/rsfail rates and the
C/M classification, next to the paper's reference values.
"""

from conftest import run_once

from repro.harness.experiments import classify_measured, table2_characteristics
from repro.harness.reporting import format_table


def bench_table2(benchmark, runner):
    rows = run_once(benchmark, table2_characteristics, runner)
    classes = classify_measured(rows)
    table = format_table(
        ["bench", "rf", "smem", "thr", "tb", "C/M inst", "Req/M",
         "miss", "miss(paper)", "rsfail", "rsfail(paper)", "type", "type(paper)"],
        [[r["name"], r["rf_oc"], r["smem_oc"], r["thread_oc"], r["tb_oc"],
          r["cinst_per_minst"], r["req_per_minst"],
          r["l1d_miss_rate"], r["paper"]["l1d_miss_rate"],
          r["l1d_rsfail_rate"], r["paper"]["l1d_rsfail_rate"],
          classes[str(r["name"])], r["paper"]["type"]]
         for r in rows],
        precision=2,
    )
    print("\nTable 2 — workload characterisation (measured vs paper)")
    print(table)
    mismatches = [r["name"] for r in rows
                  if classes[str(r["name"])] != r["paper"]["type"]]
    print(f"classification mismatches vs paper: {mismatches or 'none'}")
    assert not mismatches
