"""Figure 12 — main result on top of Warped-Slicer.

Spatial / WS / WS-QBMI / WS-DMIL across representative pairs:
weighted speedup, ANTT, fairness, L1D miss rate, rsfail rate, LSU
stalls and compute utilization, per class and overall.

Paper shape: QBMI and DMIL never hurt C+C; they improve ANTT and
fairness substantially for C+M and M+M; DMIL reduces the L1D rsfail
rate and LSU stalls.
"""

from conftest import run_once

from repro.harness.experiments import WS_SCHEMES, figure12_main
from repro.harness.reporting import format_table


def _mean_result_metric(sweep, scheme, fn, mix_class=None):
    values = []
    for name in sweep.mixes():
        if mix_class and sweep.class_of(name) != mix_class:
            continue
        values.append(fn(sweep.outcome(name, scheme).result))
    return sum(values) / len(values)


def bench_fig12(benchmark, runner):
    sweep = run_once(benchmark, figure12_main, runner)
    classes = [*sweep.classes(), None]
    for metric, better in (("weighted_speedup", "higher"),
                           ("antt", "lower"), ("fairness", "higher")):
        rows = []
        for scheme in WS_SCHEMES:
            row = [scheme]
            for cls in classes:
                row.append(sweep.mean_metric(scheme, metric, cls))
            rows.append(row)
        label = [c or "ALL" for c in classes]
        print(f"\nFigure 12 — {metric} ({better} is better)")
        print(format_table(["scheme", *label], rows, precision=3))

    rows = []
    for scheme in WS_SCHEMES:
        rows.append([
            scheme,
            _mean_result_metric(sweep, scheme,
                                lambda r: (r.l1d_miss_rate(0) + r.l1d_miss_rate(1)) / 2),
            _mean_result_metric(sweep, scheme,
                                lambda r: (r.l1d_rsfail_rate(0) + r.l1d_rsfail_rate(1)) / 2),
            _mean_result_metric(sweep, scheme, lambda r: r.lsu_stall_pct()),
            _mean_result_metric(sweep, scheme, lambda r: r.compute_utilization()),
        ])
    print("\nFigure 12(d-g) — machine statistics (means over all pairs)")
    print(format_table(["scheme", "l1d_miss", "l1d_rsfail", "lsu_stall",
                        "compute_util"], rows, precision=3))

    ws_antt = sweep.mean_metric("ws", "antt")
    qbmi_antt = sweep.mean_metric("ws-qbmi", "antt")
    dmil_antt = sweep.mean_metric("ws-dmil", "antt")
    print(f"\nANTT improvement over WS: QBMI {ws_antt / qbmi_antt - 1:+.1%}, "
          f"DMIL {ws_antt / dmil_antt - 1:+.1%}")
    print(f"Fairness improvement over WS: "
          f"QBMI {sweep.improvement('ws-qbmi', 'ws', 'fairness'):+.1%}, "
          f"DMIL {sweep.improvement('ws-dmil', 'ws', 'fairness'):+.1%}")
    print(f"Weighted-speedup change over WS: "
          f"QBMI {sweep.improvement('ws-qbmi', 'ws'):+.1%}, "
          f"DMIL {sweep.improvement('ws-dmil', 'ws'):+.1%}")

    # headline shapes
    assert qbmi_antt < ws_antt * 1.02, "QBMI must not worsen turnaround"
    assert dmil_antt < ws_antt, "DMIL improves average turnaround"
    assert sweep.mean_metric("ws-dmil", "fairness") > \
        sweep.mean_metric("ws", "fairness")
    # intra-SM sharing beats spatial multitasking on C+C (paper §4.1.1)
    assert sweep.mean_metric("ws", "weighted_speedup", "C+C") > \
        sweep.mean_metric("spatial", "weighted_speedup", "C+C")
