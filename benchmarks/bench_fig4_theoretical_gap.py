"""Figure 4 — theoretical vs achieved weighted speedup per class.

Paper shape: C+C achieves close to the prediction; C+M and M+M fall
well short because of intra-SM interference.
"""

from conftest import run_once

from repro.harness.experiments import figure4_gap, gap_by_class
from repro.harness.reporting import format_table
from repro.workloads.mixes import representative_pairs


def bench_fig4(benchmark, runner):
    rows = run_once(benchmark, figure4_gap, runner,
                    pairs=representative_pairs(3))
    print("\nFigure 4 — theoretical vs achieved weighted speedup")
    print(format_table(
        ["mix", "class", "theoretical", "achieved", "achieved/theoretical"],
        [[r.mix_name, r.mix_class, r.theoretical, r.achieved,
          r.achieved / r.theoretical] for r in rows],
        precision=2,
    ))
    by_class = gap_by_class(rows)
    print(format_table(
        ["class", "theoretical", "achieved"],
        [[cls, theo, ach] for cls, (theo, ach) in by_class.items()],
        precision=2,
    ))
    # interference: on average the gap exists, and C+C is the closest class
    ratios = {cls: ach / theo for cls, (theo, ach) in by_class.items()}
    assert ratios["ALL"] < 1.0
    assert ratios["C+C"] >= max(ratios["C+M"], ratios["M+M"]) - 0.05
