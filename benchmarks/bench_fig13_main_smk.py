"""Figure 13 — QBMI and DMIL on top of SMK.

SMK-(P+W) vs SMK-(P+QBMI) vs SMK-(P+DMIL): weighted speedup and ANTT
per class.  Paper shape: DMIL gives the largest gains, particularly
for C+M; all three tie on C+C.
"""

from conftest import run_once

from repro.harness.experiments import SMK_SCHEMES, figure13_smk
from repro.harness.reporting import format_table


def bench_fig13(benchmark, runner):
    sweep = run_once(benchmark, figure13_smk, runner)
    classes = [*sweep.classes(), None]
    labels = [c or "ALL" for c in classes]
    for metric in ("weighted_speedup", "antt"):
        rows = []
        for scheme in SMK_SCHEMES:
            rows.append([scheme] + [sweep.mean_metric(scheme, metric, cls)
                                    for cls in classes])
        print(f"\nFigure 13 — {metric}")
        print(format_table(["scheme", *labels], rows, precision=3))

    base_ws = sweep.mean_metric("smk-p+w", "weighted_speedup")
    dmil_ws = sweep.mean_metric("smk-p+dmil", "weighted_speedup")
    qbmi_ws = sweep.mean_metric("smk-p+qbmi", "weighted_speedup")
    print(f"\nweighted-speedup change over SMK-(P+W): "
          f"QBMI {qbmi_ws / base_ws - 1:+.1%}, DMIL {dmil_ws / base_ws - 1:+.1%}")
    assert dmil_ws > base_ws, "SMK-(P+DMIL) must beat SMK-(P+W) on average"
