"""§4.3 — sensitivity studies: L1D capacity and warp scheduling policy.

Paper shape: the schemes remain effective (ANTT/fairness gains persist)
with larger L1Ds and under LRR scheduling, though the magnitude shrinks
as the cache grows.
"""

from conftest import run_once

from repro.harness.experiments import scheme_sweep
from repro.harness.reporting import format_table
from repro.workloads.mixes import paper_pairs

SCHEMES = ("ws", "ws-qbmi", "ws-dmil")


def bench_l1d_capacity(benchmark, runner_factory):
    def driver():
        return {kb: scheme_sweep(runner_factory(l1d_kb=kb), SCHEMES,
                                 paper_pairs())
                for kb in (12, 24, 48)}

    sweeps = run_once(benchmark, driver)
    rows = []
    for kb, sweep in sweeps.items():
        for scheme in SCHEMES:
            rows.append([f"{kb}KB", scheme,
                         sweep.mean_metric(scheme, "weighted_speedup"),
                         sweep.mean_metric(scheme, "antt"),
                         sweep.mean_metric(scheme, "fairness")])
    print("\n§4.3 — L1D capacity sensitivity (scaled 12/24/48KB ≈ paper 24/48/96KB)")
    print(format_table(["L1D", "scheme", "WS", "ANTT", "fairness"], rows,
                       precision=3))
    for kb, sweep in sweeps.items():
        assert sweep.mean_metric("ws-dmil", "antt") <= \
            sweep.mean_metric("ws", "antt") * 1.05, f"DMIL regressed at {kb}KB"


def bench_scheduler_policy(benchmark, runner_factory):
    def driver():
        return {policy: scheme_sweep(runner_factory(scheduler_policy=policy),
                                     SCHEMES, paper_pairs())
                for policy in ("gto", "lrr")}

    sweeps = run_once(benchmark, driver)
    rows = []
    for policy, sweep in sweeps.items():
        for scheme in SCHEMES:
            rows.append([policy, scheme,
                         sweep.mean_metric(scheme, "weighted_speedup"),
                         sweep.mean_metric(scheme, "antt"),
                         sweep.mean_metric(scheme, "fairness")])
    print("\n§4.3 — warp scheduler sensitivity (GTO vs LRR)")
    print(format_table(["policy", "scheme", "WS", "ANTT", "fairness"], rows,
                       precision=3))
    lrr = sweeps["lrr"]
    assert lrr.mean_metric("ws-dmil", "antt") < \
        lrr.mean_metric("ws", "antt") * 1.05, "DMIL must remain effective under LRR"
