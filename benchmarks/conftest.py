"""Shared fixtures for the per-figure benches.

Every bench regenerates one paper table/figure on the scaled
configuration.  Isolated-profiling runs are cached on disk under
``.repro_cache`` so the whole suite amortises Warped-Slicer profiling.

Cycle budgets scale with the ``REPRO_BENCH_SCALE`` environment variable
(default 1.0); raise it for higher-fidelity numbers.  Campaign-shaped
benches can fan their grids over worker processes via :func:`campaign`;
``REPRO_BENCH_WORKERS`` caps the pool size (see
``repro.harness.parallel``).
"""

import os

import pytest

from repro.config import scaled_config
from repro.harness.runner import ExperimentRunner, RunnerSettings

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
CACHE_DIR = os.path.join(os.path.dirname(__file__), "..", ".repro_cache")


def bench_settings(scale: float = 1.0) -> RunnerSettings:
    factor = SCALE * scale
    return RunnerSettings(
        iso_cycles=int(6000 * factor),
        curve_cycles=int(4000 * factor),
        concurrent_cycles=int(8000 * factor),
    )


@pytest.fixture(scope="session")
def runner():
    """Session-wide runner on the default scaled config."""
    return ExperimentRunner(scaled_config(), bench_settings(),
                            cache_dir=CACHE_DIR)


@pytest.fixture(scope="session")
def runner_factory():
    """Factory for sensitivity studies needing variant configs."""
    cache = {}

    def make(l1d_kb=None, scheduler_policy=None):
        key = (l1d_kb, scheduler_policy)
        if key not in cache:
            kwargs = {}
            if l1d_kb is not None:
                kwargs["l1d_kb"] = l1d_kb
            if scheduler_policy is not None:
                kwargs["scheduler_policy"] = scheduler_policy
            cache[key] = ExperimentRunner(scaled_config(**kwargs),
                                          bench_settings(),
                                          cache_dir=CACHE_DIR)
        return cache[key]

    return make


def run_once(benchmark, fn, *args, **kwargs):
    """Run a driver exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def campaign(runner, mixes, schemes, workers=None, cycles=None):
    """Run a mixes×schemes grid through the parallel executor.

    ``workers=None`` resolves from ``$REPRO_BENCH_WORKERS`` (or the CPU
    count); results are bit-identical to the serial nested loop, so
    benches can adopt this freely for wall-clock relief."""
    return runner.run_campaign(mixes, schemes, workers=workers,
                               cycles=cycles)
