"""Figure 9 — SMIL: weighted speedup vs static per-kernel in-flight
limits for one workload per class.

Paper shape: (a) C+C needs no limiting — performance rises with both
limits; (b) C+M suffers when the memory kernel's limit is large;
(c) M+M has an interior optimum with both kernels limited.
"""

from conftest import run_once

from repro.harness.experiments import figure9_smil_sweep, smil_optimum
from repro.harness.reporting import format_table

LIMITS = (1, 2, 4, 8, None)


def _render(surface):
    axis = [str(l) for l in LIMITS]
    rows = [[f"k0={la}"] + [surface[(la, lb)] for lb in axis] for la in axis]
    return format_table(["limits"] + [f"k1={lb}" for lb in axis], rows,
                        precision=2)


def _sweep(runner, a, b):
    return figure9_smil_sweep(runner, a, b, limits=LIMITS)


def bench_fig9a_cc(benchmark, runner):
    surface = run_once(benchmark, _sweep, runner, "pf", "bp")
    print("\nFigure 9(a) — SMIL sweep, C+C (pf+bp)")
    print(_render(surface))
    # no limiting needed: unlimited corner within 10% of the optimum
    (opt, value) = smil_optimum(surface)
    print(f"optimum at {opt}: {value:.2f}")
    assert surface[("None", "None")] >= value * 0.9


def bench_fig9b_cm(benchmark, runner):
    surface = run_once(benchmark, _sweep, runner, "bp", "ks")
    print("\nFigure 9(b) — SMIL sweep, C+M (bp+ks)")
    print(_render(surface))
    (opt, value) = smil_optimum(surface)
    print(f"optimum at {opt}: {value:.2f}")
    # limiting the memory-intensive kernel (k1) must beat no limiting
    best_limited_k1 = max(surface[(la, lb)] for la in map(str, LIMITS)
                          for lb in ("1", "2", "4"))
    assert best_limited_k1 >= surface[("None", "None")] * 0.97


def bench_fig9c_mm(benchmark, runner):
    surface = run_once(benchmark, _sweep, runner, "sv", "ks")
    print("\nFigure 9(c) — SMIL sweep, M+M (sv+ks)")
    print(_render(surface))
    (opt, value) = smil_optimum(surface)
    print(f"optimum at {opt}: {value:.2f}")
    assert value > 0
