"""Campaign wall clock: reference-serial vs fast-serial vs parallel.

Times the §4 mechanism-ablation campaign (two mixes × four schemes,
Warped-Slicer curves included) on the paper-machine config three ways,
asserts every leg produces bit-identical outcomes, writes
``BENCH_campaign.json`` at the repo root, and requires the end-to-end
stack (fast loops + 4-worker executor) to beat the reference-serial
leg by at least 2×.

Run explicitly (the perf suite is not part of the default test paths)::

    PYTHONPATH=src python -m pytest benchmarks/perf/bench_campaign.py -m perf
"""

import pytest

from repro.harness.perfbench import bench_campaign

#: acceptance floor for the end-to-end campaign speedup with 4 workers.
MIN_SPEEDUP = 2.0
WORKERS = 4


@pytest.mark.perf
def bench_campaign_speedup():
    report = bench_campaign(workers=WORKERS)
    assert report["identical"]
    assert report["campaign_speedup"] >= MIN_SPEEDUP, (
        f"campaign {report['campaign_speedup']:.2f}x with "
        f"{WORKERS} workers — below the {MIN_SPEEDUP}x floor "
        f"(fast-loop {report['fast_loop_speedup']:.2f}x, "
        f"parallel {report['parallel_speedup']:.2f}x on "
        f"{report['cpu_count']} CPUs)"
    )
