"""Simulated-cycles-per-second: fast loop vs reference loop.

Runs the paper-machine workloads in
:data:`repro.harness.perfbench.CYCLE_LOOP_WORKLOADS` under both cycle
loops, asserts bit-identical results, writes ``BENCH_cycle_loop.json``
at the repo root, and requires the reference workload (a concurrent
bp+cd run) to simulate at least 1.5× faster under the fast loop.

Run explicitly (the perf suite is not part of the default test paths)::

    PYTHONPATH=src python -m pytest benchmarks/perf/bench_cycle_loop.py -m perf
"""

import pytest

from repro.harness.perfbench import bench_cycle_loop

#: acceptance floor for the single-thread fast-loop speedup.
MIN_SPEEDUP = 1.5


@pytest.mark.perf
def bench_cycle_loop_speedup():
    report = bench_cycle_loop()
    for workload in report["workloads"]:
        assert workload["identical"], \
            f"{workload['workload']}: fast loop diverged"
    assert report["reference_workload_speedup"] >= MIN_SPEEDUP, (
        f"fast loop {report['reference_workload_speedup']:.2f}x on "
        f"{report['reference_workload']} — below the {MIN_SPEEDUP}x floor"
    )
