"""§4.5 — energy efficiency.

The paper claims that despite higher dynamic power (busier compute
units), overall energy efficiency improves under the proposed schemes
because leakage energy is amortised over more useful work.  With a
fixed measurement window, leakage is constant, so instructions per
unit energy must rise wherever a scheme raises throughput.
"""

from conftest import run_once

from repro.harness.reporting import format_table
from repro.metrics.energy import energy_report
from repro.workloads.mixes import mix

PAIRS = [("bp", "ks"), ("sv", "ks"), ("pf", "bp")]
SCHEMES = ("ws", "ws-qbmi", "ws-dmil")


def bench_energy(benchmark, runner):
    def driver():
        out = {}
        for a, b in PAIRS:
            for scheme in SCHEMES:
                outcome = runner.run_mix(mix(a, b), scheme)
                out[(f"{a}+{b}", scheme)] = (outcome,
                                             energy_report(outcome.result))
        return out

    data = run_once(benchmark, driver)
    rows = []
    for (name, scheme), (outcome, report) in data.items():
        rows.append([name, scheme, report.instructions,
                     report.avg_power, report.insts_per_energy * 1000,
                     report.leakage / report.total])
    print("\n§4.5 — energy efficiency (arbitrary energy units)")
    print(format_table(
        ["mix", "scheme", "insts", "avg power", "insts/energy (x1e3)",
         "leakage share"], rows, precision=3))

    for a, b in PAIRS:
        name = f"{a}+{b}"
        base = data[(name, "ws")][1]
        for scheme in ("ws-qbmi", "ws-dmil"):
            rep = data[(name, scheme)][1]
            # efficiency must track throughput: a scheme that issues
            # more instructions in the window must not be less
            # efficient (leakage amortisation, §4.5).
            if rep.instructions >= base.instructions:
                assert rep.insts_per_energy >= base.insts_per_energy * 0.95, (
                    name, scheme)
