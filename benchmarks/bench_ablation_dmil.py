"""Ablations on DMIL's design choices (DESIGN.md §4, beyond the paper's
headline figures):

* **local vs global DMIL** — §3.3.2 proposes per-SM MILGs (local) and
  discusses a cheaper global variant that monitors one SM and
  broadcasts; with all SMs running the same mix the two should land in
  the same neighbourhood.
* **limit recovery** — the paper's formula only ever lowers the cap;
  this library adds an additive-increase probe after stall-free
  windows.  The ablation quantifies what that recovery contributes.
* **sampling window** — the paper picks 1024 requests; the scaled
  machine defaults to 256.  Halving/doubling it should not change the
  outcome much (the paper's "works well" claim).
"""

from conftest import run_once

from repro.core.arbiter import SchemeConfig
from repro.harness.reporting import format_table
from repro.workloads.mixes import mix

PAIRS = [("bp", "ks"), ("sv", "ks")]


def bench_local_vs_global_dmil(benchmark, runner):
    def driver():
        rows = []
        for a, b in PAIRS:
            local = runner.run_mix(mix(a, b), "ws-dmil")
            globl = runner.run_mix(mix(a, b), "ws-gdmil")
            rows.append([f"{a}+{b}", local.weighted_speedup, local.antt,
                         globl.weighted_speedup, globl.antt])
        return rows

    rows = run_once(benchmark, driver)
    print("\nAblation — local vs global DMIL")
    print(format_table(["mix", "local WS", "local ANTT",
                        "global WS", "global ANTT"], rows, precision=3))
    for row in rows:
        assert abs(row[1] - row[3]) / row[1] < 0.25, (
            "global DMIL should track local DMIL when all SMs run the "
            "same mix")


def bench_milg_recovery(benchmark, runner):
    def driver():
        rows = []
        for a, b in PAIRS:
            with_rec = runner.run_mix_with_stack(
                mix(a, b), SchemeConfig(mil="dmil", dmil_recovery=True))
            without = runner.run_mix_with_stack(
                mix(a, b), SchemeConfig(mil="dmil", dmil_recovery=False))
            rows.append([f"{a}+{b}",
                         with_rec.weighted_speedup, with_rec.norm_ipcs[1],
                         without.weighted_speedup, without.norm_ipcs[1]])
        return rows

    rows = run_once(benchmark, driver)
    print("\nAblation — MILG limit recovery (additive increase)")
    print(format_table(["mix", "WS (recovery)", "M-kernel nIPC",
                        "WS (one-way)", "M-kernel nIPC'"], rows,
                       precision=3))
    # Without recovery the memory kernel can stay over-throttled; the
    # recovering variant should never leave it worse off.
    for row in rows:
        assert row[2] >= row[4] * 0.9


def bench_sampling_window(benchmark, runner):
    def driver():
        rows = []
        for window in (128, 256, 512):
            out = runner.run_mix_with_stack(
                mix("bp", "ks"), SchemeConfig(mil="dmil",
                                              sample_window=window))
            rows.append([window, out.weighted_speedup, out.antt,
                         out.fairness])
        return rows

    rows = run_once(benchmark, driver)
    print("\nAblation — DMIL sampling window (requests per MILG window)")
    print(format_table(["window", "WS", "ANTT", "fairness"], rows,
                       precision=3))
    speedups = [row[1] for row in rows]
    assert max(speedups) / min(speedups) < 1.2, (
        "DMIL should be robust to the sampling window choice")
