"""Table 1 — baseline architecture configuration.

Verifies the Table 1 machine description and reports the scaled
configuration used by the experiments side by side.
"""

from conftest import run_once

from repro.config import MAXWELL_CONFIG, scaled_config
from repro.harness.reporting import format_table


def bench_table1(benchmark):
    def driver():
        return MAXWELL_CONFIG, scaled_config()

    paper, scaled = run_once(benchmark, driver)
    rows = [
        ["# SMs", paper.num_sms, scaled.num_sms],
        ["warp size", paper.warp_size, scaled.warp_size],
        ["schedulers/SM", paper.schedulers_per_sm, scaled.schedulers_per_sm],
        ["threads/SM", paper.max_threads_per_sm, scaled.max_threads_per_sm],
        ["warps/SM", paper.max_warps_per_sm, scaled.max_warps_per_sm],
        ["TBs/SM", paper.max_tbs_per_sm, scaled.max_tbs_per_sm],
        ["L1D bytes", paper.l1d.size_bytes, scaled.l1d.size_bytes],
        ["L1D assoc", paper.l1d.assoc, scaled.l1d.assoc],
        ["L1D MSHRs", paper.l1d.mshrs, scaled.l1d.mshrs],
        ["L2 bytes", paper.l2.size_bytes, scaled.l2.size_bytes],
        ["DRAM channels", paper.dram_channels, scaled.dram_channels],
    ]
    print("\nTable 1 — paper baseline vs scaled experiment machine")
    print(format_table(["parameter", "paper", "scaled"], rows))
    # the Table 1 values themselves
    assert paper.num_sms == 16 and paper.l1d.mshrs == 128
    assert paper.l1d.size_bytes == 24 * 1024 and paper.l1d.assoc == 6
    assert paper.l2.size_bytes == 2 * 1024 * 1024
    # scaling preserves warps-per-scheduler granularity and MSHR/warp order
    assert scaled.max_warps_per_sm % scaled.schedulers_per_sm == 0
    paper_ratio = paper.l1d.mshrs / paper.max_warps_per_sm
    scaled_ratio = scaled.l1d.mshrs / scaled.max_warps_per_sm
    assert 0.5 < scaled_ratio / paper_ratio < 4
