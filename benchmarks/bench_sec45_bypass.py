"""§4.5 — interaction with L1D cache bypassing.

The paper argues its schemes are *complementary* to cache bypassing:
bypassing relieves L1 contention but "offloads transactions to the
lower level memory hierarchies", and uncontrolled bypassing from a
memory-intensive kernel still congests L2/DRAM — so MIL remains
useful on top.

This bench bypasses the memory-intensive kernel of two C+M pairs and
measures (a) the relief on the compute kernel's L1D, and (b) the
additional gain from stacking DMIL on top of bypassing.
"""

from conftest import run_once

from repro.core.arbiter import SchemeConfig
from repro.harness.reporting import format_table
from repro.workloads.mixes import mix

PAIRS = [("bp", "ks"), ("bp", "sv")]


def bench_bypass_interaction(benchmark, runner):
    def driver():
        rows = []
        for a, b in PAIRS:
            m = mix(a, b)
            base = runner.run_mix(m, "ws")
            byp = runner.run_mix(m, "ws-byp:0,1")
            byp_dmil = runner.run_mix_with_stack(
                m, SchemeConfig(mil="dmil", l1d_bypass=(False, True)))
            rows.append((m.name, base, byp, byp_dmil))
        return rows

    rows = run_once(benchmark, driver)
    table = []
    for name, base, byp, byp_dmil in rows:
        table.append([name, "ws", base.weighted_speedup, base.antt,
                      base.result.l1d_miss_rate(0),
                      base.result.l1d_rsfail_rate(0)])
        table.append([name, "ws+bypass(M)", byp.weighted_speedup, byp.antt,
                      byp.result.l1d_miss_rate(0),
                      byp.result.l1d_rsfail_rate(0)])
        table.append([name, "ws+bypass+dmil", byp_dmil.weighted_speedup,
                      byp_dmil.antt, byp_dmil.result.l1d_miss_rate(0),
                      byp_dmil.result.l1d_rsfail_rate(0)])
    print("\n§4.5 — bypassing the memory-intensive kernel's L1D accesses")
    print(format_table(
        ["mix", "scheme", "WS", "ANTT", "C-kernel miss", "C-kernel rsfail"],
        table, precision=2))

    for name, base, byp, byp_dmil in rows:
        # bypassing relieves the compute kernel's L1D...
        assert byp.result.l1d_miss_rate(0) <= base.result.l1d_miss_rate(0) + 0.02
        # ...and MIL still composes on top (ANTT no worse than bypass alone)
        assert byp_dmil.antt <= byp.antt * 1.10, name
