"""Figure 2 — computing resource utilization vs LSU stalls.

Benchmarks sorted by decreasing ALU utilization; the paper's headline
is the inverse relationship between utilization and LSU stall cycles.
"""

from conftest import run_once

from repro.harness.experiments import figure2_utilization
from repro.harness.reporting import format_table


def bench_fig2(benchmark, runner):
    rows = run_once(benchmark, figure2_utilization, runner)
    print("\nFigure 2 — utilization and LSU stalls (sorted by ALU util)")
    print(format_table(
        ["bench", "ALU_util", "SFU_util", "LSU_stall"],
        [[r["name"], r["alu_utilization"], r["sfu_utilization"],
          r["lsu_stall_pct"]] for r in rows],
        precision=2,
    ))
    # the top half by ALU utilization must stall less than the bottom half
    half = len(rows) // 2
    top = sum(float(r["lsu_stall_pct"]) for r in rows[:half]) / half
    bottom = sum(float(r["lsu_stall_pct"]) for r in rows[half:]) / (len(rows) - half)
    print(f"mean LSU stall: top-util half {top:.2f} vs bottom half {bottom:.2f}")
    assert top < bottom
