"""Figure 3 — scalability curves and the Warped-Slicer sweet spot for
bp+sv.

Paper shape: bp's performance rises with TBs; sv's rises then falls;
the sweet spot gives bp the larger share.
"""

from conftest import run_once

from repro.harness.experiments import figure3_sweet_spot
from repro.harness.reporting import format_series


def bench_fig3(benchmark, runner):
    res = run_once(benchmark, figure3_sweet_spot, runner, "bp", "sv")
    print(f"\nFigure 3 — scalability curves and sweet spot for {res.pair}")
    print(format_series({name: values for name, values in res.curves.items()}))
    print(f"sweet spot (TBs bp, sv): {res.partition}")
    print(f"theoretical weighted speedup at sweet spot: {res.theoretical_ws:.2f}")

    bp_curve = res.curves["bp"]
    sv_curve = res.curves["sv"]
    assert bp_curve[1] > bp_curve[0], "bp rises with more TBs"
    peak = max(range(len(sv_curve)), key=lambda i: sv_curve[i])
    assert peak < len(sv_curve) - 1, "sv peaks before max occupancy"
    assert all(t >= 1 for t in res.partition)
