"""Figure 6 — L1D access timelines: bp alone, sv alone, bp+sv shared.

Paper shape: both kernels sustain similar access counts alone; running
together, sv dominates the L1D and bp starves.
"""

from conftest import run_once

from repro.harness.experiments import figure6_timelines
from repro.harness.reporting import format_series


def bench_fig6(benchmark, runner):
    series = run_once(benchmark, figure6_timelines, runner, "bp", "sv")
    print("\nFigure 6 — L1D accesses per 1K cycles")
    print(format_series(series, precision=0, max_points=20))

    def steady(values):
        tail = values[2:] or values
        return sum(tail) / len(tail)

    alone = steady(series["bp_alone"])
    shared = steady(series["bp_shared"])
    sv_shared = steady(series["sv_shared"])
    print(f"bp steady-state accesses/1K: alone {alone:.0f} -> shared {shared:.0f}")
    print(f"sv steady-state accesses/1K while shared: {sv_shared:.0f}")
    assert shared < 0.8 * alone, "bp must starve on L1D access bandwidth"
    assert sv_shared > shared, "sv dominates the shared L1D"
