"""§4.4 — hardware overhead of the proposed mechanisms.

Counter/register bits for MILG (per kernel per SM) and QBMI, on the
paper's 16-SM machine — showing the overhead is negligible.
"""

from conftest import run_once

from repro.harness.experiments import hardware_overhead
from repro.harness.reporting import format_table


def bench_overhead(benchmark):
    cost = run_once(benchmark, hardware_overhead, 2, 16)
    print("\n§4.4 — hardware overhead (2 kernels, 16 SMs)")
    print(format_table(
        ["component", "bits"],
        [["MILG per kernel", cost["milg_per_kernel_bits"]],
         ["MILG per SM", cost["milg_per_sm_bits"]],
         ["MILG whole GPU", cost["milg_gpu_bits"]],
         ["QBMI per SM", cost["qbmi_per_sm_bits"]],
         ["QBMI whole GPU", cost["qbmi_gpu_bits"]]],
    ))
    # paper: 7-bit inflight + 12-bit rsfail + 10-bit request counters
    assert cost["milg_per_kernel_bits"] == 7 + 12 + 10
    # whole-GPU storage is well under a kilobyte per mechanism
    assert cost["milg_gpu_bits"] < 8 * 1024
    assert cost["qbmi_gpu_bits"] < 8 * 1024
