"""Figure 11 — QBMI vs DMIL vs QBMI+DMIL on top of Warped-Slicer.

Regenerates weighted speedup plus per-kernel L1D miss and rsfail rates
for the six case-study pairs.  Paper shape: the schemes tie on C+C;
QBMI+DMIL ≈ DMIL (combining adds little, §3.4).
"""

from conftest import run_once

from repro.harness.experiments import figure11_qbmi_vs_dmil
from repro.harness.reporting import format_table

SCHEMES = ("ws-qbmi", "ws-dmil", "ws-qbmi+dmil")


def bench_fig11(benchmark, runner):
    sweep = run_once(benchmark, figure11_qbmi_vs_dmil, runner)
    rows = []
    for name in sweep.mixes():
        row = [name, sweep.class_of(name)]
        for scheme in SCHEMES:
            row.append(sweep.outcome(name, scheme).weighted_speedup)
        rows.append(row)
    print("\nFigure 11(a) — weighted speedup")
    print(format_table(["mix", "class", *SCHEMES], rows, precision=2))

    rate_rows = []
    for name in sweep.mixes():
        for scheme in SCHEMES:
            res = sweep.outcome(name, scheme).result
            rate_rows.append([name, scheme,
                              res.l1d_miss_rate(0), res.l1d_miss_rate(1),
                              res.l1d_rsfail_rate(0), res.l1d_rsfail_rate(1)])
    print("\nFigure 11(b,c) — L1D miss and rsfail rates")
    print(format_table(["mix", "scheme", "miss_k0", "miss_k1",
                        "rsfail_k0", "rsfail_k1"], rate_rows, precision=2))

    for scheme in SCHEMES:
        print(f"geomean WS {scheme}: "
              f"{sweep.mean_metric(scheme, 'weighted_speedup'):.3f}  "
              f"ANTT: {sweep.mean_metric(scheme, 'antt'):.3f}")

    # C+C: all three schemes within a few percent of each other
    cc = [sweep.mean_metric(s, "weighted_speedup", "C+C") for s in SCHEMES]
    assert max(cc) / min(cc) < 1.1
    # combining QBMI with DMIL adds little over DMIL alone (§3.4)
    dmil = sweep.mean_metric("ws-dmil", "weighted_speedup")
    both = sweep.mean_metric("ws-qbmi+dmil", "weighted_speedup")
    assert abs(both - dmil) / dmil < 0.15
