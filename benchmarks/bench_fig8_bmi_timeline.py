"""Figure 8 — warp-instruction issue timelines under WS / WS-RBMI /
WS-QBMI for bp+sv, plus the normalized IPC bars.

Paper shape: RBMI and QBMI both let bp issue more instructions than
plain WS; bp's normalized IPC rises while sv stays roughly stable.
"""

from conftest import run_once

from repro.harness.experiments import figure8_issue_timelines
from repro.harness.reporting import format_series


def bench_fig8(benchmark, runner):
    data = run_once(benchmark, figure8_issue_timelines, runner, "bp", "sv")
    print("\nFigure 8 — warp instructions issued per 1K cycles")
    for scheme, series in data.items():
        print(f"[{scheme}]")
        print(format_series({
            "bp": series["bp_insts"], "sv": series["sv_insts"],
        }, precision=0, max_points=16))
        norm = series["norm_ipc"]
        print(f"normalized IPC: bp {norm[0]:.2f}  sv {norm[1]:.2f}")

    bp_ws = data["ws"]["norm_ipc"][0]
    bp_rbmi = data["ws-rbmi"]["norm_ipc"][0]
    bp_qbmi = data["ws-qbmi"]["norm_ipc"][0]
    assert bp_qbmi >= bp_ws * 0.98, "QBMI must not starve bp further"
    assert max(bp_rbmi, bp_qbmi) > bp_ws, "BMI lifts the compute kernel"
