"""End-to-end behavioural tests: the paper's core phenomena must hold
on the scaled machine.

These are the load-bearing reproduction checks; they use reduced cycle
budgets, so thresholds are deliberately loose — the benches in
``benchmarks/`` regenerate the full numbers.
"""

import pytest

from repro.config import scaled_config
from repro.harness.runner import ExperimentRunner, RunnerSettings
from repro.workloads.mixes import mix
from repro.workloads.profiles import ALL_PROFILES, COMPUTE_PROFILES, MEMORY_PROFILES

SETTINGS = RunnerSettings(iso_cycles=5000, curve_cycles=3000,
                          concurrent_cycles=8000)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scaled_config(), SETTINGS)


class TestWorkloadCharacterisation:
    """Table 2 / Figure 2: the C/M split must be reproducible from the
    LSU-stall statistic alone."""

    def test_classification_separates_cleanly(self, runner):
        c_stalls = [runner.isolated(p).lsu_stall_pct for p in COMPUTE_PROFILES]
        m_stalls = [runner.isolated(p).lsu_stall_pct for p in MEMORY_PROFILES]
        assert max(c_stalls) < min(m_stalls), (
            "every compute-intensive kernel must stall less than every "
            f"memory-intensive one (C={c_stalls}, M={m_stalls})")

    def test_memory_kernels_have_higher_rsfail(self, runner):
        c_rs = [runner.isolated(p).l1d_rsfail_rate for p in COMPUTE_PROFILES]
        m_rs = [runner.isolated(p).l1d_rsfail_rate for p in MEMORY_PROFILES]
        assert sum(m_rs) / len(m_rs) > 2 * sum(c_rs) / len(c_rs)

    def test_utilization_inversely_related_to_stalls(self, runner):
        """Figure 2's headline: compute utilization and LSU stalls are
        inversely related (rank correlation must be negative)."""
        records = [runner.isolated(p) for p in ALL_PROFILES]
        utils = [r.compute_utilization for r in records]
        stalls = [r.lsu_stall_pct for r in records]
        n = len(records)
        concordant = discordant = 0
        for i in range(n):
            for j in range(i + 1, n):
                s = (utils[i] - utils[j]) * (stalls[i] - stalls[j])
                if s > 0:
                    concordant += 1
                elif s < 0:
                    discordant += 1
        assert discordant > concordant, "higher utilization ⇒ fewer stalls"

    def test_miss_rates_track_table2(self, runner):
        """Measured isolated L1D miss rate within 0.25 of Table 2."""
        for profile in ALL_PROFILES:
            measured = runner.isolated(profile).l1d_miss_rate
            paper = profile.paper["l1d_miss_rate"]
            assert abs(measured - paper) < 0.25, (
                f"{profile.name}: measured {measured:.2f} vs paper {paper:.2f}")


class TestScalabilityCurves:
    def test_sv_curve_peaks_before_max(self, runner):
        """Figure 3(a): sv's performance peaks below max occupancy."""
        from repro.workloads.profiles import get_profile
        curve = runner.curve(get_profile("sv"))
        peak_at = max(range(1, curve.max_tbs + 1), key=curve.ipc)
        assert peak_at < curve.max_tbs

    def test_bp_curve_rises_from_one_tb(self, runner):
        from repro.workloads.profiles import get_profile
        curve = runner.curve(get_profile("bp"))
        assert curve.ipc(2) > curve.ipc(1) * 1.3


class TestInterference:
    """§2.5 + Figure 4: achieved weighted speedup falls short of the
    theoretical prediction for C+M, and the compute kernel starves."""

    def test_compute_kernel_starves_next_to_memory_kernel(self, runner):
        outcome = runner.run_mix(mix("bp", "ks"), "ws")
        bp_norm, ks_norm = outcome.norm_ipcs
        assert bp_norm < 0.5, "bp must starve under plain intra-SM sharing"
        assert ks_norm > bp_norm

    def test_achieved_below_theoretical_for_cm(self, runner):
        from repro.harness.experiments import figure4_gap
        rows = figure4_gap(runner, pairs=[mix("bp", "ks"), mix("bp", "sv")])
        for row in rows:
            assert row.achieved < row.theoretical

    def test_l1d_access_starvation_timeline(self, runner):
        """Figure 6: concurrent bp gets far fewer L1D accesses per
        interval than bp alone."""
        from repro.harness.experiments import figure6_timelines
        series = figure6_timelines(runner, "bp", "sv", interval=1000,
                                   cycles=6000)
        alone = series["bp_alone"]
        shared = series["bp_shared"]
        steady_alone = sum(alone[2:]) / max(1, len(alone) - 2)
        steady_shared = sum(shared[2:]) / max(1, len(shared) - 2)
        assert steady_shared < 0.8 * steady_alone


class TestSchemes:
    def test_dmil_improves_antt_on_cm(self, runner):
        base = runner.run_mix(mix("bp", "ks"), "ws")
        dmil = runner.run_mix(mix("bp", "ks"), "ws-dmil")
        assert dmil.antt < base.antt
        assert dmil.fairness > base.fairness

    def test_qbmi_improves_fairness_on_mm(self, runner):
        base = runner.run_mix(mix("sv", "ks"), "ws")
        qbmi = runner.run_mix(mix("sv", "ks"), "ws-qbmi")
        assert qbmi.fairness > base.fairness

    def test_schemes_neutral_on_cc(self, runner):
        """C+C workloads have no memory pipeline stalls — QBMI and
        DMIL must neither help nor hurt much (paper Figs 11/12)."""
        base = runner.run_mix(mix("pf", "bp"), "ws")
        for scheme in ("ws-qbmi", "ws-dmil"):
            out = runner.run_mix(mix("pf", "bp"), scheme)
            assert out.weighted_speedup == pytest.approx(
                base.weighted_speedup, rel=0.10)

    def test_static_limit_on_memory_kernel_rescues_compute_kernel(self, runner):
        """Figure 9(b)'s shape: limiting the memory-intensive kernel
        frees the compute-intensive one."""
        base = runner.run_mix(mix("bp", "ks"), "ws")
        limited = runner.run_mix(mix("bp", "ks"), "ws-smil:inf,1")
        assert limited.norm_ipcs[0] > 2 * base.norm_ipcs[0]

    def test_ucp_does_not_improve_weighted_speedup(self, runner):
        """§3.1 (Figure 5): L1D way partitioning is not effective."""
        pairs = [mix("bp", "sv"), mix("sv", "ks")]
        base = [runner.run_mix(m, "ws").weighted_speedup for m in pairs]
        ucp = [runner.run_mix(m, "ws-ucp").weighted_speedup for m in pairs]
        assert sum(ucp) <= sum(base) * 1.05

    def test_smk_dmil_beats_smk_pw(self, runner):
        pw = runner.run_mix(mix("bp", "ks"), "smk-p+w")
        dmil = runner.run_mix(mix("bp", "ks"), "smk-p+dmil")
        assert dmil.weighted_speedup > pw.weighted_speedup

    def test_three_kernel_mixes_run(self, runner):
        outcome = runner.run_mix(mix("bp", "sv", "ks"), "ws-dmil",
                                 cycles=6000)
        assert len(outcome.norm_ipcs) == 3
        assert all(n > 0 for n in outcome.norm_ipcs)
