"""Unit tests for MIL (MILG / SMIL / DMIL, paper §3.3)."""

import pytest

from repro.core.mil import MAX_LIMIT, MILG, DynamicLimiter, NoLimit, StaticLimiter


class TestMILG:
    def test_rejects_non_power_of_two_window(self):
        with pytest.raises(ValueError):
            MILG(window=100)

    def test_unlimited_before_first_window(self):
        milg = MILG(window=16)
        assert milg.limit is None

    def test_paper_formula(self):
        """limit = max(peak_inflight - (rsfails >> log2(window)), 1)."""
        milg = MILG(window=16)  # shift = 4
        milg.observe_inflight(10)
        for _ in range(48):  # 48 >> 4 == 3 failures-per-request
            milg.note_rsfail()
        for _ in range(16):
            milg.note_request(current_inflight=5)
        assert milg.limit == 10 - 3
        assert milg.windows_completed == 1

    def test_floor_at_one(self):
        milg = MILG(window=16)
        milg.observe_inflight(2)
        for _ in range(1000):
            milg.note_rsfail()
        for _ in range(16):
            milg.note_request(0)
        assert milg.limit == 1

    def test_counters_reset_between_windows(self):
        milg = MILG(window=16)
        milg.observe_inflight(8)
        for _ in range(32):
            milg.note_rsfail()
        for _ in range(16):
            milg.note_request(3)
        first = milg.limit
        # quiet window: no failures
        for _ in range(16):
            milg.note_request(3)
        assert milg.limit == first + 1, "stall-free window probes upward"

    def test_recovery_bounded_by_counter_width(self):
        milg = MILG(window=16)
        milg.observe_inflight(4)
        for _ in range(16):
            milg.note_rsfail()
        for _ in range(16):
            milg.note_request(1)
        for _ in range(4000):
            milg.note_request(1)
        assert milg.limit <= MAX_LIMIT

    def test_peak_reseeds_from_current_inflight(self):
        milg = MILG(window=16)
        milg.observe_inflight(12)
        for _ in range(16):
            milg.note_rsfail()
        for _ in range(15):
            milg.note_request(0)
        milg.note_request(current_inflight=7)
        assert milg._peak_inflight == 7

    def test_hardware_cost_matches_paper(self):
        cost = MILG.hardware_cost()
        assert cost["inflight_counter_bits"] == 7
        assert cost["rsfail_counter_bits"] == 12
        assert cost["request_counter_bits"] == 10
        assert cost["shifter_bits"] == 0


class TestStaticLimiter:
    def test_cap_enforced(self):
        smil = StaticLimiter([3, None])
        assert smil.can_issue(0, inflight=2)
        assert not smil.can_issue(0, inflight=3)
        assert smil.can_issue(1, inflight=1000)

    def test_limits_accessor(self):
        assert StaticLimiter([2, None]).limits() == [2, None]

    def test_rejects_zero_limit(self):
        with pytest.raises(ValueError):
            StaticLimiter([0])


class TestDynamicLimiter:
    def test_per_kernel_independence(self):
        dmil = DynamicLimiter(2, window=16)
        dmil.observe_inflight(0, 10)
        for _ in range(64):
            dmil.note_rsfail(0)
        for _ in range(16):
            dmil.note_request(0, 4)
        assert dmil.limits()[0] is not None
        assert dmil.limits()[1] is None, "kernel 1 untouched"

    def test_can_issue_respects_learned_limit(self):
        dmil = DynamicLimiter(1, window=16)
        dmil.observe_inflight(0, 4)
        for _ in range(64):  # 4 fails per request
            dmil.note_rsfail(0)
        for _ in range(16):
            dmil.note_request(0, 1)
        limit = dmil.limits()[0]
        assert limit == 1
        assert dmil.can_issue(0, inflight=0)
        assert not dmil.can_issue(0, inflight=limit)


class TestNoLimit:
    def test_always_allows(self):
        nolimit = NoLimit(2)
        assert nolimit.can_issue(0, 10 ** 6)
        assert nolimit.limits() == [None, None]
