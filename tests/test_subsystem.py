"""Integration tests for the memory backend (L1 → icnt → L2 → DRAM →
back), including backpressure behaviour."""


from repro.config import scaled_config
from repro.mem.cache import AccessResult
from repro.mem.subsystem import MemRequest, MemorySubsystem


class FakeMemInst:
    """Minimal stand-in for sim.warp.MemInst completion callbacks."""

    def __init__(self):
        self.completions = []

    def request_done(self, cycle):
        self.completions.append(cycle)


def drive(subsystem, cycles, start=0):
    for cycle in range(start, start + cycles):
        subsystem.tick(cycle)
    return start + cycles


class TestReadPath:
    def test_read_miss_round_trip(self):
        cfg = scaled_config()
        mem = MemorySubsystem(cfg)
        inst = FakeMemInst()
        req = MemRequest(line=0, kernel=0, sm_id=0, is_write=False, meminst=inst)
        assert mem.l1s[0].access(req, 0) == AccessResult.MISS
        drive(mem, 300)
        assert inst.completions, "the fill must come back"
        latency = inst.completions[0]
        # must include both interconnect traversals and DRAM access
        assert latency >= 2 * cfg.icnt_latency + cfg.dram_latency
        assert mem.quiescent()

    def test_l2_hit_is_faster_than_dram(self):
        cfg = scaled_config()
        mem = MemorySubsystem(cfg)
        first = FakeMemInst()
        req = MemRequest(0, 0, 0, False, meminst=first)
        mem.l1s[0].access(req, 0)
        drive(mem, 300)
        dram_latency = first.completions[0]

        # Same line from the *other* SM now hits in L2.
        second = FakeMemInst()
        req2 = MemRequest(0, 0, 1, False, meminst=second)
        assert mem.l1s[1].access(req2, 300) == AccessResult.MISS
        for cycle in range(300, 600):
            mem.tick(cycle)
        l2_latency = second.completions[0] - 300
        assert l2_latency < dram_latency
        assert mem.l2_stats.hits[0] == 1

    def test_cross_sm_l2_mshr_merge(self):
        """Two SMs missing the same line concurrently must both get
        fills from a single DRAM access."""
        cfg = scaled_config()
        mem = MemorySubsystem(cfg)
        insts = [FakeMemInst(), FakeMemInst()]
        for sm in (0, 1):
            req = MemRequest(0, 0, sm, False, meminst=insts[sm])
            assert mem.l1s[sm].access(req, 0) == AccessResult.MISS
        drive(mem, 400)
        assert insts[0].completions and insts[1].completions
        assert mem.dram.total_serviced() == 1

    def test_writes_reach_dram_without_completion(self):
        cfg = scaled_config()
        mem = MemorySubsystem(cfg)
        req = MemRequest(0, 0, 0, True, meminst=None)
        assert mem.l1s[0].access(req, 0) == AccessResult.MISS
        drive(mem, 200)
        assert mem.dram.total_serviced() == 1
        assert mem.l2_stats.writes[0] == 1


class TestBackpressure:
    def test_miss_queue_drains_over_time(self):
        cfg = scaled_config()
        mem = MemorySubsystem(cfg)
        insts = []
        for i in range(cfg.l1d.miss_queue):
            inst = FakeMemInst()
            insts.append(inst)
            req = MemRequest(i * 64, 0, 0, False, meminst=inst)
            result = mem.l1s[0].access(req, 0)
            assert result in (AccessResult.MISS, AccessResult.MISS_MERGED)
        assert mem.l1s[0].miss_queue
        drive(mem, 600)
        assert not mem.l1s[0].miss_queue
        assert all(inst.completions for inst in insts)
        assert mem.quiescent()

    def test_quiescent_initially(self):
        assert MemorySubsystem(scaled_config()).quiescent()

    def test_flood_never_loses_reads(self):
        """Hundreds of distinct-line reads all complete despite queue
        limits (conservation of requests through backpressure)."""
        cfg = scaled_config()
        mem = MemorySubsystem(cfg)
        pending = []
        issued = 0
        cycle = 0
        next_line = 0
        while issued < 200 or not mem.quiescent():
            if issued < 200:
                inst = FakeMemInst()
                req = MemRequest(next_line, 0, 0, False, meminst=inst)
                result = mem.l1s[0].access(req, cycle)
                if result in (AccessResult.MISS, AccessResult.MISS_MERGED):
                    pending.append(inst)
                    issued += 1
                    next_line += 97  # scatter across sets/rows
            mem.tick(cycle)
            cycle += 1
            # deliver fills so L1 MSHRs recycle
            assert cycle < 50_000, "flood did not drain"
        assert len(pending) == 200
        assert all(inst.completions for inst in pending)
