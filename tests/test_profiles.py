"""Tests for the 13 calibrated benchmark profiles (paper Table 2)."""

import pytest

from repro.config import scaled_config
from repro.workloads.profiles import (
    ALL_PROFILES,
    COMPUTE_PROFILES,
    MEMORY_PROFILES,
    get_profile,
)

PAPER_NAMES = {"cp", "hs", "dc", "pf", "bp", "bs", "st",
               "3m", "sv", "cd", "s2", "ks", "ax"}


class TestRoster:
    def test_all_thirteen_benchmarks_present(self):
        assert {p.name for p in ALL_PROFILES} == PAPER_NAMES

    def test_class_split_matches_table2(self):
        assert {p.name for p in COMPUTE_PROFILES} == {
            "cp", "hs", "dc", "pf", "bp", "bs", "st"}
        assert {p.name for p in MEMORY_PROFILES} == {
            "3m", "sv", "cd", "s2", "ks", "ax"}

    def test_get_profile_lookup(self):
        assert get_profile("bp").full_name == "backprop"
        with pytest.raises(KeyError):
            get_profile("nope")

    def test_instruction_mix_matches_table2(self):
        expected = {  # (Cinst/Minst, Req/Minst) straight from Table 2
            "cp": (4, 2), "hs": (7, 3), "dc": (5, 1), "pf": (6, 2),
            "bp": (6, 2), "bs": (4, 1), "st": (4, 1), "3m": (2, 1),
            "sv": (3, 3), "cd": (9, 6), "s2": (2, 2), "ks": (3, 17),
            "ax": (2, 11),
        }
        for profile in ALL_PROFILES:
            assert (profile.cinst_per_minst, profile.reqs_per_minst) \
                == expected[profile.name], profile.name

    def test_paper_reference_data_attached(self):
        for profile in ALL_PROFILES:
            assert profile.paper["type"] == profile.kind
            assert 0 <= profile.paper["l1d_miss_rate"] <= 1


class TestStaticResources:
    def test_every_profile_fits_at_least_one_tb(self):
        cfg = scaled_config()
        for profile in ALL_PROFILES:
            assert profile.max_tbs_per_sm(cfg) >= 1, profile.name

    def test_tb_slot_limited_kernels(self):
        """cp, dc, sv, cd, s2 have TB occupancy 100% in Table 2 — they
        must be limited by TB slots (or thread slots for sv)."""
        cfg = scaled_config()
        for name in ("cp", "dc", "cd", "s2"):
            assert get_profile(name).max_tbs_per_sm(cfg) == cfg.max_tbs_per_sm

    def test_occupancy_ordering_tracks_paper(self):
        """Kernels with low TB occupancy in the paper (hs, bs, st at
        <=43.8%) must reach fewer concurrent TBs than the TB-slot
        limited ones."""
        cfg = scaled_config()
        low = max(get_profile(n).max_tbs_per_sm(cfg) for n in ("hs", "bs", "st"))
        assert low < cfg.max_tbs_per_sm

    def test_smem_users_match_table2(self):
        uses_smem = {p.name for p in ALL_PROFILES if p.smem_per_tb > 0}
        assert uses_smem == {"cp", "hs", "dc", "pf", "bp"}

    def test_rf_occupancy_close_to_paper(self):
        """Register-file occupancy at max TBs within 15 points of the
        paper's Table 2 column."""
        cfg = scaled_config()
        for profile in ALL_PROFILES:
            occ = profile.occupancy(cfg)
            assert abs(occ["rf"] - profile.paper["rf_oc"]) < 0.15, profile.name

    def test_memory_kernels_have_higher_mlp(self):
        avg_c = sum(p.mlp for p in COMPUTE_PROFILES) / len(COMPUTE_PROFILES)
        avg_m = sum(p.mlp for p in MEMORY_PROFILES) / len(MEMORY_PROFILES)
        assert avg_m > avg_c
