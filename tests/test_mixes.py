"""Unit tests for workload mix construction."""

import pytest

from repro.workloads.mixes import (
    PAPER_CASE_STUDY_PAIRS,
    WorkloadMix,
    all_pairs,
    classify_mix,
    mix,
    paper_pairs,
    representative_pairs,
    representative_triples,
)
from repro.workloads.profiles import get_profile


class TestWorkloadMix:
    def test_name_and_class(self):
        m = mix("bp", "sv")
        assert m.name == "bp+sv"
        assert m.mix_class == "C+M"
        assert len(m) == 2

    def test_class_sorted_c_first(self):
        assert mix("sv", "bp").mix_class == "C+M"
        assert mix("sv", "ks").mix_class == "M+M"
        assert mix("pf", "bp").mix_class == "C+C"

    def test_triple_classes(self):
        assert mix("pf", "sv", "bp").mix_class == "C+C+M"
        assert mix("sv", "ks", "ax").mix_class == "M+M+M"

    def test_requires_two_kernels(self):
        with pytest.raises(ValueError):
            WorkloadMix((get_profile("bp"),))

    def test_classify_mix_helper(self):
        assert classify_mix([get_profile("sv"), get_profile("bp")]) == "C+M"


class TestSelections:
    def test_paper_pairs_are_the_case_studies(self):
        names = [m.name for m in paper_pairs()]
        assert names == ["+".join(p) for p in PAPER_CASE_STUDY_PAIRS]
        classes = [m.mix_class for m in paper_pairs()]
        assert classes == ["C+C", "C+C", "C+M", "C+M", "M+M", "M+M"]

    def test_all_pairs_count(self):
        assert len(all_pairs()) == 13 * 12 // 2

    def test_representative_pairs_deterministic(self):
        a = [m.name for m in representative_pairs(4)]
        b = [m.name for m in representative_pairs(4)]
        assert a == b

    def test_representative_pairs_quota_per_class(self):
        pairs = representative_pairs(4)
        counts = {}
        for m in pairs:
            counts[m.mix_class] = counts.get(m.mix_class, 0) + 1
        assert set(counts) == {"C+C", "C+M", "M+M"}
        assert all(v == 4 for v in counts.values())

    def test_representative_pairs_include_case_studies(self):
        names = {m.name for m in representative_pairs(3)}
        assert {"pf+bp", "bp+sv", "sv+ks"} <= names

    def test_representative_triples_classes(self):
        triples = representative_triples(2)
        classes = sorted({m.mix_class for m in triples})
        assert classes == ["C+C+C", "C+C+M", "C+M+M", "M+M+M"]
        counts = {}
        for m in triples:
            counts[m.mix_class] = counts.get(m.mix_class, 0) + 1
        assert all(v <= 2 for v in counts.values())
