"""Unit tests for warps, thread blocks and in-flight memory
instructions (the MLP model)."""

import pytest

from repro.sim.warp import MemInst, ThreadBlock, Warp
from repro.workloads.address import StreamPattern
from repro.workloads.kernel import InstructionStream, KernelProfile


def make_warp(mlp=2, iters=3, cinst=1):
    profile = KernelProfile(
        name="t", full_name="t", suite="u", kind="C",
        cinst_per_minst=cinst, reqs_per_minst=2, write_frac=0.0,
        threads_per_tb=32, regs_per_thread=8,
        pattern_factory=StreamPattern, iters_per_warp=iters,
    )
    tb = ThreadBlock(0, 0, profile)
    stream = InstructionStream(profile, StreamPattern(), 0, seed=0)
    warp = Warp(0, 0, tb, stream, age=0, mlp=mlp)
    tb.warps.append(warp)
    tb.live_warps = 1
    return warp


class TestWarpMLP:
    def test_issuable_until_mlp_reached(self):
        warp = make_warp(mlp=2)
        assert warp.issuable(0)
        warp.note_load_issued(0)
        assert warp.issuable(1)
        warp.note_load_issued(1)
        assert not warp.issuable(2), "at MLP limit the warp stalls"

    def test_load_completion_unblocks(self):
        warp = make_warp(mlp=1)
        warp.note_load_issued(0)
        assert not warp.issuable(5)
        warp.note_load_done(5)
        assert warp.issuable(6)
        assert warp.ready_at == 6

    def test_underflow_detected(self):
        warp = make_warp()
        with pytest.raises(RuntimeError):
            warp.note_load_done(0)

    def test_retired_requires_drained_stream_and_loads(self):
        warp = make_warp(iters=1, cinst=0)
        warp.note_load_issued(0)
        warp.stream.pop()  # the single load
        assert warp.stream.done
        assert not warp.retired
        warp.note_load_done(3)
        assert warp.retired

    def test_rejects_zero_mlp(self):
        with pytest.raises(ValueError):
            make_warp(mlp=0)


class TestMemInst:
    def test_completion_after_expansion_and_fills(self):
        warp = make_warp()
        done = []
        inst = MemInst(warp, (1, 2), is_store=False, issued_cycle=0,
                       on_complete=lambda i, c: done.append(c))
        inst.note_request_sent(waits_for_data=True)
        inst.note_request_sent(waits_for_data=True)
        assert inst.fully_expanded
        inst.request_done(5)
        assert not done
        inst.request_done(9)
        assert done == [9]

    def test_all_hits_completes_immediately(self):
        warp = make_warp()
        done = []
        inst = MemInst(warp, (1,), False, 0, lambda i, c: done.append(c))
        inst.note_request_sent(waits_for_data=False)
        inst.maybe_complete(3)
        assert done == [3]

    def test_completion_fires_once(self):
        warp = make_warp()
        done = []
        inst = MemInst(warp, (1,), False, 0, lambda i, c: done.append(c))
        inst.note_request_sent(waits_for_data=False)
        inst.maybe_complete(3)
        inst.maybe_complete(4)
        assert done == [3]

    def test_overcompletion_detected(self):
        warp = make_warp()
        inst = MemInst(warp, (1,), False, 0, lambda i, c: None)
        inst.note_request_sent(waits_for_data=False)
        inst.maybe_complete(0)
        with pytest.raises(RuntimeError):
            inst.request_done(1)


class TestThreadBlock:
    def test_done_when_all_warps_finish(self):
        warp = make_warp()
        tb = warp.tb
        assert not tb.done
        tb.note_warp_done()
        assert tb.done

    def test_overcompletion_detected(self):
        warp = make_warp()
        tb = warp.tb
        tb.note_warp_done()
        with pytest.raises(RuntimeError):
            tb.note_warp_done()
