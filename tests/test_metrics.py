"""Unit and property tests for the multiprogramming metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.speedup import antt, fairness, normalized_ipcs, weighted_speedup


class TestNormalizedIPCs:
    def test_basic(self):
        assert normalized_ipcs([1.0, 2.0], [2.0, 2.0]) == [0.5, 1.0]

    def test_validates_lengths(self):
        with pytest.raises(ValueError):
            normalized_ipcs([1.0], [1.0, 2.0])

    def test_rejects_zero_isolated(self):
        with pytest.raises(ValueError):
            normalized_ipcs([1.0], [0.0])


class TestWeightedSpeedup:
    def test_is_sum(self):
        assert weighted_speedup([0.5, 0.7]) == pytest.approx(1.2)

    def test_perfect_sharing_equals_kernel_count(self):
        assert weighted_speedup([1.0, 1.0, 1.0]) == 3.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            weighted_speedup([])


class TestANTT:
    def test_is_mean_reciprocal(self):
        assert antt([0.5, 0.25]) == pytest.approx((2 + 4) / 2)

    def test_one_when_no_slowdown(self):
        assert antt([1.0, 1.0]) == 1.0

    def test_infinite_for_starved_kernel(self):
        assert antt([0.0, 1.0]) == float("inf")


class TestFairness:
    def test_equal_speedups_are_fair(self):
        assert fairness([0.5, 0.5]) == 1.0

    def test_min_over_max(self):
        assert fairness([0.2, 0.8]) == pytest.approx(0.25)

    def test_starved_kernel_is_zero(self):
        assert fairness([0.0, 0.9]) == 0.0


norm_lists = st.lists(st.floats(0.01, 2.0), min_size=2, max_size=4)


@settings(max_examples=60, deadline=None)
@given(norm_lists)
def test_metric_invariants(norms):
    ws = weighted_speedup(norms)
    assert 0 < ws <= 2.0 * len(norms)
    assert 0 < fairness(norms) <= 1.0
    assert antt(norms) >= 1.0 / max(norms) - 1e-9


@settings(max_examples=60, deadline=None)
@given(norm_lists, st.floats(1.1, 3.0))
def test_uniform_improvement_moves_all_metrics_correctly(norms, factor):
    better = [n * factor for n in norms]
    assert weighted_speedup(better) > weighted_speedup(norms)
    assert antt(better) < antt(norms)
    assert fairness(better) == pytest.approx(fairness(norms))


@settings(max_examples=60, deadline=None)
@given(norm_lists)
def test_fairness_is_permutation_invariant(norms):
    assert fairness(norms) == pytest.approx(fairness(list(reversed(norms))))
