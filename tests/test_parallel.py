"""Serial vs parallel campaign execution must agree bit for bit.

The parallel executor (``repro.harness.parallel``) fans grid cells out
over worker processes; every worker rebuilds its own runner.  These
tests pin the contract the perf harness relies on: the parallel path
is an *execution strategy*, never a different experiment — outcomes,
including every float metric, equal the serial loop exactly.
"""

import json
import os

import pytest

from repro.config import scaled_config
from repro.harness.parallel import (CurveJob, IsoJob, MixJob, PoolConfig,
                                    campaign_jobs, prefetch_jobs, run_jobs)
from repro.harness.perfbench import outcome_signature
from repro.harness.runner import ExperimentRunner, RunnerSettings
from repro.workloads.mixes import WorkloadMix
from repro.workloads.profiles import get_profile

SETTINGS = RunnerSettings(iso_cycles=600, curve_cycles=400,
                          concurrent_cycles=800)


def make_runner(tmp_path, sub):
    cache = tmp_path / sub
    cache.mkdir(parents=True, exist_ok=True)
    return ExperimentRunner(scaled_config(), SETTINGS, cache_dir=str(cache))


def make_mixes(pairs):
    return [WorkloadMix(tuple(get_profile(k) for k in pair))
            for pair in pairs]


@pytest.mark.parametrize("pairs,schemes", [
    ((("3m", "bp"),), ["ws"]),
    ((("3m", "bp"), ("st", "sv")), ["ws", "ws-dmil"]),
    ((("hs", "cd"),), ["ws-rbmi", "even"]),
])
def test_campaign_serial_vs_parallel_bit_identical(tmp_path, pairs, schemes):
    mixes = make_mixes(pairs)

    serial_runner = make_runner(tmp_path, "serial")
    serial = [serial_runner.run_mix(mix, scheme)
              for mix in mixes for scheme in schemes]

    parallel_runner = make_runner(tmp_path, "parallel")
    parallel = parallel_runner.run_campaign(mixes, schemes, workers=2)

    assert len(serial) == len(parallel)
    for s, p in zip(serial, parallel):
        # Full-precision equality, floats included: the parallel path
        # must be the same experiment, not an approximation of it.
        assert outcome_signature(s) == outcome_signature(p)


def test_single_worker_falls_back_to_serial(tmp_path):
    """workers=1 must not spawn a pool and must match workers>1."""
    mixes = make_mixes((("3m", "bp"),))
    one = make_runner(tmp_path, "one").run_campaign(mixes, ["ws"], workers=1)
    two = make_runner(tmp_path, "two").run_campaign(mixes, ["ws"], workers=2)
    assert [outcome_signature(o) for o in one] \
        == [outcome_signature(o) for o in two]


def test_run_jobs_dedups_and_preserves_order(tmp_path):
    runner = make_runner(tmp_path, "dedup")
    jobs = [IsoJob("3m"), IsoJob("bp"), IsoJob("3m")]
    records = run_jobs(runner, jobs, workers=1)
    assert [r.name for r in records] == ["3m", "bp", "3m"]
    assert records[0] is records[2]  # one execution, fanned back out


def test_prefetch_seeds_caches_for_serial_reuse(tmp_path):
    runner = make_runner(tmp_path, "prefetch")
    mixes = make_mixes((("3m", "bp"),))
    runner.prefetch(prefetch_jobs(mixes, ["ws"]), workers=2)
    # Curves and isolated records are now in-memory; run_mix must not
    # need to recompute them (observable: in-memory caches populated).
    assert runner._iso_cache and runner._curve_cache
    outcome = runner.run_mix(mixes[0], "ws")
    assert outcome.scheme == "ws"


def test_campaign_jobs_grid_is_mix_major():
    mixes = make_mixes((("3m", "bp"), ("st", "sv")))
    jobs = campaign_jobs(mixes, ["ws", "even"])
    assert jobs == [
        MixJob(("3m", "bp"), "ws", None),
        MixJob(("3m", "bp"), "even", None),
        MixJob(("st", "sv"), "ws", None),
        MixJob(("st", "sv"), "even", None),
    ]


def test_prefetch_jobs_skip_curves_without_ws():
    mixes = make_mixes((("3m", "bp"),))
    assert not any(isinstance(j, CurveJob)
                   for j in prefetch_jobs(mixes, ["even", "smk"]))
    assert any(isinstance(j, CurveJob)
               for j in prefetch_jobs(mixes, ["even", "ws-dmil"]))


def test_pool_config_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_WORKERS", "3")
    assert PoolConfig().resolved_workers() == 3
    monkeypatch.setenv("REPRO_BENCH_WORKERS", "not-a-number")
    assert PoolConfig().resolved_workers() == (os.cpu_count() or 1)
    assert PoolConfig(workers=5).resolved_workers() == 5


def test_corrupt_disk_cache_record_is_recomputed(tmp_path):
    """A truncated/corrupt cache record must be recomputed, not crash,
    and the recomputed result must match a clean runner's."""
    runner = make_runner(tmp_path, "corrupt")
    profile = get_profile("3m")
    clean = runner.isolated(profile, tbs=1)

    # Corrupt every record on disk, then force a cold in-memory cache.
    cache_dir = runner.cache_dir
    paths = [os.path.join(cache_dir, f) for f in os.listdir(cache_dir)
             if f.endswith(".json")]
    assert paths, "isolated() should have written a disk record"
    for path in paths:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{not json")

    reloaded = make_runner(tmp_path, "corrupt")
    rerun = reloaded.isolated(profile, tbs=1)
    assert rerun == clean

    # The bad record was replaced by a valid one.
    for path in paths:
        with open(path, encoding="utf-8") as fh:
            json.load(fh)


# ----------------------------------------------------------------------
# ledger-informed dispatch ordering
def _fake_artifacts(tmp_path, cells):
    """Write a minimal-but-valid artifact set: one per (workload,
    scheme, cycles, total_ipc) cell."""
    from repro.obs import ledger
    artifacts = [{
        "artifact_version": ledger.ARTIFACT_VERSION,
        "workload": workload,
        "scheme": scheme,
        "cycles": cycles,
        "metrics": {"total_ipc": ipc},
    } for workload, scheme, cycles, ipc in cells]
    directory = tmp_path / "arts"
    ledger.write_artifacts(str(directory), artifacts)
    return str(directory)


def test_ledger_cost_hints_reads_artifacts(tmp_path):
    from repro.harness.parallel import job_cost_key, ledger_cost_hints
    path = _fake_artifacts(tmp_path, [
        ("st+sv", "ws", 4000, 1.5),
        ("3m+bp", "ws", 1000, 3.0),
    ])
    hints = ledger_cost_hints(path)
    assert hints[("st+sv", "ws")] == pytest.approx(4000 * 2.5)
    assert hints[("3m+bp", "ws")] == pytest.approx(1000 * 4.0)
    # The hint key matches MixJob's ledger identity; iso/curve jobs
    # have no ledger cell and therefore no hint.
    assert job_cost_key(MixJob(("st", "sv"), "ws")) == ("st+sv", "ws")
    assert job_cost_key(IsoJob("st", 2)) is None
    # An empty/missing directory yields no hints, not an error.
    assert ledger_cost_hints(str(tmp_path / "nope")) == {}


def test_cost_hints_dispatch_longest_first_results_in_input_order(tmp_path):
    jobs = [MixJob(("3m", "bp"), "ws"),
            MixJob(("st", "sv"), "ws"),
            MixJob(("hs", "cd"), "ws")]
    hints = {("st+sv", "ws"): 300.0, ("hs+cd", "ws"): 900.0,
             ("3m+bp", "ws"): 10.0}

    dispatched = []
    runner = make_runner(tmp_path, "lpt")
    plain = run_jobs(runner, jobs, workers=1)
    hinted = run_jobs(make_runner(tmp_path, "lpt2"), jobs, workers=1,
                      cost_hints=hints,
                      progress=lambda hb: dispatched.append(hb.label))
    # Serial dispatch follows the LPT order exactly...
    assert dispatched == ["mix ws hs+cd", "mix ws st+sv", "mix ws 3m+bp"]
    # ...while results stay in input order and bit-identical.
    for a, b in zip(plain, hinted):
        assert outcome_signature(a) == outcome_signature(b)


def test_unhinted_jobs_keep_input_order(tmp_path):
    from repro.harness.parallel import _order_by_cost
    jobs = [MixJob(("3m", "bp"), "ws"),
            MixJob(("st", "sv"), "ws"),
            IsoJob("3m", 1)]
    # No hints at all: stable sort keeps input order.
    assert _order_by_cost(jobs, {}) == jobs
    # Partial hints: hinted jobs lead, unhinted keep relative order.
    ordered = _order_by_cost(jobs, {("st+sv", "ws"): 5.0})
    assert ordered == [jobs[1], jobs[0], jobs[2]]


def test_campaign_with_artifacts_reuses_hints_bit_identically(tmp_path):
    """End to end: a second campaign pointed at the first campaign's
    artifacts dir orders by its ledger and still matches serial."""
    mixes = make_mixes([("3m", "bp"), ("st", "sv")])
    schemes = ["ws"]

    first = make_runner(tmp_path, "first")
    arts = tmp_path / "campaign_arts"
    first.run_campaign(mixes, schemes, workers=2, artifacts_dir=str(arts))
    assert (arts / "ledger.json").exists()

    serial = [make_runner(tmp_path, "serial2").run_mix(mix, "ws")
              for mix in mixes]
    second = make_runner(tmp_path, "second")
    hinted = second.run_campaign(mixes, schemes, workers=2,
                                 artifacts_dir=str(arts))
    for s, p in zip(serial, hinted):
        assert outcome_signature(s) == outcome_signature(p)
