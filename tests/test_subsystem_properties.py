"""Property-based tests on the memory backend: conservation and
determinism under randomized request streams."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import scaled_config
from repro.mem.cache import AccessResult
from repro.mem.subsystem import MemRequest, MemorySubsystem


class Counter:
    def __init__(self):
        self.done = 0

    def request_done(self, cycle):
        self.done += 1


def drive_random_stream(seed, n_requests, write_frac=0.1, bypass_frac=0.0,
                        max_cycles=60_000):
    """Issue a random request stream and drain; returns (loads_issued,
    loads_completed, subsystem)."""
    cfg = scaled_config()
    mem = MemorySubsystem(cfg)
    rng = random.Random(seed)
    counter = Counter()
    issued_loads = 0
    issued = 0
    cycle = 0
    pending_req = None
    while issued < n_requests or not mem.quiescent():
        if issued < n_requests:
            if pending_req is None:
                is_write = rng.random() < write_frac
                bypass = (not is_write) and rng.random() < bypass_frac
                pending_req = MemRequest(
                    line=rng.randrange(4096), kernel=rng.randrange(2),
                    sm_id=rng.randrange(cfg.num_sms), is_write=is_write,
                    meminst=None if is_write else counter, bypass=bypass)
            result = mem.l1s[pending_req.sm_id].access(pending_req, cycle)
            if result not in AccessResult.RSFAILS:
                if not pending_req.is_write and result != AccessResult.HIT:
                    issued_loads += 1
                elif not pending_req.is_write:
                    counter.done += 1  # L1 hit completes inline
                    issued_loads += 1
                issued += 1
                pending_req = None
        mem.tick(cycle)
        cycle += 1
        assert cycle < max_cycles, "stream did not drain"
    return issued_loads, counter.done, mem


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000))
def test_every_load_completes_exactly_once(seed):
    issued, completed, mem = drive_random_stream(seed, n_requests=120)
    assert completed == issued
    assert mem.quiescent()


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 1000))
def test_bypassed_streams_also_conserve(seed):
    issued, completed, mem = drive_random_stream(seed, n_requests=100,
                                                 bypass_frac=0.5)
    assert completed == issued
    # bypassed fills never allocate into L1
    total_bypasses = sum(sum(l1.stats.bypasses.values()) for l1 in mem.l1s)
    assert total_bypasses > 0


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 500))
def test_backend_is_deterministic(seed):
    a = drive_random_stream(seed, n_requests=80)
    b = drive_random_stream(seed, n_requests=80)
    assert a[0] == b[0] and a[1] == b[1]
    assert a[2].dram.total_serviced() == b[2].dram.total_serviced()
    assert a[2].l2_stats.accesses == b[2].l2_stats.accesses
