"""Rule-level linter tests: every fixture's ``LINT-BAD`` markers must
match the engine's findings exactly — no misses, no extras."""

import os
import re

import pytest

from repro.lint import LintEngine

HERE = os.path.dirname(os.path.abspath(__file__))
FIXROOT = os.path.join(HERE, "lint_fixtures")

_MARKER_RE = re.compile(r"LINT-BAD:\s*(REPRO-[A-Z]\d+)")

FIXTURES = {
    "REPRO-D001": "src/repro/sim/fix_d001.py",
    "REPRO-D002": "src/repro/sim/fix_d002.py",
    "REPRO-D003": "src/repro/sim/fix_d003.py",
    "REPRO-D004": "src/repro/sim/fix_d004.py",
    "REPRO-O001": "src/repro/sim/fix_o001.py",
    "REPRO-S001": "src/repro/sim/fix_s001.py",
    "REPRO-S002": "src/repro/sim/fix_s002.py",
    "REPRO-S003": "src/repro/sim/fix_s003.py",
    "REPRO-P001": "src/repro/harness/fix_p001.py",
}


def expected_markers(rel_path):
    """(line, rule) pairs the fixture declares via LINT-BAD markers."""
    expected = []
    with open(os.path.join(FIXROOT, rel_path), encoding="utf-8") as fh:
        for lineno, text in enumerate(fh, start=1):
            for match in _MARKER_RE.finditer(text):
                expected.append((lineno, match.group(1)))
    return sorted(expected)


def lint_fixture(rel_path):
    engine = LintEngine(FIXROOT)
    return engine.lint_paths([rel_path])


@pytest.mark.parametrize("rule_id,rel_path", sorted(FIXTURES.items()))
def test_fixture_findings_match_markers(rule_id, rel_path):
    expected = expected_markers(rel_path)
    assert expected, f"fixture {rel_path} declares no LINT-BAD markers"
    got = sorted((f.line, f.rule) for f in lint_fixture(rel_path))
    assert got == expected
    assert any(rule == rule_id for _line, rule in got)


@pytest.mark.parametrize("rule_id,rel_path", sorted(FIXTURES.items()))
def test_each_rule_family_catches_a_seeded_violation(rule_id, rel_path):
    findings = lint_fixture(rel_path)
    assert any(f.rule == rule_id for f in findings)


def test_findings_carry_location_hint_and_snippet():
    findings = lint_fixture(FIXTURES["REPRO-D001"])
    assert findings
    for finding in findings:
        assert finding.path == FIXTURES["REPRO-D001"]
        assert finding.line > 0
        assert finding.hint
        assert finding.snippet
        assert finding.message


def test_sim_scoped_rules_silent_outside_sim_packages():
    findings = lint_fixture("src/repro/workloads/fix_scope.py")
    assert findings == []


def test_scope_metadata_matches_fixture_placement():
    # The same set-iteration source flags under sim/ and not under
    # workloads/ — path-scoped activation, exercised end to end above;
    # spot-check the rule metadata that drives it.
    from repro.lint.rules import all_rules, rules_by_id
    by_id = rules_by_id(all_rules())
    d001 = by_id["REPRO-D001"]
    assert d001.applies_to("src/repro/sim/sm.py")
    assert not d001.applies_to("src/repro/workloads/profiles.py")
    d003 = by_id["REPRO-D003"]
    assert not d003.applies_to("src/repro/harness/perfbench.py")
    assert not d003.applies_to("src/repro/obs/telemetry.py")
    assert d003.applies_to("src/repro/sim/engine.py")


def test_whole_repo_is_lint_clean():
    repo_root = os.path.dirname(HERE)
    engine = LintEngine(repo_root)
    findings = engine.lint_paths(["src", "tests", "scripts"])
    assert findings == [], "\n".join(
        f"{f.path}:{f.line}: {f.rule}: {f.message}" for f in findings)
