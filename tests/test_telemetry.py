"""Live campaign telemetry: heartbeat bookkeeping and the progress
hook in ``run_jobs`` (exercised on the serial path so the test stays
cheap and sandbox-proof)."""

import io

from repro.config import scaled_config
from repro.harness.parallel import IsoJob, MixJob, campaign_jobs, run_jobs
from repro.harness.runner import ExperimentRunner, RunnerSettings
from repro.obs.telemetry import (CampaignTelemetry, JobHeartbeat,
                                 NullTelemetry)
from repro.workloads.mixes import mix

QUICK = RunnerSettings(iso_cycles=400, curve_cycles=300,
                       concurrent_cycles=600)


def beat(index=1, total=4, label="mix ws bp+st", duration_s=2.0,
         sim_cycles=1_000_000, cache_hit=False):
    return JobHeartbeat(index=index, total=total, label=label,
                        duration_s=duration_s, sim_cycles=sim_cycles,
                        cache_hit=cache_hit)


class TestJobHeartbeat:
    def test_cycles_per_s(self):
        assert beat(duration_s=2.0, sim_cycles=1_000_000).cycles_per_s == \
            500_000.0

    def test_cached_jobs_report_zero_rate(self):
        assert beat(cache_hit=True).cycles_per_s == 0.0
        assert beat(duration_s=0.0).cycles_per_s == 0.0


class TestCampaignTelemetry:
    def test_counts_and_throughput(self):
        t = CampaignTelemetry(stream=io.StringIO())
        t(beat(index=1, duration_s=2.0, sim_cycles=2_000_000))
        t(beat(index=2, duration_s=2.0, sim_cycles=2_000_000))
        assert t.jobs_done == 2
        assert t.cache_hits == 0
        assert t.cycles_per_s() == 1_000_000.0

    def test_cache_hits_excluded_from_throughput(self):
        t = CampaignTelemetry(stream=io.StringIO())
        t(beat(index=1, duration_s=1.0, sim_cycles=1_000_000))
        t(beat(index=2, duration_s=0.0, sim_cycles=99_000_000,
               cache_hit=True))
        assert t.cache_hits == 1
        # rate reflects only the uncached job
        assert t.cycles_per_s() == 1_000_000.0

    def test_eta_none_before_first_beat(self):
        t = CampaignTelemetry(stream=io.StringIO())
        assert t.eta_s() is None
        t(beat(index=1, total=4))
        eta = t.eta_s()
        assert eta is not None and eta >= 0.0

    def test_beat_lines_written_to_stream(self):
        out = io.StringIO()
        t = CampaignTelemetry(stream=out)
        t(beat(index=1, total=4))
        t(beat(index=2, total=4, cache_hit=True, label="iso bp"))
        lines = out.getvalue().splitlines()
        assert len(lines) == 2
        assert "[  1/4" in lines[0]
        assert "(cache)" in lines[1]

    def test_quiet_suppresses_output(self):
        out = io.StringIO()
        t = CampaignTelemetry(stream=out, quiet=True)
        t(beat())
        assert out.getvalue() == ""
        assert t.jobs_done == 1

    def test_format_beat_rate_units(self):
        t = CampaignTelemetry(stream=io.StringIO(), quiet=True)
        t(beat(duration_s=1.0, sim_cycles=2_000_000))
        assert "Mc/s" in t.format_beat(beat(index=2))
        slow = CampaignTelemetry(stream=io.StringIO(), quiet=True)
        slow(beat(duration_s=1.0, sim_cycles=20_000))
        assert "kc/s" in slow.format_beat(beat(index=2))

    def test_summary_line(self):
        t = CampaignTelemetry(stream=io.StringIO(), quiet=True)
        t(beat(index=1))
        t(beat(index=2, cache_hit=True))
        text = t.summary()
        assert text.startswith("campaign:")
        assert "2 jobs" in text
        assert "1 cached" in text


class TestRunJobsProgress:
    def test_serial_path_emits_one_beat_per_unique_job(self):
        runner = ExperimentRunner(scaled_config(), QUICK)
        sink = NullTelemetry()
        jobs = [IsoJob("bp"), MixJob(("bp", "st"), "ws"), IsoJob("bp")]
        results = run_jobs(runner, jobs, workers=1, progress=sink)
        assert len(results) == 3
        assert len(sink.heartbeats) == 2  # duplicate IsoJob deduped
        assert {b.index for b in sink.heartbeats} == {1, 2}
        assert all(b.total == 2 for b in sink.heartbeats)
        assert all(not b.cache_hit for b in sink.heartbeats)
        assert all(b.duration_s > 0 for b in sink.heartbeats)

    def test_warm_rerun_flags_cache_hits(self):
        runner = ExperimentRunner(scaled_config(), QUICK)
        run_jobs(runner, [IsoJob("bp")], workers=1)
        sink = NullTelemetry()
        run_jobs(runner, [IsoJob("bp")], workers=1, progress=sink)
        assert len(sink.heartbeats) == 1
        assert sink.heartbeats[0].cache_hit

    def test_observed_campaign_jobs_carry_reports(self):
        runner = ExperimentRunner(scaled_config(), QUICK)
        jobs = campaign_jobs([mix("bp", "st")], ["ws"], obs=True)
        assert all(job.obs for job in jobs)
        outcomes = run_jobs(runner, jobs, workers=1)
        assert outcomes[0].result.obs is not None
        report = outcomes[0].result.obs
        assert sum(report.sched_stalls.values()) == report.issue_slots()
