"""The stall-attribution taxonomy: every scheduler issue slot is
classified, the classes are triggerable on demand, and turning
observability on never changes simulation results.

Workload recipes (verified deterministic under seed 3):

* ``st+sv`` (two streaming kernels) — scoreboard waits, LSU-full and,
  under ``rbmi``, arbitration losses;
* ``smil_limits=(1,1)`` — almost everything becomes ``mil_capped``;
* ``smk_quotas=(1,1)`` — the SMK warp-instruction gate dominates;
* single ``cp`` (compute-heavy) — SFU port conflicts (``exec_port``);
* single ``bp`` at 1 TB/SM over a long window — the kernel drains and
  schedulers go ``no_warp``.
"""

import pytest

from repro.config import scaled_config
from repro.core.arbiter import SchemeConfig
from repro.harness.perfbench import result_signature
from repro.obs import (ISSUED, STALL_BMI_LOSS, STALL_EXEC_PORT,
                       STALL_LSU_FULL, STALL_MIL_CAPPED, STALL_NO_WARP,
                       STALL_SCOREBOARD, STALL_SMK_GATE, ObsReport,
                       format_stall_report)
from repro.sim.engine import GPU, make_launches
from repro.workloads.profiles import get_profile


def observed(kernels, tbs, scheme_kwargs=None, cycles=1500, obs=True):
    cfg = scaled_config()
    launches = make_launches([get_profile(k) for k in kernels], list(tbs),
                             cfg, seed=3)
    gpu = GPU(cfg, launches, SchemeConfig(**(scheme_kwargs or {})), obs=obs)
    result = gpu.run(cycles)
    return result, result.obs


def by_reason(report):
    agg = {}
    for (_sm, _sched, _k, reason), n in report.sched_stalls.items():
        agg[reason] = agg.get(reason, 0) + n
    return agg


class TestInvariants:
    @pytest.mark.parametrize("kernels,tbs,scheme_kwargs", [
        (("st", "sv"), (4, 4), {}),
        (("st", "sv"), (4, 4), {"bmi": "rbmi"}),
        (("3m", "bp"), (2, 2), {"smk_quotas": (1, 1)}),
        (("cp",), (4,), {}),
    ])
    def test_outcomes_cover_every_issue_slot(self, kernels, tbs,
                                             scheme_kwargs):
        """issued + all stall classes == cycles x SMs x schedulers,
        exactly — no slot is double-counted or dropped."""
        _result, report = observed(kernels, tbs, scheme_kwargs)
        assert sum(report.sched_stalls.values()) == report.issue_slots()

    def test_lsu_taxonomy_matches_engine_stall_count(self):
        """One taxonomy entry per stalled LSU cycle: the per-resource
        breakdown sums exactly to the engine's lsu_stall_cycles."""
        result, report = observed(("st", "sv"), (4, 4))
        assert result.lsu_stall_cycles > 0
        assert sum(report.lsu_stalls.values()) == result.lsu_stall_cycles

    def test_lsu_stall_share_matches_run_result(self):
        result, report = observed(("st", "sv"), (4, 4))
        assert report.lsu_stall_share() == pytest.approx(
            result.lsu_stall_pct())

    def test_shares_sum_to_one(self):
        _result, report = observed(("st", "sv"), (4, 4))
        assert sum(report.sched_stall_shares().values()) == pytest.approx(1.0)


class TestStallClasses:
    def test_scoreboard_and_lsu_full_on_streaming_mix(self):
        _result, report = observed(("st", "sv"), (4, 4))
        agg = by_reason(report)
        assert agg[ISSUED] > 0
        assert agg[STALL_SCOREBOARD] > 0
        assert agg[STALL_LSU_FULL] > 0

    def test_bmi_loss_under_round_robin_arbitration(self):
        _result, report = observed(("st", "sv"), (4, 4), {"bmi": "rbmi"})
        assert by_reason(report)[STALL_BMI_LOSS] > 0

    def test_mil_capped_dominates_with_static_limit_one(self):
        _result, report = observed(("st", "sv"), (4, 4),
                                   {"mil": "smil", "smil_limits": (1, 1)})
        agg = by_reason(report)
        assert agg[STALL_MIL_CAPPED] > agg.get(STALL_LSU_FULL, 0)
        assert agg[STALL_MIL_CAPPED] > 0

    def test_smk_gate_with_tight_quota(self):
        _result, report = observed(("3m", "bp"), (2, 2),
                                   {"smk_quotas": (1, 1)})
        assert by_reason(report)[STALL_SMK_GATE] > 0

    def test_exec_port_conflicts_on_compute_kernel(self):
        _result, report = observed(("cp",), (4,))
        assert by_reason(report)[STALL_EXEC_PORT] > 0

    def test_no_warp_after_kernel_drains(self):
        _result, report = observed(("bp",), (1,), cycles=6000)
        assert by_reason(report)[STALL_NO_WARP] > 0


class TestObsNeutrality:
    @pytest.mark.parametrize("scheme_kwargs", [
        {},
        {"bmi": "qbmi", "qbmi_init_req_per_minst": (4, 4), "mil": "dmil"},
        {"bmi": "rbmi", "mil": "gdmil"},
    ], ids=["base", "qbmi-dmil", "rbmi-gdmil"])
    def test_observing_never_changes_results(self, scheme_kwargs):
        plain, _ = observed(("st", "sv"), (2, 2), scheme_kwargs, obs=None)
        watched, report = observed(("st", "sv"), (2, 2), scheme_kwargs,
                                   obs=True)
        assert result_signature(plain) == result_signature(watched)
        assert report is not None
        assert plain.obs is None

    def test_obs_forces_reference_loop(self):
        cfg = scaled_config()
        launches = make_launches([get_profile("bp")], [2], cfg, seed=3)
        gpu = GPU(cfg, launches, SchemeConfig(), obs=True)
        assert gpu.reference is True


class TestReportSurface:
    def test_registry_fold_matches_raw_tables(self):
        _result, report = observed(("st", "sv"), (4, 4))
        agg = by_reason(report)
        assert report.total("sm*.sched*.issue.scoreboard") == \
            agg[STALL_SCOREBOARD]
        assert report.total("sm*.lsu.rsfail_*.k*") == \
            sum(report.lsu_stalls.values())
        assert report.counters["engine.cycles"] == report.cycles

    def test_kernel_labels(self):
        _result, report = observed(("st", "sv"), (2, 2), cycles=500)
        assert report.kernel_label(0) == "st#0"
        assert report.kernel_label(1) == "sv#1"
        assert report.kernel_label(9) == "k9"

    def test_format_stall_report_mentions_every_kernel(self):
        _result, report = observed(("st", "sv"), (2, 2))
        text = format_stall_report(report)
        assert "st#0" in text and "sv#1" in text
        assert "issued=" in text

    def test_merged_reports_accumulate(self):
        _r1, a = observed(("st", "sv"), (2, 2), cycles=500)
        _r2, b = observed(("st", "sv"), (2, 2), cycles=500)
        merged = ObsReport.merged([a, b])
        assert merged.cycles == a.cycles + b.cycles
        assert sum(merged.sched_stalls.values()) == merged.issue_slots()
        assert merged.kernel_names == a.kernel_names

    def test_merged_requires_reports(self):
        with pytest.raises(ValueError):
            ObsReport.merged([])

    def test_summary_include_stalls(self):
        result, _report = observed(("st", "sv"), (2, 2), cycles=500)
        plain = result.summary()
        assert not any(k.startswith("stall[") for k in plain)
        rich = result.summary(include_stalls=True)
        stall_keys = [k for k in rich if k.startswith("stall[")]
        assert stall_keys
        assert sum(rich[k] for k in stall_keys) == pytest.approx(1.0)

    def test_report_survives_pickling(self):
        import pickle
        _result, report = observed(("st", "sv"), (2, 2), cycles=500)
        clone = pickle.loads(pickle.dumps(report))
        assert clone.sched_stalls == report.sched_stalls
        assert clone.counters == report.counters


class TestRunnerGuard:
    def test_dws_rejects_obs(self):
        from repro.harness.runner import ExperimentRunner
        from repro.workloads.mixes import mix
        runner = ExperimentRunner(scaled_config())
        with pytest.raises(ValueError, match="dynamic Warped-Slicer"):
            runner.run_mix(mix("bp", "st"), "dws", cycles=500, obs=True)
