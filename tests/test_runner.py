"""Tests for the experiment runner (caching, scheme resolution)."""

import pytest

from repro.config import scaled_config
from repro.harness.reporting import format_series, format_table, geomean
from repro.harness.runner import ExperimentRunner, RunnerSettings, run_pair
from repro.workloads.mixes import mix
from repro.workloads.profiles import get_profile

FAST = RunnerSettings(iso_cycles=1500, curve_cycles=1000, concurrent_cycles=2000)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scaled_config(), FAST)


class TestIsolatedCache:
    def test_memoised_in_memory(self, runner):
        first = runner.isolated(get_profile("bp"))
        second = runner.isolated(get_profile("bp"))
        assert first is second

    def test_disk_cache_round_trip(self, tmp_path):
        r1 = ExperimentRunner(scaled_config(), FAST, cache_dir=str(tmp_path))
        rec = r1.isolated(get_profile("dc"))
        r2 = ExperimentRunner(scaled_config(), FAST, cache_dir=str(tmp_path))
        rec2 = r2.isolated(get_profile("dc"))
        assert rec2.ipc == rec.ipc
        assert list(tmp_path.glob("iso-*.json"))

    def test_curve_has_one_point_per_tb(self, runner):
        profile = get_profile("sv")
        curve = runner.curve(profile)
        assert curve.max_tbs == profile.max_tbs_per_sm(runner.config)

    def test_rejects_impossible_tbs(self, runner):
        with pytest.raises(ValueError):
            runner.isolated(get_profile("bp"), tbs=0)


class TestSchemeResolution:
    def test_ws_partition_is_feasible(self, runner):
        profiles = [get_profile("bp"), get_profile("sv")]
        limits, masks, stack = runner.resolve_scheme("ws", profiles)
        assert masks is None
        assert all(l >= 1 for l in limits)
        assert stack.describe() == "baseline"

    def test_spatial_masks_cover_all_sms(self, runner):
        profiles = [get_profile("bp"), get_profile("sv")]
        limits, masks, _ = runner.resolve_scheme("spatial", profiles)
        assert masks is not None
        covered = set().union(*masks)
        assert covered == set(range(runner.config.num_sms))

    def test_mechanism_suffix_parsing(self, runner):
        profiles = [get_profile("bp"), get_profile("sv")]
        _, _, stack = runner.resolve_scheme("ws-qbmi+dmil", profiles)
        assert stack.bmi == "qbmi" and stack.mil == "dmil"
        _, _, stack = runner.resolve_scheme("ws-smil:3,inf", profiles)
        assert stack.smil_limits == (3, None)
        _, _, stack = runner.resolve_scheme("ws-ucp", profiles)
        assert stack.ucp

    def test_smk_variants(self, runner):
        profiles = [get_profile("bp"), get_profile("sv")]
        _, _, stack = runner.resolve_scheme("smk-p+w", profiles)
        assert stack.smk_quotas is not None
        _, _, stack = runner.resolve_scheme("smk-p+dmil", profiles)
        assert stack.mil == "dmil" and stack.smk_quotas is None

    def test_unknown_scheme_rejected(self, runner):
        with pytest.raises(ValueError):
            runner.resolve_scheme("bogus", [get_profile("bp")])
        with pytest.raises(ValueError):
            runner.resolve_scheme("ws-nope", [get_profile("bp")])


class TestRunMix:
    def test_outcome_metrics_consistent(self, runner):
        outcome = runner.run_mix(mix("bp", "sv"), "ws")
        assert outcome.weighted_speedup == pytest.approx(sum(outcome.norm_ipcs))
        assert outcome.mix_class == "C+M"
        assert outcome.partition and len(outcome.partition) == 2
        assert 0 < outcome.fairness <= 1

    def test_run_pair_with_scheme_name(self):
        outcome = run_pair("pf", "bp", "even", cycles=1500)
        assert outcome.mix_name == "pf+bp"

    def test_run_pair_with_scheme_config(self):
        from repro.core.arbiter import SchemeConfig
        outcome = run_pair("pf", "bp", SchemeConfig(bmi="rbmi"), cycles=1500)
        assert "RBMI" in outcome.scheme


class TestReportingHelpers:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], [3, 4.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.500" in text

    def test_format_table_validates_width(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series_downsamples(self):
        text = format_series({"s": list(range(100))}, max_points=10)
        assert len(text.split()) <= 12

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geomean([])
