"""Chaos harness: whole campaigns under injected faults.

Each test scripts a deterministic :class:`FaultPlan` — SIGKILL a
worker mid-cell, hang a job past its timeout, poison a cell, corrupt
checkpoints on disk — and asserts the two properties the resilience
layer promises: the campaign *completes*, and the merged results are
bit-identical to a fault-free run.  Faults change the execution story
(retries, quarantines, resumes), never the science.

Real worker processes are spawned and killed here, so the suite rides
under the ``chaos`` marker; it stays in tier-1 (cycle budgets are
tiny) but can be selected alone with ``pytest -m chaos``.
"""

import json
import os

import pytest

from repro.config import scaled_config
from repro.harness.perfbench import outcome_signature
from repro.harness.resilience import (FaultPlan, FaultSpec, Quarantined,
                                      ResiliencePolicy,
                                      default_journal_path,
                                      run_campaign_resilient)
from repro.harness.runner import ExperimentRunner, RunnerSettings
from repro.obs.telemetry import NullTelemetry
from repro.workloads.mixes import WorkloadMix
from repro.workloads.profiles import get_profile

pytestmark = pytest.mark.chaos

SETTINGS = RunnerSettings(iso_cycles=600, curve_cycles=400,
                          concurrent_cycles=800)
PAIR = ("st", "sv")
MIX_LABEL = "mix ws st+sv"


def make_runner(path):
    os.makedirs(path, exist_ok=True)
    return ExperimentRunner(scaled_config(), SETTINGS, cache_dir=str(path))


def make_mix():
    return WorkloadMix(tuple(get_profile(k) for k in PAIR))


def write_plan(tmp_path, *specs):
    plan = FaultPlan(list(specs), state_dir=str(tmp_path / "fault-state"))
    return plan.to_file(str(tmp_path / "plan.json"))


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    """Fault-free reference signature for the st+sv / ws campaign."""
    runner = make_runner(tmp_path_factory.mktemp("golden"))
    return outcome_signature(runner.run_mix(make_mix(), "ws"))


def executed_labels(telemetry):
    """Labels of cells that actually ran (checkpoint replays excluded)."""
    return [b.label for b in telemetry.heartbeats if b.event == "done"]


# ----------------------------------------------------------------------
def test_sigkill_worker_mid_campaign_bit_identical(tmp_path, golden):
    plan = write_plan(tmp_path,
                      FaultSpec(id="k1", kind="kill", match=MIX_LABEL))
    runner = make_runner(tmp_path / "cache")
    artifacts = tmp_path / "artifacts"
    outcomes, report = run_campaign_resilient(
        runner, [make_mix()], ["ws"], workers=2, fault_plan=plan,
        policy=ResiliencePolicy(retries=2, backoff_s=0.05),
        artifacts_dir=str(artifacts))

    # The kill struck (claim marker on disk), the cell retried, and the
    # merged outcome is the fault-free one bit for bit.
    assert FaultPlan.from_file(plan).fired("k1") == 1
    assert report.retries >= 1
    cell = next(c for c in report.cells.values() if c.label == MIX_LABEL)
    assert "worker-crash" in cell.faults
    assert outcome_signature(outcomes[0]) == golden

    # Degradation is on the record: per-cell provenance in the artifact,
    # campaign-level accounting in the ledger index.
    index = json.loads((artifacts / "ledger.json").read_text())
    assert index["campaign"]["retries"] == report.retries
    assert index["campaign"]["quarantined"] == []
    blobs = [json.loads(p.read_text()) for p in artifacts.glob("*.json")
             if p.name != "ledger.json"]
    degraded = [b for b in blobs if "provenance" in b]
    assert degraded and degraded[0]["provenance"]["attempts"] >= 2


def test_hung_job_killed_at_timeout_and_retried(tmp_path, golden):
    plan = write_plan(tmp_path,
                      FaultSpec(id="h1", kind="hang", match=MIX_LABEL,
                                seconds=60.0))
    runner = make_runner(tmp_path / "cache")
    outcomes, report = run_campaign_resilient(
        runner, [make_mix()], ["ws"], workers=2, fault_plan=plan,
        policy=ResiliencePolicy(timeout_s=3.0, retries=2, backoff_s=0.05))

    cell = next(c for c in report.cells.values() if c.label == MIX_LABEL)
    assert "timeout" in cell.faults
    assert report.retries >= 1
    assert outcome_signature(outcomes[0]) == golden


def test_unpicklable_result_retried_bit_identical(tmp_path, golden):
    plan = write_plan(tmp_path,
                      FaultSpec(id="u1", kind="unpicklable",
                                match=MIX_LABEL))
    runner = make_runner(tmp_path / "cache")
    outcomes, report = run_campaign_resilient(
        runner, [make_mix()], ["ws"], workers=2, fault_plan=plan,
        policy=ResiliencePolicy(retries=2, backoff_s=0.05))
    assert report.retries >= 1
    assert outcome_signature(outcomes[0]) == golden


# ----------------------------------------------------------------------
def test_resume_after_mid_campaign_kill_runs_only_unfinished(tmp_path,
                                                             golden):
    """Interrupted campaign: the journal holds a prefix of the cells
    (append-only, torn at kill time).  Resume must re-run exactly the
    unproven remainder and still merge bit-identically."""
    cache = tmp_path / "cache"
    runner = make_runner(cache)
    run_campaign_resilient(runner, [make_mix()], ["ws"], workers=2)

    journal_path = default_journal_path(runner)
    lines = open(journal_path).read().splitlines()
    assert len(lines) == 5  # 2 iso + 2 curve + 1 mix, all checkpointed
    entries = [json.loads(line) for line in lines]

    # Simulate dying mid-campaign: drop the mix checkpoint, corrupt one
    # iso checkpoint in place, and garble that kernel's disk-cache file
    # so the re-run cannot shortcut through a poisoned cache either.
    keep = []
    corrupted_iso = None
    for line, entry in zip(lines, entries):
        if entry["label"] == MIX_LABEL:
            continue
        if corrupted_iso is None and entry["label"].startswith("iso "):
            corrupted_iso = entry["label"]
            line = line.replace('"blob": "', '"blob": "XX', 1)
        keep.append(line)
    with open(journal_path, "w") as fh:
        fh.write("\n".join(keep) + "\n")
    iso_files = sorted(cache.glob("iso-*.json"))
    assert iso_files
    iso_files[0].write_text("{not json")

    fresh = ExperimentRunner(scaled_config(), SETTINGS,
                             cache_dir=str(cache))
    telemetry = NullTelemetry()
    outcomes, report = run_campaign_resilient(
        fresh, [make_mix()], ["ws"], workers=2, resume=True,
        progress=telemetry)

    ran = executed_labels(telemetry)
    assert sorted(ran) == sorted([MIX_LABEL, corrupted_iso])
    assert report.resumed == 3  # the three intact checkpoints replayed
    assert outcome_signature(outcomes[0]) == golden


def test_quarantine_then_resume_completes_campaign(tmp_path, golden):
    """A cell poisoned past its retry budget is quarantined — the
    campaign finishes around it — and a later fault-free ``--resume``
    re-runs only that cell, superseding the quarantine record."""
    plan = write_plan(tmp_path,
                      FaultSpec(id="r1", kind="raise", match=MIX_LABEL,
                                times=99))
    cache = tmp_path / "cache"
    runner = make_runner(cache)
    outcomes, report = run_campaign_resilient(
        runner, [make_mix()], ["ws"], workers=2, fault_plan=plan,
        policy=ResiliencePolicy(retries=1, backoff_s=0.05))
    assert isinstance(outcomes[0], Quarantined)
    assert report.quarantined == [MIX_LABEL]

    fresh = ExperimentRunner(scaled_config(), SETTINGS,
                             cache_dir=str(cache))
    telemetry = NullTelemetry()
    outcomes, report = run_campaign_resilient(
        fresh, [make_mix()], ["ws"], workers=2, resume=True,
        progress=telemetry)
    assert executed_labels(telemetry) == [MIX_LABEL]
    assert report.resumed == 4
    assert outcome_signature(outcomes[0]) == golden


def test_corrupt_fault_hits_journal_and_campaign_survives(tmp_path, golden):
    """A ``corrupt`` fault garbling the journal mid-campaign must not
    disturb the in-flight run (the journal is a recovery aid, not a
    dependency): results stay bit-identical, fault-free."""
    cache = tmp_path / "cache"
    runner = make_runner(cache)
    journal_glob = os.path.join(str(cache), "journal", "*.jsonl")
    plan = write_plan(tmp_path,
                      FaultSpec(id="c1", kind="corrupt", match="iso *",
                                path=journal_glob))
    outcomes, report = run_campaign_resilient(
        runner, [make_mix()], ["ws"], workers=2, fault_plan=plan)
    assert FaultPlan.from_file(plan).fired("c1") == 1
    assert outcome_signature(outcomes[0]) == golden
    assert report.retries == 0

    # The truncated journal still loads; resume re-runs whatever the
    # corruption made unprovable and completes identically.
    fresh = ExperimentRunner(scaled_config(), SETTINGS,
                             cache_dir=str(cache))
    outcomes, _ = run_campaign_resilient(fresh, [make_mix()], ["ws"],
                                         workers=2, resume=True)
    assert outcome_signature(outcomes[0]) == golden


def test_scheme_sweep_skips_quarantined_cells(tmp_path):
    """The experiment driver stays usable under quarantine: geomeans
    aggregate the surviving cells instead of crashing on a placeholder."""
    from repro.harness.experiments import scheme_sweep
    plan = write_plan(tmp_path,
                      FaultSpec(id="r1", kind="raise", match=MIX_LABEL,
                                times=99))
    runner = make_runner(tmp_path / "cache")
    plan_env = os.environ.get("REPRO_FAULT_PLAN")
    os.environ["REPRO_FAULT_PLAN"] = plan
    try:
        sweep = scheme_sweep(runner, ["ws"], [make_mix()],
                             policy=ResiliencePolicy(retries=0,
                                                     backoff_s=0.01))
    finally:
        if plan_env is None:
            os.environ.pop("REPRO_FAULT_PLAN", None)
        else:
            os.environ["REPRO_FAULT_PLAN"] = plan_env
    # The quarantined mix never entered the sweep — no placeholder to
    # trip geomeans over, just an absent row.
    assert sweep.mixes() == []
