"""Unit tests for UCP cache partitioning (paper §3.1)."""

import pytest

from repro.config import CacheConfig
from repro.core.cache_partition import ShadowTagArray, UCPController, lookahead_partition
from repro.mem.cache import SetAssocCache


def cache_cfg(assoc=4, sets=4):
    return CacheConfig(size_bytes=assoc * sets * 128, line_size=128,
                       assoc=assoc, mshrs=8, miss_queue=4, xor_index=False)


class TestShadowTagArray:
    def test_stack_distance_counting(self):
        atd = ShadowTagArray(cache_cfg(assoc=4, sets=1))
        atd.access(0)          # miss
        atd.access(0)          # hit at MRU (way 0)
        atd.access(1)          # miss
        atd.access(0)          # hit at way 1
        assert atd.way_hits[0] == 1
        assert atd.way_hits[1] == 1
        assert atd.misses == 2

    def test_utility_is_cumulative(self):
        atd = ShadowTagArray(cache_cfg(assoc=4, sets=1))
        atd.way_hits = [10, 5, 2, 0]
        assert atd.utility(1) == 10
        assert atd.utility(3) == 17

    def test_lru_eviction_in_shadow(self):
        atd = ShadowTagArray(cache_cfg(assoc=2, sets=1))
        atd.access(0)
        atd.access(2)
        atd.access(4)  # evicts 0
        atd.access(0)  # miss again
        assert atd.misses == 4

    def test_decay_halves_counters(self):
        atd = ShadowTagArray(cache_cfg())
        atd.way_hits = [8, 4, 2, 1]
        atd.decay()
        assert atd.way_hits == [4, 2, 1, 0]


class TestLookahead:
    def test_allocates_to_higher_utility(self):
        # kernel 0: strong reuse in first 2 ways; kernel 1: streaming.
        utilities = [[100, 180, 200, 210], [5, 6, 7, 8]]
        alloc = lookahead_partition(utilities, total_ways=4)
        assert alloc[0] > alloc[1]
        assert sum(alloc) == 4

    def test_minimum_one_way_each(self):
        utilities = [[0, 0, 0, 0], [100, 200, 300, 400]]
        alloc = lookahead_partition(utilities, total_ways=4)
        assert alloc[0] >= 1

    def test_rejects_impossible_minimum(self):
        with pytest.raises(ValueError):
            lookahead_partition([[1], [1], [1]], total_ways=2)

    def test_symmetric_utilities_split_evenly(self):
        utilities = [[10, 20, 30, 40], [10, 20, 30, 40]]
        alloc = lookahead_partition(utilities, total_ways=4)
        assert alloc == [2, 2]


class TestUCPController:
    def test_repartitions_on_interval(self):
        tags = SetAssocCache(cache_cfg())
        ucp = UCPController(2, tags, interval=100)
        # kernel 0 reuses 3 lines per set (needs 3 ways); kernel 1 streams.
        for i in range(300):
            ucp.observe(0, i % 12)
            ucp.observe(1, 1000 + i)
            ucp.tick(i)
        assert ucp.partitions_applied >= 2
        part = ucp.current_partition()
        assert part[0] > part[1], "reuse kernel should win ways"
        assert sum(part.values()) == tags.assoc

    def test_partition_applied_to_tag_store(self):
        tags = SetAssocCache(cache_cfg())
        ucp = UCPController(2, tags, interval=10)
        for i in range(20):
            ucp.observe(0, i % 2)
            ucp.observe(1, 100 + i)
            ucp.tick(i)
        assert tags.partition is not None

    def test_requires_two_kernels(self):
        with pytest.raises(ValueError):
            UCPController(1, SetAssocCache(cache_cfg()))
