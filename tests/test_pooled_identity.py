"""The slot-pooled memory path must be bit-identical to the object path.

``GPU(pooled=True)`` swaps every memory-pipeline component for its
struct-of-arrays twin — slot-pooled requests, the array tag store,
entry-pooled MSHRs, ring-buffer DRAM queues, and the event-encoded
subsystem clock — while ``pooled=False`` keeps the original
``MemRequest`` object path.  Nothing downstream may be able to tell:
these tests sweep the scheme space, the observability matrix, and
randomized mixes, requiring every collected statistic to match exactly.
"""

import random

import pytest

from repro.config import scaled_config
from repro.core.arbiter import SchemeConfig
from repro.harness.perfbench import result_signature
from repro.obs import Observability
from repro.sim.engine import GPU, make_launches
from repro.workloads.profiles import PROFILES_BY_NAME, get_profile

CONFIG = scaled_config()
CYCLES = 1500

# The fastpath scheme sweep, reused verbatim: every arbiter/BMI/MIL/
# UCP/bypass combination the fast-loop proof covers, the pooled proof
# covers too.
CASES = [
    ("gto-base", ("3m", "bp"), (4, 4), {}, {}),
    ("gto-single", ("3m",), (2,), {}, {}),
    ("lrr-base", ("3m", "bp"), (4, 4), {}, {"scheduler_policy": "lrr"}),
    ("rbmi-dmil", ("st", "sv"), (4, 4), {"bmi": "rbmi", "mil": "dmil"}, {}),
    ("qbmi", ("st", "sv"), (2, 2),
     {"bmi": "qbmi", "qbmi_init_req_per_minst": (4, 4)}, {}),
    ("smil", ("hs", "cd"), (1, 2),
     {"mil": "smil", "smil_limits": (2, 2)}, {}),
    ("ucp", ("3m", "bp"), (2, 2), {"ucp": True, "ucp_interval": 500}, {}),
    ("smk-quota", ("3m", "bp"), (2, 2), {"smk_quotas": (3, 1)}, {}),
    ("bypass", ("st", "sv"), (2, 2), {"l1d_bypass": (True, False)}, {}),
]


def run_once(kernels, tbs, scheme_kwargs, cfg_kwargs, *, pooled,
             reference=False, obs=False, seed=3, cycles=CYCLES):
    config = scaled_config(**cfg_kwargs) if cfg_kwargs else CONFIG
    profiles = [get_profile(k) for k in kernels]
    launches = make_launches(profiles, list(tbs), config, seed=seed)
    gpu = GPU(config, launches, SchemeConfig(**scheme_kwargs),
              reference=reference, pooled=pooled,
              obs=Observability() if obs else None)
    assert gpu.pooled is pooled
    return gpu.run(cycles)


@pytest.mark.parametrize(
    "kernels,tbs,scheme_kwargs,cfg_kwargs",
    [case[1:] for case in CASES],
    ids=[case[0] for case in CASES])
def test_pooled_matches_object_path(kernels, tbs, scheme_kwargs,
                                    cfg_kwargs):
    obj = run_once(kernels, tbs, scheme_kwargs, cfg_kwargs, pooled=False)
    pool = run_once(kernels, tbs, scheme_kwargs, cfg_kwargs, pooled=True)
    assert result_signature(pool) == result_signature(obj)
    for slot in range(len(kernels)):
        assert pool.ipc(slot) == obj.ipc(slot)


def test_pooled_matches_reference_loop():
    """Transitivity check pinned down explicitly: pooled fast loop ==
    object fast loop == reference loop, on a memory-bound mix."""
    ref = run_once(("cd", "sv"), (4, 4), {}, {}, pooled=False,
                   reference=True)
    obj = run_once(("cd", "sv"), (4, 4), {}, {}, pooled=False)
    pool = run_once(("cd", "sv"), (4, 4), {}, {}, pooled=True)
    assert result_signature(obj) == result_signature(ref)
    assert result_signature(pool) == result_signature(ref)


def test_obs_matrix_identical():
    """Observability hooks read pool slots through the same sentinel
    interface: obs totals and run stats match across all four cells of
    the (pooled, reference) matrix."""
    cells = {}
    for pooled in (False, True):
        for reference in (False, True):
            gpu_kwargs = dict(pooled=pooled, reference=reference, obs=True)
            result = run_once(("st", "sv"), (3, 3), {"mil": "dmil"}, {},
                              **gpu_kwargs)
            cells[(pooled, reference)] = result_signature(result)
    assert len(set(cells.values())) == 1, cells.keys()


def test_obs_default_prefers_object_path():
    """``obs=True`` forces the reference loop, and an unset ``pooled``
    then resolves to the object path — obs runs never silently change
    substrate underneath the operator."""
    launches = make_launches([get_profile("st")], [2], CONFIG, seed=1)
    gpu = GPU(CONFIG, launches, SchemeConfig(), obs=Observability())
    assert gpu.reference is True
    assert gpu.pooled is False


def test_pooled_env_var_controls_default(monkeypatch):
    launches = make_launches([get_profile("3m")], [1], CONFIG, seed=0)
    monkeypatch.setenv("REPRO_POOLED_MEM", "0")
    assert GPU(CONFIG, launches, SchemeConfig()).pooled is False
    launches = make_launches([get_profile("3m")], [1], CONFIG, seed=0)
    monkeypatch.setenv("REPRO_POOLED_MEM", "1")
    assert GPU(CONFIG, launches, SchemeConfig()).pooled is True
    monkeypatch.delenv("REPRO_POOLED_MEM")
    # Unset: pooled follows the fast loop (on unless reference).
    launches = make_launches([get_profile("3m")], [1], CONFIG, seed=0)
    assert GPU(CONFIG, launches, SchemeConfig()).pooled is True
    launches = make_launches([get_profile("3m")], [1], CONFIG, seed=0)
    assert GPU(CONFIG, launches, SchemeConfig(),
               reference=True).pooled is False


def test_randomized_mixes_fuzz():
    """Random mixes x schemes x seeds: the identity must hold off the
    curated path too.  Kept small enough for tier-1 (~8 pairs)."""
    rng = random.Random(2026)
    names = sorted(PROFILES_BY_NAME)
    scheme_space = [
        {},
        {"bmi": "rbmi"},
        {"mil": "dmil"},
        {"bmi": "qbmi", "qbmi_init_req_per_minst": (4, 4)},
        {"ucp": True, "ucp_interval": 400},
    ]
    for trial in range(8):
        kernels = tuple(rng.sample(names, rng.choice((1, 2))))
        tbs = tuple(rng.choice((1, 2, 3)) for _ in kernels)
        scheme_kwargs = dict(rng.choice(scheme_space))
        if "qbmi_init_req_per_minst" in scheme_kwargs:
            scheme_kwargs["qbmi_init_req_per_minst"] = tuple(
                4 for _ in kernels)
        seed = rng.randrange(1000)
        obj = run_once(kernels, tbs, scheme_kwargs, {}, pooled=False,
                       seed=seed, cycles=900)
        pool = run_once(kernels, tbs, scheme_kwargs, {}, pooled=True,
                        seed=seed, cycles=900)
        assert result_signature(pool) == result_signature(obj), (
            trial, kernels, tbs, scheme_kwargs, seed)
