"""Integration tests for the SM and the top-level GPU engine."""

import pytest

from repro.config import scaled_config
from repro.core.arbiter import SchemeConfig
from repro.sim.engine import GPU, KernelLaunch, make_launches
from repro.workloads.profiles import get_profile


def run_gpu(profiles, tb_limits, scheme=None, cycles=2000, cfg=None, **kwargs):
    cfg = cfg or scaled_config()
    launches = make_launches(profiles, tb_limits, cfg)
    gpu = GPU(cfg, launches, scheme or SchemeConfig(), **kwargs)
    return gpu, gpu.run(cycles)


class TestEngineBasics:
    def test_single_kernel_progresses(self):
        gpu, result = run_gpu([get_profile("bp")], [3])
        assert result.kernels[0].warp_insts > 0
        assert result.ipc(0) > 0

    def test_deterministic_across_runs(self):
        a = run_gpu([get_profile("bp"), get_profile("sv")], [2, 2])[1]
        b = run_gpu([get_profile("bp"), get_profile("sv")], [2, 2])[1]
        assert a.ipc(0) == b.ipc(0)
        assert a.ipc(1) == b.ipc(1)
        assert a.l1d_rsfails == b.l1d_rsfails

    def test_instruction_conservation(self):
        """warp_insts == alu + sfu + mem for every kernel."""
        gpu, result = run_gpu([get_profile("cp"), get_profile("sv")], [2, 2],
                              cycles=3000)
        for stats in result.kernels.values():
            assert stats.warp_insts == (
                stats.alu_insts + stats.sfu_insts + stats.mem_insts)

    def test_issue_never_exceeds_scheduler_slots(self):
        cfg = scaled_config()
        gpu, result = run_gpu([get_profile("dc")], [8], cycles=2000, cfg=cfg)
        max_issue = result.cycles * cfg.schedulers_per_sm * cfg.num_sms
        assert result.kernels[0].warp_insts <= max_issue

    def test_tb_accounting_balances(self):
        gpu, result = run_gpu([get_profile("bp")], [3], cycles=6000)
        stats = result.kernels[0]
        assert stats.tbs_launched >= stats.tbs_completed
        resident = sum(sm.kstate[0].tb_count for sm in gpu.sms)
        assert stats.tbs_launched - stats.tbs_completed == resident

    def test_tb_limits_respected(self):
        gpu, _ = run_gpu([get_profile("bp"), get_profile("sv")], [2, 3],
                         cycles=2000)
        for sm in gpu.sms:
            assert sm.kstate[0].tb_count <= 2
            assert sm.kstate[1].tb_count <= 3

    def test_static_resources_never_oversubscribed(self):
        cfg = scaled_config()
        gpu, _ = run_gpu([get_profile("hs"), get_profile("cd")], [2, 4],
                         cycles=2000, cfg=cfg)
        for sm in gpu.sms:
            assert sm._used_threads <= cfg.max_threads_per_sm
            assert sm._used_warps <= cfg.max_warps_per_sm
            assert sm._used_regs <= cfg.registers_per_sm
            assert sm._used_smem <= cfg.smem_per_sm
            assert sm._used_tbs <= cfg.max_tbs_per_sm

    def test_run_is_resumable(self):
        cfg = scaled_config()
        launches = make_launches([get_profile("bp")], [3], cfg)
        gpu = GPU(cfg, launches, SchemeConfig())
        first = gpu.run(1000)
        second = gpu.run(1000)
        assert second.cycles == 2000
        assert second.kernels[0].warp_insts >= first.kernels[0].warp_insts

    def test_rejects_empty_launches(self):
        with pytest.raises(ValueError):
            GPU(scaled_config(), [], SchemeConfig())

    def test_rejects_nonpositive_cycles(self):
        gpu, _ = run_gpu([get_profile("bp")], [1], cycles=10)
        with pytest.raises(ValueError):
            gpu.run(0)


class TestSpatialMasks:
    def test_masked_kernel_never_runs_on_excluded_sm(self):
        cfg = scaled_config()
        launches = make_launches(
            [get_profile("bp"), get_profile("sv")], [5, 8], cfg,
            sm_masks=[{0}, {1}])
        gpu = GPU(cfg, launches, SchemeConfig())
        gpu.run(2000)
        assert gpu.sms[0].kstate[0].tb_count > 0
        assert 1 not in gpu.sms[0].kstate or gpu.sms[0].kstate.get(1) is None \
            or gpu.sms[0].kstate[1].tb_count == 0
        assert gpu.sms[1].kstate[1].tb_count > 0


class TestTimeline:
    def test_timeline_recording(self):
        gpu, result = run_gpu([get_profile("bp"), get_profile("sv")], [2, 2],
                              cycles=3000, timeline_interval=500)
        insts = result.timeline.get("insts", 0)
        assert len(insts) == 6
        assert sum(insts) == result.kernels[0].warp_insts
        accesses = result.timeline.get("l1d_access", 1)
        assert sum(accesses) > 0


class TestLaunchHelpers:
    def test_make_launches_validates_lengths(self):
        cfg = scaled_config()
        with pytest.raises(ValueError):
            make_launches([get_profile("bp")], [1, 2], cfg)
        with pytest.raises(ValueError):
            make_launches([get_profile("bp")], [[1]], cfg)  # wrong per-SM length

    def test_kernel_launch_warp_indices_monotone(self):
        launch = KernelLaunch(0, get_profile("bp"), [2, 2])
        assert [launch.next_warp_index() for _ in range(3)] == [0, 1, 2]

    def test_kernel_regions_disjoint(self):
        a = KernelLaunch(0, get_profile("bp"), [1, 1])
        b = KernelLaunch(1, get_profile("sv"), [1, 1])
        assert a.base_line != b.base_line
