"""Unit and property tests for repro.workloads.address."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.address import MixPattern, ReusePattern, StreamPattern


class TestStreamPattern:
    def test_sequential_within_warp(self):
        pat = StreamPattern(region_lines=100)
        rng = random.Random(0)
        first = pat.lines(0, rng, 4)
        second = pat.lines(0, rng, 4)
        assert first == [0, 1, 2, 3]
        assert second == [4, 5, 6, 7]

    def test_wraps_at_region_boundary(self):
        pat = StreamPattern(region_lines=4)
        rng = random.Random(0)
        pat.lines(0, rng, 4)
        assert pat.lines(0, rng, 2) == [0, 1]

    def test_warps_use_disjoint_regions(self):
        pat = StreamPattern(region_lines=64)
        rng = random.Random(0)
        a = set(pat.lines(0, rng, 8))
        b = set(pat.lines(1, rng, 8))
        assert not a & b

    def test_recycled_slots_alias(self):
        pat = StreamPattern(region_lines=64, recycle_slots=4)
        rng = random.Random(0)
        a = pat.lines(1, rng, 4)
        b = pat.lines(5, rng, 4)  # 5 % 4 == 1 -> same region
        assert a == b

    def test_row_stagger_decorrelates_bases(self):
        pat = StreamPattern(region_lines=1 << 10)
        rng = random.Random(0)
        bases = [pat.lines(w, rng, 1)[0] for w in range(4)]
        rows = [b // 32 % 4 for b in bases]
        assert len(set(rows)) > 1, "warp streams must not share a channel phase"

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            StreamPattern(region_lines=0)
        with pytest.raises(ValueError):
            StreamPattern(recycle_slots=0)


class TestReusePattern:
    def test_all_lines_within_working_set(self):
        pat = ReusePattern(working_set_lines=16)
        rng = random.Random(1)
        for _ in range(50):
            assert all(0 <= line < 16 for line in pat.lines(0, rng, 3))

    def test_request_lines_are_consecutive_mod_ws(self):
        pat = ReusePattern(working_set_lines=10)
        rng = random.Random(2)
        lines = pat.lines(0, rng, 4)
        assert [(lines[0] + i) % 10 for i in range(4)] == lines

    def test_rejects_empty_working_set(self):
        with pytest.raises(ValueError):
            ReusePattern(0)


class TestMixPattern:
    def test_pure_reuse_when_frac_one(self):
        pat = MixPattern(8, 1.0)
        rng = random.Random(3)
        for _ in range(20):
            assert all(line < 8 for line in pat.lines(0, rng, 2))

    def test_pure_stream_when_frac_zero(self):
        pat = MixPattern(8, 0.0)
        rng = random.Random(3)
        lines = pat.lines(0, rng, 2)
        assert all(line >= 8 for line in lines), "streams must avoid the working set"

    def test_mix_produces_both_kinds(self):
        pat = MixPattern(8, 0.5)
        rng = random.Random(4)
        kinds = set()
        for _ in range(200):
            lines = pat.lines(0, rng, 1)
            kinds.add("reuse" if lines[0] < 8 else "stream")
        assert kinds == {"reuse", "stream"}

    def test_rejects_bad_frac(self):
        with pytest.raises(ValueError):
            MixPattern(8, 1.5)


@settings(max_examples=50, deadline=None)
@given(region=st.integers(1, 512), count=st.integers(1, 32),
       warp=st.integers(0, 64), seed=st.integers(0, 1000))
def test_stream_lines_stay_in_warp_region(region, count, warp, seed):
    pat = StreamPattern(region_lines=region)
    rng = random.Random(seed)
    base = warp * (region + StreamPattern.ROW_STAGGER)
    for line in pat.lines(warp, rng, count):
        assert base <= line < base + region


@settings(max_examples=50, deadline=None)
@given(ws=st.integers(1, 256), count=st.integers(1, 32), seed=st.integers(0, 1000))
def test_reuse_lines_bounded_by_working_set(ws, count, seed):
    pat = ReusePattern(ws)
    rng = random.Random(seed)
    assert all(0 <= line < ws for line in pat.lines(0, rng, count))


@settings(max_examples=30, deadline=None)
@given(frac=st.floats(0.0, 1.0), seed=st.integers(0, 100))
def test_mix_reuse_fraction_roughly_respected(frac, seed):
    pat = MixPattern(16, frac)
    rng = random.Random(seed)
    reuse = sum(1 for _ in range(400) if pat.lines(0, rng, 1)[0] < 16)
    assert abs(reuse / 400 - frac) < 0.15
