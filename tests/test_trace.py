"""Chrome trace-event recording: unit behaviour of the recorder and
the end-to-end JSON a traced simulation writes."""

import json

import pytest

from repro.config import scaled_config
from repro.core.arbiter import SchemeConfig
from repro.obs import ObsOptions, TraceRecorder
from repro.sim.engine import GPU, make_launches
from repro.workloads.profiles import get_profile


class TestRecorderUnits:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TraceRecorder(max_events=0)
        with pytest.raises(ValueError):
            TraceRecorder(issue_sample=0)
        with pytest.raises(ValueError):
            TraceRecorder(mem_sample=0)

    def test_issue_sampling_every_nth(self):
        rec = TraceRecorder(issue_sample=4)
        wants = [rec.want_issue() for _ in range(8)]
        assert wants == [False, False, False, True] * 2

    def test_mem_sampling_and_ids(self):
        rec = TraceRecorder(mem_sample=2)
        ids = [rec.next_mem_id() for _ in range(6)]
        assert ids == [None, 1, None, 2, None, 3]

    def test_buffer_cap_counts_drops(self):
        rec = TraceRecorder(max_events=2)
        for i in range(5):
            rec.instant(f"e{i}", "cat", 0, i)
        assert len(rec.events) == 2
        assert rec.dropped == 3
        # a full buffer also refuses new mem-lifetime ids
        assert rec.next_mem_id() is None
        assert rec.dropped == 4

    def test_process_named_once(self):
        rec = TraceRecorder()
        rec.name_process(0, "SM 0")
        rec.name_process(0, "SM 0")
        assert len(rec.events) == 1
        assert rec.events[0]["ph"] == "M"

    def test_event_shapes(self):
        rec = TraceRecorder()
        rec.complete("ld", "issue", 0, 1, ts=10, dur=1, args={"kernel": 0})
        rec.async_begin("mem:load", "mem", 0, 7, ts=10)
        rec.async_instant("l1d:miss", "mem", 0, 7, ts=12)
        rec.async_end("mem:load", "mem", 0, 7, ts=90)
        rec.counter("dmil limit k0", 0, 50, {"limit": 3.0})
        phases = [e["ph"] for e in rec.events]
        assert phases == ["X", "b", "n", "e", "C"]
        begin, _, end = rec.events[1:4]
        assert begin["id"] == end["id"] == 7

    def test_json_round_trip(self, tmp_path):
        rec = TraceRecorder()
        rec.instant("x", "cat", 0, 1)
        path = tmp_path / "t.json"
        rec.write(str(path))
        obj = json.loads(path.read_text())
        assert obj["traceEvents"] == rec.events
        assert obj["otherData"]["dropped_events"] == 0


def traced_run(cycles=1500, **options):
    cfg = scaled_config()
    launches = make_launches([get_profile("st"), get_profile("sv")],
                             [2, 2], cfg, seed=3)
    gpu = GPU(cfg, launches, SchemeConfig(),
              obs=ObsOptions(trace=True, **options))
    return gpu.run(cycles)


class TestTracedSimulation:
    def test_trace_file_is_loadable_chrome_json(self, tmp_path):
        result = traced_run()
        path = tmp_path / "run.json"
        result.obs.write_trace(str(path))
        obj = json.loads(path.read_text())
        events = obj["traceEvents"]
        assert events, "a traced run must record events"
        assert obj["displayTimeUnit"] == "ms"
        for event in events:
            assert "ph" in event and "name" in event and "pid" in event

    def test_records_issue_slices_and_mem_lifetimes(self):
        result = traced_run()
        phases = {e["ph"] for e in result.obs.trace_events}
        # metadata, issue slices, async mem lifetimes, stage instants
        assert {"M", "X", "b", "n", "e"} <= phases
        begins = sum(e["ph"] == "b" for e in result.obs.trace_events)
        ends = sum(e["ph"] == "e" for e in result.obs.trace_events)
        assert begins > 0
        assert ends <= begins

    def test_coarser_sampling_records_fewer_events(self):
        fine = traced_run(trace_issue_sample=1, trace_mem_sample=1)
        coarse = traced_run(trace_issue_sample=64, trace_mem_sample=64)
        assert len(coarse.obs.trace_events) < len(fine.obs.trace_events)

    def test_event_cap_degrades_gracefully(self):
        result = traced_run(trace_max_events=50,
                            trace_issue_sample=1, trace_mem_sample=1)
        assert len(result.obs.trace_events) == 50
        assert result.obs.trace_dropped > 0

    def test_untraced_report_refuses_write(self, tmp_path):
        cfg = scaled_config()
        launches = make_launches([get_profile("bp")], [2], cfg, seed=3)
        gpu = GPU(cfg, launches, SchemeConfig(), obs=True)
        result = gpu.run(500)
        with pytest.raises(ValueError, match="no trace"):
            result.obs.write_trace(str(tmp_path / "x.json"))
