"""Unit tests for the CKE layer: feasibility, Warped-Slicer, SMK,
spatial multitasking and the left-over policy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import scaled_config
from repro.cke.leftover import leftover_partition
from repro.cke.partition import (
    TBPartition,
    even_partition,
    feasible_partitions,
    fits_together,
    max_feasible,
)
from repro.cke.smk import drf_partition, smk_quotas
from repro.cke.spatial import spatial_masks, spatial_tb_limits
from repro.cke.warped_slicer import (
    ScalabilityCurve,
    sweet_spot,
    theoretical_weighted_speedup,
)
from repro.workloads.profiles import get_profile

CFG = scaled_config()


class TestFeasibility:
    def test_single_kernel_max(self):
        bp = get_profile("bp")
        assert fits_together([bp], [bp.max_tbs_per_sm(CFG)], CFG)
        assert not fits_together([bp], [bp.max_tbs_per_sm(CFG) + 1], CFG)

    def test_thread_limit_binds_pairs(self):
        bp, sv = get_profile("bp"), get_profile("sv")
        # 3x96 + 4x64 = 544 > 512 threads
        assert not fits_together([bp, sv], [3, 4], CFG)
        assert fits_together([bp, sv], [3, 3], CFG)

    def test_max_feasible_given_other(self):
        bp, sv = get_profile("bp"), get_profile("sv")
        assert max_feasible([bp, sv], [3, 0], kernel=1, config=CFG) == 3

    def test_enumeration_only_feasible(self):
        bp, sv = get_profile("bp"), get_profile("sv")
        parts = list(feasible_partitions([bp, sv], CFG))
        assert parts, "some partition must exist"
        for part in parts:
            assert fits_together([bp, sv], list(part), CFG)
            assert all(t >= 1 for t in part)

    def test_even_partition_gives_everyone_tbs(self):
        part = even_partition([get_profile("bp"), get_profile("sv")], CFG)
        assert all(t >= 1 for t in part)
        assert fits_together([get_profile("bp"), get_profile("sv")],
                             list(part), CFG)

    def test_tbpartition_rejects_negative(self):
        with pytest.raises(ValueError):
            TBPartition((-1, 2))


class TestScalabilityCurve:
    def test_normalisation_against_default_occupancy(self):
        curve = ScalabilityCurve("k", (1.0, 2.0, 2.5, 2.0))
        assert curve.isolated_ipc == 2.0
        assert curve.normalized(3) == pytest.approx(1.25)
        assert curve.max_tbs == 4

    def test_bounds_checked(self):
        curve = ScalabilityCurve("k", (1.0, 2.0))
        with pytest.raises(ValueError):
            curve.ipc(0)
        with pytest.raises(ValueError):
            curve.ipc(3)

    def test_rejects_empty_or_negative(self):
        with pytest.raises(ValueError):
            ScalabilityCurve("k", ())
        with pytest.raises(ValueError):
            ScalabilityCurve("k", (-1.0,))


class TestSweetSpot:
    def test_picks_min_degradation_point(self):
        bp, sv = get_profile("bp"), get_profile("sv")
        # bp saturates at 3 TBs; sv flat from 2.
        curve_bp = ScalabilityCurve("bp", (1.0, 2.0, 2.4, 2.45, 2.5))
        curve_sv = ScalabilityCurve("sv", (1.0, 1.4, 1.45, 1.45, 1.45, 1.45, 1.5, 1.5))
        part = sweet_spot([bp, sv], [curve_bp, curve_sv], CFG)
        norms = [curve_bp.normalized(part.tbs[0]), curve_sv.normalized(part.tbs[1])]
        # every feasible alternative must have a worse minimum
        for other in feasible_partitions([bp, sv], CFG):
            other_norms = [curve_bp.normalized(other.tbs[0]),
                           curve_sv.normalized(other.tbs[1])]
            assert min(other_norms) <= min(norms) + 1e-9

    def test_theoretical_ws_is_sum_of_normals(self):
        curve = ScalabilityCurve("k", (1.0, 2.0))
        assert theoretical_weighted_speedup(
            [curve, curve], TBPartition((1, 2))) == pytest.approx(0.5 + 1.0)

    def test_arity_checked(self):
        with pytest.raises(ValueError):
            sweet_spot([get_profile("bp")], [], CFG)


class TestSMK:
    def test_drf_gives_everyone_tbs(self):
        part = drf_partition([get_profile("bp"), get_profile("ks")], CFG)
        assert all(t >= 1 for t in part)
        assert fits_together([get_profile("bp"), get_profile("ks")],
                             list(part), CFG)

    def test_drf_balances_dominant_shares(self):
        """A tiny-footprint kernel must not be crowded out by a
        large-footprint one."""
        small, large = get_profile("cp"), get_profile("cd")
        part = drf_partition([small, large], CFG)
        assert part.tbs[0] >= 2 and part.tbs[1] >= 2

    def test_quotas_proportional_to_isolated_ipc(self):
        quotas = smk_quotas([2.0, 1.0], epoch_insts=300)
        assert quotas == (200, 100)

    def test_quota_floor_of_one(self):
        quotas = smk_quotas([1000.0, 0.001], epoch_insts=100)
        assert quotas[1] >= 1

    def test_quota_validation(self):
        with pytest.raises(ValueError):
            smk_quotas([0.0, 0.0])
        with pytest.raises(ValueError):
            smk_quotas([1.0, 1.0], epoch_insts=1)


class TestSpatial:
    def test_even_split(self):
        masks = spatial_masks(2, CFG)
        assert len(masks) == 2
        assert masks[0] | masks[1] == set(range(CFG.num_sms))
        assert not masks[0] & masks[1]

    def test_uneven_counts(self):
        cfg = scaled_config(num_sms=3)
        masks = spatial_masks(2, cfg)
        assert {len(m) for m in masks} == {1, 2}

    def test_more_kernels_than_sms_rejected(self):
        with pytest.raises(ValueError):
            spatial_masks(CFG.num_sms + 1, CFG)

    def test_full_occupancy_limits(self):
        profiles = [get_profile("bp"), get_profile("sv")]
        limits = spatial_tb_limits(profiles, CFG)
        assert limits == [p.max_tbs_per_sm(CFG) for p in profiles]


class TestLeftover:
    def test_first_kernel_takes_maximum(self):
        bp, sv = get_profile("bp"), get_profile("sv")
        part = leftover_partition([bp, sv], CFG)
        assert part.tbs[0] == bp.max_tbs_per_sm(CFG)

    def test_second_kernel_may_get_nothing(self):
        # two copies of a thread-hungry kernel: the first takes all.
        bs = get_profile("bs")
        part = leftover_partition([bs, bs], CFG)
        assert part.tbs[0] == bs.max_tbs_per_sm(CFG)
        assert part.tbs[1] < part.tbs[0]


@settings(max_examples=30, deadline=None)
@given(st.lists(st.sampled_from(["cp", "hs", "bp", "sv", "ks", "cd"]),
                min_size=2, max_size=3))
def test_drf_always_feasible(names):
    profiles = [get_profile(n) for n in names]
    part = drf_partition(profiles, CFG)
    assert fits_together(profiles, list(part), CFG)
    assert all(t >= 1 for t in part)
